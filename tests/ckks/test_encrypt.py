"""Encryption/decryption: correctness, randomness hygiene, seed sharing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params


class TestRoundtrip:
    def test_basic(self, ctx, rng):
        msg = rng.normal(size=ctx.params.slots) + 1j * rng.normal(size=ctx.params.slots)
        out = ctx.decrypt_decode(ctx.encrypt(msg))
        assert np.max(np.abs(out - msg)) < 1e-6

    def test_at_reduced_level(self, ctx, rng):
        """The paper's decrypt-side scenario: a low-level ciphertext."""
        msg = rng.normal(size=4)
        ct = ctx.encrypt(msg, level=ctx.params.decrypt_level)
        assert ct.level == ctx.params.decrypt_level
        assert np.max(np.abs(ctx.decrypt_decode(ct)[:4] - msg)) < 1e-6

    def test_noise_is_small_but_nonzero(self, ctx):
        msg = np.ones(ctx.params.slots)
        out = ctx.decrypt_decode(ctx.encrypt(msg))
        err = np.max(np.abs(out - msg))
        assert 0 < err < 1e-6  # encryption adds bounded noise

    def test_level_above_plaintext_rejected(self, ctx):
        pt = ctx.encode([1.0], level=2)
        with pytest.raises(ValueError, match="above the plaintext"):
            ctx.encryptor.encrypt(pt, level=4)


class TestRandomnessHygiene:
    def test_fresh_masks_per_encryption(self, ctx):
        """Two encryptions of the same message must differ (counter)."""
        pt = ctx.encode([1.0])
        c1 = ctx.encryptor.encrypt(pt)
        c2 = ctx.encryptor.encrypt(pt)
        assert not np.array_equal(c1.c0.data, c2.c0.data)
        assert not np.array_equal(c1.c1.data, c2.c1.data)

    def test_both_decrypt_correctly(self, ctx):
        pt = ctx.encode([2.5])
        for _ in range(3):
            ct = ctx.encryptor.encrypt(pt)
            assert abs(ctx.decrypt_decode(ct)[0] - 2.5) < 1e-6

    def test_wrong_key_garbage(self, rng):
        p = toy_params(degree=128, num_primes=3)
        alice = CkksContext.create(p, seed=1)
        eve = CkksContext.create(p, seed=2)
        msg = np.ones(4)
        ct = alice.encrypt(msg)
        leaked = eve.decryptor.decrypt(ct)
        # Decrypting with the wrong key yields enormous "noise".
        assert max(abs(x) for x in leaked.poly.to_bigints()) > alice.params.scale


class TestSymmetricSeeded:
    def test_roundtrip(self, ctx, rng):
        msg = rng.normal(size=4)
        pt = ctx.encode(msg)
        ct, seed = ctx.encryptor.encrypt_symmetric_seeded(pt, ctx.secret_key)
        assert len(seed) == 16
        assert np.max(np.abs(ctx.decrypt_decode(ct)[:4] - msg)) < 1e-6

    def test_c1_regenerable_from_seed(self, ctx):
        """Only c0 + the seed need transmitting — the bandwidth trick the
        streaming write-out exploits."""
        from repro.ckks.keys import expand_uniform_poly
        from repro.prng.xof import Xof

        pt = ctx.encode([1.0])
        ct, seed = ctx.encryptor.encrypt_symmetric_seeded(pt, ctx.secret_key)
        c1_again = expand_uniform_poly(ctx.basis, ct.level, Xof(seed), b"sym-c1")
        assert np.array_equal(c1_again.data, ct.c1.data)

    def test_distinct_seeds_per_call(self, ctx):
        pt = ctx.encode([1.0])
        _, s1 = ctx.encryptor.encrypt_symmetric_seeded(pt, ctx.secret_key)
        _, s2 = ctx.encryptor.encrypt_symmetric_seeded(pt, ctx.secret_key)
        assert s1 != s2


class TestDecryptor:
    def test_three_part_ciphertext(self, ctx, rng):
        """Decrypt handles pre-relinearization (c0, c1, c2) directly."""
        msg = rng.normal(size=4)
        ct = ctx.encrypt(msg)
        prod = ctx.evaluator.multiply(ct, ctx.encrypt(np.ones(4)))
        out = ctx.decode(ctx.decryptor.decrypt(prod))
        # scale is squared; decode uses the ciphertext's scale tracking.
        assert np.max(np.abs(out[:4] - msg)) < 1e-5
