"""The batched, hoisting-aware key-switch engine.

Pins the tentpole invariants: the tensorized pipeline is bit-identical to
the seed's per-digit loop, hoisted rotations are bit-identical to
non-hoisted ones, EVAL-domain automorphisms match the coefficient-domain
path, fused multi-prime rescale matches sequential rescaling — each
across all three reducer backends — and the dispatch-count guarantees
(one forward BatchNtt per decomposition, zero NTT round trips per
automorphism) hold structurally, not just by timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums.kernels import available_backends, using_backend
from repro.transforms.ntt import BatchNtt, galois_permutation

DEGREE = 256
NUM_PRIMES = 6
BACKENDS = available_backends()


@pytest.fixture(scope="module")
def kctx() -> CkksContext:
    return CkksContext.create(toy_params(degree=DEGREE, num_primes=NUM_PRIMES), seed=31)


@pytest.fixture(scope="module")
def msg(kctx):
    rng = np.random.default_rng(5)
    return rng.uniform(-1, 1, kctx.params.slots) + 1j * rng.uniform(
        -1, 1, kctx.params.slots
    )


class TestBatchedSwitch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_to_digit_loop(self, kctx, msg, backend):
        """engine.switch == the seed's per-digit loop, bit for bit."""
        rlk = kctx.relin_keys(levels=[NUM_PRIMES])
        key = rlk[NUM_PRIMES]
        poly = kctx.encrypt(msg).parts[1]
        with using_backend(backend):
            engine = kctx.evaluator.keyswitch
            fast0, fast1 = engine.switch(poly, key)
            ref0, ref1 = engine.switch_reference(poly, key)
        assert np.array_equal(fast0.data, ref0.data)
        assert np.array_equal(fast1.data, ref1.data)

    def test_relinearize_uses_batched_path(self, kctx, msg):
        """End-to-end multiply/relinearize still decrypts correctly."""
        rlk = kctx.relin_keys(levels=[NUM_PRIMES])
        ct = kctx.encrypt(msg)
        out = kctx.evaluator.multiply_relin_rescale(ct, ct, rlk)
        assert np.max(np.abs(kctx.decrypt_decode(out) - msg * msg)) < 1e-4

    def test_level_mismatch_rejected(self, kctx, msg):
        rlk = kctx.relin_keys(levels=[NUM_PRIMES])
        poly = kctx.encrypt(msg, level=NUM_PRIMES - 1).parts[1]
        with pytest.raises(ValueError, match="level"):
            kctx.evaluator.keyswitch.switch(poly, rlk[NUM_PRIMES])

    def test_single_forward_dispatch_over_stacked_digits(self, kctx, msg, monkeypatch):
        """decompose issues exactly one forward BatchNtt over (L, L, N)."""
        poly = kctx.encrypt(msg).parts[1]
        calls: list[tuple[int, ...]] = []
        original = BatchNtt.forward

        def counting_forward(self, mat):
            calls.append(np.shape(mat))
            return original(self, mat)

        monkeypatch.setattr(BatchNtt, "forward", counting_forward)
        kctx.evaluator.keyswitch.decompose(poly)
        forward_shapes = [s for s in calls if len(s) == 3]
        assert forward_shapes == [(NUM_PRIMES, NUM_PRIMES, DEGREE)]
        assert len(calls) == 1  # no stray per-digit dispatches


class TestHoistedRotations:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hoisted_bit_identical_to_unhoisted(self, kctx, msg, backend):
        gks = kctx.galois_keys([3], levels=[NUM_PRIMES])
        ct = kctx.encrypt(msg)
        with using_backend(backend):
            plain = kctx.evaluator.rotate(ct, 3, gks)
            dec = kctx.evaluator.decompose(ct)
            hoisted = kctx.evaluator.rotate(ct, 3, gks, decomposed=dec)
        for p, h in zip(plain.parts, hoisted.parts):
            assert np.array_equal(p.data, h.data)

    def test_decompose_once_apply_many(self, kctx, msg):
        """One decomposition feeds many rotations and still decrypts right."""
        steps = [1, 2, 5]
        gks = kctx.galois_keys(steps, levels=[NUM_PRIMES])
        ct = kctx.encrypt(msg)
        dec = kctx.evaluator.decompose(ct)
        for s in steps:
            out = kctx.decrypt_decode(kctx.evaluator.rotate(ct, s, gks, decomposed=dec))
            assert np.max(np.abs(out - np.roll(msg, -s))) < 1e-4

    def test_hoisted_rotation_is_transform_free(self, kctx, msg, monkeypatch):
        """With a hoisted decomposition, a rotation runs zero NTT dispatches."""
        gks = kctx.galois_keys([2], levels=[NUM_PRIMES])
        ct = kctx.encrypt(msg)
        dec = kctx.evaluator.decompose(ct)
        galois_permutation(DEGREE, pow(5, 2, 2 * DEGREE))  # pre-warm table

        counts = {"forward": 0, "inverse": 0}
        fwd, inv = BatchNtt.forward, BatchNtt.inverse
        monkeypatch.setattr(
            BatchNtt,
            "forward",
            lambda self, m: counts.__setitem__("forward", counts["forward"] + 1)
            or fwd(self, m),
        )
        monkeypatch.setattr(
            BatchNtt,
            "inverse",
            lambda self, m: counts.__setitem__("inverse", counts["inverse"] + 1)
            or inv(self, m),
        )
        kctx.evaluator.rotate(ct, 2, gks, decomposed=dec)
        assert counts == {"forward": 0, "inverse": 0}

    def test_matches_seed_rotation_semantically(self, kctx, msg):
        """Engine rotation decrypts identically to the seed path.

        The seed decomposed the *permuted* polynomial; the engine permutes
        already-decomposed digits (the hoisting prerequisite).  The two
        carry different — equally valid — digit representatives, so the
        ciphertexts are not byte-equal, but they encrypt the same message
        with the same noise bound.
        """
        from repro.ckks.containers import Ciphertext
        from repro.ckks.keys import rotation_galois_elt

        gks = kctx.galois_keys([4], levels=[NUM_PRIMES])
        ct = kctx.encrypt(msg)
        ev = kctx.evaluator
        elt = rotation_galois_elt(4, kctx.params.slots, 2 * DEGREE)
        c0r = ct.parts[0].to_coeff().automorphism(elt).to_eval()
        c1r = ct.parts[1].to_coeff().automorphism(elt).to_eval()
        ks0, ks1 = ev.keyswitch.switch_reference(c1r, gks[(4, NUM_PRIMES)])
        seed = Ciphertext(parts=[c0r + ks0, ks1], scale=ct.scale)
        engine = ev.rotate(ct, 4, gks)
        diff = kctx.decrypt_decode(seed) - kctx.decrypt_decode(engine)
        assert np.max(np.abs(diff)) < 1e-5
        assert np.max(np.abs(kctx.decrypt_decode(engine) - np.roll(msg, -4))) < 1e-4

    def test_conjugate_roundtrip(self, kctx, msg):
        cks = kctx.keygen.gen_conjugation(kctx.secret_key, levels=[NUM_PRIMES])
        out = kctx.decrypt_decode(kctx.evaluator.conjugate(kctx.encrypt(msg), cks))
        assert np.max(np.abs(out - np.conj(msg))) < 1e-4


class TestEvalDomainAutomorphism:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_coeff_domain_path(self, kctx, msg, backend):
        poly = kctx.encrypt(msg).parts[0]  # EVAL domain
        with using_backend(backend):
            for k in (3, 5, 2 * DEGREE - 1):
                via_eval = poly.automorphism(k)
                via_coeff = poly.to_coeff().automorphism(k).to_eval()
                assert np.array_equal(via_eval.data, via_coeff.data)

    def test_permutation_is_sign_free_bijection(self):
        for k in (3, 5, 2 * DEGREE - 1):
            src = galois_permutation(DEGREE, k)
            assert sorted(src.tolist()) == list(range(DEGREE))

    def test_even_element_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            galois_permutation(DEGREE, 4)


class TestFusedRescale:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fused_matches_sequential(self, kctx, msg, backend):
        ct = kctx.encrypt(msg)
        with using_backend(backend):
            fused = kctx.evaluator.rescale(ct, times=2)
            seq = kctx.evaluator.rescale(kctx.evaluator.rescale(ct), times=1)
        assert fused.scale == seq.scale
        for f, s in zip(fused.parts, seq.parts):
            assert np.array_equal(f.data, s.data)

    def test_times_zero_is_noop(self, kctx, msg):
        ct = kctx.encrypt(msg)
        out = kctx.evaluator.rescale(ct, times=0)
        assert out.scale == ct.scale
        for o, p in zip(out.parts, ct.parts):
            assert np.array_equal(o.data, p.data)

    def test_single_round_trip(self, kctx, msg, monkeypatch):
        """rescale(times=2) does one coeff<->eval round trip per part."""
        ct = kctx.encrypt(msg)
        counts = {"forward": 0, "inverse": 0}
        fwd, inv = BatchNtt.forward, BatchNtt.inverse
        monkeypatch.setattr(
            BatchNtt,
            "forward",
            lambda self, m: counts.__setitem__("forward", counts["forward"] + 1)
            or fwd(self, m),
        )
        monkeypatch.setattr(
            BatchNtt,
            "inverse",
            lambda self, m: counts.__setitem__("inverse", counts["inverse"] + 1)
            or inv(self, m),
        )
        kctx.evaluator.rescale(ct, times=2)
        assert counts == {"forward": 2, "inverse": 2}  # one per ciphertext part
