"""Encoder: precision, padding, scale handling, FP55 datapath."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.transforms.fp_custom import FP55


class TestRoundtrip:
    def test_complex_message(self, ctx, rng):
        msg = rng.normal(size=ctx.params.slots) + 1j * rng.normal(size=ctx.params.slots)
        out = ctx.decode(ctx.encode(msg))
        assert np.max(np.abs(out - msg)) < 1e-10

    def test_real_message(self, ctx, rng):
        msg = rng.normal(size=ctx.params.slots)
        out = ctx.decode(ctx.encode(msg))
        assert np.max(np.abs(out - msg)) < 1e-10
        assert np.max(np.abs(out.imag)) < 1e-10

    def test_large_magnitudes(self, ctx):
        msg = np.array([1e6, -1e6, 1e-6, 0.0])
        out = ctx.decode(ctx.encode(msg))[:4]
        assert np.max(np.abs(out - msg)) < 1e-4  # relative to 1e6: 1e-10

    def test_zero_message(self, ctx):
        out = ctx.decode(ctx.encode(np.zeros(4)))
        assert np.max(np.abs(out)) < 1e-12


class TestPaddingAndShapes:
    def test_short_input_zero_padded(self, ctx):
        out = ctx.decode(ctx.encode([1.0, 2.0]))
        assert abs(out[0] - 1) < 1e-10 and abs(out[1] - 2) < 1e-10
        assert np.max(np.abs(out[2:])) < 1e-10

    def test_too_many_slots_rejected(self, ctx):
        with pytest.raises(ValueError, match="at most"):
            ctx.encode(np.ones(ctx.params.slots + 1))

    def test_output_length(self, ctx):
        assert len(ctx.decode(ctx.encode([1.0]))) == ctx.params.slots


class TestScaleAndLevel:
    def test_default_scale(self, ctx):
        pt = ctx.encode([1.0])
        assert pt.scale == ctx.params.scale

    def test_custom_scale(self, ctx):
        pt = ctx.encoder.encode(np.array([3.0]), scale=2.0**40)
        assert pt.scale == 2.0**40
        assert abs(ctx.decode(pt)[0] - 3.0) < 1e-6

    def test_encode_at_level(self, ctx):
        pt = ctx.encode([1.0], level=2)
        assert pt.level == 2
        assert abs(ctx.decode(pt)[0] - 1.0) < 1e-10

    def test_scaled_integer_structure(self, ctx):
        """Encoding the constant 1 puts ~scale at coefficient 0."""
        pt = ctx.encode(np.ones(ctx.params.slots))
        coeff0 = pt.poly.to_bigints()[0]
        assert abs(coeff0 - ctx.params.scale) / ctx.params.scale < 1e-6


class TestFp55Encoder:
    def test_roundtrip_precision_lower_but_sufficient(self, rng):
        params = toy_params(degree=256, num_primes=4, fp_format=FP55)
        c = CkksContext.create(params, seed=3)
        msg = rng.normal(size=c.params.slots)
        err = np.max(np.abs(c.decode(c.encode(msg)) - msg))
        assert err < 2.0**-20  # well above the 19.29-bit threshold
        assert err > 0
