"""HE-standard security validation of parameter sets."""

from __future__ import annotations

import pytest

from repro.ckks import bootstrappable_params
from repro.ckks.security import (
    check_parameters,
    estimate_security_bits,
    max_modulus_bits,
)


class TestStandardTable:
    def test_known_rows(self):
        assert max_modulus_bits(32768, 128) == 881
        assert max_modulus_bits(65536, 128) == 1772

    def test_higher_security_means_smaller_modulus(self):
        for n in (8192, 32768, 65536):
            assert (
                max_modulus_bits(n, 128)
                > max_modulus_bits(n, 192)
                > max_modulus_bits(n, 256)
            )

    def test_unknown_degree(self):
        with pytest.raises(ValueError, match="not in the HE-standard"):
            max_modulus_bits(512, 128)

    def test_unknown_level(self):
        with pytest.raises(ValueError, match="security level"):
            max_modulus_bits(8192, 100)


class TestEstimate:
    def test_table_consistency(self):
        """At each table row's limit, the estimate is near its level."""
        for n in (16384, 32768, 65536):
            est = estimate_security_bits(n, max_modulus_bits(n, 128))
            assert 100 <= est <= 165

    def test_monotone_in_modulus(self):
        assert estimate_security_bits(32768, 400) > estimate_security_bits(32768, 800)

    def test_invalid_modulus(self):
        with pytest.raises(ValueError, match="positive"):
            estimate_security_bits(32768, 0)


class TestPaperParameters:
    def test_bootstrappable_set_is_128_bit_secure(self):
        """Section V-B: N = 2^16 with 24 x 36-bit primes (864 bits)."""
        report = check_parameters(bootstrappable_params())
        assert report.secure
        assert report.total_modulus_bits == 864
        assert report.margin_bits > 800  # room for bootstrap aux moduli

    def test_overstuffed_chain_flagged(self):
        from dataclasses import replace

        too_many = replace(bootstrappable_params(), num_primes=50)
        report = check_parameters(too_many)
        assert not report.secure
        assert report.margin_bits < 0
