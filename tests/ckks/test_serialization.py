"""Wire formats: bit-packing exactness, traffic-model agreement, and
round trips through the serving engine's forked-worker boundary."""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksContext, toy_params
from repro.ckks.serialization import (
    SEEDED_MAGIC,
    SWITCHING_KEY_MAGIC,
    ciphertext_wire_bytes,
    deserialize_ciphertext,
    deserialize_plaintext,
    deserialize_seeded,
    deserialize_switching_key,
    pack_frame,
    pack_residues,
    read_frame,
    serialize_ciphertext,
    serialize_plaintext,
    serialize_seeded,
    serialize_switching_key,
    unpack_residues,
    wire_coeff_bits,
)
from repro.nums.kernels import available_backends, using_backend


@pytest.fixture(scope="module")
def sctx():
    return CkksContext.create(toy_params(degree=128, num_primes=4), seed=55)


class TestPacking:
    def test_roundtrip_36_bits(self, rng):
        vals = rng.integers(0, 1 << 36, 1000).astype(np.uint64)
        blob = pack_residues(vals, 36)
        assert len(blob) == (36 * 1000 + 7) // 8
        assert np.array_equal(unpack_residues(blob, 36, 1000), vals)

    def test_roundtrip_odd_width(self, rng):
        vals = rng.integers(0, 1 << 13, 257).astype(np.uint64)
        assert np.array_equal(unpack_residues(pack_residues(vals, 13), 13, 257), vals)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_residues(np.array([1 << 40], dtype=np.uint64), 36)

    def test_bad_width(self):
        with pytest.raises(ValueError, match="bits must be"):
            pack_residues(np.array([1], dtype=np.uint64), 0)

    def test_short_blob_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            unpack_residues(b"\x00", 36, 100)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=63),
        st.lists(st.integers(min_value=0), min_size=1, max_size=64),
    )
    def test_hypothesis_roundtrip(self, bits, raw):
        vals = np.array([v % (1 << bits) for v in raw], dtype=np.uint64)
        assert np.array_equal(
            unpack_residues(pack_residues(vals, bits), bits, len(vals)), vals
        )


class TestFullCiphertext:
    def test_roundtrip(self, sctx):
        msg = np.linspace(-1, 1, sctx.params.slots)
        ct = sctx.encrypt(msg)
        back = deserialize_ciphertext(serialize_ciphertext(ct), sctx.basis)
        assert back.level == ct.level
        assert back.scale == pytest.approx(ct.scale)
        assert np.array_equal(back.c0.data, ct.c0.data)
        assert np.array_equal(back.c1.data, ct.c1.data)

    def test_decrypts_after_roundtrip(self, sctx):
        msg = np.array([2.5, -1.25])
        ct = sctx.encrypt(msg)
        back = deserialize_ciphertext(serialize_ciphertext(ct), sctx.basis)
        assert np.max(np.abs(sctx.decrypt_decode(back)[:2] - msg)) < 1e-6

    def test_size_prediction_exact(self, sctx):
        ct = sctx.encrypt(np.ones(4))
        blob = serialize_ciphertext(ct, coeff_bits=44)
        assert len(blob) == ciphertext_wire_bytes(
            sctx.params.degree, ct.level, ct.size, 44
        )

    def test_rejects_wrong_magic(self, sctx):
        with pytest.raises(ValueError, match="not a full-ciphertext"):
            deserialize_ciphertext(b"XXXX" + b"\x00" * 64, sctx.basis)

    def test_rejects_coeff_domain(self, sctx):
        from repro.ckks.containers import Ciphertext

        ct = sctx.encrypt(np.ones(2))
        bad = Ciphertext.__new__(Ciphertext)
        bad.parts = [p.to_coeff() for p in ct.parts]
        bad.scale = ct.scale
        with pytest.raises(ValueError, match="NTT-domain"):
            serialize_ciphertext(bad)


class TestSeededCiphertext:
    def test_roundtrip_halves_size(self, sctx):
        msg = np.linspace(0, 1, sctx.params.slots)
        pt = sctx.encode(msg)
        ct, seed = sctx.encryptor.encrypt_symmetric_seeded(pt, sctx.secret_key)
        seeded = serialize_seeded(ct, seed)
        full = serialize_ciphertext(ct)
        assert len(seeded) < 0.55 * len(full)
        back = deserialize_seeded(seeded, sctx.basis)
        assert np.max(np.abs(sctx.decrypt_decode(back) - msg)) < 1e-6

    def test_size_prediction_exact(self, sctx):
        pt = sctx.encode([1.0])
        ct, seed = sctx.encryptor.encrypt_symmetric_seeded(pt, sctx.secret_key)
        blob = serialize_seeded(ct, seed, coeff_bits=44)
        assert len(blob) == ciphertext_wire_bytes(
            sctx.params.degree, ct.level, 2, 44, seeded=True
        )

    def test_matches_traffic_model_accounting(self, sctx):
        """The performance model's per-poly bytes equal the real wire
        payload (minus the fixed header)."""
        from repro.accel.memory import TrafficModel
        from repro.accel.workload import ClientWorkload
        from repro.accel.config import abc_fhe

        w = ClientWorkload(degree=sctx.params.degree, enc_levels=4, dec_levels=2)
        traffic = TrafficModel(config=abc_fhe(), workload=w).encode_encrypt()
        pt = sctx.encode([1.0])
        ct, seed = sctx.encryptor.encrypt_symmetric_seeded(pt, sctx.secret_key)
        wire = len(serialize_seeded(ct, seed, coeff_bits=44))
        from repro.ckks.serialization import _HEADER_LEN

        assert traffic.ciphertext_bytes == wire - _HEADER_LEN

    def test_three_part_rejected(self, sctx):
        ct = sctx.encrypt(np.ones(2))
        prod = sctx.evaluator.multiply(ct, ct)
        with pytest.raises(ValueError, match="exactly"):
            serialize_seeded(prod, b"\x00" * 16)


class TestPlaintext:
    def test_roundtrip_coeff_domain(self, sctx):
        pt = sctx.encode(np.linspace(-1, 1, sctx.params.slots))
        bits = wire_coeff_bits(sctx.basis)
        back = deserialize_plaintext(serialize_plaintext(pt, bits), sctx.basis)
        assert back.scale == pt.scale
        assert back.poly.domain == pt.poly.domain
        assert np.array_equal(back.poly.data, pt.poly.data)

    def test_roundtrip_eval_domain(self, sctx):
        pt = sctx.encode(np.linspace(0, 1, sctx.params.slots))
        pt.poly = pt.poly.to_eval()
        bits = wire_coeff_bits(sctx.basis)
        back = deserialize_plaintext(serialize_plaintext(pt, bits), sctx.basis)
        assert back.poly.domain == pt.poly.domain
        assert np.array_equal(back.poly.data, pt.poly.data)

    def test_rejects_wrong_magic(self, sctx):
        ct = sctx.encrypt(np.ones(2))
        with pytest.raises(ValueError, match="not a plaintext"):
            deserialize_plaintext(serialize_ciphertext(ct), sctx.basis)


class TestScaleExactness:
    def test_rescaled_scale_survives_roundtrip_bit_exact(self, sctx):
        """A rescaled ciphertext's scale is Δ²/q — not a power of two.
        The raw-double header must carry it back exactly, or sharded
        serving could never be bit-identical to in-process execution."""
        ct = sctx.encrypt(np.linspace(-1, 1, sctx.params.slots))
        rlk = sctx.relin_keys(levels=[ct.level])
        prod = sctx.evaluator.multiply_relin_rescale(ct, ct, rlk)
        assert prod.scale != 2.0 ** round(np.log2(prod.scale))
        back = deserialize_ciphertext(serialize_ciphertext(prod), sctx.basis)
        assert back.scale == prod.scale


def _child_roundtrip(conn, basis) -> None:
    """Forked-worker body: decode whatever arrives, send a full-form
    re-serialization back (exactly what the serving pool does)."""
    blob = conn.recv()
    bits = wire_coeff_bits(basis)
    if blob[:4] == SEEDED_MAGIC:
        ct = deserialize_seeded(blob, basis)
    else:
        ct = deserialize_ciphertext(blob, basis)
    conn.send(serialize_ciphertext(ct, coeff_bits=bits))
    conn.close()


@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="requires fork"
)
class TestWorkerBoundary:
    """Seeded and full wire forms crossing a real fork boundary, under
    every reducer backend (the transport of repro.runtime.executor)."""

    def _through_fork(self, blob, basis) -> bytes:
        ctx_mp = mp.get_context("fork")
        parent_conn, child_conn = ctx_mp.Pipe()
        proc = ctx_mp.Process(target=_child_roundtrip, args=(child_conn, basis))
        proc.start()
        child_conn.close()
        parent_conn.send(blob)
        out = parent_conn.recv()
        proc.join(timeout=30)
        parent_conn.close()
        return out

    @pytest.mark.parametrize("backend", available_backends())
    def test_full_form_bit_exact_across_fork(self, backend):
        with using_backend(backend):
            ctx = CkksContext.create(
                toy_params(degree=128, num_primes=4), seed=60
            )
            ct = ctx.encrypt(np.linspace(-1, 1, ctx.params.slots))
            bits = wire_coeff_bits(ctx.basis)
            blob = serialize_ciphertext(ct, coeff_bits=bits)
            echoed = self._through_fork(blob, ctx.basis)
            # decode -> re-encode in the child reproduces the bytes.
            assert echoed == blob
            back = deserialize_ciphertext(echoed, ctx.basis)
            assert back.scale == ct.scale
            for got, want in zip(back.parts, ct.parts):
                assert np.array_equal(got.data, want.data)

    @pytest.mark.parametrize("backend", available_backends())
    def test_seeded_form_expands_identically_across_fork(self, backend):
        with using_backend(backend):
            ctx = CkksContext.create(
                toy_params(degree=128, num_primes=4), seed=61
            )
            pt = ctx.encode(np.linspace(0, 1, ctx.params.slots))
            ct, seed = ctx.encryptor.encrypt_symmetric_seeded(pt, ctx.secret_key)
            bits = wire_coeff_bits(ctx.basis)
            seeded_blob = serialize_seeded(ct, seed, coeff_bits=bits)
            echoed = self._through_fork(seeded_blob, ctx.basis)
            # The child re-expanded c1 from the 16-byte seed; its full
            # form must equal the parent's full form of the same ct.
            assert echoed == serialize_ciphertext(ct, coeff_bits=bits)


class TestSwitchingKey:
    def test_roundtrip_bit_exact(self, sctx):
        key = sctx.relin_keys(levels=[4])[4]
        blob = serialize_switching_key(key)
        assert blob[:4] == SWITCHING_KEY_MAGIC
        back = deserialize_switching_key(blob, sctx.basis)
        assert back.level == key.level
        assert len(back.pairs) == len(key.pairs)
        for (b0, a0), (b1, a1) in zip(key.pairs, back.pairs):
            assert np.array_equal(b0.data, b1.data)
            assert np.array_equal(a0.data, a1.data)
            assert b1.domain == "eval" and a1.domain == "eval"

    def test_reencode_is_byte_identical(self, sctx):
        key = sctx.galois_keys([1], levels=[4])[(1, 4)]
        blob = serialize_switching_key(key)
        back = deserialize_switching_key(blob, sctx.basis)
        assert serialize_switching_key(back) == blob

    def test_wrong_magic_rejected(self, sctx):
        ct = sctx.encrypt(np.zeros(sctx.params.slots))
        blob = serialize_ciphertext(ct, coeff_bits=wire_coeff_bits(sctx.basis))
        with pytest.raises(ValueError, match="switching-key"):
            deserialize_switching_key(blob, sctx.basis)

    def test_degree_mismatch_rejected(self, sctx):
        key = sctx.relin_keys(levels=[4])[4]
        blob = serialize_switching_key(key)
        other = CkksContext.create(toy_params(degree=64, num_primes=4), seed=1)
        with pytest.raises(ValueError, match="degree mismatch"):
            deserialize_switching_key(blob, other.basis)


class TestFrames:
    def test_roundtrip(self):
        blob = pack_frame(b"ABCD", b"payload") + pack_frame(b"WXYZ", b"")
        tag, payload, offset = read_frame(blob, 0)
        assert (tag, payload) == (b"ABCD", b"payload")
        tag, payload, offset = read_frame(blob, offset)
        assert (tag, payload) == (b"WXYZ", b"")
        assert offset == len(blob)

    def test_bad_tag_length_rejected(self):
        with pytest.raises(ValueError, match="4 bytes"):
            pack_frame(b"TOOLONG", b"")

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            read_frame(pack_frame(b"ABCD", b"xy")[:6], 0)

    def test_truncated_payload_rejected(self):
        blob = pack_frame(b"ABCD", b"x" * 100)
        with pytest.raises(ValueError, match="truncated"):
            read_frame(blob[:50], 0)

    def test_corrupt_payload_rejected(self):
        blob = bytearray(pack_frame(b"ABCD", b"sensitive-bytes"))
        blob[10] ^= 0x40
        with pytest.raises(ValueError, match="CRC"):
            read_frame(bytes(blob), 0)


class TestTypedWireErrors:
    """Every decode-path rejection is a WireFormatError so the serving
    engine can map corruption to a typed, retriable failure — while
    staying a ValueError for pre-existing handlers."""

    def test_wire_format_error_is_a_value_error(self):
        from repro.ckks import WireFormatError

        assert issubclass(WireFormatError, ValueError)

    def test_frame_corruption_is_typed(self):
        from repro.ckks import WireFormatError

        blob = bytearray(pack_frame(b"ABCD", b"payload-bytes"))
        blob[9] ^= 0x01
        with pytest.raises(WireFormatError):
            read_frame(bytes(blob), 0)
        with pytest.raises(WireFormatError):
            read_frame(blob[:6], 0)

    def test_container_magic_mismatch_is_typed(self, sctx):
        from repro.ckks import WireFormatError

        ct = sctx.encrypt(np.full(sctx.params.slots, 0.5))
        blob = bytearray(serialize_ciphertext(ct))
        blob[:4] = b"XXXX"
        with pytest.raises(WireFormatError):
            deserialize_ciphertext(bytes(blob), sctx.evaluator.basis)
