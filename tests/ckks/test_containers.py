"""Plaintext/Ciphertext container invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks.containers import Ciphertext, Plaintext
from repro.rns.poly import RnsPolynomial


def _poly(basis, level, domain="eval"):
    p = RnsPolynomial.zero(basis, level)
    return p.to_eval() if domain == "eval" else p


class TestCiphertext:
    def test_needs_two_parts(self, basis):
        with pytest.raises(ValueError, match="at least"):
            Ciphertext(parts=[_poly(basis, 2)], scale=1.0)

    def test_level_consistency_enforced(self, basis):
        with pytest.raises(ValueError, match="inconsistent levels"):
            Ciphertext(parts=[_poly(basis, 2), _poly(basis, 3)], scale=1.0)

    def test_eval_domain_enforced(self, basis):
        with pytest.raises(ValueError, match="NTT domain"):
            Ciphertext(
                parts=[_poly(basis, 2, "coeff"), _poly(basis, 2, "coeff")], scale=1.0
            )

    def test_properties(self, basis):
        ct = Ciphertext(parts=[_poly(basis, 3), _poly(basis, 3)], scale=2.0**40)
        assert ct.level == 3
        assert ct.size == 2
        assert ct.c0 is ct.parts[0]
        assert ct.c1 is ct.parts[1]

    def test_copy_is_deep(self, basis):
        ct = Ciphertext(parts=[_poly(basis, 2), _poly(basis, 2)], scale=1.0)
        dup = ct.copy()
        dup.parts[0].data[0, 0] = 7
        assert ct.parts[0].data[0, 0] == 0

    def test_three_parts_allowed(self, basis):
        ct = Ciphertext(parts=[_poly(basis, 2)] * 3, scale=1.0)
        assert ct.size == 3


class TestPlaintext:
    def test_level_property(self, basis):
        pt = Plaintext(poly=RnsPolynomial.zero(basis, 4), scale=2.0**30)
        assert pt.level == 4
        assert pt.scale == 2.0**30
