"""Homomorphic evaluator: arithmetic laws under encryption."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="module")
def msgs(ctx):
    rng = np.random.default_rng(99)
    slots = ctx.params.slots
    a = rng.uniform(-1, 1, slots) + 1j * rng.uniform(-1, 1, slots)
    b = rng.uniform(-1, 1, slots) + 1j * rng.uniform(-1, 1, slots)
    return a, b


@pytest.fixture(scope="module")
def rlk(ctx):
    return ctx.relin_keys(levels=[ctx.params.num_primes])


class TestLinear:
    def test_add(self, ctx, msgs):
        a, b = msgs
        out = ctx.decrypt_decode(ctx.evaluator.add(ctx.encrypt(a), ctx.encrypt(b)))
        assert np.max(np.abs(out - (a + b))) < 1e-6

    def test_sub(self, ctx, msgs):
        a, b = msgs
        out = ctx.decrypt_decode(ctx.evaluator.sub(ctx.encrypt(a), ctx.encrypt(b)))
        assert np.max(np.abs(out - (a - b))) < 1e-6

    def test_negate(self, ctx, msgs):
        a, _ = msgs
        out = ctx.decrypt_decode(ctx.evaluator.negate(ctx.encrypt(a)))
        assert np.max(np.abs(out + a)) < 1e-6

    def test_add_plain(self, ctx, msgs):
        a, b = msgs
        out = ctx.decrypt_decode(ctx.evaluator.add_plain(ctx.encrypt(a), ctx.encode(b)))
        assert np.max(np.abs(out - (a + b))) < 1e-6

    def test_multiply_plain(self, ctx, msgs):
        a, b = msgs
        ct = ctx.evaluator.multiply_plain(ctx.encrypt(a), ctx.encode(b))
        out = ctx.decrypt_decode(ct)
        assert np.max(np.abs(out - a * b)) < 1e-5

    def test_scale_mismatch_rejected(self, ctx, msgs):
        a, b = msgs
        ct = ctx.encrypt(a)
        pt_wrong = ctx.encoder.encode(np.asarray(b), scale=2.0**30)
        with pytest.raises(ValueError, match="scale mismatch"):
            ctx.evaluator.add_plain(ct, pt_wrong)

    def test_add_at_different_levels(self, ctx, msgs):
        a, b = msgs
        lo = ctx.encrypt(a, level=3)
        hi = ctx.encrypt(b)
        out = ctx.evaluator.add(lo, hi)
        assert out.level == 3
        assert np.max(np.abs(ctx.decrypt_decode(out) - (a + b))) < 1e-6


class TestMultiply:
    def test_tensor_then_relin_then_rescale(self, ctx, msgs, rlk):
        a, b = msgs
        out_ct = ctx.evaluator.multiply_relin_rescale(ctx.encrypt(a), ctx.encrypt(b), rlk)
        assert out_ct.size == 2
        assert out_ct.level == ctx.params.num_primes - 2  # double-scale: 2 levels
        out = ctx.decrypt_decode(out_ct)
        assert np.max(np.abs(out - a * b)) < 1e-4

    def test_multiply_requires_two_parts(self, ctx, msgs, rlk):
        a, b = msgs
        three = ctx.evaluator.multiply(ctx.encrypt(a), ctx.encrypt(b))
        with pytest.raises(ValueError, match="2-part"):
            ctx.evaluator.multiply(three, ctx.encrypt(a))

    def test_relinearize_without_key(self, ctx, msgs):
        a, b = msgs
        three = ctx.evaluator.multiply(ctx.encrypt(a), ctx.encrypt(b))
        with pytest.raises(KeyError, match="no relinearization key"):
            ctx.evaluator.relinearize(three, {})

    def test_relinearize_two_part_noop(self, ctx, msgs, rlk):
        a, _ = msgs
        ct = ctx.encrypt(a)
        again = ctx.evaluator.relinearize(ct, rlk)
        assert np.array_equal(again.c0.data, ct.c0.data)

    def test_scale_squares(self, ctx, msgs):
        a, b = msgs
        prod = ctx.evaluator.multiply(ctx.encrypt(a), ctx.encrypt(b))
        assert prod.scale == pytest.approx(ctx.params.scale**2)

    def test_rescale_divides_scale(self, ctx, msgs):
        a, _ = msgs
        ct = ctx.encrypt(a)
        resc = ctx.evaluator.rescale(ct, times=1)
        q_last = ctx.basis.moduli[ct.level - 1]
        assert resc.scale == pytest.approx(ct.scale / q_last)
        assert resc.level == ct.level - 1

    def test_squaring(self, ctx, msgs, rlk):
        a, _ = msgs
        ct = ctx.encrypt(a)
        sq = ctx.evaluator.multiply_relin_rescale(ct, ct, rlk)
        assert np.max(np.abs(ctx.decrypt_decode(sq) - a * a)) < 1e-4


class TestDepth:
    def test_two_sequential_multiplies(self, ctx, msgs):
        """Exercises the double-scale chain: 2 multiplies = 4 levels."""
        a, b = msgs
        L = ctx.params.num_primes
        keys = ctx.relin_keys(levels=[L, L - 2])
        ev = ctx.evaluator
        ab = ev.multiply_relin_rescale(ctx.encrypt(a), ctx.encrypt(b), keys)
        # Re-encrypt b at the new level/scale to continue the chain.
        b2 = ctx.encryptor.encrypt(
            ctx.encoder.encode(np.asarray(b), level=ab.level, scale=ab.scale)
        )
        abb = ev.multiply_relin_rescale(ab, b2, keys)
        out = ctx.decrypt_decode(abb)
        assert np.max(np.abs(out - a * b * b)) < 1e-3


class TestRotation:
    def test_rotate_by_one(self, ctx):
        slots = ctx.params.slots
        msg = np.arange(slots, dtype=float)
        gk = ctx.galois_keys([1], levels=[ctx.params.num_primes])
        rot = ctx.evaluator.rotate(ctx.encrypt(msg), 1, gk)
        out = ctx.decrypt_decode(rot)
        assert np.max(np.abs(out - np.roll(msg, -1))) < 1e-4

    def test_rotate_by_k(self, ctx):
        slots = ctx.params.slots
        msg = np.arange(slots, dtype=float)
        gk = ctx.galois_keys([5], levels=[ctx.params.num_primes])
        out = ctx.decrypt_decode(ctx.evaluator.rotate(ctx.encrypt(msg), 5, gk))
        assert np.max(np.abs(out - np.roll(msg, -5))) < 1e-4

    def test_missing_galois_key(self, ctx):
        with pytest.raises(KeyError, match="no Galois key"):
            ctx.evaluator.rotate(ctx.encrypt(np.ones(2)), 3, {})
