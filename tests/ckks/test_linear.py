"""Homomorphic linear transforms (BSGS) and conjugation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.ckks.linear import HomomorphicLinearTransform
from repro.transforms.fft import embedding_matrix


@pytest.fixture(scope="module")
def lctx():
    return CkksContext.create(toy_params(degree=128, num_primes=6), seed=31)


def _apply(ctx, matrix, x, level=6):
    lt = HomomorphicLinearTransform(ctx, matrix, level=level)
    gk = ctx.galois_keys(lt.required_rotations(), levels=[level])
    out = lt.apply(ctx.encrypt(x), gk)
    return ctx.decrypt_decode(ctx.evaluator.rescale(out, times=2))


class TestMatVec:
    def test_dense_complex_matrix(self, lctx):
        n = lctx.params.slots
        rng = np.random.default_rng(4)
        m = 0.2 * (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n)))
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        got = _apply(lctx, m, x)
        assert np.max(np.abs(got - m @ x)) < 1e-5

    def test_identity(self, lctx):
        n = lctx.params.slots
        rng = np.random.default_rng(5)
        x = rng.normal(size=n)
        got = _apply(lctx, np.eye(n), x)
        assert np.max(np.abs(got - x)) < 1e-6

    def test_permutation_matrix(self, lctx):
        n = lctx.params.slots
        perm = np.roll(np.eye(n), 3, axis=1)  # x -> rot_3(x)
        x = np.arange(n, dtype=float)
        got = _apply(lctx, perm, x).real
        assert np.max(np.abs(got - np.roll(x, -3))) < 1e-5

    def test_sparse_diagonals_need_few_rotations(self, lctx):
        """A tridiagonal-ish matrix must not pay dense-BSGS rotations."""
        n = lctx.params.slots
        m = np.eye(n) + np.roll(np.eye(n), 1, axis=1) * 0.5
        lt = HomomorphicLinearTransform(lctx, m, level=6)
        assert len(lt.required_rotations()) <= 2

    def test_embedding_inverse_roundtrip(self, lctx):
        """The CoeffToSlot matrix composed with SlotToCoeff is identity."""
        n = lctx.params.slots
        e = embedding_matrix(n)
        rng = np.random.default_rng(6)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        mid = _apply(lctx, np.linalg.inv(e), x)
        assert np.max(np.abs(e @ mid - x)) < 1e-4

    def test_shape_validation(self, lctx):
        with pytest.raises(ValueError, match="matrix must be"):
            HomomorphicLinearTransform(lctx, np.eye(3), level=6)

    def test_level_check(self, lctx):
        n = lctx.params.slots
        lt = HomomorphicLinearTransform(lctx, np.eye(n), level=4)
        gk = lctx.galois_keys(lt.required_rotations() or [1], levels=[4])
        with pytest.raises(ValueError, match="compiled for level"):
            lt.apply(lctx.encrypt(np.ones(n)), gk)  # ct at level 6


class TestConjugation:
    def test_conjugate_slots(self, lctx):
        n = lctx.params.slots
        rng = np.random.default_rng(7)
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        ck = lctx.keygen.gen_conjugation(lctx.secret_key, levels=[6])
        out = lctx.evaluator.conjugate(lctx.encrypt(z), ck)
        assert np.max(np.abs(lctx.decrypt_decode(out) - np.conj(z))) < 1e-6

    def test_involution(self, lctx):
        n = lctx.params.slots
        z = np.linspace(0, 1, n) + 1j * np.linspace(1, 0, n)
        ck = lctx.keygen.gen_conjugation(lctx.secret_key, levels=[6])
        twice = lctx.evaluator.conjugate(
            lctx.evaluator.conjugate(lctx.encrypt(z), ck), ck
        )
        assert np.max(np.abs(lctx.decrypt_decode(twice) - z)) < 1e-5

    def test_missing_key(self, lctx):
        with pytest.raises(KeyError, match="no conjugation key"):
            lctx.evaluator.conjugate(lctx.encrypt(np.ones(2)), {})
