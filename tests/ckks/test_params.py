"""CKKS parameter sets and the paper's evaluation configuration."""

from __future__ import annotations

import pytest

from repro.ckks.params import CkksParameters, bootstrappable_params, toy_params
from repro.transforms.fp_custom import FP55


class TestBootstrappable:
    def test_paper_configuration(self):
        """Section V-B: N = 2^16, 36-bit primes, 24 levels, decrypt at 2."""
        p = bootstrappable_params()
        assert p.degree == 1 << 16
        assert p.num_primes == 24
        assert p.prime_bits == 36
        assert p.decrypt_level == 2
        assert p.top_level == 24

    def test_double_scale(self):
        """scale_bits = 72 = 2 x 36: one multiply consumes two levels."""
        p = bootstrappable_params()
        assert p.scale_bits == 72
        assert p.levels_per_multiplication == 2

    def test_slots(self):
        assert bootstrappable_params().slots == 1 << 15

    def test_fp55_variant(self):
        p = bootstrappable_params(fp_format=FP55)
        assert p.fp_format.mantissa_bits == 43


class TestToyParams:
    def test_structure_matches_paper(self):
        p = toy_params()
        assert p.prime_bits == 36
        assert p.levels_per_multiplication == 2

    def test_decrypt_level_clamped(self):
        assert toy_params(num_primes=1).decrypt_level == 1


class TestValidation:
    def test_degree_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            CkksParameters(degree=100, num_primes=2)

    def test_decrypt_level_bound(self):
        with pytest.raises(ValueError, match="decrypt level"):
            CkksParameters(degree=64, num_primes=2, decrypt_level=3)

    def test_encrypt_level_bound(self):
        with pytest.raises(ValueError, match="encrypt level"):
            CkksParameters(degree=64, num_primes=2, encrypt_level=5, decrypt_level=1)

    def test_scale_value(self):
        assert CkksParameters(degree=64, num_primes=2, scale_bits=40, decrypt_level=1).scale == 2.0**40
