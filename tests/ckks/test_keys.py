"""Key generation: public-key identity, seed sharing, switching keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.ckks.keys import expand_uniform_poly
from repro.prng.xof import Xof


class TestSecretKey:
    def test_ternary_support(self, ctx):
        sk_coeffs = ctx.secret_key.poly.to_coeff().to_bigints()
        assert set(sk_coeffs) <= {-1, 0, 1}

    def test_at_level_prefix(self, ctx):
        s2 = ctx.secret_key.at_level(2)
        assert s2.level == 2
        assert np.array_equal(s2.data, ctx.secret_key.poly.data[:2])

    def test_sparse_secret(self):
        from dataclasses import replace

        params = replace(toy_params(degree=256, num_primes=3), secret_hamming_weight=32)
        c = CkksContext.create(params, seed=11)
        coeffs = c.secret_key.poly.to_coeff().to_bigints()
        assert sum(1 for x in coeffs if x != 0) == 32


class TestPublicKey:
    def test_pk_identity(self, ctx):
        """b + a*s must equal the (small) error polynomial."""
        pk, sk = ctx.public_key, ctx.secret_key
        residual = (pk.b + pk.a * sk.poly).to_coeff().to_bigints()
        bound = 6 * ctx.params.error_stddev + 1
        assert all(abs(x) <= bound for x in residual)

    def test_a_is_seed_expanded(self, ctx):
        """The stored ``a`` must be reproducible from its 16-byte seed."""
        again = expand_uniform_poly(
            ctx.basis, ctx.basis.num_primes, Xof(ctx.public_key.a_seed), b"pk-a"
        )
        assert np.array_equal(again.data, ctx.public_key.a.data)

    def test_different_seeds_different_keys(self):
        p = toy_params(degree=64, num_primes=2)
        a = CkksContext.create(p, seed=1).public_key
        b = CkksContext.create(p, seed=2).public_key
        assert not np.array_equal(a.b.data, b.b.data)

    def test_keygen_deterministic(self):
        p = toy_params(degree=64, num_primes=2)
        a = CkksContext.create(p, seed=5).public_key
        b = CkksContext.create(p, seed=5).public_key
        assert np.array_equal(a.b.data, b.b.data)
        assert a.a_seed == b.a_seed


class TestSwitchingKeys:
    def test_relin_key_identity(self, ctx):
        """Each relin pair must satisfy b_j + a_j*s = e_j + idem_j * s^2."""
        level = 3
        rlk = ctx.keygen.gen_relin(ctx.secret_key, [level])[level]
        sk = ctx.secret_key.at_level(level)
        s_sq = sk * sk
        crt = ctx.basis.crt(level)
        bound = 6 * ctx.params.error_stddev + 1
        big_q = crt.modulus
        for j, (b_j, a_j) in enumerate(rlk.pairs):
            idem = crt.q_hat[j] * crt.q_hat_inv[j] % big_q
            gadget = s_sq.scale_scalar([idem % q for q in crt.moduli])
            residual = (b_j + a_j * sk - gadget).to_coeff().to_bigints()
            assert all(abs(x) <= bound for x in residual), j

    def test_relin_key_levels(self, ctx):
        keys = ctx.relin_keys(levels=[2, 4])
        assert set(keys) == {2, 4}
        assert keys[2].level == 2
        assert len(keys[4].pairs) == 4

    def test_galois_key_shape(self, ctx):
        gk = ctx.galois_keys([1, 2], levels=[3])
        assert set(gk) == {(1, 3), (2, 3)}
        assert len(gk[(1, 3)].pairs) == 3
