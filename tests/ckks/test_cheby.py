"""Chebyshev approximation and homomorphic polynomial evaluation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.ckks.cheby import ChebyshevSeries, evaluate_chebyshev, sine_mod_series


class TestInterpolation:
    def test_sin_high_accuracy(self):
        s = ChebyshevSeries.interpolate(math.sin, (-3, 3), 23)
        assert s.max_error(math.sin) < 1e-12

    def test_polynomial_exact(self):
        """Interpolating a cubic at degree >= 3 is exact."""
        f = lambda x: 2 * x**3 - x + 0.5
        s = ChebyshevSeries.interpolate(f, (-2, 2), 3)
        xs = np.linspace(-2, 2, 50)
        assert np.max(np.abs(s(xs) - f(xs))) < 1e-12

    def test_error_decreases_with_degree(self):
        errs = [
            ChebyshevSeries.interpolate(math.exp, (-1, 1), d).max_error(math.exp)
            for d in (3, 7, 15)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="a < b"):
            ChebyshevSeries.interpolate(math.sin, (1, 1), 5)

    def test_odd_function_has_odd_coeffs(self):
        s = ChebyshevSeries.interpolate(math.sin, (-2, 2), 15)
        even = [abs(c) for c in s.coeffs[::2]]
        assert max(even) < 1e-12


class TestSineModSeries:
    def test_approximates_centered_mod(self):
        q = 64.0
        s = sine_mod_series(q, wraps=3, degree=47)
        for k in range(-3, 4):
            for frac in (-0.9, -0.3, 0.0, 0.4, 0.9):
                x = k * q + frac
                want = x - q * round(x / q)
                assert abs(s(x) - want) < 2e-3 + abs(frac) ** 3 / q**2 * 10

    def test_interval_covers_wraps(self):
        s = sine_mod_series(100.0, wraps=5, degree=31)
        assert s.interval[1] >= 5 * 100


class TestHomomorphicEvaluation:
    @pytest.fixture(scope="class")
    def deep_ctx(self):
        ctx = CkksContext.create(toy_params(degree=128, num_primes=14), seed=17)
        rlk = ctx.relin_keys(levels=list(range(2, 15)))
        return ctx, rlk

    def test_sine(self, deep_ctx):
        ctx, rlk = deep_ctx
        series = ChebyshevSeries.interpolate(math.sin, (-3, 3), 15)
        rng = np.random.default_rng(2)
        x = rng.uniform(-3, 3, ctx.params.slots)
        out = evaluate_chebyshev(ctx, series, ctx.encrypt(x), rlk)
        got = ctx.decrypt_decode(out).real
        assert np.max(np.abs(got - np.sin(x))) < 1e-5

    def test_even_function(self, deep_ctx):
        ctx, rlk = deep_ctx
        series = ChebyshevSeries.interpolate(lambda v: v * v, (-2, 2), 4)
        rng = np.random.default_rng(3)
        x = rng.uniform(-2, 2, ctx.params.slots)
        out = evaluate_chebyshev(ctx, series, ctx.encrypt(x), rlk)
        assert np.max(np.abs(ctx.decrypt_decode(out).real - x * x)) < 1e-6

    def test_depth_consumption(self, deep_ctx):
        """Depth must be ~2 + log2(degree) rungs, not O(degree)."""
        ctx, rlk = deep_ctx
        series = ChebyshevSeries.interpolate(math.sin, (-1, 1), 15)
        ct = ctx.encrypt(np.zeros(ctx.params.slots))
        out = evaluate_chebyshev(ctx, series, ct, rlk)
        rung = ctx.params.levels_per_multiplication
        expected_levels = rung * (2 + 4)  # affine + depth(15)=4 + combo
        assert ct.level - out.level == expected_levels

    def test_rejects_constant_series(self, deep_ctx):
        ctx, rlk = deep_ctx
        flat = ChebyshevSeries(coeffs=(1.0,), interval=(-1, 1))
        with pytest.raises(ValueError, match="degree >= 1"):
            evaluate_chebyshev(ctx, flat, ctx.encrypt(np.zeros(2)), rlk)
