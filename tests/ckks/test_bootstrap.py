"""CKKS bootstrapping — the operation the paper's parameters enable."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.ckks import Bootstrapper, BootstrapConfig, CkksContext, toy_params


@pytest.fixture(scope="module")
def boot_setting():
    """Small but real bootstrapping setting (sparse secret keeps the
    ModRaise overflow bound — and hence the sine degree — small)."""
    params = replace(
        toy_params(degree=64, num_primes=22), secret_hamming_weight=8
    )
    ctx = CkksContext.create(params, seed=77)
    bs = Bootstrapper(
        ctx, BootstrapConfig(input_scale_bits=25, eval_mod_degree=63, wraps=7)
    )
    return ctx, bs


class TestSchedule:
    def test_level_budget(self, boot_setting):
        _, bs = boot_setting
        assert bs.output_level >= 1
        assert bs.s2c_level > bs.output_level
        assert bs.evalmod_in_level > bs.s2c_level
        assert bs.c2s_level == bs.top_level

    def test_insufficient_levels_rejected(self):
        params = replace(toy_params(degree=64, num_primes=8), secret_hamming_weight=8)
        ctx = CkksContext.create(params, seed=1)
        with pytest.raises(ValueError, match="level budget"):
            Bootstrapper(ctx, BootstrapConfig(eval_mod_degree=63))


class TestStages:
    def test_mod_raise_payload(self, boot_setting):
        """Raised ciphertext decrypts to Δ_in·m + q0·I with small I."""
        ctx, bs = boot_setting
        rng = np.random.default_rng(3)
        z = rng.uniform(-1, 1, ctx.params.slots)
        ct = ctx.encryptor.encrypt(
            ctx.encoder.encode(z, level=1, scale=bs.config.input_scale)
        )
        raised = bs.mod_raise(ct)
        assert raised.level == bs.top_level
        big = ctx.decryptor.decrypt(raised).poly.to_bigints()
        q0 = ctx.basis.moduli[0]
        boost = raised.scale / bs.config.input_scale
        wraps = max(abs(c / boost) for c in big) / q0
        assert wraps < bs.config.wraps  # inside the sine interval

    def test_mod_raise_level_check(self, boot_setting):
        ctx, bs = boot_setting
        with pytest.raises(ValueError, match="level-1"):
            bs.mod_raise(ctx.encrypt(np.ones(2)))

    def test_coeff_to_slot_values(self, boot_setting):
        ctx, bs = boot_setting
        rng = np.random.default_rng(4)
        n = ctx.params.slots
        z = rng.uniform(-1, 1, n)
        ct = ctx.encryptor.encrypt(
            ctx.encoder.encode(z, level=1, scale=bs.config.input_scale)
        )
        raised = bs.mod_raise(ct)
        big = ctx.decryptor.decrypt(raised).poly.to_bigints()
        t_real, t_imag = bs.coeff_to_slot(raised)
        want_re = np.array([big[k] for k in range(n)], float) / raised.scale
        want_im = np.array([big[k + n] for k in range(n)], float) / raised.scale
        assert np.max(np.abs(ctx.decrypt_decode(t_real).real - want_re)) < 1e-4
        assert np.max(np.abs(ctx.decrypt_decode(t_imag).real - want_im)) < 1e-4


class TestEndToEnd:
    def test_bootstrap_refreshes_level(self, boot_setting):
        ctx, bs = boot_setting
        rng = np.random.default_rng(5)
        z = rng.uniform(-1, 1, ctx.params.slots)
        ct = ctx.encryptor.encrypt(
            ctx.encoder.encode(z, level=1, scale=bs.config.input_scale)
        )
        out = bs.bootstrap(ct)
        assert out.level > ct.level  # the whole point
        err = np.max(np.abs(ctx.decrypt_decode(out).real - z))
        precision_bits = -np.log2(err)
        assert precision_bits > 7  # limited by the degree-63 sine here

    def test_refreshed_ciphertext_is_computable(self, boot_setting):
        """The refreshed ciphertext supports further homomorphic work."""
        ctx, bs = boot_setting
        z = np.linspace(-0.5, 0.5, ctx.params.slots)
        ct = ctx.encryptor.encrypt(
            ctx.encoder.encode(z, level=1, scale=bs.config.input_scale)
        )
        out = bs.bootstrap(ct)
        doubled = ctx.evaluator.add(out, out)
        err = np.max(np.abs(ctx.decrypt_decode(doubled).real - 2 * z))
        assert err < 2e-2
