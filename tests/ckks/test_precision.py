"""Fig. 3(c) precision measurement machinery."""

from __future__ import annotations

import pytest

from repro.ckks.precision import (
    PrecisionPoint,
    drop_off_point,
    measure_precision,
    sweep_mantissa,
)


class TestMeasure:
    def test_monotone_in_mantissa(self):
        p20 = measure_precision(256, 20, trials=1)
        p35 = measure_precision(256, 35, trials=1)
        p50 = measure_precision(256, 50, trials=1)
        assert p20 < p35 < p50

    def test_roughly_tracks_mantissa(self):
        """Precision stays within a bounded offset of the mantissa width."""
        for m in (25, 35, 45):
            p = measure_precision(512, m, trials=1)
            assert m - 15 < p < m + 5

    def test_more_passes_lose_precision(self):
        one = measure_precision(256, 30, fft_passes=1, trials=1)
        many = measure_precision(256, 30, fft_passes=8, trials=1)
        assert many <= one

    def test_fp55_point_clears_threshold(self):
        """43 mantissa bits must exceed the paper's 19.29-bit threshold."""
        assert measure_precision(512, 43, trials=1) > 19.29


class TestSweep:
    def test_sweep_points(self):
        pts = sweep_mantissa(128, range(20, 45, 8), trials=1)
        assert [p.mantissa_bits for p in pts] == [20, 28, 36, 44]
        assert all(p.precision_bits > 0 for p in pts)

    def test_drop_off_point(self):
        pts = [
            PrecisionPoint(20, 15.0),
            PrecisionPoint(25, 19.5),
            PrecisionPoint(30, 25.0),
        ]
        assert drop_off_point(pts, threshold_bits=19.29) == 25

    def test_drop_off_unreachable(self):
        with pytest.raises(ValueError, match="threshold"):
            drop_off_point([PrecisionPoint(20, 5.0)], threshold_bits=19.29)
