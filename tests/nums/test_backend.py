"""Array-namespace seam: registry behaviour and the host-staging path.

CuPy/torch are optional and absent from CI; what we can always test is
the registry contract (probing, clear errors, default override) and —
the important part — that a *non-default* namespace drives the fused
replayer through its host-staging branches bit-identically.  A
numpy-backed stub namespace under a different name exercises exactly
that code path with no GPU.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums.backend import (
    ArrayNamespace,
    array_backend_available,
    available_array_backends,
    default_array_backend_name,
    get_array_namespace,
    register_array_namespace,
    set_default_array_backend,
    using_array_backend,
)
from repro.runtime import CtSpec, compile_fn


class TestRegistry:
    def test_numpy_always_available_and_default(self):
        assert "numpy" in available_array_backends()
        assert array_backend_available("numpy")
        ns = get_array_namespace("numpy")
        assert ns.is_host
        assert get_array_namespace(None).name == default_array_backend_name()

    def test_namespace_passthrough(self):
        ns = get_array_namespace("numpy")
        assert get_array_namespace(ns) is ns

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_array_namespace("no-such-library")
        assert not array_backend_available("no-such-library")

    def test_optional_backends_probe_cleanly(self):
        # Whichever of cupy/torch is missing must probe False, not raise.
        for name in ("cupy", "torch"):
            if not array_backend_available(name):
                with pytest.raises(ImportError, match=name):
                    get_array_namespace(name)

    def test_default_override_and_context_manager(self):
        before = default_array_backend_name()
        try:
            prev = set_default_array_backend("numpy")
            assert prev == before
            with using_array_backend("numpy") as name:
                assert name == default_array_backend_name() == "numpy"
        finally:
            set_default_array_backend(before)
        with pytest.raises(ValueError, match="unknown array backend"):
            set_default_array_backend("no-such-library")

    def test_register_installs_under_own_name(self):
        stub = dataclasses.replace(get_array_namespace("numpy"), name="stub-reg")
        register_array_namespace(stub)
        assert get_array_namespace("stub-reg") is stub
        assert not stub.is_host
        assert "stub-reg" in available_array_backends()


@pytest.fixture(scope="module")
def bctx() -> CkksContext:
    return CkksContext.create(toy_params(degree=128, num_primes=6), seed=19)


class TestHostStagingReplay:
    """A renamed numpy namespace is 'device-like' to the fused replayer:
    ``is_host`` is False, so every NTT-bound step stages through
    ``to_numpy``/``from_numpy`` and key-switch results are stored back
    instead of reduced in place — the exact branches a GPU namespace
    takes, minus the GPU."""

    def test_fused_replay_bit_identical_through_stub_namespace(self, bctx):
        register_array_namespace(
            dataclasses.replace(get_array_namespace("numpy"), name="stub-host")
        )
        gks = bctx.galois_keys([1], levels=[bctx.params.num_primes])
        rlk = bctx.relin_keys(levels=[bctx.params.num_primes])

        def program(ev, x):
            rot = ev.rotate(x, 1, gks)
            return ev.multiply_relin_rescale(rot, x, rlk)

        spec = CtSpec(level=bctx.params.num_primes, scale=bctx.params.scale)
        plan = compile_fn(program, bctx.evaluator, [spec])
        rng = np.random.default_rng(23)
        ct = bctx.encrypt(rng.uniform(-1, 1, bctx.params.slots))

        [host] = plan.run_batch([[ct]], fused=True)[0]
        [staged] = plan.run_batch([[ct]], fused=True, array_backend="stub-host")[0]
        assert plan.fused("stub-host") is not plan.fused("numpy")
        assert host.scale == staged.scale
        for a, b in zip(host.parts, staged.parts):
            assert np.array_equal(a.data, b.data)
