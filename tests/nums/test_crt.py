"""CRT decompose/combine — the MSE's Expand-RNS and Combine-CRT oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nums.crt import CrtSystem
from repro.nums.primegen import prime_chain

MODULI = tuple(p.value for p in prime_chain(1 << 10, 4))


@pytest.fixture(scope="module")
def crt() -> CrtSystem:
    return CrtSystem.for_moduli(MODULI)


class TestConstruction:
    def test_modulus_is_product(self, crt):
        prod = 1
        for q in MODULI:
            prod *= q
        assert crt.modulus == prod

    def test_q_hat_inverse_property(self, crt):
        for q, hat, hat_inv in zip(crt.moduli, crt.q_hat, crt.q_hat_inv):
            assert hat % q * hat_inv % q == 1

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            CrtSystem.for_moduli((7, 7, 11))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            CrtSystem.for_moduli(())

    def test_single_modulus(self):
        c = CrtSystem.for_moduli((97,))
        assert c.combine(c.decompose(42)) == 42


class TestRoundtrip:
    def test_decompose_combine(self, crt, rng):
        for _ in range(50):
            v = int(rng.integers(0, 2**63)) * int(rng.integers(1, 2**60)) % crt.modulus
            assert crt.combine(crt.decompose(v)) == v

    def test_centered_roundtrip(self, crt):
        for v in (-5, -1, 0, 1, 5, crt.modulus // 2 - 1):
            residues = crt.decompose(v % crt.modulus)
            assert crt.combine_centered(residues) == v

    def test_centered_range(self, crt, rng):
        for _ in range(50):
            v = int(rng.integers(0, 2**62))
            c = crt.combine_centered(crt.decompose(v))
            assert -(crt.modulus // 2) <= c <= crt.modulus // 2

    def test_combine_length_check(self, crt):
        with pytest.raises(ValueError, match="expected"):
            crt.combine((1, 2))

    @settings(max_examples=60, deadline=None)
    @given(st.integers())
    def test_hypothesis_roundtrip(self, v):
        crt = CrtSystem.for_moduli(MODULI)
        assert crt.combine(crt.decompose(v % crt.modulus)) == v % crt.modulus

    @settings(max_examples=40, deadline=None)
    @given(st.integers(), st.integers())
    def test_crt_is_ring_homomorphism(self, a, b):
        """CRT residues of a*b equal the residue-wise products."""
        crt = CrtSystem.for_moduli(MODULI)
        prod = crt.decompose((a * b) % crt.modulus)
        ra, rb = crt.decompose(a % crt.modulus), crt.decompose(b % crt.modulus)
        assert prod == tuple(x * y % q for x, y, q in zip(ra, rb, crt.moduli))


class TestArrayVersions:
    def test_decompose_array(self, crt):
        values = [0, 1, crt.modulus - 1, 123456789123456789 % crt.modulus]
        limbs = crt.decompose_array(values)
        assert len(limbs) == len(MODULI)
        for i, v in enumerate(values):
            assert tuple(int(l[i]) for l in limbs) == crt.decompose(v)

    def test_combine_array_centered(self, crt):
        values = [-3, -1, 0, 2, 7]
        limbs = crt.decompose_array([v % crt.modulus for v in values])
        assert crt.combine_array(limbs) == values

    def test_combine_array_uncentered(self, crt):
        values = [crt.modulus - 2, 5]
        limbs = crt.decompose_array(values)
        assert crt.combine_array(limbs, center=False) == values

    def test_combine_array_level_check(self, crt):
        with pytest.raises(ValueError, match="expected"):
            crt.combine_array([np.zeros(4, dtype=np.uint64)])
