"""NTT-friendly prime search: Eq. 8 structure and the paper's counts."""

from __future__ import annotations

import pytest

from repro.nums.primality import is_prime
from repro.nums.primegen import NttFriendlyPrime, count_primes, find_primes, prime_chain

DEGREE = 1 << 12


class TestFindPrimes:
    def test_all_results_are_prime(self):
        for p in find_primes(36, DEGREE, max_count=20):
            assert is_prime(p.value)

    def test_eq8_structure(self):
        """Every prime must literally satisfy Q = 2^bw + k*2^(n+1) + 1."""
        for p in find_primes(36, DEGREE, max_count=20):
            assert p.value == (1 << p.bitwidth) + p.k * (1 << (p.n_exp + 1)) + 1

    def test_k_terms_reconstruct_k(self):
        for p in find_primes(36, DEGREE, max_count=20):
            assert sum(s * (1 << e) for s, e in p.k_terms) == p.k
            assert len(p.k_terms) <= 3  # the ±2^a ± 2^b ± 2^c condition

    def test_supports_requested_degree(self):
        for p in find_primes(36, DEGREE, max_count=20):
            assert p.supports_degree(DEGREE)
            assert (p.value - 1) % (2 * DEGREE) == 0

    def test_max_ntt_degree_consistent(self):
        for p in find_primes(36, DEGREE, max_count=10):
            assert p.max_ntt_degree >= DEGREE
            assert p.supports_degree(p.max_ntt_degree)
            assert not p.supports_degree(p.max_ntt_degree * 2)

    def test_sorted_by_distance_from_power_of_two(self):
        primes = find_primes(36, DEGREE, max_count=10)
        dists = [abs(p.value - (1 << 36)) for p in primes]
        assert dists == sorted(dists)

    def test_max_count_respected(self):
        assert len(find_primes(36, DEGREE, max_count=5)) == 5

    def test_values_distinct(self):
        values = [p.value for p in find_primes(36, DEGREE)]
        assert len(values) == len(set(values))

    def test_paper_prime_pool_size(self):
        """Section IV-A: 443 usable 32–36-bit primes at N = 2^16.

        Our slightly broader scan finds 448 at 36 bits alone — within
        ~1 % of the paper's figure (see EXPERIMENTS.md).
        """
        n16 = 1 << 16
        count = count_primes((36,), n16)
        assert 400 <= count <= 500

    def test_shift_add_adders_positive(self):
        for p in find_primes(34, DEGREE, max_count=5):
            assert p.shift_add_adders >= 2


class TestPrimeChain:
    def test_length_and_distinct(self):
        chain = prime_chain(DEGREE, 8)
        assert len(chain) == 8
        assert len({p.value for p in chain}) == 8

    def test_all_support_degree(self):
        for p in prime_chain(DEGREE, 8):
            assert p.supports_degree(DEGREE)

    def test_falls_back_to_extra_bitwidths(self):
        # Request more primes than 36-bit alone provides at a huge degree.
        chain = prime_chain(1 << 16, 500)
        widths = {p.bitwidth for p in chain}
        assert len(widths) > 1  # must have dipped into 35-bit or below

    def test_too_many_raises(self):
        with pytest.raises(ValueError, match="NTT-friendly primes available"):
            prime_chain(1 << 16, 10**6)

    def test_paper_chain_of_24(self):
        """The evaluation setup: 24 levels of 36-bit primes at N = 2^16."""
        chain = prime_chain(1 << 16, 24, bitwidth=36)
        assert len(chain) == 24
        assert all(p.bitwidth == 36 for p in chain)
