"""Property tests for the pluggable reducer backends.

The contract under test: every backend computes *exactly* the same modular
arithmetic as the Python-int oracle (``pow`` / ``%``) — the backends may
only differ in instruction mix, never in results.  Probed across 32/36/41-
bit NTT-friendly primes, the q^2 input boundary, zero/identity edge cases,
and per-row matrix-moduli broadcasting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nums.kernels import (
    KERNEL_LIMIT_BITS,
    REDUCER_SPECS,
    available_backends,
    default_backend_name,
    get_backend,
    kernel_for_modulus,
    make_kernel,
    set_default_backend,
    using_backend,
)
from repro.nums.primegen import find_primes

PRIMES = {bw: find_primes(bw, 1 << 12, max_count=1)[0].value for bw in (32, 36, 41)}
BACKENDS = available_backends()


@pytest.fixture(params=sorted(PRIMES), ids=lambda bw: f"bw{bw}")
def prime(request):
    return PRIMES[request.param]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def _edge_operands(q: int) -> tuple[np.ndarray, np.ndarray]:
    """Pairs hitting 0, 1, q-1 and the q^2 product boundary."""
    edge = np.array([0, 1, q - 1, q // 2, q - 2], dtype=np.uint64)
    a = np.concatenate([edge, edge, np.full(5, q - 1, dtype=np.uint64)])
    b = np.concatenate([edge, edge[::-1], np.full(5, q - 1, dtype=np.uint64)])
    return a, b


class TestAgainstOracle:
    def test_mul_random_and_edges(self, prime, backend, rng):
        kern = make_kernel(prime, backend)
        a = rng.integers(0, prime, 400).astype(np.uint64)
        b = rng.integers(0, prime, 400).astype(np.uint64)
        ea, eb = _edge_operands(prime)
        a, b = np.concatenate([a, ea]), np.concatenate([b, eb])
        expected = [int(x) * int(y) % prime for x, y in zip(a, b)]
        assert kern.mul(a, b).tolist() == expected

    def test_mul_pre_matches_mul(self, prime, backend, rng):
        kern = make_kernel(prime, backend)
        a = rng.integers(0, prime, 200).astype(np.uint64)
        b = rng.integers(0, prime, 200).astype(np.uint64)
        assert kern.mul_pre(a, kern.pre(b)).tolist() == kern.mul(a, b).tolist()

    def test_add_sub_neg(self, prime, backend, rng):
        kern = make_kernel(prime, backend)
        a = rng.integers(0, prime, 300).astype(np.uint64)
        b = rng.integers(0, prime, 300).astype(np.uint64)
        ea, eb = _edge_operands(prime)
        a, b = np.concatenate([a, ea]), np.concatenate([b, eb])
        assert kern.add(a, b).tolist() == [(int(x) + int(y)) % prime for x, y in zip(a, b)]
        assert kern.sub(a, b).tolist() == [(int(x) - int(y)) % prime for x, y in zip(a, b)]
        assert kern.neg(a).tolist() == [(-int(x)) % prime for x in a]

    def test_pow_matches_int_pow(self, prime, backend, rng):
        kern = make_kernel(prime, backend)
        a = rng.integers(0, prime, 40).astype(np.uint64)
        for e in (0, 1, 2, 3, 17, 1 << 12):
            assert kern.pow(a, e).tolist() == [pow(int(x), e, prime) for x in a]

    def test_reduce_up_to_q_squared(self, prime, backend, rng):
        kern = make_kernel(prime, backend)
        hi = min(prime * prime, 1 << 63)
        x = rng.integers(0, hi, 300).astype(np.uint64)
        x = np.concatenate([x, np.array([0, 1, prime - 1, prime, 2 * prime - 1], dtype=np.uint64)])
        assert kern.reduce(x).tolist() == [int(v) % prime for v in x]

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_hypothesis_all_backends_agree(self, data):
        q = data.draw(st.sampled_from(sorted(PRIMES.values())))
        x = data.draw(st.integers(min_value=0, max_value=q - 1))
        y = data.draw(st.integers(min_value=0, max_value=q - 1))
        expected = x * y % q
        for name in BACKENDS:
            kern = kernel_for_modulus(q, name)
            got = kern.mul(np.array([x], dtype=np.uint64), np.array([y], dtype=np.uint64))
            assert int(got[0]) == expected, name


class TestMatrixModuli:
    """Per-row modulus broadcasting over (L, N) residue matrices."""

    def test_column_broadcast(self, backend, rng):
        moduli = sorted(PRIMES.values())
        q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
        kern = make_kernel(q_col, backend)
        a = np.stack([rng.integers(0, m, 64) for m in moduli]).astype(np.uint64)
        b = np.stack([rng.integers(0, m, 64) for m in moduli]).astype(np.uint64)
        got = kern.mul(a, b)
        for i, m in enumerate(moduli):
            assert got[i].tolist() == [int(x) * int(y) % m for x, y in zip(a[i], b[i])]

    def test_scalar_column_against_matrix(self, backend, rng):
        moduli = sorted(PRIMES.values())
        q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
        kern = make_kernel(q_col, backend)
        a = np.stack([rng.integers(0, m, 32) for m in moduli]).astype(np.uint64)
        s = np.array([3, 5, 7], dtype=np.uint64).reshape(-1, 1)
        got = kern.mul(a, s)
        for i, m in enumerate(moduli):
            assert got[i].tolist() == [int(x) * int(s[i, 0]) % m for x in a[i]]


class TestRegistry:
    def test_three_backends_registered(self):
        assert set(BACKENDS) >= {"generic-split", "barrett", "montgomery"}

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown reducer backend"):
            get_backend("fhe-on-an-abacus")
        with pytest.raises(ValueError, match="unknown reducer backend"):
            set_default_backend("fhe-on-an-abacus")

    def test_using_backend_scopes_default(self):
        before = default_backend_name()
        other = next(n for n in BACKENDS if n != before)
        with using_backend(other):
            assert default_backend_name() == other
        assert default_backend_name() == before

    def test_kernel_for_modulus_is_cached(self):
        q = PRIMES[36]
        assert kernel_for_modulus(q, "barrett") is kernel_for_modulus(q, "barrett")

    def test_rejects_wide_moduli(self, backend):
        cls = get_backend(backend)
        with pytest.raises(ValueError, match="at most"):
            cls((1 << (KERNEL_LIMIT_BITS + 1)) + 1)

    def test_even_moduli_montgomery_only(self, rng):
        # Only Montgomery needs odd q (for q^-1 mod 2^64); the others keep
        # the legacy any-modulus contract.
        with pytest.raises(ValueError, match="odd"):
            get_backend("montgomery")(1 << 20)
        for q in (2, 100, (1 << 41) - 2):
            a = rng.integers(0, q, 100).astype(np.uint64)
            b = rng.integers(0, q, 100).astype(np.uint64)
            expected = [int(x) * int(y) % q for x, y in zip(a, b)]
            for name in ("barrett", "generic-split"):
                assert make_kernel(q, name).mul(a, b).tolist() == expected, (name, q)

    def test_specs_cover_table1(self):
        assert set(REDUCER_SPECS) == {"barrett", "montgomery", "ntt_friendly"}
        for spec in REDUCER_SPECS.values():
            assert spec.multiplier_equivalents > 0
            assert spec.pipeline_stages in (3, 4)

    def test_hardware_spec_attached_to_kernels(self):
        assert get_backend("barrett").spec is REDUCER_SPECS["barrett"]
        assert get_backend("montgomery").spec is REDUCER_SPECS["montgomery"]
        assert get_backend("generic-split").spec is None


class TestMontgomeryDomain:
    def test_domain_roundtrip(self, prime, rng):
        kern = make_kernel(prime, "montgomery")
        a = rng.integers(0, prime, 200).astype(np.uint64)
        assert kern.from_montgomery(kern.to_montgomery(a)).tolist() == a.tolist()

    def test_pre_is_montgomery_domain(self, prime):
        kern = make_kernel(prime, "montgomery")
        one = np.array([1], dtype=np.uint64)
        # pre(1) = R mod q, the Montgomery image of the identity.
        assert int(kern.pre(one)[0]) == (1 << 64) % prime


class TestMulAccumulate:
    """The fused MAC behind batched key switching and multi-prime rescale."""

    def test_matches_oracle(self, prime, backend, rng):
        kern = make_kernel(prime, backend)
        a = rng.integers(0, prime, (7, 50)).astype(np.uint64)
        b = rng.integers(0, prime, (7, 50)).astype(np.uint64)
        expected = [
            sum(int(x) * int(y) for x, y in zip(a[:, i], b[:, i])) % prime
            for i in range(50)
        ]
        assert kern.mul_accumulate(a, b).tolist() == expected

    def test_pre_variant_matches_plain(self, prime, backend, rng):
        kern = make_kernel(prime, backend)
        a = rng.integers(0, prime, (5, 64)).astype(np.uint64)
        b = rng.integers(0, prime, (5, 64)).astype(np.uint64)
        assert np.array_equal(
            kern.mul_pre_accumulate(a, kern.pre(b)), kern.mul_accumulate(a, b)
        )

    def test_bit_identical_across_backends(self, prime, rng):
        a = rng.integers(0, prime, (6, 32)).astype(np.uint64)
        b = rng.integers(0, prime, (6, 32)).astype(np.uint64)
        results = {
            be: make_kernel(prime, be).mul_accumulate(a, b).tolist()
            for be in BACKENDS
        }
        first = next(iter(results.values()))
        assert all(r == first for r in results.values())

    def test_edge_values_all_q_minus_one(self, prime, backend):
        kern = make_kernel(prime, backend)
        a = np.full((9, 4), prime - 1, dtype=np.uint64)
        expected = (9 * (prime - 1) * (prime - 1)) % prime
        assert kern.mul_accumulate(a, a).tolist() == [[expected] * 4][0]
