"""Barrett, vanilla Montgomery and NTT-friendly Montgomery reducers.

The central claim under test: all three compute identical modular products
(Table I compares their *areas*, not their semantics), and the NTT-friendly
variant's shift-add QInv path is bit-exact with the multiplier-based one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nums.barrett import BarrettReducer
from repro.nums.montgomery import MontgomeryReducer, NttFriendlyMontgomeryReducer
from repro.nums.primegen import find_primes

PRIMES = [find_primes(bw, 1 << 12)[0] for bw in (32, 34, 36)]


@pytest.fixture(params=PRIMES, ids=lambda p: f"bw{p.bitwidth}")
def prime(request):
    return request.param


class TestBarrett:
    def test_reduce_matches_mod(self, prime, rng):
        red = BarrettReducer.for_modulus(prime.value)
        for x in rng.integers(0, prime.value, 100):
            for y in rng.integers(0, prime.value, 3):
                assert red.reduce(int(x) * int(y)) == int(x) * int(y) % prime.value

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError, match="odd modulus"):
            BarrettReducer.for_modulus(16)

    def test_rejects_out_of_range(self, prime):
        red = BarrettReducer.for_modulus(prime.value)
        with pytest.raises(ValueError, match="q\\^2"):
            red.reduce(prime.value * prime.value)
        with pytest.raises(ValueError):
            red.reduce(-1)

    def test_table1_metadata(self):
        assert BarrettReducer.NUM_MULTIPLIERS == 3
        assert BarrettReducer.PIPELINE_STAGES == 4


class TestVanillaMontgomery:
    def test_domain_roundtrip(self, prime, rng):
        red = MontgomeryReducer.for_modulus(prime.value)
        for x in rng.integers(0, prime.value, 50):
            assert red.from_montgomery(red.to_montgomery(int(x))) == int(x)

    def test_mul_plain(self, prime, rng):
        red = MontgomeryReducer.for_modulus(prime.value)
        for x, y in zip(rng.integers(0, prime.value, 50), rng.integers(0, prime.value, 50)):
            assert red.mul_plain(int(x), int(y)) == int(x) * int(y) % prime.value

    def test_r_exceeds_q(self, prime):
        red = MontgomeryReducer.for_modulus(prime.value)
        assert red.r > prime.value

    def test_reduce_range_check(self, prime):
        red = MontgomeryReducer.for_modulus(prime.value)
        with pytest.raises(ValueError, match="q\\*R"):
            red.reduce(prime.value << red.r_bits)


class TestNttFriendlyMontgomery:
    def test_qinv_series_equals_inverse(self, prime):
        red = NttFriendlyMontgomeryReducer.for_prime(prime)
        r = red.r
        qinv = 0
        for t in red.qinv_terms:
            qinv = (qinv + t) % r
        assert qinv == pow(prime.value, -1, r)

    def test_agrees_with_vanilla(self, prime, rng):
        nttf = NttFriendlyMontgomeryReducer.for_prime(prime)
        vanilla = MontgomeryReducer.for_modulus(prime.value)
        for x, y in zip(rng.integers(0, prime.value, 100), rng.integers(0, prime.value, 100)):
            assert nttf.mul_plain(int(x), int(y)) == vanilla.mul_plain(int(x), int(y))

    def test_agrees_with_barrett(self, prime, rng):
        nttf = NttFriendlyMontgomeryReducer.for_prime(prime)
        barrett = BarrettReducer.for_modulus(prime.value)
        for x, y in zip(rng.integers(0, prime.value, 100), rng.integers(0, prime.value, 100)):
            assert nttf.mul_plain(int(x), int(y)) == barrett.mul(int(x), int(y))

    def test_single_multiplier_claim(self):
        assert NttFriendlyMontgomeryReducer.NUM_MULTIPLIERS == 1
        assert NttFriendlyMontgomeryReducer.PIPELINE_STAGES == 3

    def test_shift_add_cost_positive(self, prime):
        red = NttFriendlyMontgomeryReducer.for_prime(prime)
        assert red.shift_add_cost >= 3
        # A handful of adders, not a multiplier's worth (~bw of them).
        assert red.shift_add_cost < prime.bitwidth

    def test_series_terminates_quickly(self, prime):
        red = NttFriendlyMontgomeryReducer.for_prime(prime)
        # ceil(r / (n+1)) terms: 36-bit prime, n+1 = 13 for degree 2^12.
        assert red.num_series_terms <= -(-red.r_bits // (prime.n_exp + 1)) + 1

    def test_edge_operands(self, prime):
        red = NttFriendlyMontgomeryReducer.for_prime(prime)
        q = prime.value
        for x, y in [(0, 0), (0, q - 1), (q - 1, q - 1), (1, 1), (1, q - 1)]:
            assert red.mul_plain(x, y) == x * y % q

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_hypothesis_agreement(self, data):
        prime = data.draw(st.sampled_from(PRIMES))
        q = prime.value
        x = data.draw(st.integers(min_value=0, max_value=q - 1))
        y = data.draw(st.integers(min_value=0, max_value=q - 1))
        red = NttFriendlyMontgomeryReducer.for_prime(prime)
        assert red.mul_plain(x, y) == x * y % q
