"""Scalar and vectorized modular arithmetic against exact-int oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nums.modular import (
    addmod_vec,
    centered,
    mod_inv,
    mod_pow,
    mulmod_vec,
    negmod_vec,
    nth_root_of_unity,
    powmod_vec,
    primitive_root,
    submod_vec,
)

Q36 = (1 << 36) - 3 * (1 << 17) + 1  # not necessarily prime; fine for kernels
PRIME_SMALL = 12289  # NTT-friendly: 12289 = 3*2^12 + 1


class TestScalarHelpers:
    def test_mod_pow(self):
        assert mod_pow(3, 5, 7) == pow(3, 5, 7)

    def test_mod_inv_roundtrip(self):
        inv = mod_inv(1234567, PRIME_SMALL)
        assert 1234567 % PRIME_SMALL * inv % PRIME_SMALL == 1

    def test_mod_inv_noninvertible(self):
        with pytest.raises(ValueError, match="not invertible"):
            mod_inv(6, 12)

    def test_primitive_root_order(self):
        g = primitive_root(PRIME_SMALL)
        order = PRIME_SMALL - 1
        # g generates the full group: g^(order/p) != 1 for p | order.
        for p in (2, 3):
            assert pow(g, order // p, PRIME_SMALL) != 1

    def test_nth_root_of_unity(self):
        root = nth_root_of_unity(4096, PRIME_SMALL)
        assert pow(root, 4096, PRIME_SMALL) == 1
        assert pow(root, 2048, PRIME_SMALL) != 1

    def test_nth_root_requires_divisibility(self):
        with pytest.raises(ValueError, match="does not divide"):
            nth_root_of_unity(1 << 20, PRIME_SMALL)

    def test_centered_range(self):
        q = 17
        for v in range(-40, 40):
            c = centered(v, q)
            assert -(q // 2) <= c <= q // 2
            assert (c - v) % q == 0

    def test_centered_half_boundary(self):
        # q even: q/2 maps to q/2 (the documented (-q/2, q/2] convention).
        assert centered(8, 16) == 8
        assert centered(9, 16) == -7


class TestVectorKernels:
    def test_mulmod_matches_python(self, rng):
        q = Q36 if Q36 % 2 else Q36 + 1
        a = rng.integers(0, q, 500).astype(np.uint64)
        b = rng.integers(0, q, 500).astype(np.uint64)
        got = mulmod_vec(a, b, q)
        ref = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert got.tolist() == ref

    def test_mulmod_scalar_broadcast(self, rng):
        q = PRIME_SMALL
        a = rng.integers(0, q, 100).astype(np.uint64)
        got = mulmod_vec(a, 3, q)
        assert got.tolist() == [(int(x) * 3) % q for x in a]

    def test_mulmod_rejects_wide_modulus(self):
        with pytest.raises(ValueError, match="at most"):
            mulmod_vec(np.array([1], dtype=np.uint64), 1, (1 << 60) + 1)

    def test_addmod_submod_negmod(self, rng):
        q = PRIME_SMALL
        a = rng.integers(0, q, 200).astype(np.uint64)
        b = rng.integers(0, q, 200).astype(np.uint64)
        assert addmod_vec(a, b, q).tolist() == [(int(x) + int(y)) % q for x, y in zip(a, b)]
        assert submod_vec(a, b, q).tolist() == [(int(x) - int(y)) % q for x, y in zip(a, b)]
        assert negmod_vec(a, q).tolist() == [(-int(x)) % q for x in a]

    def test_additive_wrappers_accept_any_modulus(self, rng):
        # add/sub/neg need no reducer tables, so even and > 41-bit moduli
        # stay valid (the seed contract) — only mul/pow are kernel-bound.
        for q in (100, 1 << 50):
            a = rng.integers(0, q, 50).astype(np.uint64)
            b = rng.integers(0, q, 50).astype(np.uint64)
            assert addmod_vec(a, b, q).tolist() == [(int(x) + int(y)) % q for x, y in zip(a, b)]
            assert submod_vec(a, b, q).tolist() == [(int(x) - int(y)) % q for x, y in zip(a, b)]
            assert negmod_vec(a, q).tolist() == [(-int(x)) % q for x in a]

    def test_sub_then_add_roundtrip(self, rng):
        q = PRIME_SMALL
        a = rng.integers(0, q, 100).astype(np.uint64)
        b = rng.integers(0, q, 100).astype(np.uint64)
        assert addmod_vec(submod_vec(a, b, q), b, q).tolist() == a.tolist()

    def test_powmod_matches_pow(self, rng):
        q = PRIME_SMALL
        a = rng.integers(0, q, 50).astype(np.uint64)
        for e in (0, 1, 2, 17, q - 2):
            assert powmod_vec(a, e, q).tolist() == [pow(int(x), e, q) for x in a]

    def test_powmod_negative_exponent_raises(self):
        with pytest.raises(ValueError, match="negative"):
            powmod_vec(np.array([2], dtype=np.uint64), -1, PRIME_SMALL)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 36) - 1),
        st.integers(min_value=0, max_value=(1 << 36) - 1),
    )
    def test_mulmod_hypothesis_36bit(self, x, y):
        q = (1 << 36) + 3 * (1 << 17) + 1
        got = mulmod_vec(np.array([x], dtype=np.uint64), np.array([y], dtype=np.uint64), q)
        assert int(got[0]) == x * y % q

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=3, max_value=(1 << 41) - 1).filter(lambda q: q % 2 == 1))
    def test_mulmod_arbitrary_odd_modulus(self, q):
        a = np.array([q - 1, q // 2, 1], dtype=np.uint64)
        b = np.array([q - 1, 3, q - 2], dtype=np.uint64)
        got = mulmod_vec(a, b, q)
        ref = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert got.tolist() == ref
