"""Miller–Rabin correctness on known primes, composites, and edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nums.primality import is_prime, next_prime


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 6, 9, 15, 91, 7917, 7921):
            assert not is_prime(c)

    def test_negative(self):
        assert not is_prime(-7)

    def test_carmichael_numbers(self):
        # Fermat pseudoprimes to many bases; Miller–Rabin must reject them.
        for c in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
            assert not is_prime(c)

    def test_known_large_primes(self):
        assert is_prime(2**31 - 1)  # Mersenne
        assert is_prime(2**61 - 1)  # Mersenne

    def test_large_composites(self):
        assert not is_prime((2**31 - 1) * (2**31 - 19))
        assert not is_prime(2**62)

    def test_strong_pseudoprime_base2(self):
        # 3215031751 is a strong pseudoprime to bases 2, 3, 5, 7... not all.
        assert not is_prime(3215031751)

    @given(st.integers(min_value=2, max_value=5000))
    def test_matches_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == by_trial


class TestNextPrime:
    def test_from_small(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(13) == 17

    def test_result_is_prime_and_minimal(self):
        for start in (100, 1000, 10**6):
            p = next_prime(start)
            assert is_prime(p)
            assert all(not is_prime(x) for x in range(start + 1, p))

    @given(st.integers(min_value=0, max_value=10**6))
    def test_strictly_greater(self, n):
        assert next_prime(n) > n
