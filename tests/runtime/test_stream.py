"""StreamingServer: backpressure bounds, phase overlap, ordered results,
latency/queue-depth statistics, typed failure outcomes, deadline
plumbing, and the dual-RSC scheduler comparison."""

from __future__ import annotations

import asyncio
from concurrent.futures import Future

import numpy as np
import pytest

from repro.runtime import (
    CtSpec,
    FaultAction,
    FaultPlan,
    FaultPolicy,
    PoisonRequest,
    ShardedExecutor,
    StreamingServer,
    compile_fn,
)


class StubExecutor:
    """Hand-resolvable pool: lets tests control completion order/timing."""

    plan = None

    def __init__(self):
        self.submissions: list[tuple[list, Future]] = []

    def start(self):
        return self

    def close(self):
        pass

    def stats(self):
        return {"inline": True}

    def submit(self, inputs) -> Future:
        fut: Future = Future()
        self.submissions.append((inputs, fut))
        return fut


class DeadlineRecordingStub(StubExecutor):
    """Stub that accepts and records the per-request deadline kwarg."""

    def __init__(self):
        super().__init__()
        self.deadlines: list[float | None] = []

    def submit(self, inputs, *, deadline_s=None) -> Future:
        self.deadlines.append(deadline_s)
        return super().submit(inputs)


@pytest.fixture(scope="module")
def square_plan(rctx, rlk):
    def program(ev, x):
        return (ev.multiply_relin_rescale(x, x, rlk),)

    return compile_fn(
        program,
        rctx.evaluator,
        [CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)],
    )


class TestBackpressure:
    def test_admission_is_bounded_by_max_pending(self):
        async def scenario():
            stub = StubExecutor()
            async with StreamingServer(stub, max_pending=2) as server:
                tasks = [
                    asyncio.create_task(server.submit([i])) for i in range(5)
                ]
                await asyncio.sleep(0.02)
                # Only two requests may be inside the engine; the other
                # three producers are blocked on admission.
                assert len(stub.submissions) == 2
                stub.submissions[0][1].set_result(["r0"])
                await asyncio.sleep(0.02)
                assert len(stub.submissions) == 3  # one slot freed, one admitted
                while not all(t.done() for t in tasks):
                    for _, fut in stub.submissions:
                        if not fut.done():
                            fut.set_result(["r"])
                    await asyncio.sleep(0.01)
                results = await asyncio.gather(*tasks)
                stats = server.stats()
            assert len(results) == 5
            assert stats["max_queue_depth"] <= 2
            assert stats["completed"] == 5
            return True

        assert asyncio.run(scenario())

    def test_submit_outside_context_raises(self):
        server = StreamingServer(StubExecutor(), max_pending=2)
        with pytest.raises(RuntimeError, match="async with"):
            asyncio.run(server.submit([0]))

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            StreamingServer(StubExecutor(), max_pending=0)


class TestStreamingPipeline:
    def test_results_ordered_and_correct_through_real_pool(self, rctx, square_plan):
        slots = rctx.params.slots
        payloads = [np.full(slots, 0.1 * (i + 1)) for i in range(5)]

        def encrypt(values):
            return [rctx.encrypt(values)]

        def decrypt(outputs):
            return rctx.decrypt_decode(outputs[0]).real

        async def scenario():
            pool = ShardedExecutor(square_plan, 2, modeled_request_io_s=0.01)
            async with StreamingServer(pool, max_pending=3) as server:
                results = await server.serve(
                    payloads, encrypt=encrypt, decrypt=decrypt
                )
                return results, server.stats(), server.records

        results, stats, records = asyncio.run(scenario())
        for i, (payload, result) in enumerate(zip(payloads, results)):
            assert np.max(np.abs(result - payload**2)) < 1e-4, f"request {i}"
        assert stats["completed"] == len(payloads)
        assert 0 < stats["max_queue_depth"] <= 3
        assert stats["time_to_first_result_s"] <= stats["makespan_s"]
        assert stats["throughput_rps"] > 0
        latency = stats["latency"]
        assert latency["count"] == len(payloads)
        assert 0 < latency["p50_s"] <= latency["p95_s"] <= latency["max_s"]
        for record in records:
            assert record.encrypt_s > 0
            assert record.service_s > 0
            assert record.total_s >= record.service_s

    def test_phase_overlap_beats_serial_sum(self, rctx, square_plan):
        """Streaming must finish faster than strictly serializing every
        request's modeled transfer time — i.e. the pool actually hides
        per-request latency behind other requests' phases."""
        io_s = 0.06
        n = 6

        def encrypt(values):
            return [rctx.encrypt(values)]

        def decrypt(outputs):
            return rctx.decrypt_decode(outputs[0]).real

        async def scenario():
            pool = ShardedExecutor(square_plan, 2, modeled_request_io_s=io_s)
            async with StreamingServer(pool, max_pending=4) as server:
                await server.serve(
                    [np.full(rctx.params.slots, 0.2)] * n,
                    encrypt=encrypt,
                    decrypt=decrypt,
                )
                return server.stats()

        stats = asyncio.run(scenario())
        assert stats["makespan_s"] < n * io_s

    def test_deadline_is_plumbed_to_the_executor(self):
        async def scenario():
            stub = DeadlineRecordingStub()
            async with StreamingServer(stub, max_pending=2) as server:
                tasks = [
                    asyncio.create_task(server.submit([0], deadline_s=1.5)),
                    asyncio.create_task(server.submit([1])),
                ]
                await asyncio.sleep(0.02)
                for _, fut in stub.submissions:
                    fut.set_result(["r"])
                await asyncio.gather(*tasks)
            return stub.deadlines

        assert sorted(asyncio.run(scenario()), key=str) == [1.5, None]

    def test_failed_requests_get_typed_records_and_stats(
        self, rctx, square_plan
    ):
        # Request 0 crashes its worker on every attempt and is
        # quarantined; the later requests complete.  The server must
        # surface the typed error, record the failure, and keep failed
        # requests out of the latency/throughput statistics.
        chaos = FaultPlan(
            0,
            scripted={
                ("pre_evaluate", 0, a): FaultAction("crash", "pre_evaluate")
                for a in range(2)
            },
        )
        policy = FaultPolicy(max_attempts=2, backoff_base_s=0.01)

        def encrypt(values):
            return [rctx.encrypt(values)]

        def decrypt(outputs):
            return rctx.decrypt_decode(outputs[0]).real

        payload = np.full(rctx.params.slots, 0.25)

        async def scenario():
            pool = ShardedExecutor(
                square_plan, 1, chaos=chaos, policy=policy, max_crash_respawns=10
            )
            async with StreamingServer(pool, max_pending=1) as server:
                with pytest.raises(PoisonRequest):
                    await server.serve_one(
                        payload, encrypt=encrypt, decrypt=decrypt
                    )
                results = await server.serve(
                    [payload] * 2, encrypt=encrypt, decrypt=decrypt
                )
                return results, server.stats(), server.records

        results, stats, records = asyncio.run(scenario())
        for result in results:
            assert np.max(np.abs(result - payload**2)) < 1e-4
        assert stats["completed"] == 2
        assert stats["failed"] == 1
        assert stats["failures_by_type"] == {"PoisonRequest": 1}
        assert stats["latency"]["count"] == 2  # failures excluded
        failed = [r for r in records if r.outcome == "failed"]
        assert len(failed) == 1
        assert failed[0].error == "PoisonRequest"
        assert failed[0].attempts == 2

    def test_retried_requests_are_counted_with_latency_contribution(
        self, rctx, square_plan
    ):
        chaos = FaultPlan(
            0,
            scripted={
                ("pre_evaluate", 0, 0): FaultAction("crash", "pre_evaluate")
            },
        )

        def encrypt(values):
            return [rctx.encrypt(values)]

        def decrypt(outputs):
            return rctx.decrypt_decode(outputs[0]).real

        payload = np.full(rctx.params.slots, 0.3)

        async def scenario():
            pool = ShardedExecutor(square_plan, 1, chaos=chaos)
            async with StreamingServer(pool, max_pending=2) as server:
                results = await server.serve(
                    [payload] * 3, encrypt=encrypt, decrypt=decrypt
                )
                return results, server.stats(), server.records

        results, stats, records = asyncio.run(scenario())
        for result in results:
            assert np.max(np.abs(result - payload**2)) < 1e-4
        assert stats["completed"] == 3
        assert stats["failed"] == 0
        assert stats["retried"] == 1
        assert stats["retry_latency_s"] > 0
        retried = [r for r in records if r.attempts > 1]
        assert len(retried) == 1
        assert retried[0].retry_s > 0
        assert retried[0].outcome == "ok"

    def test_schedule_comparison_covers_all_policies(self, rctx, square_plan):
        async def scenario():
            pool = ShardedExecutor(square_plan, 0)
            async with StreamingServer(pool, max_pending=2) as server:
                await server.submit(
                    [rctx.encrypt(np.zeros(rctx.params.slots))]
                )
                return server.schedule_comparison()

        comparison = asyncio.run(scenario())
        assert [r.policy for r in comparison] != []
        assert {r.policy for r in comparison} == {
            "static_split",
            "dual_batched",
            "dynamic",
        }
        makespans = [r.makespan_cycles for r in comparison]
        assert makespans == sorted(makespans)
