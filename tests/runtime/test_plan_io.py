"""Plan serialization: EPL1/PCS1 round trips, rejection of damaged
artifacts, and the on-disk plan store behind the compile cache."""

from __future__ import annotations

import multiprocessing as mp
import struct

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums.kernels import available_backends, default_backend_name, using_backend
from repro.runtime import (
    ConstantStore,
    CtSpec,
    MissingConstantsError,
    PlanFormatError,
    PlanStore,
    compile_fn,
    constant_fingerprint,
    deserialize_plan,
    graph_content_signature,
    load_plan,
    plan_cache_info,
    save_plan,
    serialize_constants,
    serialize_plan,
    set_plan_store,
)
from repro.runtime.plan import compile_graph
from repro.runtime.plan_io import CONSTSTORE_MAGIC, PLAN_MAGIC
from repro.runtime.trace import trace

PRIMES = 6


@pytest.fixture(scope="module")
def cjk(rctx):
    return rctx.keygen.gen_conjugation(rctx.secret_key, [PRIMES])


def _program(rctx, rlk, gks, cjk):
    half_pt = {}  # encode once so every trace captures the same object

    def model(ev, x, y):
        rot = ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 2, gks))
        prod = ev.multiply_relin_rescale(rot, y, rlk)
        if "half" not in half_pt:
            half_pt["half"] = rctx.encoder.encode(
                np.full(rctx.params.slots, 0.5),
                level=prod.level,
                scale=prod.scale,
            )
        return ev.add_plain(prod, half_pt["half"]), ev.conjugate(rot, cjk)

    spec = CtSpec(level=PRIMES, scale=rctx.params.scale)
    return model, [spec, spec]


@pytest.fixture(scope="module")
def plan(rctx, rlk, gks, cjk):
    model, specs = _program(rctx, rlk, gks, cjk)
    return compile_fn(model, rctx.evaluator, specs)


@pytest.fixture(scope="module")
def inputs(rctx):
    rng = np.random.default_rng(17)
    return [
        rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
        rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
    ]


def _assert_outputs_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.scale == w.scale
        for gp, wp in zip(g.parts, w.parts):
            assert np.array_equal(gp.data, wp.data)


class TestRoundTrip:
    def test_structure_preserved(self, rctx, plan):
        blob = serialize_plan(plan)
        assert blob[:4] == PLAN_MAGIC
        back = deserialize_plan(blob, rctx.evaluator)
        assert back.signature == plan.signature
        assert back.backend == plan.backend
        assert back.input_specs == plan.input_specs
        assert back.graph.outputs == plan.graph.outputs
        assert back.hoist == plan.hoist
        assert len(back.graph.nodes) == len(plan.graph.nodes)
        for a, b in zip(plan.graph.nodes, back.graph.nodes):
            assert (a.op, a.inputs, a.attrs, a.consts) == (
                b.op,
                b.inputs,
                b.attrs,
                b.consts,
            )
            assert (a.level, a.scale, a.size, a.kind) == (
                b.level,
                b.scale,
                b.size,
                b.kind,
            )

    def test_reserialization_is_byte_identical(self, rctx, plan):
        blob = serialize_plan(plan)
        again = serialize_plan(deserialize_plan(blob, rctx.evaluator))
        assert again == blob

    def test_execution_bit_identical(self, rctx, plan, inputs):
        back = deserialize_plan(serialize_plan(plan), rctx.evaluator)
        _assert_outputs_equal(
            back.run_batch([inputs])[0], plan.run_batch([inputs])[0]
        )
        _assert_outputs_equal(back.run(inputs), plan.run(inputs))

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("seed", [3, 11])
    def test_roundtrip_under_every_backend(self, backend, seed):
        """Seeded program round trips, per reducer backend: deserialized
        execution must be bit-identical to the traced plan's."""
        with using_backend(backend):
            ctx = CkksContext.create(
                toy_params(degree=128, num_primes=PRIMES), seed=seed
            )
            rlk = ctx.relin_keys(levels=[PRIMES])
            gks = ctx.galois_keys([1, 2], levels=[PRIMES])
            rng = np.random.default_rng(seed)

            def model(ev, x):
                s = ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 2, gks))
                return ev.multiply_relin_rescale(s, s, rlk)

            plan = compile_fn(
                model,
                ctx.evaluator,
                [CtSpec(level=PRIMES, scale=ctx.params.scale)],
            )
            back = deserialize_plan(serialize_plan(plan), ctx.evaluator)
            assert back.backend == default_backend_name()
            batch = [[ctx.encrypt(rng.uniform(-1, 1, ctx.params.slots))]]
            _assert_outputs_equal(
                back.run_batch(batch)[0], plan.run_batch(batch)[0]
            )

    def test_params_mismatch_rejected(self, plan):
        other = CkksContext.create(toy_params(degree=128, num_primes=4), seed=9)
        with pytest.raises(PlanFormatError, match="compiled for"):
            deserialize_plan(serialize_plan(plan), other.evaluator)


class TestConstantStore:
    def test_pcs1_roundtrip_and_dedup(self, rctx, plan):
        pcs = serialize_constants(plan)
        assert pcs[:4] == CONSTSTORE_MAGIC
        store = ConstantStore.from_bytes(pcs, rctx.basis)
        assert len(store) == len(plan.graph.consts)
        for obj in plan.graph.consts:
            assert constant_fingerprint(obj) in store
        # Content addressing: re-adding value-identical copies is a no-op.
        before = len(store)
        for obj in plan.graph.consts:
            store.add(obj)
        assert len(store) == before

    def test_separate_constants_path(self, rctx, plan, inputs):
        lean = serialize_plan(plan, include_constants=False)
        full = serialize_plan(plan)
        assert len(lean) < len(full) / 10  # constants dominate the blob
        store = ConstantStore.from_bytes(serialize_constants(plan), rctx.basis)
        back = deserialize_plan(lean, rctx.evaluator, constants=store)
        _assert_outputs_equal(
            back.run_batch([inputs])[0], plan.run_batch([inputs])[0]
        )

    def test_live_graph_resolution_shares_objects(self, rctx, plan):
        lean = serialize_plan(plan, include_constants=False)
        resolver = ConstantStore.from_graph(plan.graph)
        back = deserialize_plan(lean, rctx.evaluator, constants=resolver)
        # Constants resolve to the *same* live objects — no copies, so
        # per-key caches (stacked tensors) stay shared.
        assert all(
            any(c is obj for obj in plan.graph.consts)
            for c in back.graph.consts
        )

    def test_missing_constants_listed(self, rctx, plan):
        lean = serialize_plan(plan, include_constants=False)
        with pytest.raises(MissingConstantsError) as err:
            deserialize_plan(lean, rctx.evaluator)
        missing = err.value.fingerprints
        assert len(missing) == len(plan.graph.consts)
        assert missing[0].hex() in str(err.value)

    def test_content_signature_stable_across_copies(self, rctx, plan, rlk, gks, cjk):
        """The store key must not depend on object identity: rebuilding
        the constants from bytes yields the same content signature."""
        model, specs = _program(rctx, rlk, gks, cjk)
        g1 = trace(model, rctx.evaluator, specs)
        g2 = trace(model, rctx.evaluator, specs)
        assert g1.signature() == g2.signature()  # same live objects
        blob = serialize_plan(plan)
        back = deserialize_plan(blob, rctx.evaluator)
        assert graph_content_signature(back.graph) == graph_content_signature(
            plan.graph
        )
        assert back.graph.signature() != plan.graph.signature()  # id-based


class TestDamagedArtifacts:
    def test_wrong_magic(self, rctx, plan):
        blob = bytearray(serialize_plan(plan))
        blob[:4] = b"NOPE"
        with pytest.raises(PlanFormatError, match="not an EPL1"):
            deserialize_plan(bytes(blob), rctx.evaluator)

    def test_newer_version_rejected(self, rctx, plan):
        blob = bytearray(serialize_plan(plan))
        blob[4:6] = struct.pack("<H", 99)
        with pytest.raises(PlanFormatError, match="newer than supported"):
            deserialize_plan(bytes(blob), rctx.evaluator)

    def test_truncated_blob_rejected(self, rctx, plan):
        blob = serialize_plan(plan)
        with pytest.raises(PlanFormatError, match="truncated"):
            deserialize_plan(blob[: len(blob) - 7], rctx.evaluator)

    def test_corrupt_frame_rejected(self, rctx, plan):
        blob = bytearray(serialize_plan(plan))
        # Flip one bit inside the NODE frame's payload: CRC must catch it.
        node_at = bytes(blob).index(b"NODE")
        blob[node_at + 20] ^= 0x01
        with pytest.raises(PlanFormatError, match="CRC"):
            deserialize_plan(bytes(blob), rctx.evaluator)

    def test_missing_required_frame_rejected(self, rctx, plan):
        lean = serialize_plan(plan, include_constants=False)
        # Keep only the 8-byte header + the first (META) frame.
        from repro.ckks.serialization import read_frame

        _, _, end_of_meta = read_frame(lean, 8)
        with pytest.raises(PlanFormatError, match="missing required frame"):
            deserialize_plan(lean[:end_of_meta], rctx.evaluator)


class TestPlanStore:
    def test_save_load_roundtrip(self, tmp_path, rctx, plan, inputs):
        store = PlanStore(tmp_path / "plans")
        path = store.save(plan)
        assert path.exists() and path.suffix == ".epl1"
        assert store.keys() == [path.stem]
        # Lean plan + constants sidecar: the hot path never reads the
        # sidecar, a fresh host reads both.
        sidecar = store.constants_path_for(path.stem)
        assert sidecar.exists()
        assert path.stat().st_size < sidecar.stat().st_size
        loaded = store.load_path(path, rctx.evaluator)
        _assert_outputs_equal(
            loaded.run_batch([inputs])[0], plan.run_batch([inputs])[0]
        )
        # Without the sidecar resolution, the lean artifact must refuse.
        with pytest.raises(MissingConstantsError):
            load_plan(path, rctx.evaluator)

    def test_save_plan_is_atomic_file(self, tmp_path, plan, rctx):
        path = save_plan(tmp_path / "p.epl1", plan)
        assert not list(tmp_path.glob("*.tmp"))
        assert load_plan(path, rctx.evaluator).backend == plan.backend

    def test_store_miss_returns_none(self, tmp_path, rctx, rlk, gks, cjk):
        store = PlanStore(tmp_path / "plans")
        model, specs = _program(rctx, rlk, gks, cjk)
        graph = trace(model, rctx.evaluator, specs)
        assert store.load(graph, rctx.evaluator, default_backend_name()) is None

    def test_compile_graph_uses_installed_store(
        self, tmp_path, rctx, rlk, gks, cjk, inputs
    ):
        model, specs = _program(rctx, rlk, gks, cjk)
        set_plan_store(str(tmp_path / "plans"))
        try:
            first = compile_graph(trace(model, rctx.evaluator, specs), rctx.evaluator)
            stats = plan_cache_info()
            assert stats["disk_saves"] == 1 and stats["disk_hits"] == 0
            reference = first.run_batch([inputs])[0]

            # A "fresh process": empty in-memory cache, same store.
            from repro.runtime.plan import clear_plan_cache

            clear_plan_cache()
            second = compile_graph(
                trace(model, rctx.evaluator, specs), rctx.evaluator
            )
            stats = plan_cache_info()
            assert stats["disk_hits"] == 1 and stats["disk_saves"] == 0
            _assert_outputs_equal(second.run_batch([inputs])[0], reference)
        finally:
            set_plan_store(None)


    def test_corrupt_store_artifact_degrades_to_recompile(
        self, tmp_path, rctx, rlk, gks, cjk, inputs
    ):
        """A damaged on-disk artifact must never cause a compile outage:
        the store fails open, recompiles, and still serves."""
        model, specs = _program(rctx, rlk, gks, cjk)
        store = PlanStore(tmp_path / "plans")
        set_plan_store(store)
        try:
            plan = compile_graph(
                trace(model, rctx.evaluator, specs), rctx.evaluator
            )
            reference = plan.run_batch([inputs])[0]
            [key] = store.keys()
            artifact = store.path_for(key)
            artifact.write_bytes(artifact.read_bytes()[:40])  # truncate

            from repro.runtime.plan import clear_plan_cache

            clear_plan_cache()
            with pytest.warns(RuntimeWarning, match="plan store load failed"):
                recompiled = compile_graph(
                    trace(model, rctx.evaluator, specs), rctx.evaluator
                )
            assert plan_cache_info()["disk_hits"] == 0
            _assert_outputs_equal(recompiled.run_batch([inputs])[0], reference)
        finally:
            set_plan_store(None)


def _fresh_process_serve(path, conn) -> None:
    """Child body for the cross-process smoke: rebuild a context (fresh
    caches, fresh everything), load the artifact — no re-trace — then
    serve request ciphertexts arriving over the wire."""
    from repro.ckks.serialization import (
        deserialize_ciphertext,
        serialize_ciphertext,
        wire_coeff_bits,
    )

    ctx = CkksContext.create(toy_params(degree=128, num_primes=PRIMES), seed=41)
    plan = load_plan(path, ctx.evaluator)
    bits = wire_coeff_bits(ctx.basis)
    batch = [deserialize_ciphertext(b, ctx.basis) for b in conn.recv()]
    outs = plan.run_batch([batch])[0]
    conn.send([serialize_ciphertext(o, coeff_bits=bits) for o in outs])
    conn.close()


@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="requires fork"
)
def test_plan_serves_in_fresh_process(tmp_path, rctx, plan, inputs):
    """Serialize here, deserialize in another process, byte-compare."""
    from repro.ckks.serialization import serialize_ciphertext, wire_coeff_bits

    path = save_plan(tmp_path / "shipped.epl1", plan)
    bits = wire_coeff_bits(rctx.basis)
    ctx_mp = mp.get_context("fork")
    parent_conn, child_conn = ctx_mp.Pipe()
    proc = ctx_mp.Process(target=_fresh_process_serve, args=(path, child_conn))
    proc.start()
    child_conn.close()
    parent_conn.send(
        [serialize_ciphertext(ct, coeff_bits=bits) for ct in inputs]
    )
    remote_blobs = parent_conn.recv()
    proc.join(timeout=60)
    parent_conn.close()

    local = [
        serialize_ciphertext(o, coeff_bits=bits)
        for o in plan.run_batch([inputs])[0]
    ]
    assert remote_blobs == local
