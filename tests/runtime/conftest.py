"""Runtime-suite fixtures: one toy context plus pre-generated keys."""

from __future__ import annotations

import pytest

from repro.ckks import CkksContext, toy_params
from repro.runtime import clear_plan_cache

DEGREE = 128
PRIMES = 6


@pytest.fixture(scope="module")
def rctx() -> CkksContext:
    return CkksContext.create(toy_params(degree=DEGREE, num_primes=PRIMES), seed=41)


@pytest.fixture(scope="module")
def rlk(rctx):
    return rctx.relin_keys(levels=[PRIMES, PRIMES - 2])


@pytest.fixture(scope="module")
def gks(rctx):
    return rctx.galois_keys([1, 2, 3], levels=[PRIMES])


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    """Keep cache-statistics assertions independent across tests."""
    clear_plan_cache()
    yield
    clear_plan_cache()
