"""Optimizer passes: CSE, DCE, rescale fusion, hoist grouping, validation."""

from __future__ import annotations

import pytest

import numpy as np

from repro.runtime import (
    CtSpec,
    PlanValidationError,
    check_alignment,
    eliminate_common_subexpressions,
    eliminate_dead_nodes,
    fuse_rescales,
    fusion_groups,
    hoist_groups,
    optimize,
    trace,
)


def _spec(rctx, level=None):
    level = rctx.params.num_primes if level is None else level
    return CtSpec(level=level, scale=rctx.params.scale)


class TestCse:
    def test_duplicate_rotations_merge(self, rctx, gks):
        def program(ev, x):
            return ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 1, gks))

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        assert g.op_histogram()["rotate"] == 2
        opt = eliminate_common_subexpressions(g)
        assert opt.op_histogram()["rotate"] == 1

    def test_commutative_multiply_canonicalized(self, rctx, rlk):
        def program(ev, x, y):
            ab = ev.relinearize(ev.multiply(x, y), rlk)
            ba = ev.relinearize(ev.multiply(y, x), rlk)
            return ev.add(ab, ba)

        g = trace(program, rctx.evaluator, [_spec(rctx), _spec(rctx)])
        opt = eliminate_common_subexpressions(g)
        assert opt.op_histogram()["multiply"] == 1
        assert opt.op_histogram()["relinearize"] == 1

    def test_different_keys_do_not_merge(self, rctx, gks):
        other = rctx.galois_keys([1], levels=[rctx.params.num_primes])

        def program(ev, x):
            return ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 1, other))

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        assert eliminate_common_subexpressions(g).op_histogram()["rotate"] == 2


class TestRescaleFusion:
    def test_chain_fuses_to_one_multi_prime_rescale(self, rctx):
        def program(ev, x):
            return ev.rescale(ev.rescale(ev.rescale(x, 1), 1), 1)

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        opt = eliminate_dead_nodes(fuse_rescales(g))
        assert opt.op_histogram()["rescale"] == 1
        out = opt.nodes[opt.outputs[0]]
        assert out.attrs == (3,)
        assert out.level == rctx.params.num_primes - 3

    def test_shared_intermediate_blocks_fusion(self, rctx):
        def program(ev, x):
            mid = ev.rescale(x, 1)
            return ev.add(ev.rescale(mid, 1), ev.rescale(mid, 1))

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        # mid has two consumers: it must survive; CSE merges the twins
        # first, after which mid has a single consumer and fusion fires.
        fused_only = eliminate_dead_nodes(fuse_rescales(g))
        assert fused_only.op_histogram()["rescale"] == 3
        full = optimize(g)
        assert full.op_histogram()["rescale"] == 1

    def test_output_intermediate_not_fused_away(self, rctx):
        def program(ev, x):
            mid = ev.rescale(x, 1)
            return mid, ev.rescale(mid, 1)

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        opt = optimize(g)
        assert opt.op_histogram()["rescale"] == 2


class TestDce:
    def test_unused_work_is_dropped(self, rctx, gks):
        def program(ev, x):
            ev.rotate(x, 2, gks)  # dead
            return ev.rotate(x, 1, gks)

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        opt = eliminate_dead_nodes(g)
        assert opt.op_histogram()["rotate"] == 1
        assert opt.op_histogram()["input"] == 1  # inputs always survive


class TestHoistGrouping:
    def test_rotations_sharing_a_source_group(self, rctx, gks):
        def program(ev, x):
            r1 = ev.rotate(x, 1, gks)
            r2 = ev.rotate(x, 2, gks)
            lone = ev.rotate(ev.add(r1, r2), 3, gks)
            return lone

        g = optimize(trace(program, rctx.evaluator, [_spec(rctx)]))
        groups = hoist_groups(g)
        assert len(groups) == 1
        (members,) = groups.values()
        assert len(members) == 2  # the lone rotation stays ungrouped


class TestFusion:
    """fusion_groups is analysis only — the graph is never rewritten."""

    def _pts(self, rctx, count, level=None, scale=None):
        level = rctx.params.num_primes if level is None else level
        scale = rctx.params.scale if scale is None else scale
        slots = rctx.params.slots
        return [
            rctx.encoder.encode(np.full(slots, 0.1 * (i + 1)), level=level, scale=scale)
            for i in range(count)
        ]

    def test_mac_tree_folds_terms_and_adds(self, rctx):
        p1, p2, p3 = self._pts(rctx, 3)

        def program(ev, x):
            t1 = ev.multiply_plain(x, p1)
            t2 = ev.multiply_plain(x, p2)
            t3 = ev.multiply_plain(x, p3)
            return ev.add(ev.add(t1, t2), t3)

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        (group,) = fusion_groups(g)
        assert group.kind == "mac"
        assert len(group.payload) == 3  # the three multiply_plain terms
        # Every mac source is the term's ciphertext operand, term-aligned.
        assert group.sources == tuple(
            g.nodes[t].inputs[0] for t in group.payload
        )
        # The whole tree (root + interior add + 3 terms) is covered.
        assert len(group.members) == 5
        assert group.outputs == (group.anchor,)

    def test_multi_consumer_term_degrades_mac_to_sum(self, rctx):
        p1, p2, p3 = self._pts(rctx, 3)

        def program(ev, x):
            t1 = ev.multiply_plain(x, p1)
            t2 = ev.multiply_plain(x, p2)
            t3 = ev.multiply_plain(x, p3)
            s = ev.add(ev.add(t1, t2), t3)
            return ev.add(s, t1)  # t1 read twice -> cannot fold its multiply

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        groups = fusion_groups(g)
        kinds = {grp.kind for grp in groups}
        assert "mac" not in kinds
        assert "sum" in kinds

    def test_two_term_add_stays_unfused(self, rctx):
        p1, p2 = self._pts(rctx, 2)

        def program(ev, x):
            return ev.add(ev.multiply_plain(x, p1), ev.multiply_plain(x, p2))

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        assert not any(
            grp.kind in ("mac", "sum") for grp in fusion_groups(g)
        )

    def test_elementwise_chain_runs_as_one_step(self, rctx):
        (p1,) = self._pts(rctx, 1)
        # add_plain operand must match the product's squared scale.
        (p2,) = self._pts(rctx, 1, scale=rctx.params.scale * p1.scale)

        def program(ev, x):
            y = ev.add_plain(ev.multiply_plain(x, p1), p2)
            return ev.negate(y)

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        chains = [grp for grp in fusion_groups(g) if grp.kind == "chain"]
        (chain,) = chains
        assert len(chain.members) == 3
        assert chain.outputs == (chain.members[-1],)
        assert chain.sources == (0,)  # the lone graph input

    def test_hoist_families_become_schedule_steps(self, rctx, gks):
        def program(ev, x):
            return ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 2, gks))

        g = optimize(trace(program, rctx.evaluator, [_spec(rctx)]))
        hoist = hoist_groups(g)
        hoisted = [
            grp for grp in fusion_groups(g, hoist)
            if grp.kind == "hoisted_automorphisms"
        ]
        (grp,) = hoisted
        (members,) = hoist.values()
        assert grp.members == tuple(members)
        assert grp.anchor == min(members)

    def test_groups_are_disjoint(self, rctx, gks):
        p1, p2, p3 = self._pts(rctx, 3)

        def program(ev, x):
            r1 = ev.rotate(x, 1, gks)
            r2 = ev.rotate(x, 2, gks)
            t1 = ev.multiply_plain(r1, p1)
            t2 = ev.multiply_plain(r2, p2)
            t3 = ev.multiply_plain(x, p3)
            return ev.add(ev.add(t1, t2), t3)

        g = optimize(trace(program, rctx.evaluator, [_spec(rctx)]))
        seen: set[int] = set()
        for grp in fusion_groups(g):
            assert seen.isdisjoint(grp.members)
            seen.update(grp.members)


class TestAlignmentChecker:
    def test_accepts_traced_graphs(self, rctx, gks, rlk):
        def program(ev, x):
            return ev.multiply_relin_rescale(ev.rotate(x, 1, gks), x, rlk)

        check_alignment(trace(program, rctx.evaluator, [_spec(rctx)]))

    def test_rejects_corrupted_metadata_with_provenance(self, rctx, gks):
        import dataclasses

        def program(ev, x):
            return ev.add(ev.rotate(x, 1, gks), x)

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        bad = dataclasses.replace(g.nodes[1], scale=g.nodes[1].scale * 3)
        g.nodes[1] = bad
        with pytest.raises(PlanValidationError) as err:
            check_alignment(g)
        msg = str(err.value)
        assert "scale" in msg and "node #" in msg and "operands" in msg

    def test_rejects_wrong_key_level(self, rctx, gks):
        def program(ev, x):
            return ev.rotate(x, 1, gks)

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        # Corrupt the rotation's recorded input level via a fake extra drop.
        import dataclasses

        g.nodes[1] = dataclasses.replace(
            g.nodes[1], level=g.nodes[1].level - 1
        )
        g.nodes[0] = dataclasses.replace(g.nodes[0], level=g.nodes[0].level - 1)
        with pytest.raises(PlanValidationError, match="switching key level"):
            check_alignment(g)
