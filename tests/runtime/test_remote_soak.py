"""Nightly soak: remote-host kill/reattach under the seeded chaos matrix.

Ten rounds against a genuinely remote (CLI-spawned, no fork
relationship) worker host.  Each round serves a batch under seeded
chaos — worker crashes, reply reordering, asymmetric relay latency —
and on alternating rounds the host process is SIGKILLed mid-batch and
restarted on the same address by a supervisor thread, exercising the
dial → requeue → reattach path end to end.  The invariant is the
fabric's contract: zero lost results, zero duplicated results, and
bit-identical outputs every round.

Marked ``slow``: runs in the nightly CI job (``pytest -m slow``), not
tier-1.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    CtSpec,
    FaultPlan,
    FaultPolicy,
    ServingConfig,
    compile_fn,
    serve,
)

pytestmark = pytest.mark.slow

RESULT_TIMEOUT = 180.0
ROUNDS = 10


@pytest.fixture(scope="module")
def soak_plan(rctx, gks, rlk):
    def program(ev, x, y):
        rot = ev.rotate(x, 1, gks)
        return (ev.multiply_relin_rescale(ev.add(rot, y), y, rlk), ev.multiply(x, y))

    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
    return compile_fn(program, rctx.evaluator, [spec, spec])


def _batches(rctx, n, seed):
    rng = np.random.default_rng(seed)
    return [
        [
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
        ]
        for _ in range(n)
    ]


def _assert_batches_equal(got, want, what=""):
    assert len(got) == len(want), what
    for i, (g, w) in enumerate(zip(got, want)):
        for j, (a, b) in enumerate(zip(g, w)):
            assert a.scale == b.scale, f"{what} entry {i} output {j} scale"
            for pa, pb in zip(a.parts, b.parts):
                assert np.array_equal(pa.data, pb.data), (
                    f"{what} entry {i} output {j} differs"
                )


class _HostSupervisor:
    """Runs the worker-host CLI on a fixed address and restarts it
    whenever it dies, so a killed host 'comes back' the way a
    supervised fleet host would."""

    def __init__(self, tmp_path):
        self.keyfile = str(tmp_path / "authkey")
        with open(self.keyfile, "wb") as fh:
            fh.write(os.urandom(32))
        self._portfile = tmp_path / "port"
        self._lock = threading.Lock()
        self._stop = False
        self.proc = None
        self.restarts = 0
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        self._env = dict(os.environ)
        self._env["PYTHONPATH"] = (
            os.path.join(root, "src") + os.pathsep + self._env.get("PYTHONPATH", "")
        )
        # First launch on an ephemeral port; restarts re-bind the same
        # port so the coordinator's host spec stays valid.
        self.port = self._launch(0)

    def _launch(self, port: int) -> int:
        try:
            self._portfile.unlink()
        except FileNotFoundError:
            pass
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker_host",
                "--bind",
                f"127.0.0.1:{port}",
                "--authkey-file",
                self.keyfile,
                "--port-file",
                str(self._portfile),
            ],
            env=self._env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60
        while not self._portfile.exists():
            if self.proc.poll() is not None or time.monotonic() > deadline:
                raise AssertionError("soak worker host failed to come up")
            time.sleep(0.05)
        return int(self._portfile.read_text().strip())

    def kill(self) -> None:
        with self._lock:
            if self.proc is not None and self.proc.poll() is None:
                self.proc.send_signal(signal.SIGKILL)
                self.proc.wait(timeout=30)

    def ensure_up(self) -> None:
        with self._lock:
            if self._stop or (self.proc is not None and self.proc.poll() is None):
                return
            # The port just freed (the old process is reaped), so
            # re-binding the same address is reliable on loopback.
            self._launch(self.port)
            self.restarts += 1

    def close(self) -> None:
        with self._lock:
            self._stop = True
            if self.proc is not None and self.proc.poll() is None:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait(timeout=10)


@pytest.mark.slow
def test_ten_round_kill_reattach_soak(tmp_path, rctx, soak_plan):
    supervisor = _HostSupervisor(tmp_path)
    watcher_stop = threading.Event()

    def watcher():
        while not watcher_stop.wait(0.25):
            supervisor.ensure_up()

    watcher_thread = threading.Thread(target=watcher, daemon=True)
    watcher_thread.start()
    try:
        for round_no in range(ROUNDS):
            batches = _batches(rctx, 6, seed=100 + round_no)
            reference = soak_plan.run_batch(batches)
            chaos = FaultPlan(
                1000 + round_no,
                crash_rate=0.05,
                reorder_rate=0.15,
                asym_latency_rate=0.2,
                asym_latency_s=0.01,
            )
            cfg = ServingConfig(
                num_workers=2,
                transport="tcp",
                hosts=(f"tcp://127.0.0.1:{supervisor.port}",),
                ship_plan=True,
                authkey_file=supervisor.keyfile,
                chaos=chaos,
                modeled_request_io_s=0.05,
                fault_policy=FaultPolicy(
                    backoff_base_s=0.05,
                    max_attempts=10,
                    crash_loop_threshold=64,
                ),
                max_crash_respawns=256,
            )
            with serve(soak_plan, cfg) as session:
                futures = [session.submit(b) for b in batches]
                if round_no % 2 == 0:
                    time.sleep(0.3)  # some requests in flight
                    supervisor.kill()  # the watcher brings it back
                outputs = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
                stats = session.stats()
            # Zero lost, zero duplicated, bit-identical.
            assert stats["completed"] == len(batches), f"round {round_no}"
            assert stats["errors"] == 0, f"round {round_no}"
            _assert_batches_equal(outputs, reference, f"round {round_no}")
        assert supervisor.restarts >= ROUNDS // 2 - 1
    finally:
        watcher_stop.set()
        watcher_thread.join(timeout=10)
        supervisor.close()
