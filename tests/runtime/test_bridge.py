"""Bridge from traced plans to the accelerator workload/scheduler models."""

from __future__ import annotations

from repro.accel import RequestQueue, RscScheduler, abc_fhe
from repro.runtime import (
    CtSpec,
    compile_fn,
    plan_op_counts,
    plan_to_request_queue,
    plan_to_workload,
)


def _spec(rctx, level=None):
    level = rctx.params.num_primes if level is None else level
    return CtSpec(level=level, scale=rctx.params.scale)


def _bsgs_like_plan(rctx, gks, rlk):
    def program(ev, x):
        acc = ev.rotate(x, 1, gks)
        acc = ev.add(acc, ev.rotate(x, 2, gks))
        return ev.multiply_relin_rescale(acc, x, rlk)

    return compile_fn(program, rctx.evaluator, [_spec(rctx)])


class TestOpCounts:
    def test_counts_are_positive_and_ntt_dominated(self, rctx, gks, rlk):
        plan = _bsgs_like_plan(rctx, gks, rlk)
        counts = plan_op_counts(plan)
        assert counts.ntt_ops > 0 and counts.rns_ops > 0 and counts.other_ops > 0
        assert counts.fft_ops == 0  # no client-side transforms in a server plan
        assert counts.total == counts.ntt_ops + counts.rns_ops

    def test_hoisting_discount_shrinks_the_histogram(self, rctx, gks, rlk):
        def hoistable(ev, x):
            return ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 2, gks))

        def serial(ev, x):
            return ev.rotate(ev.rotate(x, 1, gks), 2, gks)

        h = compile_fn(hoistable, rctx.evaluator, [_spec(rctx)])
        s = compile_fn(serial, rctx.evaluator, [_spec(rctx)])
        # Same number of rotations, but the hoisted pair shares one digit
        # expansion; the chained pair cannot.
        assert plan_op_counts(h).ntt_ops < plan_op_counts(s).ntt_ops


class TestClientBridge:
    def test_workload_reflects_plan_boundary(self, rctx, gks, rlk):
        plan = _bsgs_like_plan(rctx, gks, rlk)
        w = plan_to_workload(plan)
        assert w.degree == rctx.basis.degree
        assert w.enc_levels == rctx.params.num_primes
        assert w.dec_levels == rctx.params.num_primes - 2
        projected = plan_to_workload(plan, degree=1 << 16)
        assert projected.degree == 1 << 16
        assert projected.enc_levels == w.enc_levels

    def test_request_queue_counts_plan_io(self, rctx, gks, rlk):
        plan = _bsgs_like_plan(rctx, gks, rlk)
        q = plan_to_request_queue(plan, requests=100)
        assert q == RequestQueue(encode_encrypt=100, decode_decrypt=100)

    def test_scheduler_runs_on_a_traced_plan(self, rctx, gks, rlk):
        """Figure-style policy comparison driven by a real trace."""
        plan = _bsgs_like_plan(rctx, gks, rlk)
        workload = plan_to_workload(plan, degree=1 << 16)
        sched = RscScheduler(config=abc_fhe(), workload=workload)
        results = sched.compare(plan_to_request_queue(plan, requests=8))
        assert len(results) == 3
        assert all(r.makespan_cycles > 0 for r in results)
        assert results[0].makespan_cycles <= results[-1].makespan_cycles
