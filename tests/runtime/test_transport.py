"""Transport seam: shared-memory ring and TCP worker-host sessions.

Every transport must be *invisible* — bit-identical outputs, identical
ordering, identical fault semantics — while differing only in how bytes
cross the worker boundary.  These tests drive the shm and tcp
implementations through the same serving surface the pipe transport
uses, including host loss mid-batch and the seeded chaos matrix's
``host_relay`` site.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import signal
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    CtSpec,
    FaultAction,
    FaultPlan,
    FaultPolicy,
    ServingConfig,
    ShardedExecutor,
    available_transports,
    compile_fn,
    get_telemetry,
    serve,
)

RESULT_TIMEOUT = 120.0


def _assert_outputs_equal(got, want, what=""):
    assert len(got) == len(want), what
    for i, (g, w) in enumerate(zip(got, want)):
        assert g.scale == w.scale, f"{what} output {i} scale"
        for j, (pg, pw) in enumerate(zip(g.parts, w.parts)):
            assert np.array_equal(pg.data, pw.data), (
                f"{what} output {i} part {j} differs"
            )


def _assert_batches_equal(got, want, what=""):
    assert len(got) == len(want), what
    for i, (g, w) in enumerate(zip(got, want)):
        _assert_outputs_equal(g, w, f"{what} entry {i}")


@pytest.fixture(scope="module")
def fabric_plan(rctx, gks, rlk):
    def program(ev, x, y):
        rot = ev.rotate(x, 1, gks)
        prod = ev.multiply_relin_rescale(ev.add(rot, y), y, rlk)
        return prod, ev.multiply(x, y)

    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
    return compile_fn(program, rctx.evaluator, [spec, spec])


def _batches(rctx, n, seed=9):
    rng = np.random.default_rng(seed)
    return [
        [
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
        ]
        for _ in range(n)
    ]


def test_transport_registry_lists_all_three():
    assert available_transports() == ("pipe", "shm", "tcp")


class TestShmTransport:
    def test_bit_identity_and_ring_traffic(self, rctx, fabric_plan):
        batches = _batches(rctx, 5)
        reference = fabric_plan.run_batch(batches)
        cfg = ServingConfig(num_workers=2, transport="shm")
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            stats = pool.stats()
            if not stats["inline"]:
                assert stats["transport"] == "shm"
                assert stats["transport_stats"]["live_rings"] == 2
        _assert_batches_equal(sharded, reference)

    def test_no_leaked_segments_after_close(self, rctx, fabric_plan):
        # A crashed-then-replaced worker AND a clean close must both
        # free their /dev/shm segments (each endpoint owns one ring).
        def shm_names():
            try:
                return {n for n in os.listdir("/dev/shm")}
            except FileNotFoundError:  # non-Linux: rings still close()
                return set()

        before = shm_names()
        cfg = ServingConfig(num_workers=2, transport="shm")
        pool = ShardedExecutor(fabric_plan, config=cfg)
        pool.start()
        pool.run_batch(_batches(rctx, 2), timeout=RESULT_TIMEOUT)
        pool.close()
        assert shm_names() - before == set()

    def test_oversized_payload_falls_back_inline(self, rctx, fabric_plan):
        # A ring too small for one ciphertext: every payload overflows
        # and ships inline; results must still be bit-identical.
        batches = _batches(rctx, 3, seed=11)
        reference = fabric_plan.run_batch(batches)
        cfg = ServingConfig(num_workers=2, transport="shm", ring_bytes=256)
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
        _assert_batches_equal(sharded, reference)


class TestTcpTransport:
    def test_bit_identity_single_host(self, rctx, fabric_plan):
        batches = _batches(rctx, 5)
        reference = fabric_plan.run_batch(batches)
        cfg = ServingConfig(num_workers=2, transport="tcp")
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            stats = pool.stats()
            if not stats["inline"]:
                assert stats["transport_stats"]["hosts_spawned"] == 1
                assert stats["transport_stats"]["sessions_opened"] == 1
        _assert_batches_equal(sharded, reference)

    def test_plan_ships_once_per_host(self, rctx, fabric_plan):
        # Two hosts, four slots: the serialized plan crosses the wire
        # exactly twice (content-fingerprint dedup is per host).
        batches = _batches(rctx, 6, seed=12)
        reference = fabric_plan.run_batch(batches)
        cfg = ServingConfig(
            num_workers=4, transport="tcp", hosts=2, ship_plan=True
        )
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            stats = pool.stats()
            if not stats["inline"]:
                ts = stats["transport_stats"]
                assert ts["hosts_spawned"] == 2
                assert ts["plan_uploads"] == 2
        _assert_batches_equal(sharded, reference)

    def test_batched_framing_sends_fewer_frames(self, rctx, fabric_plan):
        batches = _batches(rctx, 8, seed=13)
        cfg = ServingConfig(num_workers=2, transport="tcp")
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            ts = pool.stats().get("transport_stats", {})
        if ts:
            assert ts["batch_messages"] is True
            assert ts["frames_sent"] <= ts["messages_sent"]
        cfg = ServingConfig(num_workers=2, transport="tcp", batch_messages=False)
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            ts = pool.stats().get("transport_stats", {})
        if ts:
            assert ts["batch_messages"] is False
            assert ts["frames_sent"] == ts["messages_sent"]


class TestHostLoss:
    def test_scripted_disconnect_reconnects_without_replan(
        self, rctx, fabric_plan
    ):
        """A host_relay disconnect drops the session; the executor
        requeues the in-flight requests, the transport reconnects to the
        *same* host process, and the warm plan cache means the plan is
        not shipped again."""
        batches = _batches(rctx, 6, seed=14)
        reference = fabric_plan.run_batch(batches)
        chaos = FaultPlan(
            0,
            scripted={
                ("host_relay", 2, 0): FaultAction("disconnect", "host_relay")
            },
        )
        cfg = ServingConfig(
            num_workers=2,
            transport="tcp",
            ship_plan=True,
            chaos=chaos,
            fault_policy=FaultPolicy(backoff_base_s=0.01),
        )
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            stats = pool.stats()
            if not stats["inline"]:
                ts = stats["transport_stats"]
                assert ts["sessions_opened"] >= 2
                assert ts["hosts_spawned"] == 1  # same host process
                assert ts["plan_uploads"] == 1  # fingerprint cache hit
                assert stats["worker_crashes"] >= 1
        _assert_batches_equal(sharded, reference)

    def test_host_sigkill_mid_batch_loses_nothing(self, rctx, fabric_plan):
        """Kill the worker-host process while requests are in flight:
        every request completes exactly once (order preserved,
        bit-identical), the crash surfaces as typed WorkerCrash events
        labelled with the host, and a replacement host is forked."""
        telemetry = get_telemetry()
        telemetry.enable(sample_rate=0.0)
        batches = _batches(rctx, 10, seed=15)
        reference = fabric_plan.run_batch(batches)
        cfg = ServingConfig(
            num_workers=2,
            transport="tcp",
            modeled_request_io_s=0.15,
            fault_policy=FaultPolicy(backoff_base_s=0.01),
        )
        try:
            with serve(fabric_plan, cfg) as session:
                futures = [session.submit(b) for b in batches]
                time.sleep(0.4)  # several in flight, more queued
                if session.stats()["inline"]:
                    pytest.skip("pool degraded to inline; no host to kill")
                [host_pid] = session.executor._transport.host_pids()
                os.kill(host_pid, signal.SIGKILL)
                outputs = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
                stats = session.stats()
            assert stats["completed"] == len(batches)
            assert stats["errors"] == 0
            assert stats["worker_crashes"] >= 1
            assert stats["transport_stats"]["hosts_spawned"] >= 2
            _assert_batches_equal(outputs, reference)
            crash_events = [
                e
                for e in telemetry.export_events()
                if e["event"] == "worker_crash"
            ]
            assert crash_events
            assert all(e["host"].startswith("host") for e in crash_events)
        finally:
            telemetry.disable()


class TestSessionSecurity:
    """The session socket is loopback but loopback is multi-user: no
    frame — hence no pickle — may be parsed from an unauthenticated
    peer, and no hostile bytes may crash the host or allocate GiBs."""

    @staticmethod
    def _bare_host(fabric_plan):
        from repro.runtime.coordinator import TcpTransport

        transport = TcpTransport(
            mp.get_context("fork"), plan=fabric_plan, cfg=None
        )
        proc, port = transport._fork_host("sec-test")
        return transport, proc, port

    @staticmethod
    def _retire(transport, proc):
        proc.terminate()
        proc.join(timeout=5)
        transport.close()

    def test_mutual_auth_round_trip_and_wrong_key(self):
        from repro.ckks.serialization import WireFormatError
        from repro.runtime.coordinator import _auth_client, _auth_server

        key = os.urandom(32)

        def handshake(server_key, client_key):
            a, b = socket.socketpair()
            outcome = {}

            def server():
                outcome["ok"] = _auth_server(a, server_key)
                if not outcome["ok"]:
                    a.close()  # what the host's accept loop does

            thread = threading.Thread(target=server)
            thread.start()
            try:
                _auth_client(b, client_key)
            finally:
                thread.join()
                a.close()
                b.close()
            return outcome["ok"]

        assert handshake(key, key) is True
        with pytest.raises((WireFormatError, ConnectionError, OSError)):
            handshake(key, os.urandom(32))

    def test_unauthenticated_peer_disconnected_before_any_frame(
        self, fabric_plan
    ):
        from repro.runtime.coordinator import _auth_client, _recv_exact

        transport, proc, port = self._bare_host(fabric_plan)
        try:
            # Wrong key: the host issues its challenge, sees a bad
            # digest, and hangs up without parsing a single frame.
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                nonce = _recv_exact(sock, 32)
                assert len(nonce) == 32
                sock.sendall(b"\x00" * 64)
                assert sock.recv(1) == b""
            # The host survives and still serves the genuine key.
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                _auth_client(sock, transport._authkey)
        finally:
            self._retire(transport, proc)

    def test_oversized_length_prefix_rejected_before_read(self):
        from repro.ckks.serialization import WireFormatError
        from repro.runtime.coordinator import recv_session_frame

        a, b = socket.socketpair()
        with a, b:
            # A corrupted u32 claiming ~4 GiB: rejected from the 8-byte
            # header alone — no body allocation, no blocking read.
            a.sendall(b"FBT1" + struct.pack("<I", 0xFFFF_FF00))
            b.settimeout(10)
            with pytest.raises(WireFormatError):
                recv_session_frame(b)

    def test_malformed_frame_drops_session_not_host(self, fabric_plan):
        from repro.runtime.coordinator import (
            SESSION_ACK_MAGIC,
            SESSION_BATCH_MAGIC,
            _auth_client,
            _encode_hello,
            SESSION_HELLO_MAGIC,
            recv_session_frame,
            send_session_frame,
        )

        transport, proc, port = self._bare_host(fabric_plan)
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                _auth_client(sock, transport._authkey)
                send_session_frame(
                    sock, SESSION_HELLO_MAGIC, _encode_hello(False, "", None)
                )
                tag, _ = recv_session_frame(sock)
                assert tag == SESSION_ACK_MAGIC
                # CRC-valid but malformed batch: count says one entry,
                # payload ends before the entry header (struct.error).
                send_session_frame(sock, SESSION_BATCH_MAGIC, struct.pack("<I", 1))
                assert sock.recv(1) == b""  # session dropped…
            time.sleep(0.2)
            assert proc.is_alive()  # …but the host (plan cache) lives
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                _auth_client(sock, transport._authkey)  # and reconnects
        finally:
            self._retire(transport, proc)


class TestDropFinalizers:
    def test_shm_transport_drop_without_close_unlinks_segments(self):
        from repro.runtime.transport import ShmRing, ShmTransport

        transport = ShmTransport(None, None, (), None, ring_bytes=4096)
        ring = ShmRing(4096)
        transport._rings.append(ring)
        path = f"/dev/shm/{ring.name}"
        if not os.path.exists(path):
            pytest.skip("no observable /dev/shm on this platform")
        # Dropped without close(): the transport's finalizer (over the
        # concrete ring list — a weakref-to-self finalizer would see
        # None and do nothing) must unlink the segment.
        del ring
        del transport
        gc.collect()
        assert not os.path.exists(path)


class TestChaosMatrix:
    @pytest.mark.parametrize("transport", ["shm", "tcp"])
    def test_seeded_chaos_completes_bit_identical(
        self, rctx, fabric_plan, transport
    ):
        """The seeded matrix — worker crashes plus (for tcp) session
        disconnects, partial frames, and slow relays — must finish every
        request exactly once with byte-identical outputs."""
        batches = _batches(rctx, 8, seed=16)
        reference = fabric_plan.run_batch(batches)
        chaos = FaultPlan(
            23,
            crash_rate=0.1,
            disconnect_rate=0.15,
            partial_frame_rate=0.1,
            slow_host_rate=0.2,
            slow_host_s=0.01,
        )
        # A session drop crashes BOTH slots, so innocent-bystander
        # requests accrue attempts too: give the budget headroom — the
        # invariant under test is exactly-once results, not retry count.
        cfg = ServingConfig(
            num_workers=2,
            transport=transport,
            chaos=chaos,
            fault_policy=FaultPolicy(
                backoff_base_s=0.01, max_attempts=8, crash_loop_threshold=32
            ),
            max_crash_respawns=64,
        )
        with ShardedExecutor(fabric_plan, config=cfg) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        assert stats["completed"] == len(batches)
        _assert_batches_equal(sharded, reference)
