"""The unified serving surface: ServingConfig, serve(), and the
one-release deprecation bridge for the legacy keyword surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    CtSpec,
    ServingConfig,
    ServingSession,
    ShardedExecutor,
    StreamingServer,
    compile_fn,
    serve,
)

RESULT_TIMEOUT = 120.0


@pytest.fixture(scope="module")
def square_plan(rctx, rlk):
    def program(ev, x):
        return (ev.multiply_relin_rescale(x, x, rlk),)

    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
    return compile_fn(program, rctx.evaluator, [spec])


def _batches(rctx, n, seed=21):
    rng = np.random.default_rng(seed)
    return [
        [rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots))] for _ in range(n)
    ]


class TestServingConfig:
    def test_defaults_are_valid(self):
        cfg = ServingConfig()
        assert cfg.num_workers == 2
        assert cfg.transport == "pipe"

    def test_frozen(self):
        cfg = ServingConfig()
        with pytest.raises(AttributeError):
            cfg.num_workers = 4

    def test_replace_returns_new_value(self):
        cfg = ServingConfig(num_workers=2)
        other = cfg.replace(transport="shm", num_workers=3)
        assert other.transport == "shm" and other.num_workers == 3
        assert cfg.transport == "pipe" and cfg.num_workers == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": -1},
            {"transport": "carrier-pigeon"},
            {"hosts": 0},
            {"max_pending": 0},
            {"ring_bytes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestServeFacade:
    def test_serve_plan_matches_run_batch(self, rctx, square_plan):
        batches = _batches(rctx, 4)
        reference = square_plan.run_batch(batches)
        with serve(square_plan, ServingConfig(num_workers=2)) as session:
            served = session.run_batch(batches, timeout=RESULT_TIMEOUT)
        assert isinstance(session, ServingSession)
        for got, want in zip(served, reference):
            for g, w in zip(got, want):
                for pg, pw in zip(g.parts, w.parts):
                    assert np.array_equal(pg.data, pw.data)

    def test_serve_compiles_a_traceable_function(self, rctx, rlk):
        def program(ev, x):
            return (ev.multiply_relin_rescale(x, x, rlk),)

        spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
        batches = _batches(rctx, 2, seed=22)
        with serve(
            program,
            ServingConfig(num_workers=1),
            evaluator=rctx.evaluator,
            input_specs=[spec],
        ) as session:
            served = session.run_batch(batches, timeout=RESULT_TIMEOUT)
        reference = compile_fn(program, rctx.evaluator, [spec]).run_batch(batches)
        for got, want in zip(served, reference):
            for g, w in zip(got, want):
                for pg, pw in zip(g.parts, w.parts):
                    assert np.array_equal(pg.data, pw.data)

    def test_serve_function_requires_specs(self):
        with pytest.raises(TypeError, match="evaluator"):
            serve(lambda ev, x: (x,))

    def test_serve_rejects_other_types(self):
        with pytest.raises(TypeError, match="ExecutionPlan"):
            serve(42)

    def test_streaming_uses_config_admission_bound(self, square_plan):
        session = ServingSession(
            square_plan, ServingConfig(num_workers=0, max_pending=3)
        )
        server = session.streaming()
        assert isinstance(server, StreamingServer)
        assert server.max_pending == 3


class TestLegacyKeywordBridge:
    def test_executor_kwargs_warn_and_translate(self, square_plan):
        with pytest.warns(DeprecationWarning, match="legacy serving kwargs"):
            pool = ShardedExecutor(square_plan, ship_plan=True, fused=True)
        assert pool.config.ship_plan is True
        assert pool.config.fused is True

    def test_bare_positional_pool_size_stays_silent(self, square_plan):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pool = ShardedExecutor(square_plan, 3)
        assert pool.config.num_workers == 3

    def test_config_plus_legacy_kwargs_is_an_error(self, square_plan):
        with pytest.raises(TypeError, match="not both"):
            ShardedExecutor(square_plan, config=ServingConfig(), fused=True)

    def test_positional_size_plus_config_is_an_error(self, square_plan):
        with pytest.raises(TypeError, match="pool size"):
            ShardedExecutor(square_plan, 2, config=ServingConfig())

    def test_unknown_kwargs_still_rejected(self, square_plan):
        with pytest.raises(TypeError, match="unexpected"):
            ShardedExecutor(square_plan, frobnicate=True)

    def test_serve_legacy_kwargs_warn(self, rctx, square_plan):
        batches = _batches(rctx, 2, seed=23)
        reference = square_plan.run_batch(batches)
        with pytest.warns(DeprecationWarning, match="legacy serving kwargs"):
            session = serve(square_plan, num_workers=1)
        with session:
            served = session.run_batch(batches, timeout=RESULT_TIMEOUT)
        assert session.config.num_workers == 1
        for got, want in zip(served, reference):
            for g, w in zip(got, want):
                for pg, pw in zip(g.parts, w.parts):
                    assert np.array_equal(pg.data, pw.data)

    def test_streaming_server_legacy_max_pending_warns(self, square_plan):
        pool = ShardedExecutor(square_plan, config=ServingConfig(num_workers=0))
        with pytest.warns(DeprecationWarning, match="legacy serving kwargs"):
            server = StreamingServer(pool, max_pending=5)
        assert server.max_pending == 5
