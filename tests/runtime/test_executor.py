"""ShardedExecutor: bit-identity with the single-process batched
executor, deterministic ordering, worker-crash recovery, error
propagation, and the inline fallback."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.runtime import (
    CtSpec,
    FaultPolicy,
    PoisonRequest,
    PtSpec,
    ShardedExecutor,
    WorkerError,
    compile_fn,
)

RESULT_TIMEOUT = 120.0


def _spec(rctx):
    return CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)


def _assert_ct_equal(a, b, what=""):
    assert a.scale == b.scale, f"{what}: scale {a.scale} != {b.scale}"
    assert a.size == b.size, what
    for i, (pa, pb) in enumerate(zip(a.parts, b.parts)):
        assert np.array_equal(pa.data, pb.data), f"{what} part {i} differs"


def _assert_outputs_equal(got, want, what=""):
    assert len(got) == len(want), what
    for i, (g, w) in enumerate(zip(got, want)):
        _assert_ct_equal(g, w, f"{what} output {i}")


@pytest.fixture(scope="module")
def serving_plan(rctx, gks, rlk):
    """Rotate / multiply / relinearize / rescale — and one raw 3-part
    tensor output, so the boundary moves both ciphertext shapes and a
    non-power-of-two rescaled scale."""

    def program(ev, x, y):
        rot = ev.rotate(x, 1, gks)
        prod = ev.multiply_relin_rescale(ev.add(rot, y), y, rlk)
        raw = ev.multiply(x, y)  # 3 parts, scale Δ²
        return prod, raw

    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
    return compile_fn(program, rctx.evaluator, [spec, spec])


def _batches(rctx, n, seed=9):
    rng = np.random.default_rng(seed)
    return [
        [
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
        ]
        for _ in range(n)
    ]


class TestShardedBitIdentity:
    def test_matches_single_process_run_batch(self, rctx, serving_plan):
        batches = _batches(rctx, 5)
        reference = serving_plan.run_batch(batches)
        with ShardedExecutor(serving_plan, 2, warm_inputs=batches[0]) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
        for i, (got, want) in enumerate(zip(sharded, reference)):
            _assert_outputs_equal(got, want, f"entry {i}")

    def test_ordering_is_deterministic_across_workers(self, rctx, serving_plan):
        # More workers than a single entry needs: completion order is up
        # to the scheduler, result order must stay submission order.
        batches = _batches(rctx, 6, seed=10)
        reference = serving_plan.run_batch(batches)
        with ShardedExecutor(serving_plan, 3) as pool:
            sharded = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
        for i, (got, want) in enumerate(zip(sharded, reference)):
            _assert_outputs_equal(got, want, f"entry {i}")

    def test_plaintext_inputs_cross_the_boundary(self, rctx):
        def program(ev, x, p):
            return (ev.multiply_plain(x, p),)

        plan = compile_fn(
            program,
            rctx.evaluator,
            [
                _spec(rctx),
                PtSpec(level=rctx.params.num_primes, scale=rctx.params.scale),
            ],
        )
        rng = np.random.default_rng(11)
        entries = [
            [
                rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
                rctx.encode(rng.uniform(-1, 1, rctx.params.slots)),
            ]
            for _ in range(3)
        ]
        reference = plan.run_batch(entries)
        with ShardedExecutor(plan, 2) as pool:
            sharded = pool.run_batch(entries, timeout=RESULT_TIMEOUT)
        for got, want in zip(sharded, reference):
            _assert_outputs_equal(got, want, "plaintext-input entry")


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_no_request_lost(
        self, rctx, serving_plan
    ):
        batches = _batches(rctx, 6, seed=12)
        reference = serving_plan.run_batch(batches)
        with ShardedExecutor(
            serving_plan, 2, modeled_request_io_s=0.3, warm_inputs=batches[0]
        ) as pool:
            futures = [pool.submit(entry) for entry in batches]
            time.sleep(0.05)  # let both workers take a request
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            stats = pool.stats()
        for i, (got, want) in enumerate(zip(results, reference)):
            _assert_outputs_equal(got, want, f"post-crash entry {i}")
        assert stats["worker_crashes"] >= 1
        assert stats["respawns"] >= 1
        assert stats["completed"] == len(batches)

    def test_exhausted_crash_budget_fails_fast(self, rctx, serving_plan):
        batches = _batches(rctx, 4, seed=15)
        with ShardedExecutor(
            serving_plan, 2, modeled_request_io_s=0.5, max_crash_respawns=0
        ) as pool:
            futures = [pool.submit(entry) for entry in batches]
            time.sleep(0.05)
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerError, match="crash"):
                for fut in futures:
                    fut.result(timeout=RESULT_TIMEOUT)
            # The pool shut itself down; new submissions must fail fast
            # instead of queueing forever.
            with pytest.raises(RuntimeError, match="stopped"):
                pool.submit(batches[0])

    def test_sigstopped_worker_is_hang_killed_and_request_retried(
        self, rctx, serving_plan
    ):
        # A worker that is stopped (not dead) mid-request: no pipe EOF
        # ever arrives, so only heartbeat-based hang detection can save
        # the request.  The parent must SIGKILL + replace the worker and
        # retry, and the output must stay bit-identical.
        batches = _batches(rctx, 4, seed=16)
        reference = serving_plan.run_batch(batches)
        policy = FaultPolicy(hang_timeout_s=1.0, backoff_base_s=0.01)
        with ShardedExecutor(
            serving_plan,
            2,
            modeled_request_io_s=0.4,
            policy=policy,
            warm_inputs=batches[0],
        ) as pool:
            futures = [pool.submit(entry) for entry in batches]
            time.sleep(0.1)  # let both workers take a request
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGSTOP)
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            stats = pool.stats()
        for i, (got, want) in enumerate(zip(results, reference)):
            _assert_outputs_equal(got, want, f"post-hang entry {i}")
        assert stats["hang_kills"] >= 1
        assert stats["respawns"] >= 1
        assert stats["worker_crashes"] == 0  # stopped, never crashed
        assert stats["retries"] >= 1
        assert stats["completed"] == len(batches)
        # The stopped worker was SIGKILLed, not leaked.
        with pytest.raises(OSError):
            os.kill(victim, 0)

    def test_repeat_worker_killer_gets_typed_failure_queue_drains(
        self, rctx, serving_plan
    ):
        # Regression for the crash-loop starvation bug: the old engine
        # front-requeued a crashed request forever.  Submit first a
        # request that SIGKILLs its worker on every attempt (simulated by
        # killing whichever worker picks it up), then normal requests —
        # the poison one must fail typed, the rest must complete.
        batches = _batches(rctx, 3, seed=17)
        reference = serving_plan.run_batch(batches[1:])
        policy = FaultPolicy(max_attempts=2, backoff_base_s=0.01)
        with ShardedExecutor(
            serving_plan,
            1,
            modeled_request_io_s=0.6,
            policy=policy,
            max_crash_respawns=10,
            warm_inputs=batches[0],
        ) as pool:
            poison = pool.submit(batches[0])
            for crashes_so_far in range(2):  # kill whoever serves it, twice
                deadline = time.monotonic() + 30
                # Wait for the (re)dispatch of the only queued request,
                # then strike inside its modeled-I/O window.
                while (
                    pool.stats()["worker_crashes"] < crashes_so_far
                    or not pool.worker_pids()
                ):
                    assert time.monotonic() < deadline, "pool never respawned"
                    time.sleep(0.01)
                time.sleep(0.25)
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(PoisonRequest, match="quarantined"):
                poison.result(timeout=RESULT_TIMEOUT)
            # The queue drains: later requests are served bit-identically.
            results = pool.run_batch(batches[1:], timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        for i, (got, want) in enumerate(zip(results, reference)):
            _assert_outputs_equal(got, want, f"post-poison entry {i}")
        assert stats["poisoned"] == 1
        assert stats["completed"] == len(batches) - 1

    def test_bad_input_fails_its_future_not_the_pool(self, rctx, serving_plan):
        good = _batches(rctx, 1, seed=13)[0]
        wrong_level = [rctx.evaluator.rescale(good[0], times=1), good[1]]
        with ShardedExecutor(serving_plan, 2) as pool:
            bad_future = pool.submit(wrong_level)
            with pytest.raises(WorkerError, match="level"):
                bad_future.result(timeout=RESULT_TIMEOUT)
            # The worker that saw the bad request must still serve.
            results = pool.run_batch([good], timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        _assert_outputs_equal(results[0], serving_plan.run_batch([good])[0])
        assert stats["errors"] == 1
        assert stats["worker_crashes"] == 0


class TestInlineFallback:
    def test_zero_workers_serves_through_the_codec(self, rctx, serving_plan):
        batches = _batches(rctx, 3, seed=14)
        reference = serving_plan.run_batch(batches)
        pool = ShardedExecutor(serving_plan, 0)
        results = pool.run_batch(batches)
        stats = pool.stats()
        pool.close()
        for got, want in zip(results, reference):
            _assert_outputs_equal(got, want, "inline entry")
        assert stats["inline"] is True
        assert stats["completed"] == len(batches)

    def test_rejects_non_container_inputs(self, rctx, serving_plan):
        pool = ShardedExecutor(serving_plan, 0)
        with pytest.raises(TypeError, match="Ciphertext or Plaintext"):
            pool.submit([np.zeros(4), np.zeros(4)])
