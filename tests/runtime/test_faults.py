"""Fault tolerance: typed failure taxonomy, FLT1 wire frames, the
FaultPolicy engine (deadlines, hang detection, retry budget, quarantine,
degradation), and the deterministic chaos harness.

The seeded chaos matrix at the bottom is the acceptance test: under
injected crashes, stops, byte-flips, and slow replies, every surviving
request's output must be byte-identical to the fault-free run, with zero
requests lost and zero duplicated.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.ckks.serialization import WireFormatError, pack_frame, read_frame
from repro.runtime import (
    CtSpec,
    DeadlineExceeded,
    FaultAction,
    FaultPlan,
    FaultPolicy,
    PoisonRequest,
    RequestError,
    ShardedExecutor,
    WireCorruption,
    WorkerCrash,
    WorkerError,
    WorkerHang,
    compile_fn,
    deserialize_fault,
    flip_frame_byte,
    serialize_fault,
)

RESULT_TIMEOUT = 120.0


# ----------------------------------------------------------------------
# Taxonomy + FLT1 wire form
# ----------------------------------------------------------------------


class TestTaxonomy:
    def test_every_typed_failure_is_a_worker_error(self):
        for cls in (WorkerCrash, WorkerHang, DeadlineExceeded, WireCorruption,
                    PoisonRequest):
            assert issubclass(cls, RequestError)
            assert issubclass(cls, WorkerError)

    def test_codes_are_distinct(self):
        classes = (RequestError, WorkerCrash, WorkerHang, DeadlineExceeded,
                   WireCorruption, PoisonRequest)
        assert len({cls.code for cls in classes}) == len(classes)

    def test_retriable_flags(self):
        assert WorkerCrash.retriable
        assert WorkerHang.retriable
        assert WireCorruption.retriable
        assert not DeadlineExceeded.retriable
        assert not PoisonRequest.retriable
        assert not RequestError.retriable

    @pytest.mark.parametrize(
        "cls", [RequestError, WorkerCrash, WorkerHang, DeadlineExceeded,
                WireCorruption, PoisonRequest]
    )
    def test_fault_frame_round_trip(self, cls):
        exc = cls("it broke: details", request_id=7, attempts=2)
        back = deserialize_fault(serialize_fault(exc), request_id=7)
        assert type(back) is cls
        assert str(back) == "it broke: details"
        assert back.request_id == 7
        assert back.attempts == 2

    def test_unknown_code_degrades_to_request_error(self):
        blob = serialize_fault(WorkerCrash("x", attempts=1))
        tag, payload, _ = read_frame(blob, 0)
        mutated = bytearray(payload)
        mutated[0] = 200  # a code this parent has never heard of
        back = deserialize_fault(pack_frame(tag, bytes(mutated)))
        assert type(back) is RequestError

    def test_fault_frame_is_crc_guarded(self):
        blob = bytearray(serialize_fault(WorkerCrash("x")))
        blob[10] ^= 0xFF
        with pytest.raises(WireFormatError):
            deserialize_fault(bytes(blob))


class TestFaultPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.5, backoff_jitter=0.25, seed=3)
        first = [policy.backoff_s(k, request_id=9) for k in range(1, 6)]
        again = [policy.backoff_s(k, request_id=9) for k in range(1, 6)]
        assert first == again
        assert all(d <= 0.5 * 1.25 + 1e-12 for d in first)
        # Jitter differs across requests, base schedule still grows.
        other = [policy.backoff_s(k, request_id=10) for k in range(1, 6)]
        assert other != first
        no_jitter = FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                                backoff_max_s=10.0, backoff_jitter=0.0)
        assert [no_jitter.backoff_s(k, 0) for k in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_heartbeat_interval_tracks_hang_timeout(self):
        assert FaultPolicy().heartbeat_interval_s() is None
        assert FaultPolicy(hang_timeout_s=1.0).heartbeat_interval_s() == 0.25
        assert FaultPolicy(hang_timeout_s=100.0).heartbeat_interval_s() == 1.0
        assert FaultPolicy(hang_timeout_s=0.01).heartbeat_interval_s() == 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(hang_timeout_s=-1.0)
        with pytest.raises(ValueError):
            FaultPolicy(crash_loop_threshold=0)


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FaultPlan(5, crash_rate=0.3, slow_rate=0.3, reply_flip_rate=0.4)
        b = FaultPlan(5, crash_rate=0.3, slow_rate=0.3, reply_flip_rate=0.4)
        keys = [(site, req, att)
                for site in ("pre_evaluate", "reply_encode")
                for req in range(20) for att in range(3)]
        assert [a.decide(*k) for k in keys] == [b.decide(*k) for k in keys]

    def test_seeds_change_the_schedule(self):
        a = FaultPlan(1, crash_rate=0.5)
        b = FaultPlan(2, crash_rate=0.5)
        keys = [("pre_evaluate", req, 0) for req in range(40)]
        assert [a.decide(*k) for k in keys] != [b.decide(*k) for k in keys]

    def test_rates_hit_roughly_their_frequency(self):
        plan = FaultPlan(7, crash_rate=0.25)
        hits = sum(
            plan.decide("pre_evaluate", req, 0) is not None for req in range(400)
        )
        assert 60 <= hits <= 140  # 0.25 +/- generous slack on 400 draws

    def test_scripted_overrides_win(self):
        action = FaultAction("crash", "pre_evaluate")
        plan = FaultPlan(0, crash_rate=1.0,
                         scripted={("pre_evaluate", 3, 0): None,
                                   ("post_evaluate", 4, 1): action})
        assert plan.decide("pre_evaluate", 3, 0) is None  # pinned "no fault"
        assert plan.decide("post_evaluate", 4, 1) is action
        assert plan.decide("pre_evaluate", 5, 0).kind == "crash"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(0, crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(0, crash_rate=0.6, stop_rate=0.6)
        with pytest.raises(ValueError):
            FaultPlan(0).decide("nowhere", 0, 0)

    def test_pickle_round_trip(self):
        import pickle

        plan = FaultPlan(9, crash_rate=0.2, slow_rate=0.1, slow_s=0.42,
                         scripted={("pre_evaluate", 0, 0): None})
        back = pickle.loads(pickle.dumps(plan))
        keys = [("pre_evaluate", req, att) for req in range(10) for att in range(2)]
        assert [back.decide(*k) for k in keys] == [plan.decide(*k) for k in keys]

    def test_flip_frame_byte_trips_the_crc(self):
        frame = pack_frame(b"ENV1", b"some payload bytes")
        for salt in range(8):
            flipped = flip_frame_byte(frame, FaultAction("flip", "reply_encode",
                                                         salt=salt))
            assert flipped != frame
            with pytest.raises(WireFormatError):
                read_frame(flipped, 0)


# ----------------------------------------------------------------------
# Policy engine on a live pool
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fault_plan_program(rctx, gks, rlk):
    def program(ev, x, y):
        rot = ev.rotate(x, 1, gks)
        return (ev.multiply_relin_rescale(ev.add(rot, y), y, rlk),)

    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
    return compile_fn(program, rctx.evaluator, [spec, spec])


def _batches(rctx, n, seed=77):
    rng = np.random.default_rng(seed)
    return [
        [
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
        ]
        for _ in range(n)
    ]


def _assert_outputs_equal(got, want, what=""):
    assert len(got) == len(want), what
    for i, (g, w) in enumerate(zip(got, want)):
        assert g.scale == w.scale, f"{what} output {i}"
        assert g.size == w.size, f"{what} output {i}"
        for j, (pg, pw) in enumerate(zip(g.parts, w.parts)):
            assert np.array_equal(pg.data, pw.data), f"{what} output {i} part {j}"


def _crash_attempts(req_id, attempts):
    return {("pre_evaluate", req_id, a): FaultAction("crash", "pre_evaluate")
            for a in range(attempts)}


class TestRetryBudget:
    def test_crash_is_retried_transparently(self, rctx, fault_plan_program):
        batches = _batches(rctx, 2)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(0, scripted=_crash_attempts(0, 1))
        with ShardedExecutor(fault_plan_program, 2, chaos=chaos,
                             warm_inputs=batches[0]) as pool:
            futures = [pool.submit(b) for b in batches]
            results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            stats = pool.stats()
            assert futures[0].attempts == 2
            assert futures[1].attempts == 1
        _assert_outputs_equal(results[0], reference[0], "retried request")
        _assert_outputs_equal(results[1], reference[1], "untouched request")
        assert stats["worker_crashes"] == 1
        assert stats["retries"] == 1
        assert stats["completed"] == 2

    def test_poison_request_is_quarantined_not_starving(
        self, rctx, fault_plan_program
    ):
        # Regression for the crash-loop bug: a request that kills its
        # worker on every attempt must fail *itself* with a typed error
        # while later requests still complete.
        batches = _batches(rctx, 3, seed=78)
        reference = fault_plan_program.run_batch(batches[1:])
        chaos = FaultPlan(0, scripted=_crash_attempts(0, 2))
        policy = FaultPolicy(max_attempts=2, backoff_base_s=0.01)
        with ShardedExecutor(fault_plan_program, 2, chaos=chaos, policy=policy,
                             max_crash_respawns=10,
                             warm_inputs=batches[0]) as pool:
            poison = pool.submit(batches[0])
            rest = [pool.submit(b) for b in batches[1:]]
            with pytest.raises(PoisonRequest) as info:
                poison.result(timeout=RESULT_TIMEOUT)
            results = [f.result(timeout=RESULT_TIMEOUT) for f in rest]
            stats = pool.stats()
        assert info.value.attempts == 2
        assert len(info.value.causes) == 2
        assert all("crash" in c for c in info.value.causes)
        for got, want in zip(results, reference):
            _assert_outputs_equal(got, want, "request after poison")
        assert stats["poisoned"] == 1
        assert stats["completed"] == 2
        assert stats["errors"] == 1

    def test_crash_after_compute_stays_exactly_once(
        self, rctx, fault_plan_program
    ):
        # Work lost *after* evaluation but before the reply: the retry
        # re-executes and the caller still sees exactly one result.
        batches = _batches(rctx, 1, seed=79)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(
            0, scripted={("post_evaluate", 0, 0): FaultAction("crash",
                                                              "post_evaluate")}
        )
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos,
                             warm_inputs=batches[0]) as pool:
            fut = pool.submit(batches[0])
            result = fut.result(timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        _assert_outputs_equal(result, reference[0], "post-compute crash")
        assert stats["completed"] == 1
        assert stats["worker_crashes"] == 1


class TestWireCorruption:
    def test_reply_flip_is_detected_and_retried(self, rctx, fault_plan_program):
        batches = _batches(rctx, 1, seed=80)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(
            0, scripted={("reply_encode", 0, 0): FaultAction("flip",
                                                             "reply_encode",
                                                             salt=5)}
        )
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos,
                             warm_inputs=batches[0]) as pool:
            result = pool.submit(batches[0]).result(timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        _assert_outputs_equal(result, reference[0], "reply flip")
        assert stats["wire_corruptions"] == 1
        assert stats["retries"] == 1
        assert stats["worker_crashes"] == 0  # corruption never kills a worker

    def test_request_flip_is_detected_worker_side(self, rctx, fault_plan_program):
        batches = _batches(rctx, 1, seed=81)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(
            0, scripted={("pre_dispatch", 0, 0): FaultAction("flip",
                                                             "pre_dispatch",
                                                             salt=11)}
        )
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos,
                             warm_inputs=batches[0]) as pool:
            result = pool.submit(batches[0]).result(timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        _assert_outputs_equal(result, reference[0], "request flip")
        assert stats["wire_corruptions"] == 1
        assert stats["worker_crashes"] == 0


class TestHangsAndDeadlines:
    def test_stopped_worker_is_declared_hung_and_replaced(
        self, rctx, fault_plan_program
    ):
        batches = _batches(rctx, 1, seed=82)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(
            0, scripted={("pre_evaluate", 0, 0): FaultAction("stop",
                                                             "pre_evaluate")}
        )
        policy = FaultPolicy(hang_timeout_s=0.8, backoff_base_s=0.01)
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos, policy=policy,
                             warm_inputs=batches[0]) as pool:
            fut = pool.submit(batches[0])
            result = fut.result(timeout=RESULT_TIMEOUT)
            stats = pool.stats()
            assert fut.attempts == 2
        _assert_outputs_equal(result, reference[0], "post-hang retry")
        assert stats["hang_kills"] == 1
        assert stats["respawns"] == 1
        assert stats["worker_crashes"] == 0  # hangs are not crashes
        assert stats["completed"] == 1

    def test_slow_worker_is_not_hung(self, rctx, fault_plan_program):
        batches = _batches(rctx, 1, seed=83)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(
            0, scripted={("pre_evaluate", 0, 0): FaultAction("slow",
                                                             "pre_evaluate",
                                                             duration_s=1.0)}
        )
        # Timeout shorter than the injected slowness: only heartbeats
        # tell the parent this worker is alive and making progress.
        policy = FaultPolicy(hang_timeout_s=0.5)
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos, policy=policy,
                             warm_inputs=batches[0]) as pool:
            result = pool.submit(batches[0]).result(timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        _assert_outputs_equal(result, reference[0], "slow request")
        assert stats["hang_kills"] == 0
        assert stats["retries"] == 0

    def test_deadline_fails_in_flight_request_typed(
        self, rctx, fault_plan_program
    ):
        batches = _batches(rctx, 2, seed=84)
        reference = fault_plan_program.run_batch(batches[1:])
        chaos = FaultPlan(
            0, scripted={("pre_evaluate", 0, 0): FaultAction("hang",
                                                             "pre_evaluate",
                                                             duration_s=30.0)}
        )
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos,
                             warm_inputs=batches[0]) as pool:
            doomed = pool.submit(batches[0], deadline_s=0.5)
            follow = pool.submit(batches[1])
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=RESULT_TIMEOUT)
            result = follow.result(timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        _assert_outputs_equal(result, reference[0], "request after deadline")
        assert stats["deadline_failures"] == 1
        assert stats["worker_crashes"] == 0  # deadline kills are not crashes
        assert stats["completed"] == 1

    def test_deadline_covers_queue_wait(self, rctx, fault_plan_program):
        # One worker, head-of-line blocked by a slow request: the queued
        # request's deadline fires without it ever being dispatched.
        batches = _batches(rctx, 2, seed=85)
        chaos = FaultPlan(
            0, scripted={("pre_evaluate", 0, 0): FaultAction("slow",
                                                             "pre_evaluate",
                                                             duration_s=1.5)}
        )
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos,
                             warm_inputs=batches[0]) as pool:
            slow = pool.submit(batches[0])
            queued = pool.submit(batches[1], deadline_s=0.3)
            with pytest.raises(DeadlineExceeded) as info:
                queued.result(timeout=RESULT_TIMEOUT)
            slow.result(timeout=RESULT_TIMEOUT)  # the slow one still lands
            stats = pool.stats()
        assert info.value.attempts == 0  # never dispatched
        assert stats["deadline_failures"] == 1
        assert stats["completed"] == 1


class TestDegradation:
    def test_crash_loop_degrades_to_inline(self, rctx, fault_plan_program):
        batches = _batches(rctx, 3, seed=86)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(0, crash_rate=1.0)  # every dispatch dies
        policy = FaultPolicy(max_attempts=20, crash_loop_threshold=2,
                             backoff_base_s=0.01, degrade_to_inline=True)
        pool = ShardedExecutor(fault_plan_program, 2, chaos=chaos, policy=policy,
                               max_crash_respawns=50, warm_inputs=batches[0])
        with pool:
            futures = [pool.submit(b) for b in batches]
            with pytest.warns(RuntimeWarning, match="degrading to the inline"):
                results = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
                # Submissions after degradation serve inline too.
                late = pool.submit(batches[0]).result(timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        for got, want in zip(results, reference):
            _assert_outputs_equal(got, want, "degraded request")
        _assert_outputs_equal(late, reference[0], "post-degrade request")
        assert stats["degraded"] is True
        assert stats["completed"] == 4

    def test_breaker_without_degradation_fails_fast(
        self, rctx, fault_plan_program
    ):
        batches = _batches(rctx, 2, seed=87)
        chaos = FaultPlan(0, crash_rate=1.0)
        policy = FaultPolicy(max_attempts=20, crash_loop_threshold=2,
                             backoff_base_s=0.01)
        with ShardedExecutor(fault_plan_program, 2, chaos=chaos, policy=policy,
                             max_crash_respawns=50,
                             warm_inputs=batches[0]) as pool:
            futures = [pool.submit(b) for b in batches]
            with pytest.raises(WorkerCrash, match="crash loop"):
                for fut in futures:
                    fut.result(timeout=RESULT_TIMEOUT)
            with pytest.raises(RuntimeError, match="stopped"):
                pool.submit(batches[0])


class TestBatchTimeoutAndClose:
    def test_run_batch_timeout_cancels_and_pool_is_reusable(
        self, rctx, fault_plan_program
    ):
        batches = _batches(rctx, 4, seed=88)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(
            0,
            scripted={
                ("pre_evaluate", req, 0): FaultAction(
                    "slow", "pre_evaluate", duration_s=0.6
                )
                for req in range(4)
            },
        )
        with ShardedExecutor(fault_plan_program, 1, chaos=chaos,
                             warm_inputs=batches[0]) as pool:
            with pytest.raises(TimeoutError, match="remains serviceable"):
                pool.run_batch(batches, timeout=0.3)
            stats_after_timeout = pool.stats()
            # Same pool, fresh batch (request ids beyond the scripted
            # faults): everything completes and matches bit-for-bit.
            results = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        assert stats_after_timeout["cancelled"] >= 1
        for got, want in zip(results, reference):
            _assert_outputs_equal(got, want, "post-timeout batch")
        assert stats["completed"] >= len(batches)

    def test_close_is_idempotent_and_loud_on_stuck_workers(
        self, rctx, fault_plan_program
    ):
        batches = _batches(rctx, 1, seed=89)
        pool = ShardedExecutor(fault_plan_program, 2, warm_inputs=batches[0])
        pool.start()
        pids = pool.worker_pids()
        os.kill(pids[0], signal.SIGSTOP)  # ignores the shutdown sentinel
        with pytest.warns(RuntimeWarning, match=rf"SIGKILL.*{pids[0]}"):
            pool.close()
        pool.close()  # second close must be a silent no-op
        for pid in pids:
            # Every worker is gone — none leaked.
            with pytest.raises(OSError):
                os.kill(pid, 0)


# ----------------------------------------------------------------------
# Seeded chaos matrix (acceptance)
# ----------------------------------------------------------------------


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_surviving_outputs_are_bit_identical_under_chaos(
        self, rctx, fault_plan_program, seed
    ):
        batches = _batches(rctx, 8, seed=100 + seed)
        reference = fault_plan_program.run_batch(batches)
        chaos = FaultPlan(
            seed,
            crash_rate=0.12,
            stop_rate=0.08,
            slow_rate=0.15,
            crash_after_rate=0.08,
            request_flip_rate=0.10,
            reply_flip_rate=0.10,
            slow_s=0.05,
        )
        policy = FaultPolicy(hang_timeout_s=1.0, max_attempts=8,
                             backoff_base_s=0.01, backoff_max_s=0.1)
        with ShardedExecutor(fault_plan_program, 2, chaos=chaos, policy=policy,
                             max_crash_respawns=100,
                             warm_inputs=batches[0]) as pool:
            results = pool.run_batch(batches, timeout=RESULT_TIMEOUT)
            stats = pool.stats()
        # Zero lost, zero duplicated: exactly one result per request, in
        # submission order, byte-identical to the fault-free replay.
        assert stats["completed"] == len(batches)
        assert stats["errors"] == 0
        for i, (got, want) in enumerate(zip(results, reference)):
            _assert_outputs_equal(got, want, f"chaos seed {seed} entry {i}")

    def test_chaos_schedule_is_identical_across_runs(self):
        plans = [
            FaultPlan(4, crash_rate=0.2, stop_rate=0.1, slow_rate=0.2,
                      request_flip_rate=0.1, reply_flip_rate=0.1)
            for _ in range(2)
        ]
        keys = [(site, req, att)
                for site in ("pre_dispatch", "pre_evaluate", "post_evaluate",
                             "reply_encode")
                for req in range(30) for att in range(4)]
        assert [plans[0].decide(*k) for k in keys] == [
            plans[1].decide(*k) for k in keys
        ]
