"""Telemetry layer: registry semantics, TRC1 wire frames, cross-process
trace propagation through the sharded pool, and deterministic span
structure under seeded chaos."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ckks.serialization import WireFormatError
from repro.runtime import (
    CtSpec,
    FaultPlan,
    FaultPolicy,
    ShardedExecutor,
    compile_fn,
    deserialize_trace_frame,
    get_telemetry,
    serialize_trace_context,
    serialize_worker_spans,
)
from repro.runtime.chaos import FaultAction
from repro.runtime.telemetry import Telemetry, TraceContext, WorkerSpanRecorder

RESULT_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test sees the process-wide registry zeroed and disabled."""
    telemetry = get_telemetry()
    telemetry.reset()
    telemetry.disable()
    yield telemetry
    telemetry.reset()
    telemetry.disable()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counters_gauges_histograms(self):
        t = Telemetry()
        t.counter("reqs", pool="a").inc()
        t.counter("reqs", pool="a").inc(2)
        t.counter("reqs", pool="b").inc()
        assert t.counter("reqs", pool="a").value == 3
        assert t.counter("reqs", pool="b").value == 1
        t.gauge("depth").set(7)
        assert t.gauge("depth").value == 7
        h = t.histogram("lat_s")
        for v in (0.001, 0.002, 0.5):
            h.observe(v)
        assert h.count == 3
        assert h.summary()["max_s"] == 0.5
        assert h.summary()["min_s"] == 0.001

    def test_metrics_always_on_when_tracing_disabled(self):
        t = Telemetry()  # enabled=False
        t.counter("n").inc()
        assert t.counter("n").value == 1
        assert t.start_trace("x").ctx.sampled is False
        assert t.spans() == []

    def test_group_is_a_view_and_reset_keeps_cells(self):
        t = Telemetry()
        g = t.group("exec", pool="0").declare("submitted", "completed")
        g.inc("submitted", 5)
        assert g.to_dict() == {"submitted": 5, "completed": 0}
        # registry and group see the same cell
        assert t.counter("exec_submitted", pool="0").value == 5
        t.reset()
        assert g.to_dict() == {"submitted": 0, "completed": 0}
        g.inc("submitted")  # the cell is still live after reset
        assert t.counter("exec_submitted", pool="0").value == 1

    def test_prometheus_exposition(self):
        t = Telemetry()
        t.counter("hits", store="s1").inc(4)
        t.gauge("depth").set(2)
        t.histogram("lat_s").observe(0.002)
        text = t.export_prometheus()
        assert "# TYPE hits counter" in text
        assert 'hits{store="s1"} 4' in text
        assert "depth 2" in text
        assert 'lat_s_bucket{le="+Inf"} 1' in text
        assert "lat_s_count 1" in text

    def test_sampling_gates_spans_not_counters(self):
        t = Telemetry(enabled=True, sample_rate=0.0)
        span = t.start_trace("req")
        assert not span  # no-op handle
        span.end()
        t.counter("n").inc()
        assert t.spans() == []
        assert t.counter("n").value == 1

    def test_events_record_only_when_enabled(self):
        t = Telemetry()
        t.event("retry", code=1)
        assert t.export_events() == []
        t.enable()
        t.event("retry", code=1)
        [event] = t.export_events()
        assert event["event"] == "retry" and event["code"] == 1


# ---------------------------------------------------------------------------
# Spans + exports
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_and_structure(self):
        t = Telemetry(enabled=True)
        root = t.start_trace("request")
        with t.child_span("phase1", root.ctx):
            pass
        child = t.child_span("phase2", root.ctx)
        with t.child_span("inner", child.ctx):
            pass
        child.end()
        root.end()
        [trace_id] = t.trace_ids()
        structure = t.span_structure(trace_id)
        assert structure == [
            {
                "name": "request",
                "category": "request",
                "children": [
                    {"name": "phase1", "category": "request", "children": []},
                    {
                        "name": "phase2",
                        "category": "request",
                        "children": [
                            {
                                "name": "inner",
                                "category": "request",
                                "children": [],
                            }
                        ],
                    },
                ],
            }
        ]

    def test_span_end_is_idempotent(self):
        t = Telemetry(enabled=True)
        span = t.start_trace("x")
        span.end()
        span.end()
        assert len(t.spans()) == 1

    def test_chrome_export_shape(self, tmp_path):
        t = Telemetry(enabled=True)
        with t.start_trace("request") as root:
            t.record_span("leg", root.ctx, 1.0, 2.0)
        path = tmp_path / "trace.json"
        doc = t.export_chrome_trace(path)
        assert json.loads(path.read_text()) == doc
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2
        assert any(m["name"] == "process_name" for m in metadata)
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert {"trace_id", "span_id", "parent_id"} <= set(e["args"])


# ---------------------------------------------------------------------------
# TRC1 wire format
# ---------------------------------------------------------------------------


class TestTrc1:
    def test_context_round_trip(self):
        ctx = TraceContext(trace_id=71, span_id=13, sampled=True)
        kind, out = deserialize_trace_frame(serialize_trace_context(ctx))
        assert kind == "ctx" and out == ctx

    def test_worker_span_batch_round_trip(self):
        rec = WorkerSpanRecorder(TraceContext(5, 9, True), attempt=2)
        with rec.span("evaluate"):
            pass
        kind, spans = deserialize_trace_frame(rec.payload())
        assert kind == "spans"
        [span] = spans
        assert span["trace_id"] == 5 and span["parent_id"] == 9
        assert span["name"] == "evaluate"
        assert span["attrs"]["status"] == "ok"

    def test_worker_ids_are_deterministic(self):
        def ids():
            rec = WorkerSpanRecorder(TraceContext(5, 9, True), attempt=1)
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
            return [s["span_id"] for s in rec.spans]

        assert ids() == ids()
        assert len(set(ids())) == 2

    def test_inactive_recorder_is_inert(self):
        rec = WorkerSpanRecorder(None, attempt=0)
        with rec.span("evaluate"):
            pass
        assert rec.spans == [] and rec.payload() is None

    def test_corrupt_frames_raise(self):
        blob = bytearray(serialize_trace_context(TraceContext(1, 2, True)))
        blob[-1] ^= 0xFF  # break the CRC
        with pytest.raises(WireFormatError):
            deserialize_trace_frame(bytes(blob))
        with pytest.raises(WireFormatError):
            deserialize_trace_frame(serialize_worker_spans([])[:8])


# ---------------------------------------------------------------------------
# Cross-process propagation through the pool
# ---------------------------------------------------------------------------


def _make_plan(rctx, rlk):
    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)

    def program(ev, x, y):
        return (ev.multiply_relin_rescale(ev.add(x, y), y, rlk),)

    return compile_fn(program, rctx.evaluator, [spec, spec])


def _encrypt(rctx, rng):
    level = rctx.params.num_primes
    values = rng.standard_normal(rctx.params.degree // 2)
    return rctx.encryptor.encrypt(rctx.encoder.encode(values, level=level))


def _serve(plan, rctx, *, chaos, n_requests, telemetry):
    rng = np.random.default_rng(11)
    batches = [[_encrypt(rctx, rng), _encrypt(rctx, rng)] for _ in range(n_requests)]
    pool = ShardedExecutor(
        plan, 2, chaos=chaos, policy=FaultPolicy(max_attempts=5)
    )
    with pool:
        if pool.stats()["inline"]:
            pytest.skip("fork unavailable; cross-process tracing needs a pool")
        pool.run_batch(batches, timeout=RESULT_TIMEOUT)
    return {
        trace_id: telemetry.span_structure(trace_id)
        for trace_id in sorted(telemetry.trace_ids())
    }


class TestCrossProcess:
    def test_crash_retry_yields_one_nested_trace(self, rctx, rlk, clean_telemetry):
        telemetry = clean_telemetry
        telemetry.enable()
        plan = _make_plan(rctx, rlk)
        chaos = FaultPlan(
            seed=7,
            scripted={
                ("pre_evaluate", 0, 0): FaultAction(
                    kind="crash", site="pre_evaluate"
                )
            },
        )
        structures = _serve(plan, rctx, chaos=chaos, n_requests=3, telemetry=telemetry)
        telemetry.disable()

        # Request 0 is the crash-retried one; find its trace by shape.
        retried = []
        for trace_id, structure in structures.items():
            spans = telemetry.spans(trace_id)
            attempts = [s for s in spans if s.name.startswith("attempt-")]
            if len(attempts) >= 2:
                retried.append((trace_id, structure, spans, attempts))
        assert len(retried) == 1
        trace_id, structure, spans, attempts = retried[0]

        names = [s.name for s in spans]
        assert names.count("attempt-0") == 1
        assert names.count("attempt-1") == 1
        assert names.count("backoff") == 1
        # Exactly one success span: the retry's worker-side evaluate.
        successes = [
            s
            for s in spans
            if s.name == "evaluate" and s.attrs.get("status") == "ok"
        ]
        assert len(successes) == 1
        # ... and it crossed the process boundary under the same trace id.
        parent_pids = {s.pid for s in spans if s.name.startswith("attempt-")}
        worker_pids = {s.pid for s in spans if s.category == "worker"}
        assert worker_pids and worker_pids.isdisjoint(parent_pids)
        # Attempt spans are children of the request root; worker spans
        # are children of their attempt span.
        [root] = structure
        assert root["name"] == "request"
        child_names = [c["name"] for c in root["children"]]
        assert "attempt-0" in child_names and "attempt-1" in child_names
        retry_children = [
            c["name"]
            for c in root["children"]
            if c["name"] == "attempt-1"
            for c in c["children"]
        ]
        assert retry_children == ["deserialize", "evaluate", "serialize"]
        # The crashed attempt's worker spans died with the worker.
        first_attempt = next(
            c for c in root["children"] if c["name"] == "attempt-0"
        )
        assert first_attempt["children"] == []
        # Outcome attrs recorded on the parent-side attempt spans.
        by_name = {s.name: s for s in attempts}
        assert by_name["attempt-0"].attrs["status"] == "crash"
        assert by_name["attempt-1"].attrs["status"] == "ok"

    def test_seeded_chaos_span_structure_is_reproducible(
        self, rctx, rlk, clean_telemetry
    ):
        telemetry = clean_telemetry
        plan = _make_plan(rctx, rlk)

        def run():
            telemetry.reset()
            telemetry.enable()
            chaos = FaultPlan(
                seed=5,
                crash_rate=0.25,
                scripted={
                    ("pre_evaluate", 1, 0): FaultAction(
                        kind="crash", site="pre_evaluate"
                    )
                },
            )
            structures = _serve(
                plan, rctx, chaos=chaos, n_requests=4, telemetry=telemetry
            )
            telemetry.disable()
            return json.dumps(structures, sort_keys=True)

        first, second = run(), run()
        assert first == second
        assert "attempt-1" in first  # the chaos actually retried something

    def test_disabled_pool_records_no_spans(self, rctx, rlk, clean_telemetry):
        telemetry = clean_telemetry
        plan = _make_plan(rctx, rlk)
        rng = np.random.default_rng(3)
        with ShardedExecutor(plan, 1) as pool:
            pool.run_batch(
                [[_encrypt(rctx, rng), _encrypt(rctx, rng)]],
                timeout=RESULT_TIMEOUT,
            )
            stats = pool.stats()
        assert telemetry.spans() == []
        assert telemetry.export_events() == []
        assert stats["completed"] == 1  # counters still flow when disabled
