"""Executors: bit-identity with the eager Evaluator, dispatch-count
guards proving CSE/hoisting fire, buffer release, and the plan cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks.keyswitch import KeySwitchEngine
from repro.ckks.linear import HomomorphicLinearTransform
from repro.runtime import (
    CtSpec,
    compile_fn,
    plan_cache_info,
    trace,
)


def _spec(rctx, level=None):
    level = rctx.params.num_primes if level is None else level
    return CtSpec(level=level, scale=rctx.params.scale)


def _assert_ct_equal(a, b, what=""):
    assert a.scale == b.scale, what
    assert a.size == b.size, what
    for i, (pa, pb) in enumerate(zip(a.parts, b.parts)):
        assert np.array_equal(pa.data, pb.data), f"{what} part {i} differs"


@pytest.fixture(scope="module")
def sample_ct(rctx):
    rng = np.random.default_rng(3)
    return rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots))


def _pipeline(gks, rlk):
    """Rotate / multiply / relinearize / rescale / add — every op class."""

    def program(ev, x, y):
        rot = ev.rotate(x, 1, gks)
        rot2 = ev.rotate(x, 2, gks)
        prod = ev.multiply_relin_rescale(ev.add(rot, rot2), y, rlk)
        return prod, rot

    return program


class TestBitIdentity:
    def test_plan_matches_eager_on_full_pipeline(self, rctx, gks, rlk, sample_ct):
        rng = np.random.default_rng(4)
        ct_y = rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots))
        program = _pipeline(gks, rlk)
        eager_prod, eager_rot = program(rctx.evaluator, sample_ct, ct_y)
        plan = compile_fn(
            program, rctx.evaluator, [_spec(rctx), _spec(rctx)]
        )
        prod, rot = plan.run([sample_ct, ct_y])
        _assert_ct_equal(prod, eager_prod, "reference-interpreter prod")
        _assert_ct_equal(rot, eager_rot, "reference-interpreter rot")
        ((bprod, brot),) = plan.run_batch([[sample_ct, ct_y]])
        _assert_ct_equal(bprod, eager_prod, "batched prod")
        _assert_ct_equal(brot, eager_rot, "batched rot")

    def test_batched_replay_over_many_inputs(self, rctx, gks, rlk):
        rng = np.random.default_rng(5)
        program = _pipeline(gks, rlk)
        plan = compile_fn(program, rctx.evaluator, [_spec(rctx), _spec(rctx)])
        batches = [
            [
                rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
                rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
            ]
            for _ in range(3)
        ]
        replayed = plan.run_batch(batches)
        for inputs, outs in zip(batches, replayed):
            eager = program(rctx.evaluator, *inputs)
            for got, want in zip(outs, eager):
                _assert_ct_equal(got, want, "replay vs eager")

    def test_plain_ops_bit_identical(self, rctx, sample_ct):
        rng = np.random.default_rng(6)
        pt = rctx.encode(rng.uniform(-1, 1, rctx.params.slots))
        second = rctx.encoder.encode(
            rng.uniform(-1, 1, rctx.params.slots),
            level=pt.level,
            scale=sample_ct.scale * pt.scale,
        )

        def program(ev, x):
            return ev.add_plain(ev.multiply_plain(x, pt), second)

        eager = program(rctx.evaluator, sample_ct)
        plan = compile_fn(program, rctx.evaluator, [_spec(rctx)])
        _assert_ct_equal(plan.run([sample_ct])[0], eager, "run plain")
        _assert_ct_equal(plan.run_batch([[sample_ct]])[0][0], eager, "batch plain")


class TestFusedReplay:
    def test_fused_matches_eager_on_full_pipeline(self, rctx, gks, rlk, sample_ct):
        rng = np.random.default_rng(11)
        ct_y = rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots))
        program = _pipeline(gks, rlk)
        eager_prod, eager_rot = program(rctx.evaluator, sample_ct, ct_y)
        plan = compile_fn(program, rctx.evaluator, [_spec(rctx), _spec(rctx)])
        ((fprod, frot),) = plan.run_batch([[sample_ct, ct_y]], fused=True)
        _assert_ct_equal(fprod, eager_prod, "fused prod")
        _assert_ct_equal(frot, eager_rot, "fused rot")

    def test_fused_bsgs_matches_batched_and_cuts_dispatch(self, rctx, sample_ct):
        slots = rctx.params.slots
        rng = np.random.default_rng(12)
        matrix = rng.uniform(-1, 1, (slots, slots))
        hlt = HomomorphicLinearTransform(rctx, matrix, level=rctx.params.num_primes)
        keys = rctx.galois_keys(
            hlt.required_rotations(), levels=[rctx.params.num_primes]
        )
        plan = hlt.plan_for(sample_ct.scale, keys)
        [batched] = plan.run_batch([[sample_ct]])[0]
        [fused] = plan.run_batch([[sample_ct]], fused=True)[0]
        _assert_ct_equal(fused, batched, "fused BSGS")
        # The headline dispatch claim: fused schedule steps vs one
        # dispatch per graph node in the batched replayer, >= 3x fewer.
        stats = plan.stats()
        assert stats["dispatch_count_fused"] * 3 <= stats["dispatch_count_batched"]
        assert stats["fused_groups"] >= 1
        assert stats["arena_slots"] >= 1

    def test_sharded_pool_replays_fused(self, rctx, gks, rlk, sample_ct):
        from repro.runtime import ShardedExecutor

        rng = np.random.default_rng(13)
        ct_y = rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots))
        plan = compile_fn(
            _pipeline(gks, rlk), rctx.evaluator, [_spec(rctx), _spec(rctx)]
        )
        ((bprod, brot),) = plan.run_batch([[sample_ct, ct_y]])
        with ShardedExecutor(plan, 1, fused=True) as pool:
            assert pool.stats()["fused"]
            ((sprod, srot),) = pool.run_batch([[sample_ct, ct_y]], timeout=120)
        _assert_ct_equal(sprod, bprod, "fused sharded prod")
        _assert_ct_equal(srot, brot, "fused sharded rot")

    def test_fused_executor_cached_per_backend(self, rctx, gks):
        def program(ev, x):
            return ev.rotate(x, 1, gks)

        plan = compile_fn(program, rctx.evaluator, [_spec(rctx)])
        assert plan.fused() is plan.fused()
        assert plan.fused("numpy") is plan.fused()


class TestDispatchCounts:
    def test_hoisting_fires_in_planned_bsgs(self, rctx, monkeypatch, sample_ct):
        slots = rctx.params.slots
        rng = np.random.default_rng(8)
        matrix = rng.uniform(-1, 1, (slots, slots))
        hlt = HomomorphicLinearTransform(rctx, matrix, level=rctx.params.num_primes)
        keys = rctx.galois_keys(
            hlt.required_rotations(), levels=[rctx.params.num_primes]
        )

        calls = {"n": 0}
        real = KeySwitchEngine.decompose

        def counting(self, poly):
            calls["n"] += 1
            return real(self, poly)

        monkeypatch.setattr(KeySwitchEngine, "decompose", counting)

        calls["n"] = 0
        hlt.emit(rctx.evaluator, sample_ct, keys)  # unplanned eager dispatch
        eager_decomposes = calls["n"]

        plan = hlt.plan_for(sample_ct.scale, keys)
        plan.run([sample_ct])  # warm (counts once)
        calls["n"] = 0
        plan.run([sample_ct])
        planned_decomposes = calls["n"]

        baby = {j for _, j in hlt._nonzero if j != 0}
        giants = {g for g, _ in hlt._nonzero if g != 0}
        # Eager pays one digit expansion per rotation; the plan hoists all
        # baby steps onto a single shared decomposition.
        assert eager_decomposes == len(baby) + len(giants)
        assert planned_decomposes == 1 + len(giants)
        assert planned_decomposes < eager_decomposes

    def test_cse_eliminates_duplicate_keyswitch_work(
        self, rctx, gks, monkeypatch, sample_ct
    ):
        calls = {"n": 0}
        real = KeySwitchEngine.apply

        def counting(self, dec, key):
            calls["n"] += 1
            return real(self, dec, key)

        monkeypatch.setattr(KeySwitchEngine, "apply", counting)

        def program(ev, x):
            return ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 1, gks))

        plan = compile_fn(program, rctx.evaluator, [_spec(rctx)])
        calls["n"] = 0
        plan.run([sample_ct])
        assert calls["n"] == 1  # two traced rotations, one executed


class TestPlanMechanics:
    def test_process_level_cache_hits_on_retrace(self, rctx, gks):
        def program(ev, x):
            return ev.rotate(x, 1, gks)

        p1 = compile_fn(program, rctx.evaluator, [_spec(rctx)])
        p2 = compile_fn(program, rctx.evaluator, [_spec(rctx)])
        assert p1 is p2
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_buffers_released_by_refcount(self, rctx, gks, rlk, sample_ct):
        plan = compile_fn(
            _pipeline(gks, rlk), rctx.evaluator, [_spec(rctx), _spec(rctx)]
        )
        # Every non-output intermediate must appear in exactly one release
        # slot; outputs must never be released.
        released = [v for slot in plan._releases for v in slot]
        assert len(released) == len(set(released))
        outputs = set(plan.graph.outputs)
        assert not outputs & set(released)
        interior = {
            n.id
            for n in plan.graph.nodes
            if n.id not in outputs and plan.graph.consumer_counts()[n.id] > 0
        }
        assert interior == set(released)
        plan.run([sample_ct, sample_ct])  # and execution still works

    def test_input_validation_messages(self, rctx, gks, sample_ct):
        def program(ev, x):
            return ev.rotate(x, 1, gks)

        plan = compile_fn(program, rctx.evaluator, [_spec(rctx)])
        with pytest.raises(ValueError, match="expects 1 input"):
            plan.run([])
        wrong_level = rctx.evaluator.rescale(sample_ct, times=1)
        with pytest.raises(ValueError, match="compiled for level"):
            plan.run([wrong_level])
