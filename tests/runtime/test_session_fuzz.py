"""Seeded frame fuzzer over the serving fabric's wire formats.

Every frame family the fabric parses — session frames (FHL1 hello,
FHA1 ack, FPL1 plan, FBT1 batch, FCT1 control) and the boundary frames
riding inside worker messages (ENV1 envelopes, FLT1 faults, TRC1
traces) — is mutated under a fixed seed: flipped bytes, corrupted
length prefixes, zeroed CRCs, swapped magics, truncations, junk tails,
and CRC-*valid* malformed payloads (mutate, then re-frame).

The invariant under test is the contract in ``docs/formats.md``: every
mutation yields a **typed rejection** (:class:`WireFormatError` or one
of the session-error types) **or a dropped session** — never a hung
pump thread, never a dead host process, and never an unpickle of bytes
whose CRC did not check out.

Tier-1 acceptance requires at least 500 seeded mutations; the counts
below are asserted so a refactor cannot silently shrink the battery.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
import zlib

import numpy as np
import pytest

from repro.ckks.serialization import WireFormatError, pack_frame
from repro.runtime import CtSpec, compile_fn
from repro.runtime.coordinator import (
    SESSION_ACK_MAGIC,
    SESSION_BATCH_MAGIC,
    SESSION_CONTROL_MAGIC,
    SESSION_HELLO_MAGIC,
    SESSION_PLAN_MAGIC,
    HostEnv,
    _auth_client,
    _decode_hello,
    _encode_hello,
    _session_loads,
    decode_batch,
    recv_session_frame,
    send_session_frame,
)
from repro.runtime.executor import _decode_value, _WorkerConfig
from repro.runtime.faults import WorkerCrash, deserialize_fault, serialize_fault
from repro.runtime.plan_io import serialize_plan
from repro.runtime.telemetry import (
    TraceContext,
    deserialize_trace_frame,
    serialize_trace_context,
    serialize_worker_spans,
)
from repro.runtime.worker_host import StandaloneWorkerHost

# Exceptions that count as a *typed rejection*: exactly the set the
# session loop treats as end-of-session (plus TimeoutError for reads
# that outlive a dropped peer).  Anything else would kill a host.
ALLOWED = (
    WireFormatError,
    ValueError,  # includes UnicodeDecodeError
    struct.error,
    KeyError,
    IndexError,
    EOFError,
    ConnectionError,
    OSError,
    pickle.UnpicklingError,
    TimeoutError,
)

N_DECODE_MUTATIONS = 520
N_LIVE_MUTATIONS = 48
FUZZ_SEED = 0xF0CC


def _crc_ok(frame: bytes) -> bool:
    """Whether ``frame`` still parses as one intact frame container."""
    if len(frame) < 12:
        return False
    (length,) = struct.unpack_from("<I", frame, 4)
    if len(frame) != 12 + length:
        return False
    (crc,) = struct.unpack_from("<I", frame, 8 + length)
    # The container CRC covers the payload only (see pack_frame).
    return zlib.crc32(frame[8 : 8 + length]) & 0xFFFFFFFF == crc


def _mutate(rng: np.random.Generator, frame: bytes) -> bytes:
    """One seeded mutation drawn from the battery's mutation classes."""
    kind = int(rng.integers(0, 7))
    buf = bytearray(frame)
    if kind == 0:  # flip one byte anywhere (magic, length, payload, CRC)
        pos = int(rng.integers(0, len(buf)))
        buf[pos] ^= int(rng.integers(1, 256))
        return bytes(buf)
    if kind == 1:  # truncate
        return bytes(buf[: int(rng.integers(0, len(buf)))])
    if kind == 2:  # junk tail
        return bytes(buf) + rng.bytes(int(rng.integers(1, 64)))
    if kind == 3:  # huge length prefix (must reject from the header)
        struct.pack_into("<I", buf, 4, 0xFFFF_FF00)
        return bytes(buf)
    if kind == 4:  # zeroed CRC
        buf[-4:] = b"\x00\x00\x00\x00"
        return bytes(buf)
    if kind == 5:  # swapped magic
        buf[:4] = rng.bytes(4)
        return bytes(buf)
    # kind == 6: CRC-valid malformed payload — mutate, then re-frame, so
    # the container checks out and the *payload decoder* must hold.
    tag = bytes(buf[:4])
    payload = bytearray(buf[8:-4])
    if payload:
        pos = int(rng.integers(0, len(payload)))
        payload[pos] ^= int(rng.integers(1, 256))
    return pack_frame(tag, bytes(payload))


@pytest.fixture(scope="module")
def fuzz_plan(rctx, rlk):
    def program(ev, x, y):
        return (ev.multiply_relin_rescale(ev.add(x, y), y, rlk),)

    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
    return compile_fn(program, rctx.evaluator, [spec, spec])


def _worker_cfg(plan):
    env = HostEnv(
        params=plan.evaluator.params, primes=tuple(plan.evaluator.basis.primes)
    )
    return _WorkerConfig(
        coeff_bits=0, io_s=0.0, fused=False, chaos=None, heartbeat_s=None, env=env
    )


class TestDecodeFuzz:
    """Mutation battery against the decoders themselves (no processes):
    feeds each mutated session frame through a socketpair into
    ``recv_session_frame`` and — when the container survives — through
    the same payload decoder the host dispatch uses."""

    def _corpus(self, fuzz_plan):
        hello = _encode_hello(True, fuzz_plan.signature, _worker_cfg(fuzz_plan))
        reply = pickle.dumps(("ok", 7, 0, [b"payload-bytes" * 17], None))

        def decode_hello(payload):
            _decode_hello(payload)

        def decode_batch_entries(payload):
            for _slot, msg_bytes in decode_batch(payload):
                _session_loads(msg_bytes)

        def decode_control(payload):
            op = _session_loads(payload)
            if not isinstance(op, tuple) or not op:
                raise WireFormatError(f"malformed session control op {op!r}")

        def decode_ack(payload):
            struct.unpack_from("<BI", payload, 0)

        return [
            ("FHL1", pack_frame(SESSION_HELLO_MAGIC, hello), decode_hello),
            (
                "FBT1",
                pack_frame(
                    SESSION_BATCH_MAGIC,
                    struct.pack("<I", 1)
                    + struct.pack("<II", 3, len(reply))
                    + reply,
                ),
                decode_batch_entries,
            ),
            (
                "FCT1",
                pack_frame(SESSION_CONTROL_MAGIC, pickle.dumps(("spawn", 3))),
                decode_control,
            ),
            (
                "FHA1",
                pack_frame(SESSION_ACK_MAGIC, struct.pack("<BI", 1, 4321)),
                decode_ack,
            ),
        ]

    @staticmethod
    def _feed_session(mutant: bytes):
        """Run one mutant through recv_session_frame over a socketpair;
        returns (tag, payload) or raises what the pump would see."""
        a, b = socket.socketpair()
        try:
            a.sendall(mutant)
            a.close()
            b.settimeout(10)
            return recv_session_frame(b)
        finally:
            b.close()

    def test_session_frame_mutations_reject_typed(self, fuzz_plan):
        rng = np.random.default_rng(FUZZ_SEED)
        session_corpus = self._corpus(fuzz_plan)
        ran = 0
        unpickled_bad_crc = 0
        for _ in range(N_DECODE_MUTATIONS - 120):
            name, frame, decoder = session_corpus[
                int(rng.integers(0, len(session_corpus)))
            ]
            mutant = _mutate(rng, frame)
            ran += 1
            try:
                tag, payload = self._feed_session(mutant)
            except ALLOWED:
                continue  # typed rejection at the container layer
            # Container accepted: the mutation must have preserved the
            # CRC (identity, tail-junk after a full frame, or a
            # re-framed payload) — never a corrupt container.
            if not _crc_ok(mutant[: 12 + struct.unpack_from("<I", mutant, 4)[0]]):
                unpickled_bad_crc += 1
            try:
                decoder(payload)
            except ALLOWED:
                continue  # typed rejection at the payload layer
        assert ran == N_DECODE_MUTATIONS - 120
        # The no-unpickle-of-unverified-bytes invariant: a frame whose
        # CRC does not check out never surfaces a payload.
        assert unpickled_bad_crc == 0

    def test_boundary_frame_mutations_reject_typed(self, rctx, fuzz_plan):
        from repro.ckks.serialization import serialize_ciphertext

        rng = np.random.default_rng(FUZZ_SEED + 1)
        env_frame = pack_frame(
            b"ENV1", serialize_ciphertext(rctx.encrypt(np.zeros(rctx.params.slots)), 44)
        )
        flt_frame = serialize_fault(WorkerCrash("worker died", attempts=2))
        trc_frames = [
            serialize_trace_context(TraceContext(12345, 678, True)),
            serialize_worker_spans([{"name": "op", "dur_us": 3}]),
        ]
        basis = rctx.evaluator.basis
        corpus = [
            ("ENV1", env_frame, lambda blob: _decode_value(blob, basis)),
            ("FLT1", flt_frame, lambda blob: deserialize_fault(blob)),
            ("TRC1", trc_frames[0], deserialize_trace_frame),
            ("TRC1", trc_frames[1], deserialize_trace_frame),
        ]
        ran = 0
        for _ in range(120):
            name, frame, decoder = corpus[int(rng.integers(0, len(corpus)))]
            mutant = _mutate(rng, frame)
            ran += 1
            try:
                decoder(mutant)
            except ALLOWED:
                continue
        assert ran == 120

    def test_battery_size_meets_floor(self):
        assert N_DECODE_MUTATIONS + N_LIVE_MUTATIONS >= 500


class TestLiveHostFuzz:
    """The same mutation battery against a *live* standalone host: after
    every hostile session the host must still be serving (a hung pump
    would wedge the one-session-at-a-time accept loop and time the next
    round out; an escaped exception would kill the serve thread)."""

    def test_mutated_sessions_never_kill_or_hang_the_host(
        self, rctx, fuzz_plan
    ):
        import os

        rng = np.random.default_rng(FUZZ_SEED + 2)
        key = os.urandom(32)
        host = StandaloneWorkerHost(("127.0.0.1", 0), key)
        port = host.bind()
        thread = threading.Thread(target=host.serve_forever, daemon=True)
        thread.start()
        cfg = _worker_cfg(fuzz_plan)
        hello_frame = pack_frame(
            SESSION_HELLO_MAGIC,
            _encode_hello(True, fuzz_plan.signature, cfg),
        )
        plan_frame = pack_frame(SESSION_PLAN_MAGIC, serialize_plan(fuzz_plan))
        deadline = time.monotonic() + 240
        try:
            for round_no in range(N_LIVE_MUTATIONS):
                assert time.monotonic() < deadline, "live fuzz wedged"
                scenario = round_no % 3
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=10
                ) as sock:
                    sock.settimeout(10)
                    _auth_client(sock, key)
                    if scenario == 0:
                        # Mutated hello as the first frame.
                        sock.sendall(_mutate(rng, hello_frame))
                    elif scenario == 1:
                        # Valid hello, mutated plan upload.
                        sock.sendall(hello_frame)
                        tag, payload = recv_session_frame(sock)
                        assert tag == SESSION_ACK_MAGIC
                        if payload[0]:
                            sock.sendall(_mutate(rng, plan_frame))
                        else:
                            # Plan cached from an earlier clean round:
                            # fuzz the steady-state frames instead.
                            sock.sendall(
                                _mutate(
                                    rng,
                                    pack_frame(
                                        SESSION_CONTROL_MAGIC,
                                        pickle.dumps(("spawn", 0)),
                                    ),
                                )
                            )
                    else:
                        # Raw seeded junk, no framing at all.
                        sock.sendall(rng.bytes(int(rng.integers(1, 512))))
                    # Half-close: a mutant that left the host mid-frame
                    # resolves as EOF instead of a handshake timeout.
                    # ENOTCONN just means the host already hung up.
                    try:
                        sock.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    # The host must end the session (EOF) or answer with
                    # a well-formed frame — bounded either way.
                    try:
                        while sock.recv(65536):
                            pass
                    except (ConnectionError, OSError, TimeoutError):
                        pass
                assert thread.is_alive(), f"host died on round {round_no}"
            # After the whole battery: a genuine session still works,
            # warm plan cache included.
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                _auth_client(sock, key)
                sock.sendall(hello_frame)
                tag, payload = recv_session_frame(sock)
                assert tag == SESSION_ACK_MAGIC
                if payload[0]:
                    sock.sendall(plan_frame)
                send_session_frame(
                    sock, SESSION_CONTROL_MAGIC, pickle.dumps(("bye",))
                )
            assert thread.is_alive()
        finally:
            host.request_drain()
            thread.join(timeout=10)
            assert not thread.is_alive()
