"""Buffer arena: slot-liveness safety, zero steady-state allocations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    ArenaLayout,
    ArenaStep,
    BufferArena,
    CtSpec,
    compile_fn,
)


def _spec(rctx, level=None):
    level = rctx.params.num_primes if level is None else level
    return CtSpec(level=level, scale=rctx.params.scale)


def _random_schedule(rng):
    """A random topo schedule: each step reads earlier nodes, makes one."""
    steps, produced = [], []
    for nid in range(rng.integers(4, 24)):
        k = int(rng.integers(0, min(3, len(produced)) + 1))
        consumed = tuple(
            int(produced[i]) for i in rng.choice(len(produced), k, replace=False)
        ) if produced else ()
        parts = int(rng.integers(1, 4))
        steps.append(ArenaStep(produced=((nid, parts),), consumed=consumed))
        produced.append(nid)
    n_out = int(rng.integers(1, min(3, len(produced)) + 1))
    outputs = tuple(
        int(produced[i]) for i in rng.choice(len(produced), n_out, replace=False)
    )
    return steps, outputs


class TestLayoutLiveness:
    @pytest.mark.parametrize("seed", range(25))
    def test_no_slot_aliases_a_live_node(self, seed):
        """Property test: replay the schedule, asserting every allocated
        slot is dead — no node's buffer is reassigned while a later step
        (or the caller, for outputs) still has to read it."""
        rng = np.random.default_rng(seed)
        steps, outputs = _random_schedule(rng)
        layout = ArenaLayout.plan(steps, outputs, level=3, degree=8)

        refs: dict[int, int] = {}
        for step in steps:
            for nid in step.consumed:
                refs[nid] = refs.get(nid, 0) + 1
        for nid in outputs:
            refs[nid] = refs.get(nid, 0) + 1

        slot_owner: dict[int, int] = {}
        for step in steps:
            for nid, _parts in step.produced:
                for slot in layout.slots[nid]:
                    owner = slot_owner.get(slot)
                    assert owner is None or refs.get(owner, 0) == 0, (
                        f"slot {slot} reassigned to node {nid} while "
                        f"node {owner} still has {refs[owner]} pending read(s)"
                    )
                    slot_owner[slot] = nid
            for nid in step.consumed:
                refs[nid] -= 1
        # Outputs stay pinned: their refs never reach zero.
        for nid in outputs:
            assert refs[nid] >= 1

    @pytest.mark.parametrize("seed", range(5))
    def test_slots_are_reused(self, seed):
        """The pool must be smaller than one-slot-per-buffer (the whole
        point); sanity-check on schedules long enough to have dead nodes."""
        rng = np.random.default_rng(100 + seed)
        steps, outputs = _random_schedule(rng)
        total_buffers = sum(p for s in steps for _, p in s.produced)
        layout = ArenaLayout.plan(steps, outputs, level=3, degree=8)
        assert layout.num_slots <= total_buffers
        assert layout.pool_bytes == layout.num_slots * 3 * 8 * 8

    def test_duplicate_consumption_counts_twice(self):
        """a consumed twice by one step (e.g. multiply(x, x)) must not
        free early — its two refs are both held by that step."""
        steps = [
            ArenaStep(produced=((0, 1),)),
            ArenaStep(produced=((1, 1),), consumed=(0, 0)),
            ArenaStep(produced=((2, 1),), consumed=(1,)),
        ]
        layout = ArenaLayout.plan(steps, (2,), level=2, degree=4)
        # Node 1 allocates before node 0's refs drop: distinct slots.
        assert set(layout.slots[1]).isdisjoint(layout.slots[0])


class TestBufferArena:
    def test_pool_allocated_once_and_views_are_zero_copy(self):
        steps = [
            ArenaStep(produced=((0, 2),)),
            ArenaStep(produced=((1, 1),), consumed=(0,)),
        ]
        layout = ArenaLayout.plan(steps, (1,), level=4, degree=16)
        from repro.nums.backend import get_array_namespace

        arena = BufferArena(layout, get_array_namespace("numpy"))
        pool = arena.ensure()
        assert arena.allocations == 1
        assert arena.ensure() is pool
        assert arena.allocations == 1
        (view,) = arena.views(1, 3)
        assert view.shape == (3, 16)
        assert view.base is pool or view.base.base is pool


class TestFusedReplayArena:
    def _plan(self, rctx, gks, rlk):
        def program(ev, x):
            rot = ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 2, gks))
            return ev.multiply_relin_rescale(rot, rot, rlk)

        return compile_fn(program, rctx.evaluator, [_spec(rctx)])

    def test_replay_twice_is_byte_identical_with_zero_new_allocations(
        self, rctx, gks, rlk
    ):
        plan = self._plan(rctx, gks, rlk)
        ct = rctx.encrypt(np.linspace(-1, 1, rctx.params.slots))
        [first] = plan.run_batch([[ct]], fused=True)[0]
        ex = plan.fused()
        allocs = ex.arena.allocations
        [second] = plan.run_batch([[ct]], fused=True)[0]
        assert ex.arena.allocations == allocs, (
            "steady-state fused replay allocated arena storage"
        )
        assert allocs == 1
        assert first.scale == second.scale
        for a, b in zip(first.parts, second.parts):
            assert np.array_equal(a.data, b.data)

    def test_outputs_are_copies_not_arena_views(self, rctx, gks, rlk):
        """A replay's outputs must survive the next replay reusing the
        pool — they are copied out, never aliased into arena slots."""
        plan = self._plan(rctx, gks, rlk)
        rng = np.random.default_rng(3)
        ct_a = rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots))
        ct_b = rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots))
        [out_a] = plan.run_batch([[ct_a]], fused=True)[0]
        snapshot = [p.data.copy() for p in out_a.parts]
        pool = plan.fused().arena.pool
        for part in out_a.parts:
            assert part.data.base is not pool
        plan.run_batch([[ct_b]], fused=True)
        for before, part in zip(snapshot, out_a.parts):
            assert np.array_equal(before, part.data)

    def test_fused_matches_batched_replay(self, rctx, gks, rlk):
        plan = self._plan(rctx, gks, rlk)
        ct = rctx.encrypt(np.linspace(-0.5, 0.5, rctx.params.slots))
        [batched] = plan.run_batch([[ct]])[0]
        [fused] = plan.run_batch([[ct]], fused=True)[0]
        assert batched.scale == fused.scale
        for a, b in zip(batched.parts, fused.parts):
            assert np.array_equal(a.data, b.data)
