"""Tracing: graph construction, metadata inference, and trace-time checks."""

from __future__ import annotations

import pytest

from repro.runtime import CtSpec, TraceError, trace


def _spec(rctx, level=None):
    level = rctx.params.num_primes if level is None else level
    return CtSpec(level=level, scale=rctx.params.scale)


class TestMetadata:
    def test_levels_and_scales_follow_eager_rules(self, rctx, rlk):
        delta = rctx.params.scale
        seen = {}

        def program(ev, x):
            prod = ev.multiply_relin_rescale(x, x, rlk)
            seen["prod"] = (prod.level, prod.scale, prod.size)
            return prod

        trace(program, rctx.evaluator, [_spec(rctx)])
        lvl = rctx.params.num_primes - 2
        exp_scale = delta * delta
        for t in range(2):
            exp_scale /= rctx.basis.moduli[rctx.params.num_primes - 1 - t]
        assert seen["prod"] == (lvl, exp_scale, 2)

    def test_multiply_produces_three_parts(self, rctx):
        def program(ev, x, y):
            prod = ev.multiply(x, y)
            assert prod.size == 3
            return prod

        g = trace(program, rctx.evaluator, [_spec(rctx), _spec(rctx)])
        assert g.nodes[g.outputs[0]].size == 3

    def test_graph_records_every_op(self, rctx, gks):
        def program(ev, x):
            return ev.add(ev.rotate(x, 1, gks), ev.negate(x))

        g = trace(program, rctx.evaluator, [_spec(rctx)])
        assert g.op_histogram() == {"input": 1, "rotate": 1, "negate": 1, "add": 1}

    def test_signature_stable_and_key_sensitive(self, rctx, gks):
        def program(ev, x):
            return ev.rotate(x, 1, gks)

        g1 = trace(program, rctx.evaluator, [_spec(rctx)])
        g2 = trace(program, rctx.evaluator, [_spec(rctx)])
        assert g1.signature() == g2.signature()
        other = rctx.galois_keys([1], levels=[rctx.params.num_primes])
        g3 = trace(lambda ev, x: ev.rotate(x, 1, other), rctx.evaluator, [_spec(rctx)])
        assert g3.signature() != g1.signature()


class TestTraceTimeFailures:
    def test_scale_mismatch_names_producing_ops(self, rctx, rlk):
        def program(ev, x):
            sq = ev.multiply_relin_rescale(x, x, rlk)  # scale back to Δ, level-2
            raw = ev.multiply(x, x)  # scale Δ², 3 parts
            return ev.add(sq, ev.relinearize(raw, rlk))

        with pytest.raises(TraceError) as err:
            trace(program, rctx.evaluator, [_spec(rctx)])
        msg = str(err.value)
        assert "add: scale mismatch" in msg
        assert "rescale" in msg and "relinearize" in msg
        assert "level" in msg

    def test_missing_galois_key_fails_at_trace_time(self, rctx, gks):
        with pytest.raises(TraceError, match="no Galois key for rotation 7"):
            trace(lambda ev, x: ev.rotate(x, 7, gks), rctx.evaluator, [_spec(rctx)])

    def test_missing_relin_key_fails_at_trace_time(self, rctx, rlk):
        def program(ev, x):
            dropped = ev.rescale(x, times=1)  # level with no relin key
            return ev.relinearize(ev.multiply(dropped, dropped), rlk)

        with pytest.raises(TraceError, match="no relinearization key"):
            trace(program, rctx.evaluator, [_spec(rctx)])

    def test_rescale_past_chain_end_fails(self, rctx):
        with pytest.raises(TraceError, match="exhaust"):
            trace(
                lambda ev, x: ev.rescale(x, times=1),
                rctx.evaluator,
                [_spec(rctx, level=1)],
            )

    def test_foreign_decomposed_handle_rejected(self, rctx, gks):
        def program(ev, x):
            dec = ev.decompose(ev.negate(x))
            return ev.rotate(x, 1, gks, decomposed=dec)

        with pytest.raises(TraceError, match="hoisted from"):
            trace(program, rctx.evaluator, [_spec(rctx)])

    def test_output_must_come_from_this_trace(self, rctx):
        with pytest.raises(TraceError, match="return handles"):
            trace(lambda ev, x: None, rctx.evaluator, [_spec(rctx)])
