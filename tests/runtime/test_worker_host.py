"""Standalone worker-host lifecycle: the operator-owned half of the fabric.

A ``StandaloneWorkerHost`` (``python -m repro.runtime.worker_host``) has
no fork relationship with any coordinator, so its lifecycle is its own:
it must refuse stale keys without dying, report a bound address clearly,
time out sessions whose coordinator went quiet, refuse a second
coordinator explicitly while serving a first, and drain in-flight work
on SIGTERM instead of dropping it.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.ckks.serialization import WireFormatError
from repro.runtime import (
    CtSpec,
    FaultAction,
    FaultPlan,
    FaultPolicy,
    ServingConfig,
    compile_fn,
    serve,
)
from repro.runtime.coordinator import (
    SESSION_ACK_MAGIC,
    SESSION_CONTROL_MAGIC,
    SESSION_PLAN_MAGIC,
    HostEnv,
    _auth_client,
    _encode_hello,
    recv_session_frame,
    send_session_frame,
)
from repro.runtime.executor import _WorkerConfig
from repro.runtime.plan_io import serialize_plan
from repro.runtime.worker_host import (
    MIN_AUTHKEY_BYTES,
    StandaloneWorkerHost,
    load_authkey,
    main,
)

RESULT_TIMEOUT = 120.0


@pytest.fixture(scope="module")
def host_plan(rctx, rlk):
    def program(ev, x, y):
        return (ev.multiply_relin_rescale(ev.add(x, y), y, rlk),)

    spec = CtSpec(level=rctx.params.num_primes, scale=rctx.params.scale)
    return compile_fn(program, rctx.evaluator, [spec, spec])


def _batches(rctx, n, seed=21):
    rng = np.random.default_rng(seed)
    return [
        [
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
            rctx.encrypt(rng.uniform(-1, 1, rctx.params.slots)),
        ]
        for _ in range(n)
    ]


def _assert_batches_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        for a, b in zip(g, w):
            assert a.scale == b.scale
            for pa, pb in zip(a.parts, b.parts):
                assert np.array_equal(pa.data, pb.data)


def _write_key(tmp_path, name="authkey", key=None):
    key = key if key is not None else os.urandom(32)
    path = tmp_path / name
    path.write_bytes(key)
    return str(path), key


def _threaded_host(authkey, **kwargs):
    """An in-process StandaloneWorkerHost serving on an ephemeral port
    from a daemon thread; returns (host, port, thread)."""
    host = StandaloneWorkerHost(("127.0.0.1", 0), authkey, **kwargs)
    port = host.bind()
    thread = threading.Thread(target=host.serve_forever, daemon=True)
    thread.start()
    return host, port, thread


def _stop_host(host, thread):
    host.request_drain()
    thread.join(timeout=10)
    assert not thread.is_alive()


def _negotiate_session(port, authkey, host_plan):
    """Dial + authenticate + complete a ship-plan hello, leaving the
    host inside its session loop.  Returns the connected socket."""
    env = HostEnv(
        params=host_plan.evaluator.params,
        primes=tuple(host_plan.evaluator.basis.primes),
    )
    cfg = _WorkerConfig(
        coeff_bits=0, io_s=0.0, fused=False, chaos=None, heartbeat_s=None, env=env
    )
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.settimeout(10)
    _auth_client(sock, authkey)
    send_session_frame(
        sock, b"FHL1", _encode_hello(True, host_plan.signature, cfg)
    )
    tag, payload = recv_session_frame(sock)
    assert tag == SESSION_ACK_MAGIC
    if payload[0]:  # need_plan
        send_session_frame(sock, SESSION_PLAN_MAGIC, serialize_plan(host_plan))
    return sock


class TestCliEntrypoint:
    def test_bind_address_in_use_message(self, tmp_path, capsys):
        keyfile, _ = _write_key(tmp_path)
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = main(
                ["--bind", f"127.0.0.1:{port}", "--authkey-file", keyfile]
            )
        finally:
            blocker.close()
        assert rc == 2
        err = capsys.readouterr().err
        assert f"cannot bind 127.0.0.1:{port}" in err
        assert "address already in use" in err

    def test_short_authkey_file_rejected(self, tmp_path, capsys):
        keyfile = tmp_path / "short"
        keyfile.write_bytes(b"tiny")
        rc = main(["--authkey-file", str(keyfile)])
        assert rc == 2
        assert "bad --authkey-file" in capsys.readouterr().err
        with pytest.raises(ValueError, match=str(MIN_AUTHKEY_BYTES)):
            load_authkey(str(keyfile))

    def test_trailing_newline_in_keyfile_tolerated(self, tmp_path):
        key = os.urandom(32)
        keyfile = tmp_path / "key"
        keyfile.write_bytes(key + b"\n")
        assert load_authkey(str(keyfile)) == key


class TestSessionLifecycle:
    def test_stale_authkey_rejected_host_survives(self, tmp_path):
        _, key = _write_key(tmp_path)
        host, port, thread = _threaded_host(key)
        try:
            # A coordinator holding yesterday's key fails the handshake.
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                with pytest.raises((WireFormatError, ConnectionError, OSError)):
                    _auth_client(sock, os.urandom(32))
            # The host neither died nor wedged: the real key still works.
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.settimeout(10)
                _auth_client(sock, key)
            assert thread.is_alive()
        finally:
            _stop_host(host, thread)

    def test_idle_session_times_out(self, tmp_path, host_plan):
        _, key = _write_key(tmp_path)
        host, port, thread = _threaded_host(key, idle_timeout_s=0.5)
        try:
            sock = _negotiate_session(port, key, host_plan)
            # Quiet coordinator: the host drops the session (EOF here)
            # instead of staying attached forever.
            start = time.monotonic()
            assert sock.recv(1) == b""
            assert time.monotonic() - start < 10
            sock.close()
            # The host itself keeps accepting.
            sock = _negotiate_session(port, key, host_plan)
            sock.close()
        finally:
            _stop_host(host, thread)

    def test_double_attach_second_refused_cleanly(self, tmp_path, host_plan):
        _, key = _write_key(tmp_path)
        host, port, thread = _threaded_host(key)
        first = None
        try:
            first = _negotiate_session(port, key, host_plan)
            # Second coordinator: authenticated, then told "busy" in a
            # typed FCT1 control frame — not a hang, not a silent drop.
            with socket.create_connection(("127.0.0.1", port), timeout=10) as second:
                second.settimeout(10)
                _auth_client(second, key)
                tag, payload = recv_session_frame(second)
                assert tag == SESSION_CONTROL_MAGIC
                op = pickle.loads(payload)
                assert op[0] == "busy"
                assert op[1] == os.getpid()  # the threaded host's pid
                assert second.recv(1) == b""  # then disconnected
            # The first session is untouched by the refusal.
            send_session_frame(first, SESSION_CONTROL_MAGIC, pickle.dumps(("bye",)))
            assert thread.is_alive()
        finally:
            if first is not None:
                first.close()
            _stop_host(host, thread)

    def test_bye_ends_session_not_host(self, tmp_path, host_plan):
        _, key = _write_key(tmp_path)
        host, port, thread = _threaded_host(key)
        try:
            for _ in range(2):  # the second attach proves the host stayed
                sock = _negotiate_session(port, key, host_plan)
                send_session_frame(
                    sock, SESSION_CONTROL_MAGIC, pickle.dumps(("bye",))
                )
                sock.close()
            assert thread.is_alive()
        finally:
            _stop_host(host, thread)


class TestCliHostServing:
    @staticmethod
    def _spawn_cli_host(tmp_path, keyfile, extra_args=()):
        portfile = tmp_path / "port"
        env = dict(os.environ)
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker_host",
                "--bind",
                "127.0.0.1:0",
                "--authkey-file",
                keyfile,
                "--port-file",
                str(portfile),
                *extra_args,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 30
        while not portfile.exists():
            if proc.poll() is not None or time.monotonic() > deadline:
                stderr = proc.stderr.read().decode(errors="replace")
                proc.kill()
                raise AssertionError(f"worker host never published a port: {stderr}")
            time.sleep(0.05)
        return proc, int(portfile.read_text().strip())

    def test_scripted_disconnect_reattaches_without_replan(
        self, tmp_path, rctx, host_plan
    ):
        """The acceptance pin for remote hosts: a scripted host_relay
        disconnect drops the session mid-batch, the coordinator redials
        the *same* CLI-spawned process, and the host's fingerprint-keyed
        plan cache answers need_plan=0 — plan_uploads stays at the one
        cold upload."""
        keyfile, _ = _write_key(tmp_path)
        proc, port = self._spawn_cli_host(tmp_path, keyfile)
        try:
            batches = _batches(rctx, 6, seed=23)
            reference = host_plan.run_batch(batches)
            chaos = FaultPlan(
                0,
                scripted={
                    ("host_relay", 2, 0): FaultAction("disconnect", "host_relay")
                },
            )
            cfg = ServingConfig(
                num_workers=2,
                transport="tcp",
                hosts=(f"tcp://127.0.0.1:{port}",),
                ship_plan=True,
                authkey_file=keyfile,
                chaos=chaos,
                fault_policy=FaultPolicy(backoff_base_s=0.01),
            )
            with serve(host_plan, cfg) as session:
                outputs = session.run_batch(batches, timeout=RESULT_TIMEOUT)
                stats = session.stats()
            ts = stats["transport_stats"]
            assert ts["remote_hosts"] == 1
            assert ts["sessions_opened"] >= 2  # the scripted drop + redial
            assert ts["plan_uploads"] == 1  # reconnect never re-uploads
            _assert_batches_equal(outputs, reference)
            assert proc.poll() is None  # the host process survived it all
        finally:
            if proc.poll() is None:
                proc.terminate()
            proc.wait(timeout=30)

    def test_sigterm_drains_in_flight_batch(self, tmp_path, rctx, host_plan):
        keyfile, _ = _write_key(tmp_path)
        proc, port = self._spawn_cli_host(tmp_path, keyfile)
        try:
            batches = _batches(rctx, 2, seed=22)
            reference = host_plan.run_batch(batches)
            cfg = ServingConfig(
                num_workers=2,
                transport="tcp",
                hosts=(f"tcp://127.0.0.1:{port}",),
                ship_plan=True,
                authkey_file=keyfile,
                modeled_request_io_s=0.5,
            )
            with serve(host_plan, cfg) as session:
                futures = [session.submit(b) for b in batches]
                time.sleep(0.2)  # both requests in flight inside the host
                proc.send_signal(signal.SIGTERM)
                # Drain: the in-flight replies are relayed before exit —
                # nothing is lost, nothing retried.
                outputs = [f.result(timeout=RESULT_TIMEOUT) for f in futures]
            _assert_batches_equal(outputs, reference)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
