"""RSC operating-mode scheduling policies."""

from __future__ import annotations

import pytest

from repro.accel.config import abc_fhe
from repro.accel.scheduler import RequestQueue, RscScheduler
from repro.accel.workload import ClientWorkload


@pytest.fixture(scope="module")
def scheduler():
    return RscScheduler(
        config=abc_fhe(), workload=ClientWorkload(degree=1 << 16)
    )


class TestPolicies:
    def test_dynamic_never_loses(self, scheduler):
        for enc, dec in ((16, 16), (32, 4), (4, 32), (1, 1), (20, 0), (0, 20)):
            results = {r.policy: r.makespan_cycles for r in scheduler.compare(RequestQueue(enc, dec))}
            assert results["dynamic"] <= results["static_split"] + 1
            assert results["dynamic"] <= results["dual_batched"] + 1

    def test_dynamic_beats_static_on_imbalanced_queue(self, scheduler):
        """Many encrypts + few decrypts: a pinned decrypt core idles."""
        q = RequestQueue(encode_encrypt=32, decode_decrypt=2)
        results = {r.policy: r.makespan_cycles for r in scheduler.compare(q)}
        assert results["dynamic"] < results["static_split"]

    def test_pure_encrypt_queue_uses_dual_mode(self, scheduler):
        q = RequestQueue(encode_encrypt=10, decode_decrypt=0)
        dyn = scheduler.dynamic(q)
        dual = scheduler.dual_batched(q)
        assert dyn.makespan_cycles == dual.makespan_cycles

    def test_makespan_scales_with_queue(self, scheduler):
        small = scheduler.dynamic(RequestQueue(4, 4)).makespan_cycles
        big = scheduler.dynamic(RequestQueue(8, 8)).makespan_cycles
        assert 1.8 < big / small < 2.2

    def test_single_rsc_slower_than_dual(self, scheduler):
        """Mode multiplexing only helps because there are two cores."""
        one_enc = scheduler._task_cycles("encode_encrypt", 1)
        two_enc = scheduler._task_cycles("encode_encrypt", 2)
        assert one_enc > two_enc

    def test_compare_sorted(self, scheduler):
        results = scheduler.compare(RequestQueue(8, 8))
        spans = [r.makespan_cycles for r in results]
        assert spans == sorted(spans)
