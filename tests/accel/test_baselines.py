"""Baseline models and the Fig. 5(a) speed-up anchors."""

from __future__ import annotations

import pytest

from repro.accel.baselines import CpuModel, ScaledAcceleratorModel, baseline_suite
from repro.accel.config import abc_fhe
from repro.accel.simulator import ClientSimulator
from repro.accel.workload import ClientWorkload


@pytest.fixture(scope="module")
def workload():
    return ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)


@pytest.fixture(scope="module")
def abc_latencies(workload):
    sim = ClientSimulator(abc_fhe(), workload)
    return sim.encode_encrypt().latency_seconds, sim.decode_decrypt().latency_seconds


class TestCpuModel:
    def test_latency_increases_with_ops(self):
        cpu = CpuModel()
        assert cpu.latency_seconds(1e8) > cpu.latency_seconds(1e6)

    def test_fixed_overhead_floors_small_jobs(self):
        cpu = CpuModel()
        assert cpu.latency_seconds(0) == cpu.fixed_overhead_s

    def test_paper_speedup_enc(self, workload, abc_latencies):
        """Abstract: 1112x on encoding+encryption."""
        enc, _ = abc_latencies
        speedup = CpuModel().encode_encrypt_seconds(workload) / enc
        assert speedup == pytest.approx(1112, rel=0.03)

    def test_paper_speedup_dec(self, workload, abc_latencies):
        """Abstract: 963x on decoding+decryption."""
        _, dec = abc_latencies
        speedup = CpuModel().decode_decrypt_seconds(workload) / dec
        assert speedup == pytest.approx(963, rel=0.03)

    def test_cpu_latency_plausible(self, workload):
        """Fig. 5(a): CPU encode+encrypt sits in the 10^2 ms decade."""
        t = CpuModel().encode_encrypt_seconds(workload)
        assert 0.05 < t < 0.5


class TestScaledAccelerators:
    def test_suite_contents(self):
        suite = baseline_suite()
        assert set(suite) == {"[34]", "[22] ALOHA-HE"}

    def test_sota_speedups(self, abc_latencies):
        """Abstract: 214x (enc) and 82x (dec) over the SOTA accelerator."""
        enc, dec = abc_latencies
        sota = baseline_suite()["[34]"]
        assert sota.encode_encrypt_seconds(enc) / enc == pytest.approx(214)
        assert sota.decode_decrypt_seconds(dec) / dec == pytest.approx(82)

    def test_aloha_slower_than_sota(self, abc_latencies):
        enc, _ = abc_latencies
        suite = baseline_suite()
        assert suite["[22] ALOHA-HE"].encode_encrypt_seconds(enc) > suite[
            "[34]"
        ].encode_encrypt_seconds(enc)

    def test_prior_work_degree_limit(self):
        """The paper's first criticism: prior designs stop at N = 2^13."""
        model = ScaledAcceleratorModel("x", 10, 10)
        assert model.supports(1 << 13)
        assert not model.supports(1 << 14)
