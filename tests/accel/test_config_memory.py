"""Accelerator configs and the Section IV-B memory models."""

from __future__ import annotations

import pytest

from repro.accel.config import AcceleratorConfig, abc_fhe, abc_fhe_base, abc_fhe_tf_gen
from repro.accel.memory import TrafficModel, client_memory_footprint
from repro.accel.workload import ClientWorkload


class TestConfig:
    def test_shipped_design(self):
        c = abc_fhe()
        assert c.lanes_per_pnl == 8
        assert c.pnls_per_rsc == 4
        assert c.num_rscs == 2
        assert c.total_transform_engines == 8
        assert c.on_chip_twiddles and c.on_chip_randomness

    def test_presets_differ_in_generation_flags(self):
        assert not abc_fhe_base().on_chip_twiddles
        assert not abc_fhe_base().on_chip_randomness
        assert abc_fhe_tf_gen().on_chip_twiddles
        assert not abc_fhe_tf_gen().on_chip_randomness

    def test_with_lanes(self):
        c = abc_fhe().with_lanes(16)
        assert c.lanes_per_pnl == 16
        assert c.on_chip_twiddles  # other fields preserved

    def test_dram_bytes_per_cycle(self):
        c = abc_fhe()
        assert c.dram_bytes_per_cycle == pytest.approx(68.4e9 / 600e6)

    def test_validation(self):
        with pytest.raises(ValueError, match="lane"):
            AcceleratorConfig(lanes_per_pnl=0)
        with pytest.raises(ValueError, match="PNL"):
            AcceleratorConfig(num_rscs=0)


class TestFootprint:
    def test_paper_numbers_exact(self):
        """Section IV-B: 16.5 MB pk, 8.25 MB masks/errors, 8.25 MB twiddles."""
        fp = client_memory_footprint(degree=1 << 16, levels=24, coeff_bits=44)
        mib = 2**20
        assert fp.public_key_bytes == int(16.5 * mib)
        assert fp.masks_errors_bytes == int(8.25 * mib)
        assert fp.twiddle_bytes == int(8.25 * mib)

    def test_reduction_over_99_9_percent(self):
        fp = client_memory_footprint()
        assert fp.reduction_ratio > 0.999

    def test_seed_is_128_bits(self):
        assert client_memory_footprint().seed_bytes == 16


class TestTraffic:
    @pytest.fixture(scope="class")
    def workload(self):
        return ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)

    def test_all_config_has_no_fetch_traffic(self, workload):
        t = TrafficModel(config=abc_fhe(), workload=workload).encode_encrypt()
        assert t.fetch_bytes == 0
        assert t.streaming_bytes > 0

    def test_base_fetches_everything(self, workload):
        t = TrafficModel(config=abc_fhe_base(), workload=workload).encode_encrypt()
        assert t.twiddle_bytes > 0
        assert t.key_bytes > 0
        assert t.randomness_bytes > 0

    def test_tf_gen_skips_only_twiddles(self, workload):
        t = TrafficModel(config=abc_fhe_tf_gen(), workload=workload).encode_encrypt()
        assert t.twiddle_bytes == 0
        assert t.key_bytes > 0

    def test_seed_sharing_halves_ciphertext(self, workload):
        seeded = TrafficModel(config=abc_fhe(), workload=workload).encode_encrypt()
        full = TrafficModel(config=abc_fhe_tf_gen(), workload=workload).encode_encrypt()
        assert seeded.ciphertext_bytes < 0.51 * full.ciphertext_bytes

    def test_decrypt_needs_no_randomness(self, workload):
        t = TrafficModel(config=abc_fhe_base(), workload=workload).decode_decrypt()
        assert t.randomness_bytes == 0
        assert t.key_bytes == 0
        assert t.twiddle_bytes > 0  # base still fetches twiddles

    def test_totals_add_up(self, workload):
        t = TrafficModel(config=abc_fhe_base(), workload=workload).encode_encrypt()
        assert t.total_bytes == t.streaming_bytes + t.fetch_bytes
