"""Cycle simulator: paper anchors (Figs. 5 and 6b) and model behaviour."""

from __future__ import annotations

import pytest

from repro.accel.config import abc_fhe, abc_fhe_base, abc_fhe_tf_gen
from repro.accel.engines import GeneratorModel, MseModel, PnlModel
from repro.accel.simulator import ClientSimulator, sweep_degree, sweep_lanes
from repro.accel.workload import ClientWorkload


@pytest.fixture(scope="module")
def workload():
    return ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)


class TestEngines:
    def test_transform_occupancy(self):
        pnl = PnlModel(lanes=8)
        assert pnl.transform_occupancy(1 << 16) == (1 << 16) // 8

    def test_fill_smaller_than_occupancy(self):
        pnl = PnlModel(lanes=8)
        assert 0 < pnl.fill_cycles(1 << 16) < pnl.transform_occupancy(1 << 16)

    def test_latency_is_occupancy_plus_fill(self):
        pnl = PnlModel(lanes=4)
        n = 1 << 14
        assert pnl.transform_latency(n) == pnl.transform_occupancy(n) + pnl.fill_cycles(n)

    def test_mse_ceil_division(self):
        assert MseModel(width=32).elementwise_cycles(33) == 2

    def test_generator_stall(self):
        g = GeneratorModel(values_per_cycle=4)
        assert g.stall_factor(4) == 1.0
        assert g.stall_factor(8) == 2.0


class TestEncodeEncrypt:
    def test_paper_latency_magnitude(self, workload):
        """ABC-FHE encode+encrypt should land in the 0.1–0.3 ms range
        (Fig. 5a shows ~10^-1 ms)."""
        r = ClientSimulator(abc_fhe(), workload).encode_encrypt()
        assert 50e-6 < r.latency_seconds < 300e-6

    def test_latency_composition(self, workload):
        r = ClientSimulator(abc_fhe(), workload).encode_encrypt()
        assert r.latency_cycles == max(r.compute_cycles, r.stream_cycles) + r.fetch_cycles

    def test_all_config_no_fetch(self, workload):
        assert ClientSimulator(abc_fhe(), workload).encode_encrypt().fetch_cycles == 0

    def test_decode_faster_than_encode(self, workload):
        sim = ClientSimulator(abc_fhe(), workload)
        assert (
            sim.decode_decrypt().latency_cycles < sim.encode_encrypt().latency_cycles
        )

    def test_run_dispatch(self, workload):
        sim = ClientSimulator(abc_fhe(), workload)
        assert sim.run("encode_encrypt").task == "encode_encrypt"
        assert sim.run("decode_decrypt").task == "decode_decrypt"
        with pytest.raises(ValueError, match="unknown task"):
            sim.run("bootstrap")


class TestFig5bLaneSweep:
    def test_latency_monotone_nonincreasing(self, workload):
        points = sweep_lanes(workload, abc_fhe())
        lats = [r.latency_cycles for _, r in points]
        assert all(a >= b for a, b in zip(lats, lats[1:]))

    def test_knee_at_8_lanes(self, workload):
        """Paper: LPDDR5 caps the benefit at 8 lanes."""
        points = dict(sweep_lanes(workload, abc_fhe()))
        gain_4_to_8 = points[4].latency_cycles / points[8].latency_cycles
        gain_8_to_16 = points[8].latency_cycles / points[16].latency_cycles
        assert gain_4_to_8 > 1.2  # still improving into 8
        assert gain_8_to_16 < 1.05  # flat beyond 8

    def test_memory_bound_at_high_lanes(self, workload):
        points = dict(sweep_lanes(workload, abc_fhe()))
        assert points[64].bound_by == "memory"
        assert points[1].bound_by == "compute"

    def test_peak_throughput_magnitude(self, workload):
        """Fig. 5(b) shows ~6000 ciphertexts/s peak; we land nearby."""
        points = dict(sweep_lanes(workload, abc_fhe()))
        peak = max(r.throughput_per_second for r in points.values())
        assert 4000 < peak < 12000


class TestFig6bMemoryAblation:
    def test_base_over_all_ratio(self, workload):
        """Paper: on-chip generation wins 8.2–9.3x."""
        base = ClientSimulator(abc_fhe_base(), workload).encode_encrypt()
        full = ClientSimulator(abc_fhe(), workload).encode_encrypt()
        ratio = base.latency_cycles / full.latency_cycles
        assert 8.0 <= ratio <= 9.5

    def test_tf_gen_intermediate(self, workload):
        base = ClientSimulator(abc_fhe_base(), workload).encode_encrypt()
        tf = ClientSimulator(abc_fhe_tf_gen(), workload).encode_encrypt()
        full = ClientSimulator(abc_fhe(), workload).encode_encrypt()
        assert full.latency_cycles < tf.latency_cycles < base.latency_cycles

    def test_ratio_stable_across_degrees(self):
        """Fig. 6(b): the 8.2–9.3x band holds for N = 2^13 … 2^16."""
        for degree in (1 << 13, 1 << 14, 1 << 15, 1 << 16):
            w = ClientWorkload(degree=degree, enc_levels=24, dec_levels=2)
            base = ClientSimulator(abc_fhe_base(), w).encode_encrypt()
            full = ClientSimulator(abc_fhe(), w).encode_encrypt()
            assert 7.5 <= base.latency_cycles / full.latency_cycles <= 10.0

    def test_degree_sweep_monotone(self):
        results = sweep_degree(abc_fhe())
        lats = [r.latency_cycles for _, r in results]
        assert all(a < b for a, b in zip(lats, lats[1:]))
