"""Area/power model vs Tables I and II, and the Fig. 6(a) progression."""

from __future__ import annotations

import pytest

from repro.accel import calibration as cal
from repro.accel.area import (
    chip_area_breakdown,
    modmul_area_um2,
    rfe_area_progression,
    sram_area_mm2,
)
from repro.accel.config import AcceleratorConfig
from repro.accel.scaling import TechnologyScaler


class TestTable1:
    @pytest.mark.parametrize("algo", ["barrett", "montgomery", "ntt_friendly"])
    def test_area_within_half_percent(self, algo):
        got = modmul_area_um2(36, algo)
        assert got == pytest.approx(cal.TABLE1_AREAS_UM2[algo], rel=0.005)

    def test_paper_reduction_ratios(self):
        """67.7 % vs Barrett, 41.2 % vs vanilla Montgomery."""
        nttf = modmul_area_um2(36, "ntt_friendly")
        assert 1 - nttf / modmul_area_um2(36, "barrett") == pytest.approx(0.677, abs=0.01)
        assert 1 - nttf / modmul_area_um2(36, "montgomery") == pytest.approx(0.412, abs=0.01)

    def test_scales_quadratically_with_bitwidth(self):
        assert modmul_area_um2(44, "ntt_friendly") == pytest.approx(
            modmul_area_um2(22, "ntt_friendly") * 4
        )

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            modmul_area_um2(36, "karatsuba")


class TestTable2:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return chip_area_breakdown()

    def test_total_area(self, breakdown):
        """Paper: 28.638 mm^2; model within 2 %."""
        assert breakdown.total_area == pytest.approx(28.638, rel=0.02)

    def test_total_power(self, breakdown):
        """Paper: 5.654 W; model within 3 %."""
        assert breakdown.total_power == pytest.approx(5.654, rel=0.03)

    @pytest.mark.parametrize(
        "row, tolerance",
        [
            ("4x PNL", 0.03),
            ("Unified OTF TF Gen", 0.03),
            ("MSE", 0.03),
            ("Local Scratchpad", 0.01),
            ("Global Scratchpad", 0.01),
            ("RSC", 0.03),
            ("Twiddle Factor Seed Memory", 0.20),
        ],
    )
    def test_component_rows(self, breakdown, row, tolerance):
        assert breakdown.area_mm2[row] == pytest.approx(
            cal.TABLE2_AREA_MM2[row], rel=tolerance
        )

    def test_rsc_is_sum_of_parts(self, breakdown):
        parts = (
            breakdown.area_mm2["4x PNL"]
            + breakdown.area_mm2["Unified OTF TF Gen"]
            + breakdown.area_mm2["Twiddle Factor Seed Memory"]
            + breakdown.area_mm2["MSE"]
            + breakdown.area_mm2["PRNG"]
            + breakdown.area_mm2["Local Scratchpad"]
        )
        assert breakdown.area_mm2["RSC"] == pytest.approx(parts)

    def test_7nm_projection(self, breakdown):
        """Paper: ~0.9 mm^2 and ~2.1 W at 7 nm."""
        area7, power7 = breakdown.scaled_to_7nm()
        assert area7 == pytest.approx(0.9, rel=0.05)
        assert power7 == pytest.approx(2.1, rel=0.05)


class TestSram:
    def test_density_anchors(self):
        assert sram_area_mm2(440 * 1024) == pytest.approx(0.658, rel=0.001)
        assert sram_area_mm2(880 * 1024, double_buffered=True) == pytest.approx(
            2.632, rel=0.001
        )


class TestFig6aProgression:
    def test_monotone_decreasing(self):
        p = rfe_area_progression()
        assert (
            p["baseline"] > p["tf_scheduling"] > p["montmul"] > p["reconfigurable"]
        )

    def test_total_reduction_substantial(self):
        """Paper reports 31 %; our structural model over-credits the
        optimizations (~47 %) — same direction, see EXPERIMENTS.md."""
        p = rfe_area_progression()
        reduction = 1 - p["reconfigurable"] / p["baseline"]
        assert 0.30 <= reduction <= 0.60

    def test_scales_with_lanes(self):
        narrow = rfe_area_progression(lanes=4)
        wide = rfe_area_progression(lanes=8)
        assert wide["reconfigurable"] > narrow["reconfigurable"]


class TestScaling:
    def test_identity(self):
        s = TechnologyScaler(28, 28)
        assert s.scale_area(10.0) == 10.0

    def test_paper_endpoints(self):
        s = TechnologyScaler(28, 7)
        assert s.scale_area(28.638) == pytest.approx(0.9, rel=0.01)
        assert s.scale_power(5.654) == pytest.approx(2.1, rel=0.01)

    def test_intermediate_nodes_monotone(self):
        areas = [TechnologyScaler(28, n).scale_area(28.638) for n in (28, 22, 16, 12, 10, 7)]
        assert all(a > b for a, b in zip(areas, areas[1:]))

    def test_unsupported_node(self):
        with pytest.raises(ValueError, match="unsupported node"):
            TechnologyScaler(28, 5)


class TestConfigSensitivity:
    def test_fewer_lanes_smaller_chip(self):
        small = chip_area_breakdown(AcceleratorConfig(lanes_per_pnl=4))
        full = chip_area_breakdown(AcceleratorConfig(lanes_per_pnl=8))
        assert small.total_area < full.total_area

    def test_single_rsc_halves_core_area(self):
        one = chip_area_breakdown(AcceleratorConfig(num_rscs=1))
        two = chip_area_breakdown(AcceleratorConfig(num_rscs=2))
        assert one.area_mm2["2x RSC"] == pytest.approx(two.area_mm2["2x RSC"] / 2)
