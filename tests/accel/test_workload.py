"""Fig. 2 op-count model: anchors and scaling behaviour."""

from __future__ import annotations

import pytest

from repro.accel.workload import ClientWorkload, resnet20_client_ops


@pytest.fixture(scope="module")
def paper_workload() -> ClientWorkload:
    return ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)


class TestPaperAnchors:
    def test_encode_encrypt_mops(self, paper_workload):
        """Paper: 27.0 MOPs; our accounting lands within 2 %."""
        mops = paper_workload.encode_encrypt_ops().total / 1e6
        assert mops == pytest.approx(27.0, rel=0.02)

    def test_decode_decrypt_mops(self, paper_workload):
        """Paper: 2.9 MOPs; our accounting lands within 10 %."""
        mops = paper_workload.decode_decrypt_ops().total / 1e6
        assert mops == pytest.approx(2.9, rel=0.10)

    def test_imbalance_ratio(self, paper_workload):
        """Paper: "nearly ten times greater"."""
        assert 8.0 <= paper_workload.imbalance_ratio() <= 11.0

    def test_ntt_dominates_encrypt(self, paper_workload):
        shares = paper_workload.encode_encrypt_ops().shares()
        assert shares["i_ntt"] > 0.5  # Fig. 2(b): NTT is the dominant class

    def test_shares_sum_to_one(self, paper_workload):
        for ops in (
            paper_workload.encode_encrypt_ops(),
            paper_workload.decode_decrypt_ops(),
        ):
            assert sum(ops.shares().values()) == pytest.approx(1.0)


class TestScaling:
    def test_ops_scale_superlinearly_with_degree(self):
        small = ClientWorkload(degree=1 << 13).encode_encrypt_ops().total
        big = ClientWorkload(degree=1 << 16).encode_encrypt_ops().total
        assert big > 8 * small  # N log N growth

    def test_ops_scale_with_levels(self):
        lo = ClientWorkload(degree=1 << 14, enc_levels=12).encode_encrypt_ops().total
        hi = ClientWorkload(degree=1 << 14, enc_levels=24).encode_encrypt_ops().total
        assert hi > 1.9 * lo

    def test_transform_counts(self, paper_workload):
        assert paper_workload.num_ntt_transforms_encrypt() == 48  # 2 x 24
        assert paper_workload.num_ntt_transforms_decrypt() == 4  # 2 x 2

    def test_degree_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            ClientWorkload(degree=1000)


class TestResnet20:
    def test_client_ops(self):
        ops = resnet20_client_ops()
        assert ops["encode_encrypt"] > ops["decode_decrypt"]

    def test_multiple_ciphertexts(self):
        one = resnet20_client_ops(input_ciphertexts=1)
        four = resnet20_client_ops(input_ciphertexts=4)
        assert four["encode_encrypt"] == 4 * one["encode_encrypt"]
