"""Bit-manipulation helpers, including the Eq. 11 k-decomposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_reverse,
    bit_reverse_indices,
    ilog2,
    is_power_of_two,
    popcount,
    signed_power_terms,
)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << k) for k in range(20))
        assert not any(is_power_of_two(x) for x in (0, -2, 3, 6, 12, 100))

    def test_ilog2(self):
        for k in range(20):
            assert ilog2(1 << k) == k

    def test_ilog2_rejects(self):
        with pytest.raises(ValueError, match="power of two"):
            ilog2(12)


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 8) == 0

    def test_involution(self):
        for v in range(64):
            assert bit_reverse(bit_reverse(v, 6), 6) == v

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="does not fit"):
            bit_reverse(8, 3)

    def test_indices_match_scalar(self):
        idx = bit_reverse_indices(32)
        assert [bit_reverse(i, 5) for i in range(32)] == idx.tolist()

    def test_indices_are_permutation(self):
        idx = bit_reverse_indices(128)
        assert sorted(idx.tolist()) == list(range(128))


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 36) - 1) == 36


class TestSignedPowerTerms:
    """The ±2^a ± 2^b ± 2^c condition of Eq. 11."""

    def test_exact_powers(self):
        for k in (1, 2, 8, 1024):
            terms = signed_power_terms(k)
            assert terms is not None
            assert sum(s * (1 << e) for s, e in terms) == k

    def test_zero(self):
        assert signed_power_terms(0) == []

    def test_negative(self):
        terms = signed_power_terms(-12)
        assert terms is not None
        assert sum(s * (1 << e) for s, e in terms) == -12

    def test_three_term_values(self):
        # 7 = 8 - 1 (2 terms); 11 = 8 + 2 + 1 (3 terms)
        assert len(signed_power_terms(7)) == 2
        assert len(signed_power_terms(11)) == 3

    def test_undecomposable_returns_none(self):
        # 0b10101010101 needs more than 3 signed powers.
        assert signed_power_terms(0b10101010101, max_terms=3) is None

    def test_respects_max_terms(self):
        k = 0b1011  # = 8+2+1 = 3 terms, or 8+4-1 = 3 terms; never 2
        assert signed_power_terms(k, max_terms=2) is None
        assert signed_power_terms(k, max_terms=3) is not None

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=-(1 << 30), max_value=1 << 30))
    def test_hypothesis_reconstruction(self, k):
        terms = signed_power_terms(k)
        if terms is not None:
            assert sum(s * (1 << e) for s, e in terms) == k
            assert len(terms) <= 3
            assert all(s in (-1, 1) for s, _ in terms)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
    )
    def test_hypothesis_completeness(self, a, b, c):
        """Any true 3-signed-power value must be decomposed, not refused."""
        k = (1 << a) + (1 << b) - (1 << c)
        assert signed_power_terms(k) is not None
