"""Experiment index: every fig/table function reproduces its paper anchor."""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig1_breakdown,
    fig2_workload,
    fig3_precision_sweep,
    fig4a_sfg_example,
    fig4b_design_space,
    fig5a_speedups,
    fig5b_lane_sweep,
    fig6a_area_progression,
    fig6b_memory_ablation,
    knee_lanes,
    memopt_speedup,
    sec4b_footprint,
    sec4b_prime_count,
    table1_modmul_areas,
    table2_breakdown,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig1_breakdown()

    def test_sota_client_share(self, rows):
        """Paper: client 69.4 % / server 30.6 % with [34] + [9]."""
        sota = next(r for r in rows if r.platform.startswith("[34]"))
        assert sota.client_share == pytest.approx(0.694, abs=0.01)

    def test_abc_fhe_removes_bottleneck(self, rows):
        abc = next(r for r in rows if r.platform.startswith("ABC-FHE"))
        assert abc.client_share < 0.05

    def test_cpu_server_dominates_everything(self, rows):
        cpu_cpu = next(r for r in rows if "CPU server" in r.platform)
        assert cpu_cpu.server_share > 0.999

    def test_shares_sum_to_one(self, rows):
        for r in rows:
            assert r.client_share + r.server_share == pytest.approx(1.0)


class TestFig2:
    def test_paper_point(self):
        w = fig2_workload()
        assert w.enc_mops == pytest.approx(27.0, rel=0.02)
        assert w.dec_mops == pytest.approx(2.9, rel=0.10)
        assert 8 <= w.ratio <= 11


class TestFig3:
    def test_sweep_shape(self):
        """Monotone rise with mantissa width; FP55 point clears threshold."""
        sweep = fig3_precision_sweep(slots=256, mantissa_range=range(20, 53, 8))
        precisions = [p.precision_bits for p in sweep.points]
        assert all(a < b for a, b in zip(precisions, precisions[1:]))
        assert sweep.precision_at(44) > sweep.threshold_bits
        assert sweep.chosen_mantissa <= 44


class TestFig4:
    def test_8_point_example(self):
        counts = fig4a_sfg_example()
        assert counts["radix_2n_merged"] == 12  # the paper's "12"
        assert counts["radix_2_preprocessing"] > 12  # the paper's "13"

    def test_design_space(self):
        results = fig4b_design_space(degrees=(1 << 16,), lanes=8)
        for r in results:
            assert r.best.name == "radix-2^n"
            assert r.reduction_vs_radix2 > r.reduction_vs_radix22 > 0
        ntt = next(r for r in results if r.mode == "ntt")
        assert ntt.reduction_vs_radix2 == pytest.approx(0.297, abs=0.05)
        assert ntt.reduction_vs_radix22 == pytest.approx(0.223, abs=0.05)

    def test_normalized_counts_start_at_one(self):
        r = fig4b_design_space(degrees=(1 << 14,), lanes=8, modes=("ntt",))[0]
        names_and_counts = r.normalized_counts()
        assert names_and_counts[0][1] == 1.0


class TestFig5:
    def test_speedups(self):
        _, sp = fig5a_speedups()
        assert sp["cpu_enc"] == pytest.approx(1112, rel=0.03)
        assert sp["cpu_dec"] == pytest.approx(963, rel=0.03)
        assert sp["sota_enc"] == pytest.approx(214, rel=0.01)
        assert sp["sota_dec"] == pytest.approx(82, rel=0.01)

    def test_rows_ordering(self):
        rows, _ = fig5a_speedups()
        abc = next(r for r in rows if r.platform == "ABC-FHE")
        for r in rows:
            assert r.encode_encrypt_s >= abc.encode_encrypt_s

    def test_lane_knee(self):
        assert knee_lanes(fig5b_lane_sweep()) == 8


class TestFig6:
    def test_area_progression(self):
        p = fig6a_area_progression()
        assert p["baseline"] == 1.0
        assert p["reconfigurable"] < p["montmul"] < p["tf_scheduling"] < 1.0

    def test_memopt_band(self):
        pts = fig6b_memory_ablation(degrees=(1 << 14, 1 << 16))
        for degree in (1 << 14, 1 << 16):
            assert 7.5 <= memopt_speedup(pts, degree) <= 10.0


class TestTables:
    def test_table1(self):
        for row in table1_modmul_areas():
            assert row.area_um2 == pytest.approx(row.paper_area_um2, rel=0.005)

    def test_table2(self):
        bd = table2_breakdown()
        assert bd.total_area == pytest.approx(28.638, rel=0.02)

    def test_sec4b(self):
        fp = sec4b_footprint()
        assert fp.public_key_bytes == int(16.5 * 2**20)
        assert 400 <= sec4b_prime_count() <= 500  # paper: 443
