"""XOF: determinism, domain separation, derivation hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng.xof import SEED_BYTES, Xof


class TestConstruction:
    def test_seed_length_enforced(self):
        with pytest.raises(ValueError, match="16 bytes"):
            Xof(b"short")

    def test_from_int(self):
        assert Xof.from_int(7).seed == (7).to_bytes(16, "little")

    def test_seed_is_128_bits(self):
        """The paper's security accounting: a 128-bit on-chip seed."""
        assert SEED_BYTES * 8 == 128


class TestStreams:
    def test_deterministic(self):
        a = Xof.from_int(1).stream(b"d", 64)
        b = Xof.from_int(1).stream(b"d", 64)
        assert a == b

    def test_domain_separation(self):
        x = Xof.from_int(1)
        assert x.stream(b"mask", 64) != x.stream(b"error", 64)

    def test_counter_separation(self):
        x = Xof.from_int(1)
        assert x.stream(b"d", 64, counter=0) != x.stream(b"d", 64, counter=1)

    def test_seed_separation(self):
        assert Xof.from_int(1).stream(b"d", 64) != Xof.from_int(2).stream(b"d", 64)

    def test_length(self):
        assert len(Xof.from_int(0).stream(b"d", 123)) == 123

    def test_prefix_free_domains(self):
        """Length-prefixed domains: (b"ab", b"c") never collides with
        (b"a", b"bc")."""
        x = Xof.from_int(3)
        assert x.stream(b"ab", 32) != x.stream(b"a", 32)

    def test_uint64_stream(self):
        words = Xof.from_int(5).uint64_stream(b"w", 100)
        assert words.shape == (100,)
        assert words.dtype == np.uint64
        # Uniform 64-bit words: no repeats expected in 100 draws.
        assert len(set(words.tolist())) == 100

    def test_uint64_stream_writable(self):
        words = Xof.from_int(5).uint64_stream(b"w", 4)
        words[0] = 0  # must not raise (frombuffer copies)


class TestDerive:
    def test_child_differs_from_parent(self):
        parent = Xof.from_int(9)
        child = parent.derive(b"enc")
        assert child.seed != parent.seed
        assert len(child.seed) == SEED_BYTES

    def test_label_separation(self):
        parent = Xof.from_int(9)
        assert parent.derive(b"a").seed != parent.derive(b"b").seed

    def test_deterministic_hierarchy(self):
        assert Xof.from_int(9).derive(b"x").seed == Xof.from_int(9).derive(b"x").seed
