"""Lattice samplers: support, moments, determinism, exactness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng.samplers import (
    DiscreteGaussianSampler,
    ERROR_STDDEV,
    TernarySampler,
    UniformSampler,
)
from repro.prng.xof import Xof

Q = (1 << 36) + 3 * (1 << 17) + 1
XOF = Xof.from_int(2024)


class TestUniform:
    def test_range(self):
        s = UniformSampler(Q).sample(XOF, b"u", 5000)
        assert s.min() >= 0
        assert s.max() < Q

    def test_deterministic(self):
        a = UniformSampler(Q).sample(XOF, b"u", 100)
        b = UniformSampler(Q).sample(XOF, b"u", 100)
        assert np.array_equal(a, b)

    def test_mean_near_q_half(self):
        s = UniformSampler(Q).sample(XOF, b"u", 50000).astype(float)
        assert abs(s.mean() / (Q / 2) - 1) < 0.02

    def test_uniform_buckets(self):
        """Chi-square-style bucket check on 16 equal bins."""
        s = UniformSampler(Q).sample(XOF, b"bins", 64000)
        counts = np.bincount((s // np.uint64(Q // 16 + 1)).astype(int), minlength=16)
        assert np.all(np.abs(counts - 4000) < 400)

    def test_small_modulus(self):
        s = UniformSampler(3).sample(XOF, b"u", 3000)
        assert set(s.tolist()) == {0, 1, 2}

    def test_rejects_wide_modulus(self):
        with pytest.raises(ValueError, match="out of supported range"):
            UniformSampler(1 << 63).sample(XOF, b"u", 1)

    def test_exact_count(self):
        assert len(UniformSampler(Q).sample(XOF, b"u", 777)) == 777


class TestTernary:
    def test_dense_support(self):
        s = TernarySampler(Q).sample_signed(XOF, b"t", 10000)
        assert set(s.tolist()) <= {-1, 0, 1}

    def test_dense_distribution(self):
        """P(-1)=P(+1)=1/4, P(0)=1/2 from two PRNG bits."""
        s = TernarySampler(Q).sample_signed(XOF, b"t", 200000)
        assert abs((s == 0).mean() - 0.5) < 0.01
        assert abs((s == 1).mean() - 0.25) < 0.01
        assert abs(s.mean()) < 0.01

    def test_sparse_exact_weight(self):
        s = TernarySampler(Q, hamming_weight=64).sample_signed(XOF, b"t", 1024)
        assert (s != 0).sum() == 64
        assert set(s.tolist()) <= {-1, 0, 1}

    def test_sparse_weight_too_large(self):
        with pytest.raises(ValueError, match="exceeds"):
            TernarySampler(Q, hamming_weight=100).sample_signed(XOF, b"t", 50)

    def test_residue_mapping(self):
        signed = TernarySampler(Q).sample_signed(XOF, b"t", 1000)
        residues = TernarySampler(Q).sample(XOF, b"t", 1000)
        expected = np.where(signed < 0, np.int64(Q) + signed, signed).astype(np.uint64)
        assert np.array_equal(residues, expected)

    def test_deterministic(self):
        a = TernarySampler(Q).sample_signed(XOF, b"t", 100)
        b = TernarySampler(Q).sample_signed(XOF, b"t", 100)
        assert np.array_equal(a, b)


class TestGaussian:
    def test_moments(self):
        s = DiscreteGaussianSampler().sample_signed(XOF, b"g", 200000).astype(float)
        assert abs(s.mean()) < 0.05
        assert abs(s.std() - ERROR_STDDEV) < 0.05

    def test_tail_bound(self):
        s = DiscreteGaussianSampler().sample_signed(XOF, b"g", 100000)
        assert np.abs(s).max() <= int(np.ceil(6 * ERROR_STDDEV))

    def test_custom_stddev(self):
        s = DiscreteGaussianSampler(stddev=1.0).sample_signed(XOF, b"g", 100000)
        assert abs(s.astype(float).std() - 1.0) < 0.05

    def test_invalid_stddev(self):
        with pytest.raises(ValueError, match="positive"):
            DiscreteGaussianSampler(stddev=0.0)

    def test_residue_mapping(self):
        signed = DiscreteGaussianSampler().sample_signed(XOF, b"g", 500)
        residues = DiscreteGaussianSampler().sample(XOF, b"g", 500, Q)
        for s, r in zip(signed.tolist(), residues.tolist()):
            assert r == s % Q

    def test_deterministic(self):
        a = DiscreteGaussianSampler().sample_signed(XOF, b"g", 64)
        b = DiscreteGaussianSampler().sample_signed(XOF, b"g", 64)
        assert np.array_equal(a, b)

    def test_symmetry(self):
        s = DiscreteGaussianSampler().sample_signed(XOF, b"sym", 200000)
        pos = (s > 0).sum()
        neg = (s < 0).sum()
        assert abs(pos - neg) / max(pos, neg) < 0.02
