"""Pipeline dataflow models (Fig. 4): SFG counts and multiplier tallies."""

from __future__ import annotations

import pytest

from repro.transforms.dataflow import (
    design_space,
    pipeline_multipliers,
    reduction_vs,
    sfg_multiplications_merged,
    sfg_multiplications_unmerged,
)


class TestSfgCounts:
    def test_paper_8_point_merged(self):
        """Fig. 4(a): the merged radix-2^n SFG needs exactly 12 mults."""
        assert sfg_multiplications_merged(8) == 12

    def test_merged_formula(self):
        for n in (8, 64, 1024):
            assert sfg_multiplications_merged(n) == (n // 2) * (n.bit_length() - 1)

    def test_unmerged_exceeds_merged(self):
        for n in (8, 64, 1024):
            assert sfg_multiplications_unmerged(n) > sfg_multiplications_merged(n)

    def test_negation_counting_option(self):
        base = sfg_multiplications_unmerged(64)
        with_neg = sfg_multiplications_unmerged(64, count_negation=True)
        assert with_neg > base  # -1 butterflies exist and are otherwise free


class TestPipelineMultipliers:
    def test_radix_2n_is_theoretical_minimum(self):
        """The paper: minimum pipeline multipliers = P/2 * log2(N)."""
        for n in (1 << 14, 1 << 16):
            log_n = n.bit_length() - 1
            mc = pipeline_multipliers(n, 8, log_n, "ntt")
            assert mc.total == 4 * log_n
            assert mc.pattern_consistent

    def test_only_radix_2n_pattern_consistent(self):
        log_n = 16
        for d in design_space(1 << 16, 8, "ntt"):
            assert d.pattern_consistent == (d.radix_log == log_n)

    def test_radix_2n_strictly_best(self):
        designs = design_space(1 << 16, 8, "ntt")
        best = min(designs, key=lambda d: d.total)
        assert best.radix_log == 16

    def test_counts_decrease_with_radix_overall(self):
        designs = design_space(1 << 16, 8, "ntt")
        assert designs[0].total > designs[1].total > designs[-1].total

    def test_fft_is_4x_ntt_in_real_multipliers(self):
        """Eq. 12 reconfigurability: FFT counts are exactly 4x NTT's."""
        for k in (1, 2, 8, 16):
            ntt = pipeline_multipliers(1 << 16, 8, k, "ntt")
            fft = pipeline_multipliers(1 << 16, 8, k, "fft")
            assert fft.total == 4 * ntt.total

    def test_paper_reductions_ballpark(self):
        """Paper: 29.7 % vs radix-2, 22.3 % vs radix-2^2 (NTT, N = 2^16).

        Our boundary-misalignment model lands within a few points
        (see EXPERIMENTS.md for the exact comparison)."""
        r2 = reduction_vs(1 << 16, 8, 1, "ntt")
        r22 = reduction_vs(1 << 16, 8, 2, "ntt")
        assert 0.25 <= r2 <= 0.40
        assert 0.18 <= r22 <= 0.30
        assert r2 > r22  # radix-2 wastes more than radix-2^2

    def test_lane_scaling(self):
        narrow = pipeline_multipliers(1 << 14, 4, 14, "ntt")
        wide = pipeline_multipliers(1 << 14, 8, 14, "ntt")
        assert wide.total == 2 * narrow.total

    def test_validation(self):
        with pytest.raises(ValueError, match="radix_log"):
            pipeline_multipliers(1 << 14, 8, 0, "ntt")
        with pytest.raises(ValueError, match="radix_log"):
            pipeline_multipliers(1 << 14, 8, 15, "ntt")
        with pytest.raises(ValueError, match="lanes"):
            pipeline_multipliers(1 << 14, 3, 2, "ntt")
        with pytest.raises(ValueError, match="mode"):
            pipeline_multipliers(1 << 14, 8, 2, "dct")

    def test_design_space_covers_all_radices(self):
        designs = design_space(1 << 14, 8, "ntt")
        assert len(designs) == 14
        assert designs[0].name == "radix-2"
        assert designs[1].name == "radix-2^2"
        assert designs[-1].name == "radix-2^n"
