"""Negacyclic NTT: round trips, oracle agreement, algebraic laws."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nums.modular import mod_inv
from repro.nums.primegen import find_primes
from repro.transforms.ntt import NttContext, negacyclic_mul_naive

PRIME = find_primes(36, 1 << 12)[0].value


@pytest.fixture(scope="module", params=[16, 256, 1024], ids=lambda n: f"n{n}")
def ntt(request) -> NttContext:
    return NttContext.create(request.param, PRIME)


def random_poly(rng, n, q=PRIME):
    return rng.integers(0, q, n).astype(np.uint64)


class TestConstruction:
    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError, match="not NTT-friendly"):
            NttContext.create(1 << 20, PRIME)  # 2N does not divide q-1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            NttContext.create(100, PRIME)

    def test_rejects_bad_psi(self):
        with pytest.raises(ValueError, match="primitive"):
            NttContext.create(256, PRIME, psi=1)

    def test_accepts_explicit_valid_psi(self):
        base = NttContext.create(256, PRIME)
        again = NttContext.create(256, PRIME, psi=base.psi)
        assert np.array_equal(base.psi_rev, again.psi_rev)

    def test_psi_order(self, ntt):
        n, q = ntt.degree, ntt.modulus
        assert pow(ntt.psi, 2 * n, q) == 1
        assert pow(ntt.psi, n, q) == q - 1  # psi^N = -1: the negacyclic root

    def test_n_inv(self, ntt):
        assert ntt.n_inv == mod_inv(ntt.degree, ntt.modulus)


class TestTransforms:
    def test_roundtrip(self, ntt, rng):
        a = random_poly(rng, ntt.degree)
        assert np.array_equal(ntt.inverse(ntt.forward(a)), a)

    def test_roundtrip_other_order(self, ntt, rng):
        a = random_poly(rng, ntt.degree)
        assert np.array_equal(ntt.forward(ntt.inverse(a)), a)

    def test_forward_is_linear(self, ntt, rng):
        q = ntt.modulus
        a, b = random_poly(rng, ntt.degree), random_poly(rng, ntt.degree)
        lhs = ntt.forward((a + b) % np.uint64(q))
        rhs = (ntt.forward(a) + ntt.forward(b)) % np.uint64(q)
        assert np.array_equal(lhs, rhs)

    def test_constant_polynomial(self, ntt):
        """NTT of a constant c is the all-c vector (X^0 evaluates to 1)."""
        a = np.zeros(ntt.degree, dtype=np.uint64)
        a[0] = 42
        assert np.array_equal(ntt.forward(a), np.full(ntt.degree, 42, dtype=np.uint64))

    def test_input_not_mutated(self, ntt, rng):
        a = random_poly(rng, ntt.degree)
        before = a.copy()
        ntt.forward(a)
        assert np.array_equal(a, before)

    def test_shape_check(self, ntt):
        with pytest.raises(ValueError, match="expected shape"):
            ntt.forward(np.zeros(ntt.degree + 1, dtype=np.uint64))


class TestMultiplication:
    def test_matches_naive(self, ntt, rng):
        a, b = random_poly(rng, ntt.degree), random_poly(rng, ntt.degree)
        got = ntt.negacyclic_mul(a, b)
        assert np.array_equal(got, negacyclic_mul_naive(a, b, ntt.modulus))

    def test_x_to_n_is_minus_one(self, ntt):
        """X^(N/2) * X^(N/2) = X^N = -1 in the negacyclic ring."""
        n, q = ntt.degree, ntt.modulus
        x_half = np.zeros(n, dtype=np.uint64)
        x_half[n // 2] = 1
        prod = ntt.negacyclic_mul(x_half, x_half)
        expected = np.zeros(n, dtype=np.uint64)
        expected[0] = q - 1
        assert np.array_equal(prod, expected)

    def test_multiplicative_identity(self, ntt, rng):
        one = np.zeros(ntt.degree, dtype=np.uint64)
        one[0] = 1
        a = random_poly(rng, ntt.degree)
        assert np.array_equal(ntt.negacyclic_mul(a, one), a)

    def test_commutativity(self, ntt, rng):
        a, b = random_poly(rng, ntt.degree), random_poly(rng, ntt.degree)
        assert np.array_equal(ntt.negacyclic_mul(a, b), ntt.negacyclic_mul(b, a))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**36), st.integers(min_value=0, max_value=15))
    def test_monomial_product_hypothesis(self, coeff, shift):
        """c*X^i times X^j lands at X^(i+j) with negacyclic sign wrap."""
        n = 16
        ntt = NttContext.create(n, PRIME)
        a = np.zeros(n, dtype=np.uint64)
        a[shift] = coeff % PRIME
        b = np.zeros(n, dtype=np.uint64)
        b[n - 1] = 1
        prod = ntt.negacyclic_mul(a, b)
        k = shift + n - 1
        expected = np.zeros(n, dtype=np.uint64)
        if k < n:
            expected[k] = coeff % PRIME
        else:
            expected[k - n] = (PRIME - coeff % PRIME) % PRIME
        assert np.array_equal(prod, expected)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**36), min_size=32, max_size=32))
    def test_random_poly_hypothesis(self, coeffs):
        ntt = NttContext.create(32, PRIME)
        a = np.array([c % PRIME for c in coeffs], dtype=np.uint64)
        assert np.array_equal(ntt.inverse(ntt.forward(a)), a)


class TestPointwise:
    def test_pointwise_is_ring_product(self, ntt, rng):
        a, b = random_poly(rng, ntt.degree), random_poly(rng, ntt.degree)
        via_pointwise = ntt.inverse(ntt.pointwise_mul(ntt.forward(a), ntt.forward(b)))
        assert np.array_equal(via_pointwise, ntt.negacyclic_mul(a, b))


class TestBatchedTensors:
    """BatchNtt over stacked (..., L, N) tensors and EVAL-domain Galois."""

    def test_leading_batch_axis_matches_per_matrix(self):
        from repro.transforms.ntt import BatchNtt

        moduli = tuple(p.value for p in find_primes(36, 1 << 9)[:3])
        bn = BatchNtt.create(64, moduli)
        rng = np.random.default_rng(2)
        q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1)
        tensor = (
            rng.integers(0, 2**40, (4, 3, 64)).astype(np.uint64) % q_col
        )
        batched = bn.forward(tensor)
        per_matrix = np.stack([bn.forward(tensor[i]) for i in range(4)])
        assert np.array_equal(batched, per_matrix)
        assert np.array_equal(bn.inverse(batched), tensor)

    def test_bad_trailing_shape_rejected(self):
        from repro.transforms.ntt import BatchNtt

        moduli = tuple(p.value for p in find_primes(36, 1 << 9)[:2])
        bn = BatchNtt.create(64, moduli)
        with pytest.raises(ValueError, match="expected"):
            bn.forward(np.zeros((3, 64), dtype=np.uint64))

    def test_galois_permutation_matches_coeff_automorphism(self, rng):
        from repro.transforms.ntt import galois_permutation

        n = 64
        ntt = NttContext.create(n, PRIME)
        a = random_poly(rng, n)
        for k in (3, 5, 2 * n - 1):
            src = np.arange(n, dtype=np.int64)
            dest = (src * k) % (2 * n)
            wrap = dest >= n
            dest_idx = np.where(wrap, dest - n, dest)
            rotated = np.empty_like(a)
            rotated[dest_idx] = np.where(wrap, (PRIME - a) % PRIME, a)
            assert np.array_equal(
                ntt.forward(rotated), ntt.forward(a)[galois_permutation(n, k)]
            )
