"""Reduced-mantissa float emulation: exactness, idempotence, bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms.fp_custom import FP32_LIKE, FP55, FP64, FloatFormat


class TestFormats:
    def test_fp55_definition(self):
        assert FP55.total_bits == 55
        assert FP55.mantissa_bits == 43  # the paper's chosen width

    def test_fp64_is_native(self):
        assert FP64.is_native
        assert not FP55.is_native

    def test_mantissa_bounds(self):
        with pytest.raises(ValueError, match="1..52"):
            FloatFormat(1, 11, 0)
        with pytest.raises(ValueError, match="1..52"):
            FloatFormat(1, 11, 53)


class TestQuantize:
    def test_native_passthrough(self, rng):
        x = rng.normal(size=100)
        assert np.array_equal(FP64.quantize(x), x)

    def test_idempotent(self, rng):
        x = rng.normal(size=100)
        once = FP55.quantize(x)
        assert np.array_equal(FP55.quantize(once), once)

    def test_representable_values_unchanged(self):
        # Powers of two and small integers fit any mantissa exactly.
        x = np.array([1.0, -2.0, 0.5, 3.0, 0.0, 1024.0])
        assert np.array_equal(FP32_LIKE.quantize(x), x)

    def test_error_bounded_by_half_ulp(self, rng):
        x = rng.normal(size=1000)
        q = FP32_LIKE.quantize(x)
        rel = np.abs(q - x) / np.abs(x)
        assert np.max(rel) <= 2.0 ** (-FP32_LIKE.mantissa_bits) / 2 * 1.001

    def test_complex_parts_rounded_independently(self, rng):
        z = rng.normal(size=50) + 1j * rng.normal(size=50)
        q = FP55.quantize(z)
        assert np.array_equal(q.real, FP55.quantize(z.real))
        assert np.array_equal(q.imag, FP55.quantize(z.imag))

    def test_sign_preserved(self):
        x = np.array([-1.2345678901234567, 1.2345678901234567])
        q = FP32_LIKE.quantize(x)
        assert q[0] == -q[1]

    def test_zero_preserved(self):
        assert FP32_LIKE.quantize(np.array([0.0]))[0] == 0.0

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-1e100, max_value=1e100, allow_nan=False))
    def test_hypothesis_error_bound(self, x):
        q = float(FP55.quantize(np.array([x]))[0])
        if x == 0:
            assert q == 0
        else:
            assert abs(q - x) <= abs(x) * 2.0**-43

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=5, max_value=52))
    def test_monotone_in_mantissa(self, m):
        """More mantissa bits never increase the rounding error."""
        x = np.array([np.pi, np.e, 1 / 3, 1e10 / 7])
        fmt = FloatFormat(1, 11, m)
        fmt_more = FloatFormat(1, 11, min(52, m + 4))
        err = np.abs(fmt.quantize(x) - x)
        err_more = np.abs(fmt_more.quantize(x) - x)
        assert np.all(err_more <= err + 1e-300)


class TestUlp:
    def test_ulp_at_one(self):
        assert FP55.ulp(1.0) == 2.0**-43

    def test_ulp_scales_with_magnitude(self):
        assert FP55.ulp(1024.0) == 2.0**-33
