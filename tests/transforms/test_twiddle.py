"""OTF twiddle generation: bit-exact equivalence with stored tables, and
the Section IV-B memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nums.primegen import find_primes
from repro.transforms.ntt import NttContext
from repro.transforms.twiddle import OnTheFlyTwiddleGenerator, TwiddleMemoryModel

PRIME = find_primes(36, 1 << 12)[0].value


@pytest.fixture(scope="module", params=[64, 1024], ids=lambda n: f"n{n}")
def ntt(request) -> NttContext:
    return NttContext.create(request.param, PRIME)


class TestGeneratorEquivalence:
    def test_forward_factors_match_table(self, ntt):
        gen = OnTheFlyTwiddleGenerator.for_context(ntt)
        log_n = ntt.degree.bit_length() - 1
        for s in range(log_n):
            m = 1 << s
            assert np.array_equal(gen.stage_factors(s), ntt.psi_rev[m : 2 * m]), s

    def test_inverse_factors_match_table(self, ntt):
        gen = OnTheFlyTwiddleGenerator.for_context(ntt, inverse=True)
        log_n = ntt.degree.bit_length() - 1
        for s in range(log_n):
            m = 1 << s
            assert np.array_equal(gen.stage_factors(s), ntt.psi_inv_rev[m : 2 * m]), s

    def test_generated_ntt_matches_table_ntt(self, ntt, rng):
        """Drive a full NTT with generated factors; must equal the stock one.

        This is the functional proof behind replacing 8.25 MB of tables
        with ~27 KB of seeds: the transform is bit-identical.
        """
        gen = OnTheFlyTwiddleGenerator.for_context(ntt)
        n, q = ntt.degree, ntt.modulus
        a = rng.integers(0, q, n).astype(np.uint64)
        from repro.nums.modular import mulmod_vec

        out = a.copy()
        m, t = 1, n
        s = 0
        while m < n:
            t //= 2
            view = out.reshape(m, 2, t)
            factors = gen.stage_factors(s).reshape(m, 1)
            u = view[:, 0, :].copy()
            v = mulmod_vec(view[:, 1, :], factors, q)
            view[:, 0, :] = (u + v) % np.uint64(q)
            view[:, 1, :] = (u + np.uint64(q) - v) % np.uint64(q)
            m *= 2
            s += 1
        assert np.array_equal(out, ntt.forward(a))

    def test_stored_residues_count(self, ntt):
        gen = OnTheFlyTwiddleGenerator.for_context(ntt)
        log_n = ntt.degree.bit_length() - 1
        assert gen.stored_residues == 2 * log_n  # seed + step per stage


class TestMemoryModel:
    def test_paper_full_table_size(self):
        """24 limbs x 2^16 x 44 bits = exactly the paper's 8.25 MB."""
        mm = TwiddleMemoryModel(degree=1 << 16, num_primes=24, coeff_bits=44)
        assert mm.full_table_bytes == int(8.25 * 2**20)

    def test_seed_memory_within_hardware_budget(self):
        """Seeds must fit the 26.4 KB seed memory of Fig. 3(a)."""
        mm = TwiddleMemoryModel(degree=1 << 16, num_primes=24, coeff_bits=44)
        assert mm.seed_bytes <= 26.4 * 1024

    def test_reduction_over_99_8_percent(self):
        mm = TwiddleMemoryModel(degree=1 << 16, num_primes=24, coeff_bits=44)
        assert mm.reduction_ratio > 0.998  # paper: "over 99.9%"

    def test_scales_linearly_with_primes(self):
        small = TwiddleMemoryModel(degree=1 << 14, num_primes=12)
        big = TwiddleMemoryModel(degree=1 << 14, num_primes=24)
        assert big.full_table_bytes == 2 * small.full_table_bytes
