"""CKKS special FFT: dense-matrix oracle, round trips, symmetries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.transforms.fft import SpecialFft, embedding_matrix
from repro.transforms.fp_custom import FP55, FP64


@pytest.fixture(scope="module", params=[4, 16, 128], ids=lambda s: f"slots{s}")
def fft(request) -> SpecialFft:
    return SpecialFft.create(request.param)


def random_slots(rng, slots):
    return rng.normal(size=slots) + 1j * rng.normal(size=slots)


class TestAgainstMatrix:
    def test_forward_equals_dense_embedding(self, fft, rng):
        v = random_slots(rng, fft.slots)
        got = fft.forward(v.copy())
        ref = embedding_matrix(fft.slots) @ v
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_inverse_is_matrix_inverse(self, fft, rng):
        v = random_slots(rng, fft.slots)
        folded = fft.inverse(v.copy())
        ref = np.linalg.solve(embedding_matrix(fft.slots), v)
        np.testing.assert_allclose(folded, ref, atol=1e-9)


class TestRoundtrip:
    def test_forward_inverse(self, fft, rng):
        v = random_slots(rng, fft.slots)
        np.testing.assert_allclose(fft.inverse(fft.forward(v.copy())), v, atol=1e-10)

    def test_inverse_forward(self, fft, rng):
        v = random_slots(rng, fft.slots)
        np.testing.assert_allclose(fft.forward(fft.inverse(v.copy())), v, atol=1e-10)

    def test_zero_maps_to_zero(self, fft):
        z = np.zeros(fft.slots, dtype=np.complex128)
        assert np.all(fft.forward(z.copy()) == 0)
        assert np.all(fft.inverse(z.copy()) == 0)


class TestAlgebra:
    def test_linearity(self, fft, rng):
        a, b = random_slots(rng, fft.slots), random_slots(rng, fft.slots)
        np.testing.assert_allclose(
            fft.forward((a + b).copy()),
            fft.forward(a.copy()) + fft.forward(b.copy()),
            atol=1e-9,
        )

    def test_real_message_gives_real_folded_coeffs(self, fft, rng):
        """A conjugate-symmetric-compatible (real) polynomial decodes from
        real folded coefficients: inverse of a real-decodable message has
        the Im-part carrying the second coefficient half, and encoding a
        real message then decoding returns it (sanity of the fold)."""
        msg = rng.normal(size=fft.slots) + 0j
        folded = fft.inverse(msg.copy())
        back = fft.forward(folded.copy())
        np.testing.assert_allclose(back.imag, 0, atol=1e-10)

    def test_slot_delta_evaluates_everywhere(self, fft):
        """inverse of e_j spreads energy; forward restores the delta."""
        e0 = np.zeros(fft.slots, dtype=np.complex128)
        e0[0] = 1.0
        np.testing.assert_allclose(fft.forward(fft.inverse(e0.copy())), e0, atol=1e-10)


class TestValidation:
    def test_shape_check(self, fft):
        with pytest.raises(ValueError, match="expected shape"):
            fft.forward(np.zeros(fft.slots + 1, dtype=np.complex128))

    def test_non_power_of_two_slots(self):
        with pytest.raises(ValueError, match="power of two"):
            SpecialFft.create(12)

    def test_rot_group_is_powers_of_five(self, fft):
        m = fft.m
        assert fft.rot_group[0] == 1
        for j in range(1, fft.slots):
            assert fft.rot_group[j] == fft.rot_group[j - 1] * 5 % m


class TestReducedPrecision:
    def test_fp55_close_to_fp64(self, rng):
        slots = 256
        full = SpecialFft.create(slots, FP64)
        reduced = SpecialFft.create(slots, FP55)
        v = random_slots(rng, slots)
        a = full.forward(v.copy())
        b = reduced.forward(v.copy())
        err = np.max(np.abs(a - b)) / np.max(np.abs(a))
        assert 0 < err < 2.0**-35  # rounding visible but tiny

    def test_lower_mantissa_means_more_error(self, rng):
        from repro.transforms.fp_custom import FloatFormat

        slots = 256
        v = random_slots(rng, slots)
        ref = SpecialFft.create(slots, FP64).forward(v.copy())
        errs = []
        for m in (20, 30, 40):
            out = SpecialFft.create(slots, FloatFormat(1, 11, m)).forward(v.copy())
            errs.append(np.max(np.abs(out - ref)))
        assert errs[0] > errs[1] > errs[2]
