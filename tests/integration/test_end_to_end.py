"""End-to-end flows tying the crypto library and the accelerator model
together — the client/server story of Fig. 1 and Fig. 2(a)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.config import abc_fhe
from repro.accel.simulator import ClientSimulator
from repro.accel.workload import ClientWorkload
from repro.ckks import CkksContext, toy_params


class TestClientServerRoundTrip:
    """A full privacy-preserving outsourced computation."""

    @pytest.fixture(scope="class")
    def setting(self):
        ctx = CkksContext.create(toy_params(degree=256, num_primes=8), seed=21)
        rlk = ctx.relin_keys(levels=[8])
        return ctx, rlk

    def test_outsourced_polynomial_evaluation(self, setting):
        """Client encrypts x; server computes 0.5*x^2 + x + 1; client
        decrypts at a reduced level — the exact Fig. 2(a) task split."""
        ctx, rlk = setting
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, ctx.params.slots)

        # --- client: encode + encrypt (the paper's accelerated hot path)
        ct = ctx.encrypt(x)
        assert ct.level == 8

        # --- server: homomorphic evaluation
        ev = ctx.evaluator
        x_sq = ev.multiply_relin_rescale(ct, ct, rlk)  # level 6, scale ~Delta
        half = ctx.encoder.encode(
            np.full(ctx.params.slots, 0.5), level=x_sq.level, scale=x_sq.scale
        )
        term2 = ev.multiply_plain(x_sq, half)
        term2 = ev.rescale(term2, times=2)  # back to ~Delta at level 4
        x_aligned = ctx.encryptor.encrypt(
            ctx.encoder.encode(x, level=term2.level, scale=term2.scale)
        )
        acc = ev.add(term2, x_aligned)
        one = ctx.encoder.encode(
            np.ones(ctx.params.slots), level=acc.level, scale=acc.scale
        )
        acc = ev.add_plain(acc, one)

        # --- client: decode + decrypt at reduced level
        out = ctx.decrypt_decode(acc)
        expected = 0.5 * x**2 + x + 1
        assert np.max(np.abs(out - expected)) < 1e-3
        assert acc.level < ct.level  # server consumed levels, as in Fig. 2

    def test_seeded_upload_roundtrip(self, setting):
        """Client uploads (c0, seed); server reconstructs c1 and computes."""
        from repro.ckks.keys import expand_uniform_poly
        from repro.prng.xof import Xof
        from repro.ckks.containers import Ciphertext

        ctx, _ = setting
        msg = np.linspace(-1, 1, ctx.params.slots)
        ct, seed = ctx.encryptor.encrypt_symmetric_seeded(
            ctx.encode(msg), ctx.secret_key
        )
        # Server side: rebuild the full ciphertext from (c0, seed).
        c1 = expand_uniform_poly(ctx.basis, ct.level, Xof(seed), b"sym-c1")
        rebuilt = Ciphertext(parts=[ct.c0.copy(), c1], scale=ct.scale)
        doubled = ctx.evaluator.add(rebuilt, rebuilt)
        out = ctx.decrypt_decode(doubled)
        assert np.max(np.abs(out - 2 * msg)) < 1e-5


class TestModelConsistency:
    """The performance model must describe the same flow the library runs."""

    def test_simulator_transform_counts_match_library_flow(self):
        """Encrypting really performs 2L NTT passes (message + mask)."""
        w = ClientWorkload(degree=256, enc_levels=6, dec_levels=2)
        # The functional encryptor transforms: m (L limbs) + v (L limbs);
        # errors are sampled per limb too but the model folds them into
        # PRNG-domain generation. The modeled count is 2L.
        assert w.num_ntt_transforms_encrypt() == 12

    def test_ops_and_cycles_scale_together(self):
        """More limbs -> proportionally more modeled ops AND cycles."""
        w12 = ClientWorkload(degree=1 << 14, enc_levels=12)
        w24 = ClientWorkload(degree=1 << 14, enc_levels=24)
        ops_ratio = (
            w24.encode_encrypt_ops().ntt_ops / w12.encode_encrypt_ops().ntt_ops
        )
        c12 = ClientSimulator(abc_fhe(), w12).encode_encrypt().compute_cycles
        c24 = ClientSimulator(abc_fhe(), w24).encode_encrypt().compute_cycles
        assert ops_ratio == pytest.approx(2.0)
        assert 1.5 < c24 / c12 <= 2.1

    def test_footprint_matches_library_object_sizes(self):
        """The 16.5 MB public-key estimate equals the real pk's payload."""
        from repro.accel.memory import client_memory_footprint

        ctx = CkksContext.create(toy_params(degree=256, num_primes=6), seed=1)
        pk_residues = ctx.public_key.b.data.size + ctx.public_key.a.data.size
        fp = client_memory_footprint(degree=256, levels=6, coeff_bits=44)
        assert fp.public_key_bytes == pk_residues * 44 // 8
