"""Cross-backend bit-identity of the full CKKS pipeline.

The reducer backends must be *semantically invisible*: running the same
seeded encrypt -> multiply -> relinearize -> rescale -> decrypt pipeline
under generic-split, Barrett, and Montgomery kernels has to produce
byte-identical ciphertexts at every stage and byte-identical decoded
outputs.  This is the software analogue of the paper's Table I claim that
the reducers differ in cost, not semantics.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums.kernels import available_backends, using_backend
from repro.runtime import (
    CtSpec,
    FaultAction,
    FaultPlan,
    FaultPolicy,
    ServingConfig,
    ShardedExecutor,
    compile_fn,
)

DEGREE = 256
NUM_PRIMES = 6
SEED = 1234


@pytest.fixture(scope="module")
def remote_host(tmp_path_factory):
    """A genuinely remote worker host: the CLI entrypoint in its own
    process, no fork relationship to this test process.  One host
    serves every pipeline run in the module — reattaching coordinators
    hit its fingerprint-keyed plan cache instead of re-uploading."""
    tmp = tmp_path_factory.mktemp("remote-host")
    keyfile = tmp / "authkey"
    keyfile.write_bytes(os.urandom(32))
    portfile = tmp / "port"
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime.worker_host",
            "--bind",
            "127.0.0.1:0",
            "--authkey-file",
            str(keyfile),
            "--port-file",
            str(portfile),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60
    while not portfile.exists():
        if proc.poll() is not None or time.monotonic() > deadline:
            raise AssertionError("remote worker host failed to come up")
        time.sleep(0.05)
    try:
        yield int(portfile.read_text().strip()), str(keyfile)
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def _run_pipeline(remote=None):
    """One seeded encrypt/rotate/multiply/rescale/decrypt run; all bytes.

    The same program is executed ten ways — eagerly, through the
    runtime's reference interpreter, through the batched plan executor,
    through the arena-backed fused replayer, through a 2-worker sharded
    pool (ciphertexts crossing the serialization boundary), through a
    shipped-plan worker that deserializes the EPL1 plan artifact and
    replays it *fused*, through a pool whose first worker is
    SIGSTOPped mid-request by a scripted chaos plan (hang-killed,
    replaced, request retried), through a shared-memory-ring pool
    (payloads crossing /dev/shm instead of the pipe), through a
    loopback-TCP worker-host session, and (when ``remote`` carries a
    ``(port, keyfile)`` pair) through a **CLI-spawned standalone worker
    host** with no fork relationship to this process — and all modes
    must agree byte-for-byte within the run.
    """
    ctx = CkksContext.create(toy_params(degree=DEGREE, num_primes=NUM_PRIMES), seed=SEED)
    rlk = ctx.relin_keys(levels=[NUM_PRIMES])
    gks = ctx.galois_keys([1], levels=[NUM_PRIMES])
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, ctx.params.slots)
    y = rng.uniform(-1, 1, ctx.params.slots)

    ct_x = ctx.encrypt(x)
    ct_y = ctx.encrypt(y)

    def program(ev, a, b):
        rot = ev.rotate(a, 1, gks)
        prod = ev.multiply_relin_rescale(a, b, rlk)
        return rot, prod

    rot, prod = program(ctx.evaluator, ct_x, ct_y)
    out = ctx.decrypt_decode(prod)

    spec = CtSpec(level=NUM_PRIMES, scale=ctx.params.scale)
    plan = compile_fn(program, ctx.evaluator, [spec, spec])
    plan_rot, plan_prod = plan.run([ct_x, ct_y])
    ((batch_rot, batch_prod),) = plan.run_batch([[ct_x, ct_y]])
    ((fused_rot, fused_prod),) = plan.run_batch([[ct_x, ct_y]], fused=True)
    with ShardedExecutor(plan, 2) as pool:
        ((shard_rot, shard_prod),) = pool.run_batch([[ct_x, ct_y]], timeout=120)
    with ShardedExecutor(plan, 1, ship_plan=True, fused=True) as wire_pool:
        ((ship_rot, ship_prod),) = wire_pool.run_batch(
            [[ct_x, ct_y]], timeout=120
        )
        assert wire_pool.stats()["plan_wire"] or wire_pool.stats()["inline"]
        assert wire_pool.stats()["fused"]
    # Mode 7, faulted: the worker taking the request freezes (SIGSTOP)
    # before evaluating; the hang detector SIGKILLs and replaces it, and
    # the retried attempt must still land byte-identical output.
    chaos = FaultPlan(
        0,
        scripted={
            ("pre_evaluate", 0, 0): FaultAction("stop", "pre_evaluate")
        },
    )
    policy = FaultPolicy(hang_timeout_s=0.6, backoff_base_s=0.01)
    with ShardedExecutor(plan, 1, chaos=chaos, policy=policy) as fault_pool:
        ((fault_rot, fault_prod),) = fault_pool.run_batch(
            [[ct_x, ct_y]], timeout=120
        )
        fault_stats = fault_pool.stats()
        assert fault_stats["inline"] or fault_stats["hang_kills"] == 1
        assert fault_stats["completed"] == 1
    # Modes 8 and 9: the same request through the shared-memory-ring
    # and loopback-TCP transports — the transport must be invisible.
    shm_cfg = ServingConfig(num_workers=2, transport="shm")
    with ShardedExecutor(plan, config=shm_cfg) as shm_pool:
        ((shm_rot, shm_prod),) = shm_pool.run_batch([[ct_x, ct_y]], timeout=120)
        assert shm_pool.stats()["transport"] == "shm"
    tcp_cfg = ServingConfig(num_workers=1, transport="tcp", ship_plan=True)
    with ShardedExecutor(plan, config=tcp_cfg) as tcp_pool:
        ((tcp_rot, tcp_prod),) = tcp_pool.run_batch([[ct_x, ct_y]], timeout=120)
        assert tcp_pool.stats()["transport"] == "tcp"
    # Mode 10: a genuinely remote host — the worker-host CLI process,
    # which rebuilt its evaluator from the shipped HostEnv and got the
    # plan as FPL1 bytes.  Its process has no fork relationship to this
    # one, so agreement here certifies the whole explicit-state path.
    if remote is not None:
        remote_port, remote_keyfile = remote
        remote_cfg = ServingConfig(
            num_workers=1,
            transport="tcp",
            hosts=(f"tcp://127.0.0.1:{remote_port}",),
            ship_plan=True,
            authkey_file=remote_keyfile,
        )
        with ShardedExecutor(plan, config=remote_cfg) as remote_pool:
            ((remote_rot, remote_prod),) = remote_pool.run_batch(
                [[ct_x, ct_y]], timeout=120
            )
            assert remote_pool.stats()["transport_stats"]["remote_hosts"] == 1
    else:
        remote_rot, remote_prod = tcp_rot, tcp_prod
    for (
        eager_ct,
        planned,
        batched,
        fused,
        sharded,
        shipped,
        faulted,
        shmmed,
        tcped,
        remoted,
    ) in (
        (
            rot,
            plan_rot,
            batch_rot,
            fused_rot,
            shard_rot,
            ship_rot,
            fault_rot,
            shm_rot,
            tcp_rot,
            remote_rot,
        ),
        (
            prod,
            plan_prod,
            batch_prod,
            fused_prod,
            shard_prod,
            ship_prod,
            fault_prod,
            shm_prod,
            tcp_prod,
            remote_prod,
        ),
    ):
        for i, part in enumerate(eager_ct.parts):
            assert np.array_equal(part.data, planned.parts[i].data), (
                f"planned execution diverged from eager at part {i}"
            )
            assert np.array_equal(part.data, batched.parts[i].data), (
                f"batched execution diverged from eager at part {i}"
            )
            assert np.array_equal(part.data, fused.parts[i].data), (
                f"fused execution diverged from eager at part {i}"
            )
            assert np.array_equal(part.data, sharded.parts[i].data), (
                f"sharded execution diverged from eager at part {i}"
            )
            assert np.array_equal(part.data, shipped.parts[i].data), (
                f"shipped-plan (fused) execution diverged from eager at part {i}"
            )
            assert np.array_equal(part.data, faulted.parts[i].data), (
                f"faulted (hang-recovered) execution diverged from eager "
                f"at part {i}"
            )
            assert np.array_equal(part.data, shmmed.parts[i].data), (
                f"shared-memory transport diverged from eager at part {i}"
            )
            assert np.array_equal(part.data, tcped.parts[i].data), (
                f"tcp transport diverged from eager at part {i}"
            )
            assert np.array_equal(part.data, remoted.parts[i].data), (
                f"remote standalone host diverged from eager at part {i}"
            )

    snapshots = {
        "ct_x": [p.data.copy() for p in ct_x.parts],
        "rot": [p.data.copy() for p in rot.parts],
        "prod": [p.data.copy() for p in prod.parts],
        "plan_rot": [p.data.copy() for p in plan_rot.parts],
        "plan_prod": [p.data.copy() for p in plan_prod.parts],
        "fused_rot": [p.data.copy() for p in fused_rot.parts],
        "fused_prod": [p.data.copy() for p in fused_prod.parts],
        "out": out.copy(),
        "plan_out": ctx.decrypt_decode(plan_prod).copy(),
        "expected": x * y,
    }
    return snapshots


@pytest.mark.parametrize("backend", available_backends())
def test_pipeline_is_correct_under_every_backend(backend, remote_host):
    with using_backend(backend):
        snap = _run_pipeline(remote=remote_host)
    assert np.max(np.abs(snap["out"].real - snap["expected"])) < 1e-3


def test_ciphertexts_bit_identical_across_backends(remote_host):
    runs = {}
    for backend in available_backends():
        with using_backend(backend):
            runs[backend] = _run_pipeline(remote=remote_host)
    names = sorted(runs)
    ref = runs[names[0]]
    for other in names[1:]:
        got = runs[other]
        for key in (
            "ct_x", "rot", "prod", "plan_rot", "plan_prod",
            "fused_rot", "fused_prod",
        ):
            for i, (a, b) in enumerate(zip(ref[key], got[key])):
                assert np.array_equal(a, b), (
                    f"{key} part {i} differs between {names[0]} and {other}"
                )
        for key in ("out", "plan_out"):
            assert np.array_equal(ref[key], got[key]), (
                f"decoded {key} differs between {names[0]} and {other}"
            )
