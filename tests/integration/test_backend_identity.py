"""Cross-backend bit-identity of the full CKKS pipeline.

The reducer backends must be *semantically invisible*: running the same
seeded encrypt -> multiply -> relinearize -> rescale -> decrypt pipeline
under generic-split, Barrett, and Montgomery kernels has to produce
byte-identical ciphertexts at every stage and byte-identical decoded
outputs.  This is the software analogue of the paper's Table I claim that
the reducers differ in cost, not semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums.kernels import available_backends, using_backend

DEGREE = 256
NUM_PRIMES = 6
SEED = 1234


def _run_pipeline():
    """One seeded encrypt/rotate/multiply/rescale/decrypt run; all bytes."""
    ctx = CkksContext.create(toy_params(degree=DEGREE, num_primes=NUM_PRIMES), seed=SEED)
    rlk = ctx.relin_keys(levels=[NUM_PRIMES])
    gks = ctx.galois_keys([1], levels=[NUM_PRIMES])
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, ctx.params.slots)
    y = rng.uniform(-1, 1, ctx.params.slots)

    ct_x = ctx.encrypt(x)
    ct_y = ctx.encrypt(y)
    rot = ctx.evaluator.rotate(ct_x, 1, gks)
    prod = ctx.evaluator.multiply_relin_rescale(ct_x, ct_y, rlk)
    out = ctx.decrypt_decode(prod)

    snapshots = {
        "ct_x": [p.data.copy() for p in ct_x.parts],
        "rot": [p.data.copy() for p in rot.parts],
        "prod": [p.data.copy() for p in prod.parts],
        "out": out.copy(),
        "expected": x * y,
    }
    return snapshots


@pytest.mark.parametrize("backend", available_backends())
def test_pipeline_is_correct_under_every_backend(backend):
    with using_backend(backend):
        snap = _run_pipeline()
    assert np.max(np.abs(snap["out"].real - snap["expected"])) < 1e-3


def test_ciphertexts_bit_identical_across_backends():
    runs = {}
    for backend in available_backends():
        with using_backend(backend):
            runs[backend] = _run_pipeline()
    names = sorted(runs)
    ref = runs[names[0]]
    for other in names[1:]:
        got = runs[other]
        for key in ("ct_x", "rot", "prod"):
            for i, (a, b) in enumerate(zip(ref[key], got[key])):
                assert np.array_equal(a, b), (
                    f"{key} part {i} differs between {names[0]} and {other}"
                )
        assert np.array_equal(ref["out"], got["out"]), (
            f"decoded output differs between {names[0]} and {other}"
        )
