"""Test package (unique module namespace under pytest's import mode)."""
