"""RNS polynomials: domain discipline, exact lifts, ring laws, rescaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rns.basis import RnsBasis
from repro.rns.poly import COEFF, EVAL, RnsPolynomial
from repro.transforms.ntt import negacyclic_mul_naive

N = 256
LEVEL = 4


def poly_from(rng, basis, level=LEVEL, bound=1000):
    return RnsPolynomial.from_signed_coeffs(
        basis, level, rng.integers(-bound, bound, basis.degree)
    )


class TestConstruction:
    def test_zero(self, basis):
        z = RnsPolynomial.zero(basis, 3)
        assert z.level == 3
        assert np.all(z.data == 0)

    def test_from_signed_roundtrip(self, basis, rng):
        coeffs = rng.integers(-500, 500, basis.degree)
        p = RnsPolynomial.from_signed_coeffs(basis, LEVEL, coeffs)
        assert p.to_bigints() == coeffs.tolist()

    def test_from_bigint_roundtrip(self, basis):
        big = basis.modulus_at(LEVEL)
        coeffs = [0, 1, -1 % big, big // 3, big - 7] + [0] * (basis.degree - 5)
        p = RnsPolynomial.from_bigint_coeffs(basis, LEVEL, coeffs)
        assert p.to_bigints(center=False) == [c % big for c in coeffs]

    def test_shape_validation(self, basis):
        with pytest.raises(ValueError, match="data must be"):
            RnsPolynomial(basis, np.zeros((2, 3), dtype=np.uint64))

    def test_level_validation(self, basis):
        with pytest.raises(ValueError, match="level"):
            RnsPolynomial(basis, np.zeros((basis.num_primes + 1, N), dtype=np.uint64))

    def test_domain_validation(self, basis):
        with pytest.raises(ValueError, match="unknown domain"):
            RnsPolynomial(basis, np.zeros((1, N), dtype=np.uint64), "frequency")

    def test_wrong_coeff_count(self, basis):
        with pytest.raises(ValueError, match="expected"):
            RnsPolynomial.from_signed_coeffs(basis, 2, np.zeros(N - 1, dtype=np.int64))


class TestDomains:
    def test_eval_roundtrip(self, basis, rng):
        p = poly_from(rng, basis)
        back = p.to_eval().to_coeff()
        assert np.array_equal(back.data, p.data)

    def test_idempotent_conversions(self, basis, rng):
        p = poly_from(rng, basis)
        assert p.to_coeff().domain == COEFF
        assert p.to_eval().to_eval().domain == EVAL

    def test_mul_requires_eval(self, basis, rng):
        a, b = poly_from(rng, basis), poly_from(rng, basis)
        with pytest.raises(ValueError, match="NTT domain"):
            a * b

    def test_mixed_domain_add_rejected(self, basis, rng):
        a, b = poly_from(rng, basis), poly_from(rng, basis)
        with pytest.raises(ValueError, match="domain mismatch"):
            a + b.to_eval()

    def test_lift_requires_coeff(self, basis, rng):
        with pytest.raises(ValueError, match="coefficient domain"):
            poly_from(rng, basis).to_eval().to_bigints()


class TestArithmetic:
    def test_add_is_exact(self, basis, rng):
        a, b = poly_from(rng, basis), poly_from(rng, basis)
        got = (a + b).to_bigints()
        expect = [x + y for x, y in zip(a.to_bigints(), b.to_bigints())]
        assert got == expect

    def test_sub_neg_consistency(self, basis, rng):
        a, b = poly_from(rng, basis), poly_from(rng, basis)
        assert np.array_equal((a - b).data, (a + (-b)).data)

    def test_mul_matches_naive_per_limb(self, basis, rng):
        a, b = poly_from(rng, basis, bound=50), poly_from(rng, basis, bound=50)
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        for i in range(LEVEL):
            ref = negacyclic_mul_naive(a.data[i], b.data[i], basis.moduli[i])
            assert np.array_equal(prod.data[i], ref)

    def test_scale_scalar_int(self, basis, rng):
        a = poly_from(rng, basis)
        got = a.scale_scalar(7).to_bigints()
        assert got == [7 * c for c in a.to_bigints()]

    def test_scale_scalar_per_limb(self, basis, rng):
        a = poly_from(rng, basis, level=2)
        scalars = [3 % basis.moduli[0], 3 % basis.moduli[1]]
        assert np.array_equal(a.scale_scalar(scalars).data, a.scale_scalar(3).data)

    def test_scale_scalar_wrong_count(self, basis, rng):
        with pytest.raises(ValueError, match="one scalar per"):
            poly_from(rng, basis, level=2).scale_scalar([1, 2, 3])

    def test_level_mismatch_takes_min(self, basis, rng):
        a, b = poly_from(rng, basis, level=4), poly_from(rng, basis, level=2)
        assert (a + b).level == 2

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=N, max_size=N))
    def test_add_commutes_hypothesis(self, coeffs):
        basis = RnsBasis.create(N, 3)
        a = RnsPolynomial.from_signed_coeffs(basis, 2, np.array(coeffs))
        b = RnsPolynomial.from_signed_coeffs(basis, 2, np.array(coeffs[::-1]))
        assert np.array_equal((a + b).data, (b + a).data)


class TestAutomorphism:
    def test_monomial_mapping(self, basis):
        mono = np.zeros(N, dtype=np.int64)
        mono[2] = 1
        p = RnsPolynomial.from_signed_coeffs(basis, 2, mono)
        out = p.automorphism(5).to_bigints()
        assert out[10] == 1 and sum(abs(c) for c in out) == 1

    def test_negacyclic_wrap_sign(self, basis):
        """X^k with k*g >= N wraps with a sign flip."""
        mono = np.zeros(N, dtype=np.int64)
        mono[N - 1] = 1
        out = RnsPolynomial.from_signed_coeffs(basis, 2, mono).automorphism(3).to_bigints()
        # (N-1)*3 = 3N - 3 -> X^(3N-3) = X^(N-3) * (X^N)^2 = +X^(N-3)
        assert out[N - 3] == 1

    def test_identity_automorphism(self, basis, rng):
        p = poly_from(rng, basis)
        assert np.array_equal(p.automorphism(1).data, p.data)

    def test_composition(self, basis, rng):
        p = poly_from(rng, basis)
        lhs = p.automorphism(3).automorphism(5)
        rhs = p.automorphism(15)
        assert np.array_equal(lhs.data, rhs.data)

    def test_even_index_rejected(self, basis, rng):
        with pytest.raises(ValueError, match="odd"):
            poly_from(rng, basis).automorphism(2)

    def test_eval_domain_matches_coeff_domain(self, basis, rng):
        """EVAL-domain automorphism (slot permutation) == coeff path + NTT."""
        p = poly_from(rng, basis)
        for k in (3, 5, 2 * basis.degree - 1):
            via_coeff = p.automorphism(k).to_eval()
            via_eval = p.to_eval().automorphism(k)
            assert np.array_equal(via_coeff.data, via_eval.data)

    def test_is_ring_homomorphism(self, basis, rng):
        """automorphism(a * b) == automorphism(a) * automorphism(b)."""
        a, b = poly_from(rng, basis, bound=30), poly_from(rng, basis, bound=30)
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        lhs = prod.automorphism(5)
        rhs = (a.automorphism(5).to_eval() * b.automorphism(5).to_eval()).to_coeff()
        assert np.array_equal(lhs.data, rhs.data)


class TestRescale:
    def test_exact_multiple(self, basis, rng):
        q_last = basis.moduli[LEVEL - 1]
        coeffs = rng.integers(-1000, 1000, N)
        scaled = RnsPolynomial.from_bigint_coeffs(
            basis, LEVEL, [int(c) * q_last for c in coeffs]
        )
        assert scaled.rescale().to_bigints() == coeffs.tolist()

    def test_rounding_error_at_most_one(self, basis, rng):
        q_last = basis.moduli[LEVEL - 1]
        coeffs = [int(c) for c in rng.integers(0, q_last, N)]
        p = RnsPolynomial.from_bigint_coeffs(
            basis, LEVEL, [c * q_last + int(r) for c, r in zip(coeffs, rng.integers(0, q_last, N))]
        )
        got = p.rescale().to_bigints(center=False)
        for g, c in zip(got, coeffs):
            assert abs(g - c) <= 1 or abs(g - c - 1) <= 1

    def test_level_drops(self, basis, rng):
        assert poly_from(rng, basis, level=3).rescale().level == 2

    def test_cannot_rescale_level_one(self, basis, rng):
        with pytest.raises(ValueError, match="below one limb"):
            poly_from(rng, basis, level=1).rescale()

    def test_requires_coeff_domain(self, basis, rng):
        with pytest.raises(ValueError, match="coefficient domain"):
            poly_from(rng, basis).to_eval().rescale()


class TestDropLimbs:
    def test_prefix_preserved(self, basis, rng):
        p = poly_from(rng, basis, level=4)
        d = p.drop_limbs(2)
        assert d.level == 2
        assert np.array_equal(d.data, p.data[:2])

    def test_bounds(self, basis, rng):
        p = poly_from(rng, basis, level=3)
        with pytest.raises(ValueError):
            p.drop_limbs(0)
        with pytest.raises(ValueError):
            p.drop_limbs(4)
