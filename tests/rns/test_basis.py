"""RNS basis construction and level bookkeeping."""

from __future__ import annotations

import pytest

from repro.rns.basis import RnsBasis


class TestCreate:
    def test_prime_count(self, basis):
        assert basis.num_primes == 6
        assert len(basis.moduli) == 6

    def test_primes_distinct_and_ntt_friendly(self, basis):
        assert len(set(basis.moduli)) == 6
        for q in basis.moduli:
            assert (q - 1) % (2 * basis.degree) == 0

    def test_ntt_contexts_lazy_and_cached(self, basis):
        ctxs = basis.ntt_contexts
        assert len(ctxs) == basis.num_primes
        # Contexts come from the process-level (degree, modulus, backend)
        # store: identical instances on re-access under the same backend.
        assert all(a is b for a, b in zip(ctxs, basis.ntt_contexts))

    def test_ntt_contexts_follow_active_backend(self, basis):
        from repro.nums.kernels import available_backends, using_backend

        for name in available_backends():
            with using_backend(name):
                assert basis.ntt_contexts[0].backend == name

    def test_bad_degree(self):
        with pytest.raises(ValueError, match="power of two"):
            RnsBasis.create(100, 3)


class TestLevels:
    def test_modulus_at(self, basis):
        prod = 1
        for q in basis.moduli[:3]:
            prod *= q
        assert basis.modulus_at(3) == prod

    def test_modulus_at_full(self, basis):
        assert basis.modulus_at(basis.num_primes) == basis.crt(basis.num_primes).modulus

    def test_level_bounds(self, basis):
        with pytest.raises(ValueError, match="level"):
            basis.modulus_at(0)
        with pytest.raises(ValueError, match="level"):
            basis.crt(basis.num_primes + 1)

    def test_crt_prefix_consistency(self, basis):
        crt3 = basis.crt(3)
        assert crt3.moduli == basis.moduli[:3]
