"""Shared fixtures: small parameter sets so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums import find_primes
from repro.rns import RnsBasis

TEST_DEGREE = 256
TEST_PRIMES = 6


@pytest.fixture(scope="session")
def small_prime() -> int:
    """One NTT-friendly 36-bit prime supporting degree 4096."""
    return find_primes(36, 1 << 12)[0].value


@pytest.fixture(scope="session")
def basis() -> RnsBasis:
    """A degree-256, 6-prime RNS basis shared across tests."""
    return RnsBasis.create(TEST_DEGREE, TEST_PRIMES)


@pytest.fixture(scope="session")
def ctx() -> CkksContext:
    """A full toy CKKS context (keys generated once per session)."""
    return CkksContext.create(toy_params(degree=TEST_DEGREE, num_primes=TEST_PRIMES), seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
