#!/usr/bin/env python3
"""Public-surface gate: examples and docs import only the stable API.

``repro.runtime`` re-exports its supported surface in ``__all__``; the
submodules behind it (``executor``, ``transport``, ``coordinator``,
``chaos``, ...) are implementation detail that may move between
releases.  This gate scans ``examples/*.py`` and every fenced python
code block in ``README.md`` and ``docs/*.md`` and fails when either

* a ``repro.runtime.<submodule>`` deep import appears, or
* a ``from repro.runtime import X`` pulls a name missing from
  ``repro.runtime.__all__``.

Tests and benchmarks are deliberately out of scope — they are allowed
to reach into internals.

Usage::

    PYTHONPATH=src python scripts/check_public_api.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

_FENCE_RE = re.compile(r"```(?:python|py)\n(.*?)```", re.DOTALL)


def _python_sources() -> list[tuple[str, str]]:
    """(label, source) pairs: example scripts plus doc code blocks."""
    sources: list[tuple[str, str]] = []
    for path in sorted((ROOT / "examples").glob("*.py")):
        sources.append((str(path.relative_to(ROOT)), path.read_text()))
    docs = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    for path in docs:
        for i, match in enumerate(_FENCE_RE.finditer(path.read_text())):
            label = f"{path.relative_to(ROOT)} (python block {i + 1})"
            sources.append((label, match.group(1)))
    return sources


def _violations(label: str, source: str, public: set[str]) -> list[str]:
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # doc snippets must at least parse
        return [f"{label}: code does not parse: {exc}"]
    bad: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.runtime."):
                    bad.append(
                        f"{label}:{node.lineno}: deep import "
                        f"'import {alias.name}' — use 'from repro.runtime "
                        "import ...'"
                    )
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod.startswith("repro.runtime."):
                bad.append(
                    f"{label}:{node.lineno}: deep import 'from {mod} "
                    "import ...' — import from repro.runtime instead"
                )
            elif mod == "repro.runtime":
                for alias in node.names:
                    if alias.name not in public:
                        bad.append(
                            f"{label}:{node.lineno}: '{alias.name}' is not "
                            "in repro.runtime.__all__ — export it or use a "
                            "supported name"
                        )
    return bad


def main() -> int:
    import repro.runtime as runtime

    public = set(runtime.__all__)
    missing = [name for name in public if not hasattr(runtime, name)]
    if missing:
        print("repro.runtime.__all__ names missing attributes:", missing)
        return 1
    problems: list[str] = []
    checked = 0
    for label, source in _python_sources():
        checked += 1
        problems.extend(_violations(label, source, public))
    if problems:
        print(f"{len(problems)} public-surface violation(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(
        f"checked {checked} source(s): examples and docs import only the "
        f"stable repro.runtime surface ({len(public)} exported names)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
