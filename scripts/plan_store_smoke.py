#!/usr/bin/env python3
"""Plan-store smoke: compile here, deserialize in a *fresh* process, serve.

The acceptance loop for plan serialization, run by the CI docs job:

1. trace + compile the private-inference program, save it to a
   ``PlanStore`` directory (a self-contained ``EPL1`` artifact);
2. re-execute this script in a **fresh Python process** (``--verify``),
   which loads the artifact — no re-trace, no optimizer — and serves
   request ciphertexts that crossed the wire as ``CTF2`` blobs;
3. byte-compare the fresh process's serialized outputs against the
   compiling process's.

The artifact directory is left behind for CI to upload.

Usage::

    PYTHONPATH=src python scripts/plan_store_smoke.py [--store-dir plan-store]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a bare checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.ckks import CkksContext, toy_params
from repro.ckks.serialization import (
    deserialize_ciphertext,
    serialize_ciphertext,
    wire_coeff_bits,
)
from repro.runtime import CtSpec, PlanStore, compile_fn

DEGREE = 256
PRIMES = 6
SEED = 97


def _context() -> CkksContext:
    return CkksContext.create(toy_params(degree=DEGREE, num_primes=PRIMES), seed=SEED)


def _model_and_spec(ctx):
    rng = np.random.default_rng(5)
    slots = ctx.params.slots
    lpm = ctx.params.levels_per_multiplication
    w1 = ctx.encode(rng.uniform(-0.5, 0.5, slots))
    rlk = ctx.relin_keys(levels=[PRIMES - lpm])

    def model(ev, x):
        hidden = ev.rescale(ev.multiply_plain(x, w1), times=lpm)
        return ev.multiply_relin_rescale(hidden, hidden, rlk)

    return model, CtSpec(level=PRIMES, scale=ctx.params.scale)


def verify(plan_path: Path, request_path: Path, reply_path: Path) -> int:
    """Fresh-process half: load the artifact, serve the wire request."""
    ctx = _context()
    store = PlanStore(plan_path.parent)
    plan = store.load_path(plan_path, ctx.evaluator)  # no re-trace, no passes
    ct = deserialize_ciphertext(request_path.read_bytes(), ctx.basis)
    outputs = plan.run_batch([[ct]])[0]
    bits = wire_coeff_bits(ctx.basis)
    reply_path.write_bytes(
        b"".join(serialize_ciphertext(o, coeff_bits=bits) for o in outputs)
    )
    print(f"fresh process: loaded {plan_path.name}, served 1 request "
          f"({len(plan.graph.nodes)} nodes, no re-trace)")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--store-dir", default="plan-store", type=Path)
    ap.add_argument("--verify", nargs=3, type=Path, metavar=("PLAN", "REQ", "OUT"))
    args = ap.parse_args(argv)

    if args.verify:
        return verify(*args.verify)

    ctx = _context()
    model, spec = _model_and_spec(ctx)
    store = PlanStore(args.store_dir)
    plan = compile_fn(model, ctx.evaluator, [spec])
    artifact = store.save(plan)
    sidecar = artifact.with_suffix(PlanStore.CONSTS_SUFFIX)
    print(f"compiled + saved {artifact} "
          f"({artifact.stat().st_size / 1e3:.1f} kB plan + "
          f"{sidecar.stat().st_size / 1e3:.1f} kB constants, "
          f"{len(plan.graph.nodes)} nodes, {len(plan.graph.consts)} constants)")

    rng = np.random.default_rng(13)
    ct = ctx.encrypt(rng.uniform(-1, 1, ctx.params.slots))
    bits = wire_coeff_bits(ctx.basis)
    request = args.store_dir / "smoke-request.ctf2"
    request.write_bytes(serialize_ciphertext(ct, coeff_bits=bits))
    expected = b"".join(
        serialize_ciphertext(o, coeff_bits=bits)
        for o in plan.run_batch([[ct]])[0]
    )

    reply = args.store_dir / "smoke-reply.ctf2"
    proc = subprocess.run(
        [sys.executable, __file__, "--verify", str(artifact), str(request),
         str(reply)],
        env=None,
    )
    if proc.returncode != 0:
        print("FAIL: fresh-process verify step failed", file=sys.stderr)
        return 1
    if reply.read_bytes() != expected:
        print("FAIL: fresh-process outputs diverged byte-wise", file=sys.stderr)
        return 1
    print("OK: fresh-process deserialized execution is byte-identical "
          "to the compiling process")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
