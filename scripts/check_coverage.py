#!/usr/bin/env python3
"""Coverage-ratchet gate for the serving runtime (``src/repro/runtime``).

CI produces a ``coverage.json`` (``pytest --cov=repro.runtime
--cov-report=json:coverage.json``) and this gate compares it against the
committed ratchet file ``coverage_ratchet.json``:

* the measured **total** line-coverage percentage over
  ``src/repro/runtime`` must not drop below ``min_total_percent``;
* any per-file floor listed under ``files`` is enforced the same way.

The ratchet only moves up by someone committing a higher floor — the
gate never auto-raises it, so a PR that *adds* coverage does not start
failing unrelated follow-ups, while a PR that *loses* coverage fails
here.  To raise the floor after a coverage improvement::

    python scripts/check_coverage.py coverage.json --suggest

prints the ratchet JSON that pins the new measurement (with a small
safety margin for runner-to-runner jitter in which lines execute).

Run locally without ``coverage`` installed (the dev image deliberately
has no network), the gate reports how to get a measurement and exits 0:
it gates CI, where ``pytest-cov`` is installed fresh, not laptops.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RATCHET_FILE = REPO / "coverage_ratchet.json"
SCOPE = "src/repro/runtime/"

# Headroom subtracted from a measurement when suggesting a new floor:
# which lines execute can jitter a little across runners (timing-gated
# branches, signal handlers), and the ratchet should only fail on real
# coverage loss.
SUGGEST_MARGIN = 2.0


def _scoped_files(report: dict) -> dict[str, dict]:
    """The per-file entries of a coverage-json report that fall inside
    the ratchet's scope, keyed by repo-relative posix path."""
    scoped = {}
    for path, entry in report.get("files", {}).items():
        rel = Path(path).as_posix()
        # coverage.json paths may be absolute or relative depending on
        # how pytest was invoked; normalise onto the scope prefix.
        idx = rel.find(SCOPE)
        if idx < 0:
            continue
        scoped[rel[idx:]] = entry
    return scoped


def _percent(covered: int, statements: int) -> float:
    return 100.0 if statements == 0 else 100.0 * covered / statements


def _measure(report: dict) -> tuple[float, dict[str, float]]:
    files = _scoped_files(report)
    if not files:
        raise SystemExit(
            f"coverage report has no files under {SCOPE} — was pytest "
            "run with --cov=repro.runtime?"
        )
    covered = sum(f["summary"]["covered_lines"] for f in files.values())
    statements = sum(f["summary"]["num_statements"] for f in files.values())
    per_file = {
        path: f["summary"]["percent_covered"] for path, f in files.items()
    }
    return _percent(covered, statements), per_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report",
        nargs="?",
        default="coverage.json",
        help="coverage JSON report (pytest --cov-report=json:coverage.json)",
    )
    parser.add_argument(
        "--ratchet", default=str(RATCHET_FILE), help="ratchet file to gate against"
    )
    parser.add_argument(
        "--suggest",
        action="store_true",
        help="print ratchet JSON pinning the current measurement and exit",
    )
    args = parser.parse_args(argv)

    report_path = Path(args.report)
    if not report_path.exists():
        print(
            f"check_coverage: no {report_path} found — run\n"
            "  pytest tests/runtime tests/integration -q "
            "--cov=repro.runtime --cov-report=json:coverage.json\n"
            "(needs pytest-cov; CI installs it). Skipping gate.",
        )
        return 0

    report = json.loads(report_path.read_text())
    total, per_file = _measure(report)

    if args.suggest:
        suggestion = {
            "scope": SCOPE,
            "min_total_percent": round(max(total - SUGGEST_MARGIN, 0.0), 1),
            "files": {},
        }
        print(json.dumps(suggestion, indent=2))
        return 0

    ratchet = json.loads(Path(args.ratchet).read_text())
    floor = float(ratchet["min_total_percent"])
    failures = []
    if total < floor:
        failures.append(
            f"total line coverage of {SCOPE} fell to {total:.1f}% "
            f"(ratchet floor {floor:.1f}%)"
        )
    for path, file_floor in sorted(ratchet.get("files", {}).items()):
        got = per_file.get(path)
        if got is None:
            failures.append(f"{path}: tracked by the ratchet but not measured")
        elif got < float(file_floor):
            failures.append(
                f"{path}: {got:.1f}% < per-file floor {float(file_floor):.1f}%"
            )

    print(
        f"check_coverage: {SCOPE} total {total:.1f}% "
        f"(floor {floor:.1f}%), {len(per_file)} files measured"
    )
    worst = sorted(per_file.items(), key=lambda kv: kv[1])[:5]
    for path, pct in worst:
        print(f"  lowest: {path} {pct:.1f}%")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(
            "Coverage ratchets only move up: restore the lost tests or "
            "justify lowering coverage_ratchet.json in the same PR.",
            file=sys.stderr,
        )
        return 1
    print("coverage ratchet OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
