#!/usr/bin/env python3
"""`obs` — the telemetry CLI: demo a traced chaos run, summarize traces.

Subcommands:

``demo``
    Run a chaos-seeded 2-worker streaming serve with tracing enabled —
    one request is *scripted* to crash its first attempt's worker, so
    the exported timeline always contains a crash→backoff→retry→success
    trace spanning parent and worker processes — then export the three
    telemetry artifacts into ``--out-dir``:

    * ``trace.json``   — Chrome trace-event JSON (open in Perfetto:
      https://ui.perfetto.dev → "Open trace file")
    * ``metrics.prom`` — Prometheus-style text exposition snapshot
    * ``events.json``  — structured event log (retries, respawns, ...)

    The CI telemetry-smoke job runs this and validates ``trace.json``
    with ``scripts/check_trace.py``.

``summarize <trace.json>``
    Print per-trace span trees and per-category time totals for an
    exported Chrome trace file.

Usage::

    PYTHONPATH=src python scripts/obs.py demo --out-dir obs-demo
    PYTHONPATH=src python scripts/obs.py summarize obs-demo/trace.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from collections import defaultdict
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a bare checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.ckks import CkksContext, toy_params
from repro.runtime import (
    CtSpec,
    FaultAction,
    FaultPlan,
    FaultPolicy,
    ServingConfig,
    compile_fn,
    get_telemetry,
    serve,
)

DEGREE = 256
PRIMES = 6
SEED = 23


def _build_plan(ctx: CkksContext):
    rlk = ctx.relin_keys(levels=[PRIMES, PRIMES - 2])
    gks = ctx.galois_keys([1], levels=[PRIMES])
    spec = CtSpec(level=PRIMES, scale=ctx.params.scale)

    def program(ev, x, y):
        rot = ev.rotate(x, 1, gks)
        return (ev.multiply_relin_rescale(ev.add(rot, y), y, rlk),)

    return compile_fn(program, ctx.evaluator, [spec, spec])


def cmd_demo(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    telemetry = get_telemetry()
    telemetry.reset()
    telemetry.enable(sample_rate=args.sample_rate)

    ctx = CkksContext.create(
        toy_params(degree=DEGREE, num_primes=PRIMES), seed=SEED
    )
    plan = _build_plan(ctx)  # traced under telemetry: compile spans too
    rng = np.random.default_rng(SEED)

    def encrypt(payload):
        return [
            ctx.encryptor.encrypt(ctx.encoder.encode(v, level=PRIMES))
            for v in payload
        ]

    def decrypt(outputs):
        return [
            ctx.encoder.decode(ctx.decryptor.decrypt(o))[: DEGREE // 4]
            for o in outputs
        ]

    payloads = [
        [rng.standard_normal(DEGREE // 2), rng.standard_normal(DEGREE // 2)]
        for _ in range(args.requests)
    ]
    # Scripted crash on request 0's first attempt guarantees the trace
    # the acceptance criteria ask for; the seeded rates add background
    # chaos on top of it.
    chaos = FaultPlan(
        seed=args.chaos_seed,
        crash_rate=args.crash_rate,
        scripted={
            ("pre_evaluate", 0, 0): FaultAction(kind="crash", site="pre_evaluate")
        },
    )
    session = serve(
        plan,
        ServingConfig(
            num_workers=args.workers,
            max_pending=4,
            chaos=chaos,
            fault_policy=FaultPolicy(max_attempts=6),
        ),
    )

    async def run():
        async with session.streaming() as server:
            await server.serve(payloads, encrypt=encrypt, decrypt=decrypt)
            return server.stats()

    stats = asyncio.run(run())
    telemetry.disable()

    telemetry.export_chrome_trace(out_dir / "trace.json")
    (out_dir / "metrics.prom").write_text(telemetry.export_prometheus())
    (out_dir / "events.json").write_text(
        json.dumps(telemetry.export_events(), indent=1)
    )

    traces = telemetry.trace_ids()
    retried = [
        t
        for t in traces
        if sum(s.name.startswith("attempt-") for s in telemetry.spans(t)) >= 2
    ]
    print(
        f"served {stats['completed']} request(s) on {args.workers} workers "
        f"(failed={stats['failed']}, crashes="
        f"{stats['executor']['worker_crashes']})"
    )
    print(
        f"exported {len(telemetry.spans())} span(s) across {len(traces)} "
        f"trace(s) ({len(retried)} crash-retried) -> {out_dir}/trace.json"
    )
    print(f"metrics -> {out_dir}/metrics.prom; events -> {out_dir}/events.json")
    if not retried:
        print("error: no crash-retried trace in the export", file=sys.stderr)
        return 1
    return 0


def cmd_summarize(args: argparse.Namespace) -> int:
    doc = json.loads(Path(args.trace).read_text())
    spans = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    if not spans:
        print("no complete spans in trace", file=sys.stderr)
        return 1
    by_trace: dict[int, list[dict]] = defaultdict(list)
    by_category: dict[str, float] = defaultdict(float)
    for e in spans:
        by_trace[e["args"]["trace_id"]].append(e)
        by_category[e.get("cat", "?")] += e["dur"]
    print(f"{len(spans)} spans, {len(by_trace)} traces")
    for cat, total_us in sorted(by_category.items(), key=lambda kv: -kv[1]):
        print(f"  {cat:>10}: {total_us / 1e3:9.2f} ms total")
    for trace_id in sorted(by_trace):
        events = sorted(by_trace[trace_id], key=lambda e: e["ts"])
        by_id = {e["args"]["span_id"]: e for e in events}
        children: dict[int, list[dict]] = defaultdict(list)
        roots = []
        for e in events:
            parent = e["args"].get("parent_id", 0)
            if parent and parent in by_id:
                children[parent].append(e)
            else:
                roots.append(e)

        def show(e, depth):
            print(
                f"  {'  ' * depth}{e['name']:<20} {e['dur'] / 1e3:8.2f} ms "
                f"(pid {e['pid']})"
            )
            for c in children.get(e["args"]["span_id"], []):
                show(c, depth + 1)

        print(f"trace {trace_id}:")
        for root in roots:
            show(root, 1)
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)

    demo = sub.add_parser("demo", help="traced chaos serving run + exports")
    demo.add_argument("--out-dir", default="obs-demo")
    demo.add_argument("--workers", type=int, default=2)
    demo.add_argument("--requests", type=int, default=8)
    demo.add_argument("--chaos-seed", type=int, default=3)
    demo.add_argument("--crash-rate", type=float, default=0.08)
    demo.add_argument("--sample-rate", type=float, default=1.0)
    demo.set_defaults(fn=cmd_demo)

    summ = sub.add_parser("summarize", help="span trees for a trace.json")
    summ.add_argument("trace")
    summ.set_defaults(fn=cmd_summarize)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
