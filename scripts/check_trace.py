#!/usr/bin/env python3
"""Schema checker for exported Chrome trace-event JSON.

Validates that a telemetry export (``scripts/obs.py demo`` or
``Telemetry.export_chrome_trace``) is a well-formed, Perfetto-loadable
trace:

* top level is an object with a ``traceEvents`` list;
* every event has ``name``/``ph``/``pid``/``tid``, and every ``ph:"X"``
  complete event has numeric non-negative ``ts``/``dur`` plus
  ``args.trace_id``/``args.span_id``;
* every pid appearing in a complete event has a ``process_name``
  metadata row;
* within each trace, every non-root ``parent_id`` resolves to another
  span of the *same* trace (causal nesting never crosses traces).

With ``--expect-crash-retry`` it additionally asserts the acceptance
criteria of the observability PR: at least one trace contains two or
more ``attempt-*`` spans (a crash-retried request), exactly one
successful worker ``evaluate`` span, and spans from at least two
distinct OS processes (parent + worker) under that single trace ID.

Usage::

    python scripts/check_trace.py obs-demo/trace.json --expect-crash-retry
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def fail(msg: str) -> int:
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def check(path: Path, expect_crash_retry: bool) -> int:
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return fail(f"cannot read {path}: {exc}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not events:
        return fail("traceEvents is empty")

    complete: list[dict] = []
    named_pids: set[int] = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            return fail(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                return fail(f"event {i} missing required field {key!r}")
        if e["ph"] == "M":
            if e["name"] == "process_name":
                named_pids.add(e["pid"])
            continue
        if e["ph"] != "X":
            return fail(f"event {i} has unsupported phase {e['ph']!r}")
        for key in ("ts", "dur"):
            if not isinstance(e.get(key), (int, float)) or e[key] < 0:
                return fail(f"event {i} ({e['name']}) has bad {key!r}: {e.get(key)!r}")
        args = e.get("args")
        if not isinstance(args, dict):
            return fail(f"event {i} ({e['name']}) missing args")
        for key in ("trace_id", "span_id"):
            if not isinstance(args.get(key), int):
                return fail(f"event {i} ({e['name']}) missing args.{key}")
        complete.append(e)

    if not complete:
        return fail("no complete (ph=X) spans")
    span_pids = {e["pid"] for e in complete}
    unnamed = span_pids - named_pids
    if unnamed:
        return fail(f"pids without a process_name metadata row: {sorted(unnamed)}")

    by_trace: dict[int, list[dict]] = defaultdict(list)
    for e in complete:
        by_trace[e["args"]["trace_id"]].append(e)
    for trace_id, spans in by_trace.items():
        ids = {s["args"]["span_id"] for s in spans}
        if len(ids) != len(spans):
            return fail(f"trace {trace_id} has duplicate span ids")
        for s in spans:
            parent = s["args"].get("parent_id", 0)
            if parent and parent not in ids:
                return fail(
                    f"trace {trace_id} span {s['name']!r} parents to "
                    f"{parent}, which is not a span of this trace"
                )

    summary = f"{len(complete)} spans across {len(by_trace)} traces OK"
    if not expect_crash_retry:
        print(summary)
        return 0

    for trace_id, spans in sorted(by_trace.items()):
        attempts = [s for s in spans if s["name"].startswith("attempt-")]
        ok_evals = [
            s
            for s in spans
            if s["name"] == "evaluate" and s["args"].get("status") == "ok"
        ]
        pids = {s["pid"] for s in spans}
        if len(attempts) >= 2 and len(ok_evals) == 1 and len(pids) >= 2:
            print(
                f"{summary}; trace {trace_id} is crash-retried: "
                f"{len(attempts)} attempts, 1 success span, "
                f"{len(pids)} processes"
            )
            return 0
    return fail(
        "no trace with >=2 attempt spans, exactly one successful evaluate "
        "span, and spans from >=2 processes"
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", type=Path)
    ap.add_argument(
        "--expect-crash-retry",
        action="store_true",
        help="require a crash-retried cross-process trace (CI acceptance)",
    )
    args = ap.parse_args(argv)
    return check(args.trace, args.expect_crash_retry)


if __name__ == "__main__":
    raise SystemExit(main())
