#!/usr/bin/env python3
"""Fused-replay parity smoke: eager vs. fused bits under every backend.

The acceptance loop for the fused plan replayer, run by CI:

1. for each installed reducer backend (generic-split / barrett /
   montgomery), run a rotate + MAC + multiply/relin/rescale program
   eagerly, through the batched replayer, and through the arena-backed
   fused replayer — all three must agree byte-for-byte;
2. replay the same plan through a numpy-backed *stub* array namespace
   registered under a non-default name, which drives the fused
   executor's host-staging branches (the exact path a GPU namespace
   takes) — bits must again be identical;
3. probe the optional CuPy/torch namespaces: when installed, repeat the
   fused replay on them and compare bits; when absent, report the skip
   and continue — never fail on a missing accelerator library.

Exit code 0 means every executed combination was bit-identical.

Usage::

    PYTHONPATH=src python scripts/fused_parity_smoke.py [--degree 256]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a bare checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.ckks import CkksContext, toy_params
from repro.nums.backend import (
    array_backend_available,
    get_array_namespace,
    register_array_namespace,
)
from repro.nums.kernels import available_backends, using_backend
from repro.runtime import CtSpec, compile_fn

OPTIONAL_ARRAY_BACKENDS = ("cupy", "torch")


def _assert_same(tag: str, want, got) -> None:
    assert want.scale == got.scale, f"{tag}: scale diverged"
    for i, (a, b) in enumerate(zip(want.parts, got.parts)):
        assert np.array_equal(a.data, b.data), f"{tag}: part {i} diverged"


def _run_one(backend: str, degree: int, primes: int, array_backends) -> None:
    with using_backend(backend):
        ctx = CkksContext.create(
            toy_params(degree=degree, num_primes=primes), seed=97
        )
        lvl = ctx.params.num_primes
        gks = ctx.galois_keys([1, 2], levels=[lvl])
        rlk = ctx.relin_keys(levels=[lvl])
        pts = [
            ctx.encoder.encode(
                np.full(ctx.params.slots, 0.2 * (i + 1)),
                level=lvl,
                scale=ctx.params.scale,
            )
            for i in range(3)
        ]

        def program(ev, x):
            rot = ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 2, gks))
            mac = ev.add(
                ev.add(ev.multiply_plain(x, pts[0]), ev.multiply_plain(x, pts[1])),
                ev.multiply_plain(x, pts[2]),
            )
            return ev.multiply_relin_rescale(rot, x, rlk), mac

        rng = np.random.default_rng(5)
        ct = ctx.encrypt(rng.uniform(-1, 1, ctx.params.slots))
        eager_prod, eager_mac = program(ctx.evaluator, ct)

        spec = CtSpec(level=lvl, scale=ctx.params.scale)
        plan = compile_fn(program, ctx.evaluator, [spec])
        ((b_prod, b_mac),) = plan.run_batch([[ct]])
        _assert_same(f"{backend}/batched", eager_prod, b_prod)
        _assert_same(f"{backend}/batched", eager_mac, b_mac)

        for array_backend in array_backends:
            ((f_prod, f_mac),) = plan.run_batch(
                [[ct]], fused=True, array_backend=array_backend
            )
            tag = f"{backend}/fused[{array_backend}]"
            _assert_same(tag, eager_prod, f_prod)
            _assert_same(tag, eager_mac, f_mac)
            stats = plan.stats()
            print(
                f"  {tag}: OK "
                f"({stats['dispatch_count_batched']} -> "
                f"{stats['dispatch_count_fused']} dispatches, "
                f"arena {stats['arena_slots']} slots)"
            )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--degree", type=int, default=256, help="ring degree")
    ap.add_argument("--primes", type=int, default=6, help="chain length")
    args = ap.parse_args(argv)

    # The stub namespace: numpy under another name, so is_host is False
    # and the fused replayer exercises its device-staging branches.
    register_array_namespace(
        dataclasses.replace(get_array_namespace("numpy"), name="stub-host")
    )
    array_backends = ["numpy", "stub-host"]
    for name in OPTIONAL_ARRAY_BACKENDS:
        if array_backend_available(name):
            array_backends.append(name)
        else:
            print(f"  array backend {name!r} not installed; skipped")

    for backend in available_backends():
        _run_one(backend, args.degree, args.primes, array_backends)

    print(
        f"fused parity smoke: {len(available_backends())} reducer backend(s) x "
        f"{len(array_backends)} array namespace(s), all bit-identical to eager"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
