#!/usr/bin/env python3
"""Intra-repo link checker for the docs tree and README.

Scans Markdown files for inline links/images and verifies that every
relative target resolves to a real file or directory (anchors and
external ``http(s)``/``mailto`` targets are skipped).  Exits non-zero
listing each dead link — the CI docs job runs this over ``README.md``
and ``docs/``.

Usage::

    python scripts/check_links.py [files-or-dirs ...]   # default: README.md docs
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Inline Markdown links/images: [text](target) — stops at the first ')'
# so "(see [x](a.md))" parses; reference-style links are not used here.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
    return files


def dead_links(md_file: Path) -> list[tuple[int, str]]:
    dead: list[tuple[int, str]] = []
    for lineno, line in enumerate(md_file.read_text().splitlines(), start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            resolved = (md_file.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                dead.append((lineno, target))
    return dead


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "paths",
        nargs="*",
        default=["README.md", "docs"],
        help="markdown files or directories to scan (default: README.md docs)",
    )
    args = ap.parse_args(argv)

    files = iter_markdown([Path(p) for p in args.paths])
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for md_file in files:
        for lineno, target in dead_links(md_file):
            print(f"DEAD  {md_file}:{lineno}: {target}")
            failures += 1
    checked = len(files)
    if failures:
        print(f"\n{failures} dead intra-repo link(s) across {checked} file(s)")
        return 1
    print(f"all intra-repo links resolve ({checked} markdown file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
