"""Fig. 6(a) — RFE area as the three optimizations are applied."""

from __future__ import annotations

from repro.experiments import fig6a_area_progression
from repro.experiments.fig6 import PAPER_AREA_REDUCTION


def test_fig6a_area_progression(benchmark, report):
    rel = benchmark(fig6a_area_progression)
    steps = ["baseline", "tf_scheduling", "montmul", "reconfigurable"]
    lines = [f"{'(1234)'[i]} {name:16s} relative area {rel[name]:.3f}" for i, name in enumerate(steps)]
    reduction = 1 - rel["reconfigurable"]
    lines.append(
        f"cumulative reduction: {reduction*100:.1f}% "
        f"(paper {PAPER_AREA_REDUCTION*100:.0f}%; our structural model "
        "over-credits — same ordering, see EXPERIMENTS.md)"
    )
    report("Fig. 6(a): RFE area optimization progression", lines)

    assert rel["baseline"] == 1.0
    assert rel["tf_scheduling"] > rel["montmul"] > rel["reconfigurable"]
    assert reduction >= PAPER_AREA_REDUCTION
