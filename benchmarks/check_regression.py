#!/usr/bin/env python3
"""Bench-regression gate: fresh BENCH_*.json vs. committed snapshots.

Every bench JSON tracks machine-relative ratios in ``speedups_x``
(reference-path / engine-path time, or scaled-pool / single-pool
throughput) — all higher-is-better, and far more stable across hosts
than raw wall-clock.  This gate compares a freshly produced file
against the committed snapshot and **fails when any tracked ratio
decays by more than ``--max-slowdown``** (default 25%).

Baselines are matched on bench shape: every snapshot entry (top level
plus the ``trajectory`` history) whose meta (bench, degree, num_primes,
quick, backend) matches the fresh run contributes, and each ratio is
gated against the **minimum** matching baseline value — so a ``--quick``
CI run compares against the most conservative committed quick sample
rather than one lucky measurement, which keeps the gate flake-resistant
on noisy shared runners.

Two failure modes the matching must not let through silently:

* a ratio the shape-matched baseline tracks but the fresh run no longer
  produces is a **failure** — a renamed or dropped bench entry must
  update the snapshot in the same PR, never fall out of the gate
  unnoticed;
* a fresh ratio with no same-shape baseline is still gated against the
  minimum of that ratio across **all** snapshot shapes (flagged
  ``cross-shape``) when any entry tracks it — only ratios the snapshot
  has never seen anywhere are reported and skipped, so brand-new benches
  land green and start gating on the next PR.

Usage::

    python benchmarks/check_regression.py \
        --baseline-dir snapshots --max-slowdown 0.25 \
        BENCH_keyswitch.json BENCH_runtime.json BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

DEFAULT_FILES = [
    "BENCH_keyswitch.json",
    "BENCH_runtime.json",
    "BENCH_serving.json",
    "BENCH_planio.json",
    "BENCH_chaos.json",
    "BENCH_telemetry.json",
    "BENCH_fabric.json",
]

# workers/requests keep serving-bench baselines from being compared
# across pool shapes; non-serving benches carry neither key (None==None).
_MATCH_KEYS = (
    "bench",
    "degree",
    "num_primes",
    "quick",
    "backend",
    "workers",
    "requests",
)


def _baseline_ratios(
    snapshot: dict, fresh_meta: dict
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-ratio minima over the snapshot (top level + trajectory).

    Returns ``(matched, any_shape)``: minima over entries whose meta
    matches the fresh run's shape, and minima over *every* entry
    regardless of shape (the cross-shape fallback for ratios the matched
    baseline does not track yet).
    """
    want = {k: fresh_meta.get(k) for k in _MATCH_KEYS}
    matched: dict[str, float] = {}
    any_shape: dict[str, float] = {}
    for candidate in [snapshot, *snapshot.get("trajectory", [])]:
        meta = candidate.get("meta", {})
        is_match = all(meta.get(k) == want[k] for k in _MATCH_KEYS)
        for key, value in candidate.get("speedups_x", {}).items():
            value = float(value)
            if value < any_shape.get(key, float("inf")):
                any_shape[key] = value
            if is_match and value < matched.get(key, float("inf")):
                matched[key] = value
    return matched, any_shape


def check_file(
    fresh_path: Path, baseline_path: Path, max_slowdown: float
) -> tuple[list[str], list[str]]:
    """Returns (regressions, notes) for one bench file."""
    name = fresh_path.name
    if not fresh_path.exists():
        return [f"{name}: fresh file missing at {fresh_path}"], []
    if not baseline_path.exists():
        return [], [f"{name}: no committed baseline at {baseline_path}; skipped"]
    fresh = json.loads(fresh_path.read_text())
    snapshot = json.loads(baseline_path.read_text())
    matched, any_shape = _baseline_ratios(snapshot, fresh.get("meta", {}))
    if not any_shape:
        return [], [
            f"{name}: snapshot tracks no ratios for any shape; skipped"
        ]
    fresh_ratios = fresh.get("speedups_x", {})
    regressions, notes = [], []
    for key in sorted(matched):
        if key not in fresh_ratios:
            regressions.append(
                f"{name}: {key} tracked by the baseline "
                f"(min {matched[key]:.2f}x) but missing from the fresh run — "
                "renamed/dropped ratios must update the snapshot in the same PR"
            )
    for key in sorted(fresh_ratios):
        if key in matched:
            base, scope = float(matched[key]), ""
        elif key in any_shape:
            base, scope = float(any_shape[key]), " [cross-shape]"
        else:
            notes.append(f"{name}: {key} is new (no baseline ratio); skipped")
            continue
        got = float(fresh_ratios[key])
        if base <= 0:
            notes.append(f"{name}: {key} baseline ratio {base:g} unusable; skipped")
            continue
        slowdown = 1.0 - got / base
        line = (
            f"{name}: {key} {base:.2f}x -> {got:.2f}x "
            f"({-slowdown:+.1%} vs baseline){scope}"
        )
        if slowdown > max_slowdown:
            regressions.append(line)
        else:
            notes.append(line)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "files",
        nargs="*",
        default=DEFAULT_FILES,
        help=f"bench JSON filenames to check (default: {' '.join(DEFAULT_FILES)})",
    )
    ap.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the committed snapshot copies",
    )
    ap.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced files (default: cwd)",
    )
    ap.add_argument(
        "--max-slowdown",
        type=float,
        default=0.25,
        help="fail when a tracked ratio decays by more than this fraction",
    )
    args = ap.parse_args(argv)

    all_regressions: list[str] = []
    for filename in args.files:
        regressions, notes = check_file(
            args.fresh_dir / filename,
            args.baseline_dir / filename,
            args.max_slowdown,
        )
        for note in notes:
            print(f"  ok    {note}")
        for regression in regressions:
            print(f"  FAIL  {regression}")
        all_regressions.extend(regressions)

    if all_regressions:
        print(
            f"\nbench regression gate: {len(all_regressions)} ratio(s) decayed "
            f"more than {args.max_slowdown:.0%}"
        )
        return 1
    print(f"\nbench regression gate: all tracked ratios within {args.max_slowdown:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
