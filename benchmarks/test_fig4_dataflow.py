"""Fig. 4 — twiddle scheduling and multiplier-count design space."""

from __future__ import annotations

from repro.experiments import fig4a_sfg_example, fig4b_design_space
from repro.experiments.fig4 import PAPER_REDUCTION_VS_RADIX2, PAPER_REDUCTION_VS_RADIX22


def test_fig4a_sfg_example(benchmark, report):
    counts = benchmark(fig4a_sfg_example)
    report(
        "Fig. 4(a): 8-point SFG twiddle multiplications",
        [
            f"radix-2^n merged:          {counts['radix_2n_merged']} (paper: 12)",
            f"radix-2 + pre-processing:  {counts['radix_2_preprocessing']} (paper: 13)",
        ],
    )
    assert counts["radix_2n_merged"] == 12


def test_fig4b_design_space(benchmark, report):
    results = benchmark(fig4b_design_space)
    lines = []
    for r in results:
        if r.degree != 1 << 16:
            continue
        head = ", ".join(f"{n}={c:.2f}" for n, c in r.normalized_counts()[:4])
        lines.append(
            f"{r.mode.upper()} N=2^16: {head}, ..., radix-2^n="
            f"{r.normalized_counts()[-1][1]:.2f}"
        )
        lines.append(
            f"  reductions: vs radix-2 {r.reduction_vs_radix2*100:.1f}% "
            f"(paper {PAPER_REDUCTION_VS_RADIX2*100:.1f}), "
            f"vs radix-2^2 {r.reduction_vs_radix22*100:.1f}% "
            f"(paper {PAPER_REDUCTION_VS_RADIX22*100:.1f})"
        )
    report("Fig. 4(b): multiplier counts across radix designs", lines)

    ntt = next(r for r in results if r.mode == "ntt" and r.degree == 1 << 16)
    assert ntt.best.name == "radix-2^n"
    assert abs(ntt.reduction_vs_radix2 - PAPER_REDUCTION_VS_RADIX2) < 0.05
