"""Genuine software-kernel benchmarks of the library's hot paths.

These are the operations the accelerator replaces; their wall-clock times
make the CPU bars of Fig. 5(a) tangible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums import find_primes
from repro.nums.modular import mulmod_vec
from repro.transforms.fft import SpecialFft
from repro.transforms.ntt import NttContext

PRIME = find_primes(36, 1 << 16)[0].value


@pytest.fixture(scope="module")
def ckks_ctx():
    return CkksContext.create(toy_params(degree=1 << 12, num_primes=8), seed=9)


@pytest.mark.parametrize("log_n", [12, 14, 16])
def test_ntt_forward(benchmark, log_n):
    n = 1 << log_n
    ntt = NttContext.create(n, PRIME)
    a = np.random.default_rng(0).integers(0, PRIME, n).astype(np.uint64)
    benchmark(ntt.forward, a)


def test_ntt_negacyclic_mul(benchmark):
    n = 1 << 14
    ntt = NttContext.create(n, PRIME)
    rng = np.random.default_rng(0)
    a = rng.integers(0, PRIME, n).astype(np.uint64)
    b = rng.integers(0, PRIME, n).astype(np.uint64)
    benchmark(ntt.negacyclic_mul, a, b)


@pytest.mark.parametrize("log_slots", [12, 15])
def test_special_fft(benchmark, log_slots):
    slots = 1 << log_slots
    fft = SpecialFft.create(slots)
    rng = np.random.default_rng(0)
    v = rng.normal(size=slots) + 1j * rng.normal(size=slots)
    benchmark(lambda: fft.forward(v.copy()))


def test_mulmod_vec_throughput(benchmark):
    rng = np.random.default_rng(0)
    a = rng.integers(0, PRIME, 1 << 16).astype(np.uint64)
    b = rng.integers(0, PRIME, 1 << 16).astype(np.uint64)
    benchmark(mulmod_vec, a, b, PRIME)


def test_ckks_encode(benchmark, ckks_ctx):
    msg = np.linspace(-1, 1, ckks_ctx.params.slots)
    benchmark(ckks_ctx.encode, msg)


def test_ckks_encode_encrypt(benchmark, ckks_ctx):
    """The paper's client hot path, in software."""
    msg = np.linspace(-1, 1, ckks_ctx.params.slots)
    benchmark(ckks_ctx.encrypt, msg)


def test_ckks_decrypt_decode(benchmark, ckks_ctx):
    msg = np.linspace(-1, 1, ckks_ctx.params.slots)
    ct = ckks_ctx.encrypt(msg, level=2)  # the 2-level server response
    benchmark(ckks_ctx.decrypt_decode, ct)
