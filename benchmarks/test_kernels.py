"""Genuine software-kernel benchmarks of the library's hot paths.

These are the operations the accelerator replaces; their wall-clock times
make the CPU bars of Fig. 5(a) tangible.  The reducer-backend benches are
the software shadow of Table I: same math, different instruction mix —
``generic-split`` pays six uint64 divisions per modular product, while
``barrett``/``montgomery`` replace them with mul/shift/conditional-
subtract pipelines (see ``repro.nums.kernels``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.nums import find_primes
from repro.nums.kernels import available_backends, make_kernel, using_backend
from repro.nums.modular import mulmod_vec
from repro.rns import RnsBasis
from repro.rns.poly import RnsPolynomial
from repro.transforms.fft import SpecialFft
from repro.transforms.ntt import NttContext

PRIME = find_primes(36, 1 << 16)[0].value

# ---------------------------------------------------------------------------
# The pre-refactor reference implementations ("seed path"), kept verbatim so
# the reducer-backend speedups stay measured against a fixed baseline.
# ---------------------------------------------------------------------------

_SPLIT_BITS = np.uint64(18)
_SPLIT_MASK = np.uint64((1 << 18) - 1)


def seed_mulmod_vec(a, b, q):
    """The seed's 18-bit-split mulmod: six uint64 ``%`` per product."""
    qq = np.uint64(q)
    a = np.asarray(a, dtype=np.uint64) % qq
    b_arr = np.asarray(b, dtype=np.uint64) % qq
    b_hi = b_arr >> _SPLIT_BITS
    b_lo = b_arr & _SPLIT_MASK
    hi = (a * b_hi) % qq
    hi = (hi << _SPLIT_BITS) % qq
    lo = (a * b_lo) % qq
    return (hi + lo) % qq


def seed_ntt_forward(psi_rev, n, q, coeffs):
    """The seed's forward NTT: full ``%`` reduction after every op."""
    a = np.asarray(coeffs, dtype=np.uint64) % np.uint64(q)
    m = 1
    t = n
    while m < n:
        t //= 2
        view = a.reshape(m, 2, t)
        factors = psi_rev[m : 2 * m].reshape(m, 1)
        u = view[:, 0, :].copy()
        v = seed_mulmod_vec(view[:, 1, :], factors, q)
        view[:, 0, :] = (u + v) % np.uint64(q)
        view[:, 1, :] = (u + np.uint64(q) - v) % np.uint64(q)
        m *= 2
    return a


def _min_time_pair(f_ref, f_new, reps: int = 15) -> tuple[float, float]:
    """Best-of-N wall times for two thunks, rounds interleaved.

    Interleaving makes the *ratio* robust against CPU frequency drift:
    both implementations sample the same thermal/turbo conditions, and
    the min filters scheduler noise.
    """
    f_ref()
    f_new()
    best_ref = best_new = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        f_ref()
        best_ref = min(best_ref, time.perf_counter() - t0)
        t0 = time.perf_counter()
        f_new()
        best_new = min(best_new, time.perf_counter() - t0)
    return best_ref, best_new


@pytest.fixture(scope="module")
def ckks_ctx():
    return CkksContext.create(toy_params(degree=1 << 12, num_primes=8), seed=9)


# ---------------------------------------------------------------------------
# Transform / kernel micro-benchmarks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("log_n", [12, 14, 16])
def test_ntt_forward(benchmark, log_n):
    n = 1 << log_n
    ntt = NttContext.cached(n, PRIME)
    a = np.random.default_rng(0).integers(0, PRIME, n).astype(np.uint64)
    benchmark(ntt.forward, a)


@pytest.mark.parametrize("backend", available_backends())
def test_ntt_forward_backend(benchmark, backend):
    """Forward NTT at 2^14 under each reducer backend."""
    n = 1 << 14
    with using_backend(backend):
        ntt = NttContext.cached(n, PRIME)
    a = np.random.default_rng(0).integers(0, PRIME, n).astype(np.uint64)
    benchmark(ntt.forward, a)


def test_ntt_negacyclic_mul(benchmark):
    n = 1 << 14
    ntt = NttContext.cached(n, PRIME)
    rng = np.random.default_rng(0)
    a = rng.integers(0, PRIME, n).astype(np.uint64)
    b = rng.integers(0, PRIME, n).astype(np.uint64)
    benchmark(ntt.negacyclic_mul, a, b)


def test_batch_ntt_forward(benchmark):
    """All limbs of an (8, 2^12) polynomial in one batched transform."""
    basis = RnsBasis.create(1 << 12, 8)
    rng = np.random.default_rng(0)
    poly = RnsPolynomial(
        basis,
        np.stack([rng.integers(0, q, basis.degree) for q in basis.moduli]).astype(np.uint64),
    )
    benchmark(lambda: poly.to_eval())


@pytest.mark.parametrize("log_slots", [12, 15])
def test_special_fft(benchmark, log_slots):
    slots = 1 << log_slots
    fft = SpecialFft.create(slots)
    rng = np.random.default_rng(0)
    v = rng.normal(size=slots) + 1j * rng.normal(size=slots)
    benchmark(lambda: fft.forward(v.copy()))


def test_mulmod_vec_throughput(benchmark):
    rng = np.random.default_rng(0)
    a = rng.integers(0, PRIME, 1 << 16).astype(np.uint64)
    b = rng.integers(0, PRIME, 1 << 16).astype(np.uint64)
    benchmark(mulmod_vec, a, b, PRIME)


@pytest.mark.parametrize("backend", available_backends())
def test_mulmod_backend_throughput(benchmark, backend):
    """Canonical-operand modular product under each reducer backend."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, PRIME, 1 << 16).astype(np.uint64)
    b = rng.integers(0, PRIME, 1 << 16).astype(np.uint64)
    kern = make_kernel(PRIME, backend)
    benchmark(kern.mul, a, b)


# ---------------------------------------------------------------------------
# Speedup regression vs the seed path (the Table I software argument)
# ---------------------------------------------------------------------------


def test_barrett_speedup_vs_seed_path(report):
    """Barrett backend vs the seed's division-based path, min-of-N timed.

    Three views of the same replacement (measured 2-3.7x on an idle
    machine; the virtualized CI host's division/multiply cost ratio
    drifts, so the asserted floors sit below the typical ratios while the
    report prints what was actually achieved):

    * ``mulmod``  — seed ``mulmod_vec`` vs the Barrett kernel, flat 2^16;
    * ``polymul`` — the RnsPolynomial.__mul__ path: seed per-limb Python
      loop of ``mulmod_vec`` calls vs one whole-(L, N) kernel dispatch;
    * ``ntt``     — seed forward NTT (``%`` everywhere) vs the lazy-
      reduction Barrett butterfly pipeline.
    """
    rng = np.random.default_rng(0)
    n = 1 << 16
    a = rng.integers(0, PRIME, n).astype(np.uint64)
    b = rng.integers(0, PRIME, n).astype(np.uint64)
    kern = make_kernel(PRIME, "barrett")

    t_seed_mul, t_barrett_mul = _min_time_pair(
        lambda: seed_mulmod_vec(a, b, PRIME), lambda: kern.mul(a, b), reps=20
    )
    mul_speedup = t_seed_mul / t_barrett_mul

    with using_backend("barrett"):
        basis = RnsBasis.create(1 << 12, 8)
        mat_a = np.stack(
            [rng.integers(0, q, basis.degree) for q in basis.moduli]
        ).astype(np.uint64)
        mat_b = np.stack(
            [rng.integers(0, q, basis.degree) for q in basis.moduli]
        ).astype(np.uint64)
        mat_kern = basis.kernel(basis.num_primes)

        def seed_poly_mul():
            return [
                seed_mulmod_vec(mat_a[i], mat_b[i], q) for i, q in enumerate(basis.moduli)
            ]

        t_seed_poly, t_barrett_poly = _min_time_pair(
            seed_poly_mul, lambda: mat_kern.mul(mat_a, mat_b), reps=20
        )
        poly_speedup = t_seed_poly / t_barrett_poly

        ntt = NttContext.cached(n, PRIME)
    t_seed_ntt, t_barrett_ntt = _min_time_pair(
        lambda: seed_ntt_forward(ntt.psi_rev, n, PRIME, a), lambda: ntt.forward(a), reps=8
    )
    ntt_speedup = t_seed_ntt / t_barrett_ntt

    report(
        "Reducer-backend speedup vs seed generic-split path (barrett backend)",
        [
            f"mulmod 2^16:        seed {t_seed_mul*1e3:6.2f} ms   "
            f"barrett {t_barrett_mul*1e3:6.2f} ms   {mul_speedup:4.2f}x (target >= 2x)",
            f"poly mul (8,2^12):  seed {t_seed_poly*1e3:6.2f} ms   "
            f"barrett {t_barrett_poly*1e3:6.2f} ms   {poly_speedup:4.2f}x (target >= 2x)",
            f"forward NTT 2^16:   seed {t_seed_ntt*1e3:6.2f} ms   "
            f"barrett {t_barrett_ntt*1e3:6.2f} ms   {ntt_speedup:4.2f}x (target >= 2x)",
        ],
    )
    # Floors are loose regression guards only: virtualized hosts show
    # minutes-long phases where SIMD-bound code runs ~2x slower while
    # division-latency-bound code is unaffected, which compresses the
    # ratios well below the >= 2x an idle machine shows.  On shared CI
    # runners even interleaving can't isolate bursty co-tenant load, so
    # there the ratios are reported but not enforced.
    if os.environ.get("CI"):
        return
    assert mul_speedup >= 1.2, f"barrett mulmod regressed: {mul_speedup:.2f}x"
    assert poly_speedup >= 1.0, f"barrett poly mul regressed: {poly_speedup:.2f}x"
    assert ntt_speedup >= 1.5, f"barrett NTT regressed: {ntt_speedup:.2f}x"


# ---------------------------------------------------------------------------
# CKKS client hot paths
# ---------------------------------------------------------------------------


def test_ckks_encode(benchmark, ckks_ctx):
    msg = np.linspace(-1, 1, ckks_ctx.params.slots)
    benchmark(ckks_ctx.encode, msg)


def test_ckks_encode_encrypt(benchmark, ckks_ctx):
    """The paper's client hot path, in software."""
    msg = np.linspace(-1, 1, ckks_ctx.params.slots)
    benchmark(ckks_ctx.encrypt, msg)


def test_ckks_decrypt_decode(benchmark, ckks_ctx):
    msg = np.linspace(-1, 1, ckks_ctx.params.slots)
    ct = ckks_ctx.encrypt(msg, level=2)  # the 2-level server response
    benchmark(ckks_ctx.decrypt_decode, ct)
