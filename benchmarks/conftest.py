"""Benchmark helpers: every bench prints the paper-vs-measured rows it
regenerates, straight to the terminal (outside pytest's capture)."""

from __future__ import annotations

import pytest


@pytest.fixture()
def report(capsys):
    """Print a report block to the real terminal from inside a test."""

    def _print(title: str, lines: list[str]) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            for line in lines:
                print(f"  {line}")

    return _print
