"""Fig. 6(b) — on-chip generation vs DRAM fetch, across ring degrees."""

from __future__ import annotations

from repro.experiments import fig6b_memory_ablation, memopt_speedup
from repro.experiments.fig6 import PAPER_MEMOPT_SPEEDUP_RANGE

DEGREES = (1 << 13, 1 << 14, 1 << 15, 1 << 16)


def test_fig6b_memory_ablation(benchmark, report):
    points = benchmark(fig6b_memory_ablation, DEGREES)
    lines = []
    for name in ("ABC-FHE_Base", "ABC-FHE_TF_Gen", "ABC-FHE_All"):
        cells = "  ".join(
            f"2^{d.bit_length()-1}:{p.latency_ms:7.3f}ms"
            for d in DEGREES
            for p in points
            if p.config_name == name and p.degree == d
        )
        lines.append(f"{name:15s} {cells}")
    lo, hi = PAPER_MEMOPT_SPEEDUP_RANGE
    for d in DEGREES:
        s = memopt_speedup(points, d)
        lines.append(f"Base/All speed-up at N=2^{d.bit_length()-1}: {s:.2f}x (paper {lo}-{hi}x)")
    report("Fig. 6(b): memory-optimization ablation", lines)

    for d in DEGREES:
        assert 7.5 <= memopt_speedup(points, d) <= 10.0
