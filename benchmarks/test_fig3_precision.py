"""Fig. 3(c) — boot precision vs FP mantissa width (the FP55 decision)."""

from __future__ import annotations

from repro.ckks.precision import measure_precision
from repro.experiments import fig3_precision_sweep

SLOTS = 1 << 12  # reduced ring for bench speed; shape matches 2^15 slots


def test_fig3_precision_sweep(benchmark, report):
    sweep = benchmark.pedantic(
        fig3_precision_sweep,
        kwargs={"slots": SLOTS, "mantissa_range": range(20, 53, 4)},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"mantissa {p.mantissa_bits:2d} bits -> precision {p.precision_bits:5.1f} bits"
        for p in sweep.points
    ]
    lines += [
        f"threshold: {sweep.threshold_bits} bits (paper [19])",
        f"smallest passing mantissa: {sweep.chosen_mantissa} "
        "(paper selects 43 after bootstrap-pipeline losses; see EXPERIMENTS.md)",
    ]
    report("Fig. 3(c): precision vs mantissa width", lines)

    precisions = [p.precision_bits for p in sweep.points]
    assert all(a < b for a, b in zip(precisions, precisions[1:]))


def test_fp55_precision_point(benchmark, report):
    """Timing + value of the single FP55 measurement (43 mantissa bits)."""
    precision = benchmark.pedantic(
        measure_precision, args=(SLOTS, 43), kwargs={"trials": 1}, rounds=1, iterations=1
    )
    report(
        "Fig. 3(c): FP55 point",
        [f"43 mantissa bits -> {precision:.2f} bits (paper: 23.39 after bootstrap)"],
    )
    assert precision > 19.29
