#!/usr/bin/env python3
"""Standalone performance runner: key-switching engine + lazy runtime.

Times the hot primitives — mulmod, batched NTT, key switching, rotation
(plain and hoisted), the BSGS linear layer, and a bootstrap step — against
the pre-PR reference paths (per-digit loop key switching, coefficient-
domain automorphisms, per-rotation digit expansion) and writes a
machine-readable trajectory to ``BENCH_keyswitch.json``.

A second section benches the lazy computation-graph runtime
(:mod:`repro.runtime`): eager one-op-at-a-time dispatch vs. a compiled
``ExecutionPlan`` vs. batched plan replay, on the BSGS matmul and a
three-level polynomial pipeline, written to ``BENCH_runtime.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --out path/to.json \
        --runtime-out path/to_runtime.json

Runs from a checkout without installation (``src`` is added to the path).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a bare checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.ckks import (
    BootstrapConfig,
    Bootstrapper,
    Ciphertext,
    CkksContext,
    HomomorphicLinearTransform,
    Plaintext,
    toy_params,
)
from repro.ckks.keys import rotation_galois_elt
from repro.nums.kernels import default_backend_name
from repro.runtime import CtSpec, compile_fn


def _time(fn, repeats: int, warmup: int = 1) -> dict:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {"best_s": min(samples), "mean_s": sum(samples) / len(samples)}


# ---------------------------------------------------------------------------
# Pre-PR reference paths (per-digit loop, coeff-domain automorphisms)
# ---------------------------------------------------------------------------


def _rotate_reference(ev, ct: Ciphertext, steps: int, galois_keys) -> Ciphertext:
    """The seed rotation: two coeff-domain automorphism round trips plus
    the per-digit key-switch loop.

    Decrypts to the same message as the engine's rotation but encodes a
    different (equally valid) noise representative: the engine permutes
    already-decomposed digits, the seed decomposed the permuted
    polynomial (see ``KeySwitchEngine.permute``).
    """
    key = galois_keys[(steps, ct.level)]
    galois_elt = rotation_galois_elt(steps, ev.params.slots, 2 * ev.basis.degree)
    c0r = ct.parts[0].to_coeff().automorphism(galois_elt).to_eval()
    c1r = ct.parts[1].to_coeff().automorphism(galois_elt).to_eval()
    ks0, ks1 = ev.keyswitch.switch_reference(c1r, key)
    return Ciphertext(parts=[c0r + ks0, ks1], scale=ct.scale)


def _bsgs_reference(
    hlt: HomomorphicLinearTransform, ct, galois_keys, coeff_diagonals
) -> Ciphertext:
    """The seed BSGS loop: one full rotation (no hoisting) per baby step
    and coefficient-domain diagonals (one forward NTT per multiply)."""
    ev = hlt.ctx.evaluator
    bs = hlt.baby_steps
    rotated = {0: ct}
    for j in sorted({j for _, j in hlt._nonzero if j != 0}):
        rotated[j] = _rotate_reference(ev, ct, j, galois_keys)
    by_giant: dict[int, list[int]] = {}
    for g, j in hlt._nonzero:
        by_giant.setdefault(g, []).append(j)
    acc = None
    for g, js in sorted(by_giant.items()):
        inner = None
        for j in js:
            term = ev.multiply_plain(rotated[j], coeff_diagonals[(g, j)])
            inner = term if inner is None else ev.add(inner, term)
        if g != 0:
            inner = _rotate_reference(ev, inner, g * bs, galois_keys)
        acc = inner if acc is None else ev.add(acc, inner)
    return acc


# ---------------------------------------------------------------------------
# Benches
# ---------------------------------------------------------------------------


def bench_kernels(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    kern = ctx.basis.kernel(lvl)
    bn = ctx.basis.batch_ntt(lvl)
    rng = np.random.default_rng(11)
    q_col = np.array(ctx.basis.moduli[:lvl], dtype=np.uint64).reshape(-1, 1)
    a = rng.integers(0, 1 << 41, (lvl, ctx.basis.degree)).astype(np.uint64) % q_col
    b = rng.integers(0, 1 << 41, (lvl, ctx.basis.degree)).astype(np.uint64) % q_col
    fwd = bn.forward(a)
    return {
        "mulmod": _time(lambda: kern.mul(a, b), repeats),
        "ntt_forward": _time(lambda: bn.forward(a), repeats),
        "ntt_inverse": _time(lambda: bn.inverse(fwd), repeats),
    }


def bench_key_switch(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    rlk = ctx.relin_keys(levels=[lvl])
    key = rlk[lvl]
    rng = np.random.default_rng(12)
    msg = rng.uniform(-1, 1, ctx.params.slots)
    poly = ctx.encrypt(msg).parts[1]
    engine = ctx.evaluator.keyswitch
    key.stacked()  # build the tensor cache outside the timed region
    return {
        "key_switch_loop": _time(lambda: engine.switch_reference(poly, key), repeats),
        "key_switch_batched": _time(lambda: engine.switch(poly, key), repeats),
    }


HOIST_BATCH = 8  # rotations amortized per hoisted decomposition


def bench_rotate(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    steps = list(range(1, HOIST_BATCH + 1))
    gks = ctx.galois_keys(steps, levels=[lvl])
    rng = np.random.default_rng(13)
    ct = ctx.encrypt(rng.uniform(-1, 1, ctx.params.slots))
    ev = ctx.evaluator
    for (r, l) in gks:
        gks[(r, l)].stacked()
    ev.rotate(ct, 1, gks)  # warm permutation/kernel caches

    def hoisted_batch():
        dec = ev.decompose(ct)
        for s in steps:
            ev.rotate(ct, s, gks, decomposed=dec)

    def reference_batch():
        for s in steps:
            _rotate_reference(ev, ct, s, gks)

    return {
        "rotate_reference": _time(lambda: _rotate_reference(ev, ct, 1, gks), repeats),
        "rotate": _time(lambda: ev.rotate(ct, 1, gks), repeats),
        f"rotate_x{HOIST_BATCH}_reference": _time(reference_batch, repeats),
        f"rotate_x{HOIST_BATCH}_hoisted": _time(hoisted_batch, repeats),
    }


def bench_bsgs(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    slots = ctx.params.slots
    rng = np.random.default_rng(14)
    matrix = rng.uniform(-1, 1, (slots, slots)) + 1j * rng.uniform(-1, 1, (slots, slots))
    hlt = HomomorphicLinearTransform(ctx, matrix, level=lvl)
    gks = ctx.galois_keys(hlt.required_rotations(), levels=[lvl])
    ct = ctx.encrypt(rng.uniform(-1, 1, slots))
    # Pre-PR state: diagonals stored coefficient-domain, transformed on
    # every multiply (the engine path caches them in the NTT domain).
    coeff_diagonals = {
        key: Plaintext(poly=pt.poly.to_coeff(), scale=pt.scale)
        for key, pt in hlt._diagonals.items()
    }
    hlt.apply(ct, gks)  # warm caches
    return {
        "bsgs_matmul_reference": _time(
            lambda: _bsgs_reference(hlt, ct, gks, coeff_diagonals), repeats
        ),
        "bsgs_matmul_hoisted": _time(lambda: hlt.apply(ct, gks), repeats),
    }


RUNTIME_BATCH = 8  # ciphertexts replayed per cached plan in the batched bench


def bench_runtime(ctx, repeats: int) -> dict:
    """Eager dispatch vs. planned vs. batched plan replay (runtime PR)."""
    lvl = ctx.params.num_primes
    slots = ctx.params.slots
    rng = np.random.default_rng(21)
    results: dict[str, dict] = {}

    # --- BSGS matmul -----------------------------------------------------
    matrix = rng.uniform(-1, 1, (slots, slots)) + 1j * rng.uniform(-1, 1, (slots, slots))
    hlt = HomomorphicLinearTransform(ctx, matrix, level=lvl)
    gks = ctx.galois_keys(hlt.required_rotations(), levels=[lvl])
    ct = ctx.encrypt(rng.uniform(-1, 1, slots))
    batch = [[ctx.encrypt(rng.uniform(-1, 1, slots))] for _ in range(RUNTIME_BATCH)]
    plan = hlt.plan_for(ct.scale, gks)
    plan.run([ct])  # compile + warm every cache outside the timed region
    plan.run_batch(batch[:1])
    results["bsgs_eager_dispatch"] = _time(
        lambda: hlt.emit(ctx.evaluator, ct, gks), repeats
    )
    results["bsgs_planned"] = _time(lambda: hlt.apply(ct, gks), repeats)
    per_batch = _time(lambda: plan.run_batch(batch), repeats)
    results["bsgs_batched_replay_per_ct"] = {
        k: v / RUNTIME_BATCH for k, v in per_batch.items()
    }

    # --- three-level polynomial pipeline: x^4 + x^2 + 1/2 ----------------
    # The ciphertext visits three levels (L, L-2, L-4); the x^2 term is
    # scale-aligned onto x^4's track with a unity multiply_plain, the
    # standard CKKS bridging trick.  Written against the shared surface,
    # so the same callable runs eagerly and traces.
    rlk = ctx.relin_keys(levels=[lvl, lvl - 2])
    ones = np.ones(slots)

    def poly3(ev, x):
        x2 = ev.multiply_relin_rescale(x, x, rlk)
        x4 = ev.multiply_relin_rescale(x2, x2, rlk)
        unity = ctx.encoder.encode(ones, level=x2.level, scale=x2.scale)
        bridge = ev.rescale(ev.multiply_plain(x2, unity), times=2)
        y = ev.add(x4, bridge)
        half = ctx.encoder.encode(0.5 * ones, level=y.level, scale=y.scale)
        return ev.add_plain(y, half)

    spec = CtSpec(level=lvl, scale=ctx.params.scale)
    pplan = compile_fn(poly3, ctx.evaluator, [spec])
    pplan.run([ct])
    results["poly3_eager_dispatch"] = _time(
        lambda: poly3(ctx.evaluator, ct), repeats
    )
    results["poly3_planned"] = _time(lambda: pplan.run([ct]), repeats)
    per_batch = _time(lambda: pplan.run_batch(batch), repeats)
    results["poly3_batched_replay_per_ct"] = {
        k: v / RUNTIME_BATCH for k, v in per_batch.items()
    }
    return results


def bench_bootstrap_step(repeats: int) -> dict:
    params = replace(toy_params(degree=64, num_primes=22), secret_hamming_weight=8)
    ctx = CkksContext.create(params, seed=77)
    bs = Bootstrapper(
        ctx, BootstrapConfig(input_scale_bits=25, eval_mod_degree=63, wraps=7)
    )
    rng = np.random.default_rng(15)
    ct = ctx.encryptor.encrypt(
        ctx.encoder.encode(
            rng.uniform(-1, 1, ctx.params.slots),
            level=1,
            scale=bs.config.input_scale,
        )
    )
    raised = bs.mod_raise(ct)
    return {"bootstrap_coeff_to_slot": _time(lambda: bs.coeff_to_slot(raised), repeats)}


# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke sizes")
    ap.add_argument("--out", default="BENCH_keyswitch.json", help="output JSON path")
    ap.add_argument(
        "--runtime-out",
        default="BENCH_runtime.json",
        help="runtime-section output JSON path",
    )
    ap.add_argument("--degree", type=int, default=None, help="override ring degree")
    ap.add_argument("--primes", type=int, default=None, help="override chain length")
    args = ap.parse_args(argv)

    degree = args.degree or (256 if args.quick else 1024)
    primes = args.primes or (6 if args.quick else 10)
    repeats = 3 if args.quick else 5

    ctx = CkksContext.create(toy_params(degree=degree, num_primes=primes), seed=2025)
    results: dict[str, dict] = {}
    results.update(bench_kernels(ctx, repeats))
    results.update(bench_key_switch(ctx, repeats))
    results.update(bench_rotate(ctx, repeats))
    results.update(bench_bsgs(ctx, repeats))
    if not args.quick:
        results.update(bench_bootstrap_step(max(1, repeats - 3)))

    def ratio(slow: str, fast: str) -> float:
        return results[slow]["best_s"] / results[fast]["best_s"]

    speedups = {
        "key_switch": ratio("key_switch_loop", "key_switch_batched"),
        "rotate": ratio("rotate_reference", "rotate"),
        f"rotate_hoisted_x{HOIST_BATCH}": ratio(
            f"rotate_x{HOIST_BATCH}_reference", f"rotate_x{HOIST_BATCH}_hoisted"
        ),
        "bsgs_matmul": ratio("bsgs_matmul_reference", "bsgs_matmul_hoisted"),
    }

    payload = {
        "meta": {
            "bench": "keyswitch-engine",
            "degree": degree,
            "num_primes": primes,
            "backend": default_backend_name(),
            "quick": bool(args.quick),
            "repeats": repeats,
        },
        "results_s": results,
        "speedups_x": speedups,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    width = max(len(k) for k in results)
    print(f"key-switch engine bench  (N=2^{degree.bit_length()-1}, L={primes}, "
          f"backend={payload['meta']['backend']})")
    for name, row in results.items():
        print(f"  {name:<{width}}  best {row['best_s']*1e3:9.3f} ms")
    print("speedups (reference / engine):")
    for name, x in speedups.items():
        print(f"  {name:<{width}}  {x:5.2f}x")
    print(f"wrote {out_path}")

    # --- runtime section: eager vs. planned vs. batched replay ------------
    rt_results = bench_runtime(ctx, repeats)

    def rt_ratio(slow: str, fast: str) -> float:
        return rt_results[slow]["best_s"] / rt_results[fast]["best_s"]

    rt_speedups = {
        "bsgs_planned": rt_ratio("bsgs_eager_dispatch", "bsgs_planned"),
        "bsgs_batched_replay": rt_ratio(
            "bsgs_eager_dispatch", "bsgs_batched_replay_per_ct"
        ),
        "poly3_planned": rt_ratio("poly3_eager_dispatch", "poly3_planned"),
        "poly3_batched_replay": rt_ratio(
            "poly3_eager_dispatch", "poly3_batched_replay_per_ct"
        ),
    }
    rt_payload = {
        "meta": {
            "bench": "lazy-runtime",
            "degree": degree,
            "num_primes": primes,
            "backend": default_backend_name(),
            "quick": bool(args.quick),
            "repeats": repeats,
            "batch": RUNTIME_BATCH,
        },
        "results_s": rt_results,
        "speedups_x": rt_speedups,
    }
    rt_path = Path(args.runtime_out)
    rt_path.write_text(json.dumps(rt_payload, indent=2, sort_keys=True) + "\n")

    width = max(len(k) for k in rt_results)
    print(f"\nlazy-runtime bench  (N=2^{degree.bit_length()-1}, L={primes}, "
          f"batch={RUNTIME_BATCH})")
    for name, row in rt_results.items():
        print(f"  {name:<{width}}  best {row['best_s']*1e3:9.3f} ms")
    print("speedups (eager dispatch / runtime):")
    for name, x in rt_speedups.items():
        print(f"  {name:<{width}}  {x:5.2f}x")
    print(f"wrote {rt_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
