#!/usr/bin/env python3
"""Standalone performance runner: kernels, runtime, serving, plan I/O,
fault-recovery overhead, telemetry overhead, and the transport fabric.

Seven sections, selectable with ``--sections``:

* ``core`` — the hot primitives (mulmod, batched NTT, key switching,
  rotation plain/hoisted, BSGS, a bootstrap step) against the pre-PR
  reference paths, written to ``BENCH_keyswitch.json``;
* ``runtime`` — eager one-op-at-a-time dispatch vs. a compiled
  ``ExecutionPlan`` vs. batched plan replay, written to
  ``BENCH_runtime.json``;
* ``serving`` — the multi-process serving engine: 1/2/4-worker sharded
  ``run_batch`` scaling and streaming vs. materialized-batch latency,
  with each request charged a client-link transfer delay derived from
  the serialization layer's exact wire byte counts (``--link-mbps``),
  written to ``BENCH_serving.json`` next to the dual-RSC scheduler's
  policy makespans for the same queue;
* ``planio`` — plan-artifact costs on the BSGS matmul program:
  trace+optimize (cold compile) vs. trace+disk-store load vs. raw
  EPL1 deserialization, plus serialize time and blob size, written to
  ``BENCH_planio.json``;
* ``chaos`` — fault-recovery overhead: the same served batch under
  seeded injected worker crashes (5/10/20% per-attempt rates), with
  zero-lost/zero-duplicated and bit-identity hard-asserted and the
  fault-free/faulted wall-clock ratio gated, written to
  ``BENCH_chaos.json``;
* ``telemetry`` — observability overhead: fused BSGS replay and a
  2-worker serve under telemetry off / enabled-but-sampled-out / full
  tracing, hard-asserting in-run that disabled hooks cost <= 2% and
  full tracing <= 10% on the fused replay, written to
  ``BENCH_telemetry.json``;
* ``fabric`` — the cross-machine serving fabric: the same served batch
  through the pipe, shared-memory-ring, and loopback-TCP transports
  (bit-identity hard-asserted on each), plus two gated micro-benches —
  large-reply shipping through the shm ring vs. a plain pipe, and
  batched vs. per-message ``FBT1`` session framing — written to
  ``BENCH_fabric.json``.

Every output JSON carries a ``trajectory`` list: by default the history
already in the file is preserved and this run appended, so the per-PR
bench record accumulates instead of being overwritten (the CI
regression gate matches against it); ``--reset-trajectory`` restarts
the history.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --quick \
        --sections serving --serving-workers 1,2             # serving smoke

Runs from a checkout without installation (``src`` is added to the path).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a bare checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.ckks import (
    BootstrapConfig,
    Bootstrapper,
    Ciphertext,
    CkksContext,
    HomomorphicLinearTransform,
    Plaintext,
    ciphertext_wire_bytes,
    toy_params,
    wire_coeff_bits,
)
from repro.ckks.keys import rotation_galois_elt
from repro.nums.kernels import default_backend_name
from repro.runtime import (
    CtSpec,
    ServingConfig,
    ShardedExecutor,
    StreamingServer,
    compile_fn,
    plan_schedule_comparison,
)


def _time(fn, repeats: int, warmup: int = 1) -> dict:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {"best_s": min(samples), "mean_s": sum(samples) / len(samples)}


# ---------------------------------------------------------------------------
# Pre-PR reference paths (per-digit loop, coeff-domain automorphisms)
# ---------------------------------------------------------------------------


def _rotate_reference(ev, ct: Ciphertext, steps: int, galois_keys) -> Ciphertext:
    """The seed rotation: two coeff-domain automorphism round trips plus
    the per-digit key-switch loop.

    Decrypts to the same message as the engine's rotation but encodes a
    different (equally valid) noise representative: the engine permutes
    already-decomposed digits, the seed decomposed the permuted
    polynomial (see ``KeySwitchEngine.permute``).
    """
    key = galois_keys[(steps, ct.level)]
    galois_elt = rotation_galois_elt(steps, ev.params.slots, 2 * ev.basis.degree)
    c0r = ct.parts[0].to_coeff().automorphism(galois_elt).to_eval()
    c1r = ct.parts[1].to_coeff().automorphism(galois_elt).to_eval()
    ks0, ks1 = ev.keyswitch.switch_reference(c1r, key)
    return Ciphertext(parts=[c0r + ks0, ks1], scale=ct.scale)


def _bsgs_reference(
    hlt: HomomorphicLinearTransform, ct, galois_keys, coeff_diagonals
) -> Ciphertext:
    """The seed BSGS loop: one full rotation (no hoisting) per baby step
    and coefficient-domain diagonals (one forward NTT per multiply)."""
    ev = hlt.ctx.evaluator
    bs = hlt.baby_steps
    rotated = {0: ct}
    for j in sorted({j for _, j in hlt._nonzero if j != 0}):
        rotated[j] = _rotate_reference(ev, ct, j, galois_keys)
    by_giant: dict[int, list[int]] = {}
    for g, j in hlt._nonzero:
        by_giant.setdefault(g, []).append(j)
    acc = None
    for g, js in sorted(by_giant.items()):
        inner = None
        for j in js:
            term = ev.multiply_plain(rotated[j], coeff_diagonals[(g, j)])
            inner = term if inner is None else ev.add(inner, term)
        if g != 0:
            inner = _rotate_reference(ev, inner, g * bs, galois_keys)
        acc = inner if acc is None else ev.add(acc, inner)
    return acc


# ---------------------------------------------------------------------------
# Benches
# ---------------------------------------------------------------------------


def bench_kernels(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    kern = ctx.basis.kernel(lvl)
    bn = ctx.basis.batch_ntt(lvl)
    rng = np.random.default_rng(11)
    q_col = np.array(ctx.basis.moduli[:lvl], dtype=np.uint64).reshape(-1, 1)
    a = rng.integers(0, 1 << 41, (lvl, ctx.basis.degree)).astype(np.uint64) % q_col
    b = rng.integers(0, 1 << 41, (lvl, ctx.basis.degree)).astype(np.uint64) % q_col
    fwd = bn.forward(a)
    return {
        "mulmod": _time(lambda: kern.mul(a, b), repeats),
        "ntt_forward": _time(lambda: bn.forward(a), repeats),
        "ntt_inverse": _time(lambda: bn.inverse(fwd), repeats),
    }


def bench_key_switch(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    rlk = ctx.relin_keys(levels=[lvl])
    key = rlk[lvl]
    rng = np.random.default_rng(12)
    msg = rng.uniform(-1, 1, ctx.params.slots)
    poly = ctx.encrypt(msg).parts[1]
    engine = ctx.evaluator.keyswitch
    key.stacked()  # build the tensor cache outside the timed region
    return {
        "key_switch_loop": _time(lambda: engine.switch_reference(poly, key), repeats),
        "key_switch_batched": _time(lambda: engine.switch(poly, key), repeats),
    }


HOIST_BATCH = 8  # rotations amortized per hoisted decomposition


def bench_rotate(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    steps = list(range(1, HOIST_BATCH + 1))
    gks = ctx.galois_keys(steps, levels=[lvl])
    rng = np.random.default_rng(13)
    ct = ctx.encrypt(rng.uniform(-1, 1, ctx.params.slots))
    ev = ctx.evaluator
    for (r, l) in gks:
        gks[(r, l)].stacked()
    ev.rotate(ct, 1, gks)  # warm permutation/kernel caches

    def hoisted_batch():
        dec = ev.decompose(ct)
        for s in steps:
            ev.rotate(ct, s, gks, decomposed=dec)

    def reference_batch():
        for s in steps:
            _rotate_reference(ev, ct, s, gks)

    return {
        "rotate_reference": _time(lambda: _rotate_reference(ev, ct, 1, gks), repeats),
        "rotate": _time(lambda: ev.rotate(ct, 1, gks), repeats),
        f"rotate_x{HOIST_BATCH}_reference": _time(reference_batch, repeats),
        f"rotate_x{HOIST_BATCH}_hoisted": _time(hoisted_batch, repeats),
    }


def bench_bsgs(ctx, repeats: int) -> dict:
    lvl = ctx.params.num_primes
    slots = ctx.params.slots
    rng = np.random.default_rng(14)
    matrix = rng.uniform(-1, 1, (slots, slots)) + 1j * rng.uniform(-1, 1, (slots, slots))
    hlt = HomomorphicLinearTransform(ctx, matrix, level=lvl)
    gks = ctx.galois_keys(hlt.required_rotations(), levels=[lvl])
    ct = ctx.encrypt(rng.uniform(-1, 1, slots))
    # Pre-PR state: diagonals stored coefficient-domain, transformed on
    # every multiply (the engine path caches them in the NTT domain).
    coeff_diagonals = {
        key: Plaintext(poly=pt.poly.to_coeff(), scale=pt.scale)
        for key, pt in hlt._diagonals.items()
    }
    hlt.apply(ct, gks)  # warm caches
    return {
        "bsgs_matmul_reference": _time(
            lambda: _bsgs_reference(hlt, ct, gks, coeff_diagonals), repeats
        ),
        "bsgs_matmul_hoisted": _time(lambda: hlt.apply(ct, gks), repeats),
    }


RUNTIME_BATCH = 8  # ciphertexts replayed per cached plan in the batched bench


def bench_runtime(ctx, repeats: int) -> tuple[dict, dict]:
    """Eager vs. planned vs. batched vs. fused plan replay (runtime PRs).

    Returns ``(timings, fused_stats)`` — the second dict holds each
    plan's :meth:`ExecutionPlan.stats` payload (arena slots/bytes, fused
    group and dispatch counts), recorded alongside the timings so the
    committed bench JSON documents *why* the fused path is faster.
    """
    lvl = ctx.params.num_primes
    slots = ctx.params.slots
    rng = np.random.default_rng(21)
    results: dict[str, dict] = {}
    fused_stats: dict[str, dict] = {}

    # --- BSGS matmul -----------------------------------------------------
    matrix = rng.uniform(-1, 1, (slots, slots)) + 1j * rng.uniform(-1, 1, (slots, slots))
    hlt = HomomorphicLinearTransform(ctx, matrix, level=lvl)
    gks = ctx.galois_keys(hlt.required_rotations(), levels=[lvl])
    ct = ctx.encrypt(rng.uniform(-1, 1, slots))
    batch = [[ctx.encrypt(rng.uniform(-1, 1, slots))] for _ in range(RUNTIME_BATCH)]
    plan = hlt.plan_for(ct.scale, gks)
    plan.run([ct])  # compile + warm every cache outside the timed region
    plan.run_batch(batch[:1])
    # Fused warm is the expensive one: arena layout, fused closures, and
    # the per-key pre-formed tensors (SwitchingKey.stacked_pre) all build
    # here, once, so the timed region measures steady-state replay.
    plan.run_batch(batch[:1], fused=True)
    results["bsgs_eager_dispatch"] = _time(
        lambda: hlt.emit(ctx.evaluator, ct, gks), repeats
    )
    results["bsgs_planned"] = _time(lambda: hlt.apply(ct, gks), repeats)
    per_batch = _time(lambda: plan.run_batch(batch), repeats)
    results["bsgs_batched_replay_per_ct"] = {
        k: v / RUNTIME_BATCH for k, v in per_batch.items()
    }
    per_batch = _time(lambda: plan.run_batch(batch, fused=True), repeats)
    results["bsgs_fused_replay_per_ct"] = {
        k: v / RUNTIME_BATCH for k, v in per_batch.items()
    }
    fused_stats["bsgs"] = plan.stats()

    # --- three-level polynomial pipeline: x^4 + x^2 + 1/2 ----------------
    # The ciphertext visits three levels (L, L-2, L-4); the x^2 term is
    # scale-aligned onto x^4's track with a unity multiply_plain, the
    # standard CKKS bridging trick.  Written against the shared surface,
    # so the same callable runs eagerly and traces.
    rlk = ctx.relin_keys(levels=[lvl, lvl - 2])
    ones = np.ones(slots)

    def poly3(ev, x):
        x2 = ev.multiply_relin_rescale(x, x, rlk)
        x4 = ev.multiply_relin_rescale(x2, x2, rlk)
        unity = ctx.encoder.encode(ones, level=x2.level, scale=x2.scale)
        bridge = ev.rescale(ev.multiply_plain(x2, unity), times=2)
        y = ev.add(x4, bridge)
        half = ctx.encoder.encode(0.5 * ones, level=y.level, scale=y.scale)
        return ev.add_plain(y, half)

    spec = CtSpec(level=lvl, scale=ctx.params.scale)
    pplan = compile_fn(poly3, ctx.evaluator, [spec])
    pplan.run([ct])
    pplan.run_batch(batch[:1], fused=True)
    results["poly3_eager_dispatch"] = _time(
        lambda: poly3(ctx.evaluator, ct), repeats
    )
    results["poly3_planned"] = _time(lambda: pplan.run([ct]), repeats)
    per_batch = _time(lambda: pplan.run_batch(batch), repeats)
    results["poly3_batched_replay_per_ct"] = {
        k: v / RUNTIME_BATCH for k, v in per_batch.items()
    }
    per_batch = _time(lambda: pplan.run_batch(batch, fused=True), repeats)
    results["poly3_fused_replay_per_ct"] = {
        k: v / RUNTIME_BATCH for k, v in per_batch.items()
    }
    fused_stats["poly3"] = pplan.stats()
    return results, fused_stats


def bench_bootstrap_step(repeats: int) -> dict:
    params = replace(toy_params(degree=64, num_primes=22), secret_hamming_weight=8)
    ctx = CkksContext.create(params, seed=77)
    bs = Bootstrapper(
        ctx, BootstrapConfig(input_scale_bits=25, eval_mod_degree=63, wraps=7)
    )
    rng = np.random.default_rng(15)
    ct = ctx.encryptor.encrypt(
        ctx.encoder.encode(
            rng.uniform(-1, 1, ctx.params.slots),
            level=1,
            scale=bs.config.input_scale,
        )
    )
    raised = bs.mod_raise(ct)
    return {"bootstrap_coeff_to_slot": _time(lambda: bs.coeff_to_slot(raised), repeats)}


def bench_plan_io(ctx, repeats: int) -> dict:
    """Plan-artifact costs (plan-serialization PR): what a serving fleet
    pays to compile, persist, and rehydrate the BSGS matmul program.

    ``trace_compile`` is the cold path every process pays without plan
    shipping (trace + optimizer passes).  ``trace_store_load`` traces
    only to derive the content key, then loads the optimized plan from
    an on-disk PlanStore (constants resolved from the live graph — no
    copies).  ``deserialize`` rebuilds a fully self-contained plan from
    EPL1 bytes, constants included — the shipped-worker cold start.
    """
    import tempfile

    from repro.runtime import (
        ConstantStore,
        PlanStore,
        clear_plan_cache,
        compile_fn,
        deserialize_plan,
        serialize_plan,
        set_plan_store,
    )

    lvl = ctx.params.num_primes
    slots = ctx.params.slots
    rng = np.random.default_rng(51)
    matrix = rng.uniform(-1, 1, (slots, slots)) + 1j * rng.uniform(
        -1, 1, (slots, slots)
    )
    hlt = HomomorphicLinearTransform(ctx, matrix, level=lvl)
    gks = ctx.galois_keys(hlt.required_rotations(), levels=[lvl])
    spec = CtSpec(level=lvl, scale=ctx.params.scale)

    def model(ev, x):
        return hlt.emit(ev, x, gks)

    def compile_cold():
        clear_plan_cache()
        return compile_fn(model, ctx.evaluator, [spec])

    results: dict[str, dict] = {}
    results["bsgs_trace_compile"] = _time(compile_cold, repeats)
    plan = compile_fn(model, ctx.evaluator, [spec])
    blob = serialize_plan(plan)

    with tempfile.TemporaryDirectory() as tmp:
        set_plan_store(PlanStore(tmp))
        try:

            def store_load():
                clear_plan_cache()
                return compile_fn(model, ctx.evaluator, [spec])

            store_load()  # populate the store outside the timed region
            results["bsgs_trace_store_load"] = _time(store_load, repeats)
        finally:
            set_plan_store(None)
            clear_plan_cache()

    results["bsgs_serialize"] = _time(lambda: serialize_plan(plan), repeats)
    results["bsgs_deserialize_cold"] = _time(
        lambda: deserialize_plan(blob, ctx.evaluator), repeats
    )
    # The fleet hot path: constants (keys, tables) distributed once as a
    # PCS1 payload, per-plan artifacts lean, resolver pre-populated.
    lean = serialize_plan(plan, include_constants=False)
    resolver = ConstantStore.from_graph(plan.graph)
    results["bsgs_deserialize_lean"] = _time(
        lambda: deserialize_plan(lean, ctx.evaluator, constants=resolver),
        repeats,
    )

    def ratio(slow: str, fast: str) -> float:
        return results[slow]["best_s"] / results[fast]["best_s"]

    return {
        "results": results,
        "artifact_bytes": len(blob),
        "lean_artifact_bytes": len(lean),
        "nodes": len(plan.graph.nodes),
        "constants": len(plan.graph.consts),
        "speedups_x": {
            "plan_store_load_vs_compile": ratio(
                "bsgs_trace_compile", "bsgs_trace_store_load"
            ),
            "plan_lean_deserialize_vs_compile": ratio(
                "bsgs_trace_compile", "bsgs_deserialize_lean"
            ),
        },
    }


# ---------------------------------------------------------------------------
# Serving section: sharded worker-pool scaling + streaming ingestion
# ---------------------------------------------------------------------------


def _inference_plan(ctx):
    """The private-inference model (W2 * (W1*x + b1)^2) compiled once —
    the same program ``examples/private_inference_client.py`` serves."""
    rng = np.random.default_rng(31)
    slots = ctx.params.slots
    lpm = ctx.params.levels_per_multiplication
    w1_pt = ctx.encode(rng.uniform(-0.5, 0.5, slots))
    b1 = rng.uniform(-0.1, 0.1, slots)
    w2 = rng.uniform(-0.5, 0.5, slots)
    rlk = ctx.relin_keys(levels=[ctx.params.num_primes - lpm])

    def model(ev, x):
        hidden = ev.rescale(ev.multiply_plain(x, w1_pt), times=lpm)
        b1_pt = ctx.encoder.encode(b1, level=hidden.level, scale=hidden.scale)
        hidden = ev.add_plain(hidden, b1_pt)
        squared = ev.multiply_relin_rescale(hidden, hidden, rlk)
        if squared.level <= lpm:  # short quick-mode chains stop at (W1*x+b1)^2
            return (squared,)
        w2_pt = ctx.encoder.encode(w2, level=squared.level, scale=squared.scale)
        return (ev.rescale(ev.multiply_plain(squared, w2_pt), times=lpm),)

    spec = CtSpec(level=ctx.params.num_primes, scale=ctx.params.scale)
    return compile_fn(model, ctx.evaluator, [spec])


def _assert_bit_identical(got, want, what: str) -> None:
    for g_outs, w_outs in zip(got, want):
        for g, w in zip(g_outs, w_outs):
            assert g.scale == w.scale, f"{what}: scale diverged"
            for gp, wp in zip(g.parts, w.parts):
                assert np.array_equal(gp.data, wp.data), f"{what}: bits diverged"


def bench_serving(
    ctx, repeats: int, workers: list[int], n_requests: int, link_mbps: float
) -> dict:
    """Worker-pool scaling and streaming-vs-batch latency.

    Each request is charged the transfer time of its exact wire bytes
    (upload at the input level, download at the output level) over a
    ``link_mbps`` client link, slept inside the worker — so the pool's
    ability to hide client-link latency behind computation is measured,
    not assumed.  Sharded outputs are asserted bit-identical to the
    single-process batched executor on every pool size.
    """
    rng = np.random.default_rng(41)
    slots = ctx.params.slots
    plan = _inference_plan(ctx)
    features = [rng.uniform(-1, 1, slots) for _ in range(n_requests)]
    batches = [[ctx.encrypt(f)] for f in features]
    reference = plan.run_batch(batches)  # warms every fork-shared cache

    bits = wire_coeff_bits(ctx.basis)
    degree = ctx.params.degree
    upload_bytes = ciphertext_wire_bytes(degree, batches[0][0].level, 2, bits)
    download_bytes = sum(
        ciphertext_wire_bytes(degree, o.level, o.size, bits) for o in reference[0]
    )
    io_s = (upload_bytes + download_bytes) * 8.0 / (link_mbps * 1e6)

    results: dict[str, dict] = {
        "single_process_run_batch": _time(
            lambda: plan.run_batch(batches), repeats
        )
    }
    throughput: dict[int, float] = {}
    for w in workers:
        with ShardedExecutor(
            plan, w, modeled_request_io_s=io_s, warm_inputs=batches[0]
        ) as pool:
            sharded = pool.run_batch(batches, timeout=600)
            _assert_bit_identical(sharded, reference, f"sharded w={w}")
            row = _time(
                lambda: pool.run_batch(batches, timeout=600), repeats, warmup=0
            )
        results[f"sharded_run_batch_w{w}"] = row
        throughput[w] = n_requests / row["best_s"]

    # Streaming vs. materialized batch, both through the widest pool and
    # both covering the full encrypt -> evaluate -> decrypt pipeline.
    # The materialized path encrypts every request, evaluates the whole
    # batch, then decrypts every result — so each request's latency is
    # the entire makespan.  Streaming overlaps the phases across
    # requests and delivers each result as it finishes.
    w_max = max(workers)

    def encrypt(values):
        return [ctx.encrypt(values)]

    def decrypt(outputs):
        return ctx.decrypt_decode(outputs[0]).real

    with ShardedExecutor(
        plan, w_max, modeled_request_io_s=io_s, warm_inputs=batches[0]
    ) as pool:

        def materialized_pipeline():
            cts = [encrypt(f) for f in features]
            outs = pool.run_batch(cts, timeout=600)
            return [decrypt(o) for o in outs]

        results["materialized_pipeline"] = _time(materialized_pipeline, repeats)
    batch_makespan = results["materialized_pipeline"]["best_s"]

    async def run_stream():
        pool = ShardedExecutor(
            plan, w_max, modeled_request_io_s=io_s, warm_inputs=batches[0]
        )
        async with StreamingServer(pool, max_pending=2 * w_max) as server:
            await server.serve(features, encrypt=encrypt, decrypt=decrypt)
            return server.stats()

    stream_stats = asyncio.run(run_stream())

    policies = {
        r.policy: r.makespan_seconds
        for r in plan_schedule_comparison(plan, requests=n_requests)
    }

    base_w = min(workers)
    speedups = {
        f"serving_scale_x{w}": throughput[w] / throughput[base_w]
        for w in workers
        if w != base_w
    }
    speedups["streaming_vs_batch_mean_latency"] = (
        batch_makespan / stream_stats["latency"]["mean_s"]
    )
    return {
        "results": results,
        "throughput_rps": {str(w): throughput[w] for w in workers},
        "streaming": {
            "mean_latency_s": stream_stats["latency"]["mean_s"],
            "p95_latency_s": stream_stats["latency"]["p95_s"],
            "time_to_first_result_s": stream_stats["time_to_first_result_s"],
            "makespan_s": stream_stats["makespan_s"],
            "max_queue_depth": stream_stats["max_queue_depth"],
            "throughput_rps": stream_stats["throughput_rps"],
        },
        "batch_mean_latency_s": batch_makespan,
        "accel_policy_makespan_s": policies,
        "io_model": {
            "link_mbps": link_mbps,
            "upload_bytes": upload_bytes,
            "download_bytes": download_bytes,
            "modeled_io_s": io_s,
            "coeff_bits": bits,
        },
        "speedups_x": speedups,
    }


def _fabric_large_reply_roundtrips(
    use_shm: bool, reply_bytes: int, n_replies: int
) -> float:
    """Wall-clock for ``n_replies`` request→large-reply round trips to a
    forked echo worker, over a plain pipe or a shared-memory ring."""
    import multiprocessing as mp

    from repro.runtime.transport import ShmChannel, ShmRing

    fork = mp.get_context("fork")
    parent_conn, child_conn = fork.Pipe()
    ring = ShmRing(capacity=reply_bytes + 4096) if use_shm else None

    def echo_loop():
        parent_conn.close()
        ch = (
            ShmChannel(child_conn, ring, tx_half=1) if use_shm else child_conn
        )
        reply = b"\xa5" * reply_bytes
        while True:
            msg = ch.recv()
            if msg is None:
                break
            ch.send(("reply", reply))

    proc = fork.Process(target=echo_loop, daemon=True)
    proc.start()
    child_conn.close()
    ch = ShmChannel(parent_conn, ring, tx_half=0) if use_shm else parent_conn
    ch.send(("ping", 0))  # warm the worker before the timed window
    ch.recv()
    t0 = time.perf_counter()
    for i in range(n_replies):
        ch.send(("ping", i))
        tag, payload = ch.recv()
        assert tag == "reply" and len(payload) == reply_bytes
    elapsed = time.perf_counter() - t0
    ch.send(None)
    proc.join(timeout=30)
    ch.close()
    if ring is not None:
        ring.close()
    return elapsed


def _fabric_framing_drain(
    payloads: list[bytes], messages_per_frame: int
) -> tuple[float, int]:
    """Wall-clock to push ``payloads`` through a loopback socket as
    ``FBT1`` session frames of ``messages_per_frame`` messages each (the
    receiver decodes and counts every message), plus the frame count."""
    import socket
    import threading

    from repro.runtime.coordinator import (
        SESSION_BATCH_MAGIC,
        decode_batch,
        encode_batch,
        recv_session_frame,
        send_session_frame,
    )

    tx, rx = socket.socketpair()
    total = len(payloads)
    got = []

    def drain():
        while len(got) < total:
            tag, payload = recv_session_frame(rx)
            assert tag == SESSION_BATCH_MAGIC
            got.extend(decode_batch(payload))

    reader = threading.Thread(target=drain, daemon=True)
    reader.start()
    frames = 0
    t0 = time.perf_counter()
    for start in range(0, total, messages_per_frame):
        chunk = payloads[start : start + messages_per_frame]
        send_session_frame(
            tx, SESSION_BATCH_MAGIC, encode_batch(list(enumerate(chunk, start)))
        )
        frames += 1
    reader.join(timeout=30)
    elapsed = time.perf_counter() - t0
    assert len(got) == total and not reader.is_alive()
    tx.close()
    rx.close()
    return elapsed, frames


def _fabric_remote_attach(plan, batch, reference, repeats: int) -> dict:
    """Cold start vs. reattach against a genuinely remote worker host.

    Cold start: launch the ``repro.runtime.worker_host`` CLI from
    nothing and serve one request through it — process start, mutual
    auth, ``FHL1`` negotiation, ``FPL1`` plan upload, slot spawn.
    Reattach: a *second* coordinator dials the same (still-live) host —
    the host's fingerprint-keyed plan cache answers ``need_plan = 0``,
    so no plan crosses the wire.  Both runs hard-assert the
    ``plan_uploads`` counter (1 cold, 0 reattach — the
    reconnect-without-replan contract, checked deterministically rather
    than by timing) and bit-identical output; the gated
    ``fabric_remote_attach`` ratio is cold / reattach wall-clock.
    """
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def _launch(tmp):
        portfile = os.path.join(tmp, "port")
        try:
            os.unlink(portfile)
        except FileNotFoundError:
            pass
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.worker_host",
                "--bind",
                "127.0.0.1:0",
                "--authkey-file",
                os.path.join(tmp, "authkey"),
                "--port-file",
                portfile,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60
        while not os.path.exists(portfile):
            if proc.poll() is not None or time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError("bench worker host failed to start")
            time.sleep(0.02)
        with open(portfile) as fh:
            return proc, int(fh.read().strip())

    def _attach_and_serve(tmp, port, expect_uploads):
        cfg = ServingConfig(
            num_workers=1,
            transport="tcp",
            hosts=(f"tcp://127.0.0.1:{port}",),
            ship_plan=True,
            authkey_file=os.path.join(tmp, "authkey"),
        )
        with ShardedExecutor(plan, config=cfg) as pool:
            out = pool.run_batch([batch], timeout=600)
            uploads = pool.stats()["transport_stats"]["plan_uploads"]
        assert uploads == expect_uploads, (
            f"remote attach expected {expect_uploads} plan upload(s), "
            f"saw {uploads} — the fingerprint cache contract broke"
        )
        _assert_bit_identical(out, reference, "fabric remote attach")

    cold_samples, reattach_samples = [], []
    with tempfile.TemporaryDirectory() as tmp:
        with open(os.path.join(tmp, "authkey"), "wb") as fh:
            fh.write(os.urandom(32))
        for _ in range(repeats):
            t0 = time.perf_counter()
            proc, port = _launch(tmp)
            try:
                _attach_and_serve(tmp, port, 1)
                cold_samples.append(time.perf_counter() - t0)
                t1 = time.perf_counter()
                _attach_and_serve(tmp, port, 0)
                reattach_samples.append(time.perf_counter() - t1)
            finally:
                proc.terminate()
                proc.wait(timeout=30)
    cold_s, reattach_s = min(cold_samples), min(reattach_samples)
    assert cold_s / reattach_s > 1.0, (
        f"reattaching to a live host lost to a full cold start "
        f"({reattach_s:.4f}s vs {cold_s:.4f}s)"
    )
    return {"cold_s": cold_s, "reattach_s": reattach_s}


def bench_fabric(ctx, repeats: int, workers: int, n_requests: int, quick: bool) -> dict:
    """The cross-machine serving fabric: pipe vs. tcp vs. shm.

    Three measurements:

    * the same served batch through all three transports, each asserted
      bit-identical to the single-process replay (end-to-end transport
      overhead, reported as throughput, not gated — the loopback-TCP
      coordinator pays real framing/session costs by design);
    * large-reply shipping through the shared-memory ring vs. a plain
      pipe (forked echo worker, request→1 MiB-reply ping-pong) —
      **hard-asserts the ring wins** and gates the ratio as
      ``fabric_shm_large_reply``;
    * ``FBT1`` session framing batched vs. one-frame-per-message over a
      loopback socket — **hard-asserts batching wins** and gates the
      ratio as ``fabric_tcp_batched_framing``;
    * cold start vs. reattach against a CLI-spawned **remote** worker
      host — hard-asserts the reconnect-without-replan contract
      (``plan_uploads``: 1 cold, 0 reattach) and gates the cold /
      reattach wall-clock ratio as ``fabric_remote_attach``.
    """
    rng = np.random.default_rng(41)
    slots = ctx.params.slots
    plan = _inference_plan(ctx)
    batches = [
        [ctx.encrypt(rng.uniform(-1, 1, slots))] for _ in range(n_requests)
    ]
    reference = plan.run_batch(batches)  # warms every fork-shared cache

    results: dict[str, dict] = {}
    throughput: dict[str, float] = {}
    for transport in ("pipe", "shm", "tcp"):
        cfg = ServingConfig(num_workers=workers, transport=transport)
        with ShardedExecutor(plan, config=cfg) as pool:
            sharded = pool.run_batch(batches, timeout=600)
            _assert_bit_identical(sharded, reference, f"fabric {transport}")
            row = _time(
                lambda: pool.run_batch(batches, timeout=600), repeats, warmup=0
            )
        results[f"serve_{transport}_w{workers}"] = row
        throughput[transport] = n_requests / row["best_s"]

    # -- shared-memory ring vs. pipe on large replies ------------------
    reply_bytes = 1 << 20
    n_replies = 8 if quick else 32
    pipe_s = min(
        _fabric_large_reply_roundtrips(False, reply_bytes, n_replies)
        for _ in range(repeats)
    )
    shm_s = min(
        _fabric_large_reply_roundtrips(True, reply_bytes, n_replies)
        for _ in range(repeats)
    )
    results["large_reply_pipe"] = {"best_s": pipe_s, "mean_s": pipe_s}
    results["large_reply_shm_ring"] = {"best_s": shm_s, "mean_s": shm_s}
    shm_ratio = pipe_s / shm_s
    assert shm_ratio > 1.0, (
        f"shared-memory ring lost to the pipe on {reply_bytes}-byte replies "
        f"({shm_s:.4f}s vs {pipe_s:.4f}s)"
    )

    # -- batched vs. per-message FBT1 framing --------------------------
    n_messages = 256 if quick else 1024
    msg_bytes = 2048
    group = 32
    payloads = [rng.bytes(msg_bytes) for _ in range(n_messages)]
    per_msg_s, per_msg_frames = min(
        (_fabric_framing_drain(payloads, 1) for _ in range(repeats)),
        key=lambda r: r[0],
    )
    batched_s, batched_frames = min(
        (_fabric_framing_drain(payloads, group) for _ in range(repeats)),
        key=lambda r: r[0],
    )
    results["framing_per_message"] = {"best_s": per_msg_s, "mean_s": per_msg_s}
    results["framing_batched"] = {"best_s": batched_s, "mean_s": batched_s}
    framing_ratio = per_msg_s / batched_s
    assert framing_ratio > 1.0, (
        f"batched framing lost to per-message frames "
        f"({batched_s:.4f}s vs {per_msg_s:.4f}s)"
    )

    # -- remote-host cold start vs. reattach ---------------------------
    remote = _fabric_remote_attach(
        plan, batches[0], reference[:1], repeats
    )
    results["remote_cold_attach"] = {
        "best_s": remote["cold_s"],
        "mean_s": remote["cold_s"],
    }
    results["remote_reattach"] = {
        "best_s": remote["reattach_s"],
        "mean_s": remote["reattach_s"],
    }
    remote_ratio = remote["cold_s"] / remote["reattach_s"]

    return {
        "results": results,
        "throughput_rps": throughput,
        "large_reply": {
            "reply_bytes": reply_bytes,
            "replies": n_replies,
            "pipe_s": pipe_s,
            "shm_s": shm_s,
        },
        "framing": {
            "messages": n_messages,
            "message_bytes": msg_bytes,
            "messages_per_frame": group,
            "frames_batched": batched_frames,
            "frames_per_message": per_msg_frames,
        },
        "remote_attach": remote,
        "speedups_x": {
            "fabric_shm_large_reply": shm_ratio,
            "fabric_tcp_batched_framing": framing_ratio,
            "fabric_remote_attach": remote_ratio,
        },
    }


def bench_chaos(
    ctx, workers: int, n_requests: int, crash_rates: list[float], seed: int
) -> dict:
    """Recovery overhead of the fault-tolerant serving engine.

    One fresh pool per fault level (chaos decisions key on request ids,
    so reusing a pool would shift the injected schedule), each serving
    the same ``n_requests``-request batch.  At every level the run must
    complete with **zero lost and zero duplicated requests** and outputs
    byte-identical to the fault-free single-process replay — the bench
    hard-fails otherwise; the timing rows then quantify what the crash
    recovery (worker respawn + retry) costs.

    Gated ratios (``chaos_recovery_efficiency_p<pct>``): fault-free
    wall-clock / faulted wall-clock, higher is better (1.0 = recovery is
    free).  The 10% level additionally hard-asserts the acceptance bound
    ``faulted <= 2 x fault-free``.
    """
    from repro.runtime import FaultPlan, FaultPolicy

    rng = np.random.default_rng(43)
    slots = ctx.params.slots
    plan = _inference_plan(ctx)
    batches = [[ctx.encrypt(rng.uniform(-1, 1, slots))] for _ in range(n_requests)]
    reference = plan.run_batch(batches)  # warms every fork-shared cache

    # Generous budgets: the bench measures recovery cost, so no request
    # may be lost to a retry/crash budget at the rates swept here.
    policy = FaultPolicy(
        max_attempts=10,
        backoff_base_s=0.01,
        backoff_max_s=0.1,
        crash_loop_threshold=100,
    )

    def run_level(crash_rate: float) -> tuple[float, dict]:
        chaos = (
            FaultPlan(seed, crash_rate=crash_rate) if crash_rate > 0 else None
        )
        with ShardedExecutor(
            plan,
            workers,
            chaos=chaos,
            policy=policy,
            max_crash_respawns=10_000,
            warm_inputs=batches[0],
        ) as pool:
            t0 = time.perf_counter()
            outs = pool.run_batch(batches, timeout=600)
            elapsed = time.perf_counter() - t0
            stats = pool.stats()
        label = f"{crash_rate:.0%} crash rate"
        assert len(outs) == n_requests, f"{label}: lost/duplicated requests"
        assert stats["completed"] == n_requests, f"{label}: incomplete batch"
        assert stats["errors"] == 0, f"{label}: requests failed"
        _assert_bit_identical(outs, reference, f"chaos {label}")
        return elapsed, stats

    results: dict[str, dict] = {}
    fault_free_s, _ = run_level(0.0)
    results["chaos_fault_free"] = {"best_s": fault_free_s, "mean_s": fault_free_s}
    speedups: dict[str, float] = {}
    recovery = {}
    for rate in crash_rates:
        faulted_s, stats = run_level(rate)
        pct = int(round(rate * 100))
        results[f"chaos_crash_p{pct}"] = {
            "best_s": faulted_s,
            "mean_s": faulted_s,
        }
        speedups[f"chaos_recovery_efficiency_p{pct}"] = fault_free_s / faulted_s
        recovery[f"p{pct}"] = {
            "worker_crashes": stats["worker_crashes"],
            "respawns": stats["respawns"],
            "retries": stats["retries"],
            "overhead_x": faulted_s / fault_free_s,
        }
        if pct == 10:
            assert faulted_s <= 2.0 * fault_free_s, (
                f"10% crash-rate batch took {faulted_s:.3f}s, more than 2x "
                f"the fault-free {fault_free_s:.3f}s"
            )
    return {
        "results": results,
        "fault_free_s": fault_free_s,
        "recovery": recovery,
        "speedups_x": speedups,
    }


def bench_telemetry(ctx, repeats: int, workers: int, n_requests: int) -> dict:
    """Observability overhead: the same work under three telemetry modes.

    * ``off``            — tracing disabled (the default state);
    * ``disabled_hooks`` — tracing enabled with ``sample_rate=0.0``, so
      every instrumentation site is reached but no span is recorded;
    * ``on``             — tracing enabled at ``sample_rate=1.0``, full
      span capture.

    Two workloads: the fused BSGS replay (single-process hot loop, where
    per-step span hooks would hurt most) and a ``workers``-worker sharded
    serve (where TRC1 frames ride the worker pipe).  The fused replay is
    measured best-of-N with the three modes *interleaved* round-robin —
    each round times off, then disabled, then on — so clock drift
    (thermal, cache, noisy neighbors) lands on every mode equally instead
    of masquerading as instrumentation overhead; the acceptance bounds
    are hard-asserted in-run: disabled hooks cost <= 2% and full tracing
    <= 10% over off.  The serving runs (one fresh pool per mode,
    wall-clock once per mode) get a looser 1.5x sanity bound;
    multi-process wall-clock is too noisy for a 2% gate.

    Gated ratios (``telemetry_*_efficiency``): off / mode wall-clock,
    higher is better (1.0 = instrumentation is free).
    """
    from repro.runtime import get_telemetry

    telemetry = get_telemetry()
    slots = ctx.params.slots
    lvl = ctx.params.num_primes
    rng = np.random.default_rng(47)
    fused_repeats = max(repeats, 5)

    matrix = rng.uniform(-1, 1, (slots, slots)) + 1j * rng.uniform(
        -1, 1, (slots, slots)
    )
    hlt = HomomorphicLinearTransform(ctx, matrix, level=lvl)
    gks = ctx.galois_keys(hlt.required_rotations(), levels=[lvl])
    batch = [[ctx.encrypt(rng.uniform(-1, 1, slots))] for _ in range(RUNTIME_BATCH)]
    plan = hlt.plan_for(batch[0][0].scale, gks)
    plan.run_batch(batch[:1], fused=True)  # arena + fused closures build here

    serve_plan = _inference_plan(ctx)
    serve_batches = [
        [ctx.encrypt(rng.uniform(-1, 1, slots))] for _ in range(n_requests)
    ]

    def fused_replay():
        plan.run_batch(batch, fused=True)

    def serve_once() -> float:
        with ShardedExecutor(
            serve_plan, workers, warm_inputs=serve_batches[0]
        ) as pool:
            t0 = time.perf_counter()
            pool.run_batch(serve_batches, timeout=600)
            return time.perf_counter() - t0

    fused_modes = (
        ("off", telemetry.disable),
        ("disabled_hooks", lambda: telemetry.enable(sample_rate=0.0)),
        ("on", lambda: telemetry.enable(sample_rate=1.0)),
    )
    results: dict[str, dict] = {}
    span_counts: dict[str, int] = {}
    try:
        telemetry.disable()
        telemetry.reset()
        fused_replay()  # shared warmup outside the timed rounds
        samples: dict[str, list[float]] = {mode: [] for mode, _ in fused_modes}
        for _ in range(fused_repeats):
            for mode, arm in fused_modes:
                arm()
                t0 = time.perf_counter()
                fused_replay()
                samples[mode].append(time.perf_counter() - t0)
                telemetry.disable()
        span_counts["on"] = len(telemetry.spans())
        for mode, rows in samples.items():
            results[f"telemetry_fused_{mode}"] = {
                "best_s": min(rows),
                "mean_s": sum(rows) / len(rows),
            }

        telemetry.reset()
        serve_s = serve_once()
        results["telemetry_serving_off"] = {"best_s": serve_s, "mean_s": serve_s}
        for mode, arm in fused_modes[1:]:
            telemetry.reset()
            arm()
            serve_s = serve_once()
            results[f"telemetry_serving_{mode}"] = {
                "best_s": serve_s,
                "mean_s": serve_s,
            }
            if mode == "disabled_hooks":
                span_counts[mode] = len(telemetry.spans())
            telemetry.disable()
    finally:
        telemetry.disable()
        telemetry.reset()

    fused_off = results["telemetry_fused_off"]["best_s"]
    fused_disabled = results["telemetry_fused_disabled_hooks"]["best_s"]
    fused_on = results["telemetry_fused_on"]["best_s"]
    assert fused_disabled <= 1.02 * fused_off, (
        f"disabled-hooks fused replay {fused_disabled:.4f}s exceeds 2% over "
        f"the telemetry-off baseline {fused_off:.4f}s"
    )
    assert fused_on <= 1.10 * fused_off, (
        f"full-tracing fused replay {fused_on:.4f}s exceeds 10% over the "
        f"telemetry-off baseline {fused_off:.4f}s"
    )
    serve_off = results["telemetry_serving_off"]["best_s"]
    for mode, _ in fused_modes[1:]:
        serve_mode = results[f"telemetry_serving_{mode}"]["best_s"]
        assert serve_mode <= 1.5 * serve_off, (
            f"serving with telemetry {mode} took {serve_mode:.3f}s, more "
            f"than 1.5x the telemetry-off {serve_off:.3f}s"
        )

    speedups = {
        "telemetry_fused_disabled_efficiency": fused_off / fused_disabled,
        "telemetry_fused_enabled_efficiency": fused_off / fused_on,
        "telemetry_serving_disabled_efficiency": serve_off
        / results["telemetry_serving_disabled_hooks"]["best_s"],
        "telemetry_serving_enabled_efficiency": serve_off
        / results["telemetry_serving_on"]["best_s"],
    }
    overhead = {
        "fused_disabled_x": fused_disabled / fused_off,
        "fused_enabled_x": fused_on / fused_off,
        "spans_recorded_on": span_counts.get("on", 0),
        "spans_recorded_disabled": span_counts.get("disabled_hooks", 0),
    }
    return {"results": results, "overhead": overhead, "speedups_x": speedups}


# ---------------------------------------------------------------------------


def _finalize(payload: dict, path: Path, append: bool) -> None:
    """Write a bench JSON, accumulating the per-run trajectory.

    With ``append`` the history already in the file is preserved and
    this run appended; otherwise the trajectory restarts at this run.
    """
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "meta": payload["meta"],
        "speedups_x": payload["speedups_x"],
    }
    history: list = []
    if append and path.exists():
        try:
            history = json.loads(path.read_text()).get("trajectory", [])
        except (json.JSONDecodeError, OSError):
            history = []
    full = {**payload, "trajectory": [*history, entry]}
    path.write_text(json.dumps(full, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path} (trajectory: {len(full['trajectory'])} run(s))")


def _print_section(title: str, results: dict, speedups: dict, legend: str) -> None:
    width = max(len(k) for k in [*results, *speedups])
    print(title)
    for name, row in results.items():
        print(f"  {name:<{width}}  best {row['best_s']*1e3:9.3f} ms")
    print(f"speedups ({legend}):")
    for name, x in speedups.items():
        print(f"  {name:<{width}}  {x:5.2f}x")


KNOWN_SECTIONS = (
    "core",
    "runtime",
    "serving",
    "planio",
    "chaos",
    "telemetry",
    "fabric",
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke sizes")
    ap.add_argument(
        "--sections",
        default="core,runtime,serving,planio,chaos,telemetry,fabric",
        help=f"comma list of sections to run: {', '.join(KNOWN_SECTIONS)}",
    )
    ap.add_argument("--out", default="BENCH_keyswitch.json", help="output JSON path")
    ap.add_argument(
        "--runtime-out",
        default="BENCH_runtime.json",
        help="runtime-section output JSON path",
    )
    ap.add_argument(
        "--serving-out",
        default="BENCH_serving.json",
        help="serving-section output JSON path",
    )
    ap.add_argument(
        "--planio-out",
        default="BENCH_planio.json",
        help="planio-section output JSON path",
    )
    ap.add_argument(
        "--serving-workers",
        default="1,2,4",
        help="comma list of pool sizes for the serving scaling sweep",
    )
    ap.add_argument(
        "--chaos-out",
        default="BENCH_chaos.json",
        help="chaos-section output JSON path",
    )
    ap.add_argument(
        "--telemetry-out",
        default="BENCH_telemetry.json",
        help="telemetry-section output JSON path",
    )
    ap.add_argument(
        "--telemetry-workers",
        type=int,
        default=2,
        help="pool size for the telemetry serving overhead bench",
    )
    ap.add_argument(
        "--telemetry-requests",
        type=int,
        default=None,
        help="requests per telemetry serving measurement "
        "(default 8 quick / 16 full)",
    )
    ap.add_argument(
        "--fabric-out",
        default="BENCH_fabric.json",
        help="fabric-section output JSON path",
    )
    ap.add_argument(
        "--fabric-workers",
        type=int,
        default=2,
        help="pool size for the fabric transport benches",
    )
    ap.add_argument(
        "--fabric-requests",
        type=int,
        default=None,
        help="requests per fabric transport measurement "
        "(default 8 quick / 16 full)",
    )
    ap.add_argument(
        "--chaos-workers",
        type=int,
        default=2,
        help="pool size for the chaos recovery bench",
    )
    ap.add_argument(
        "--chaos-requests",
        type=int,
        default=None,
        help="requests per chaos measurement (default 16 quick / 64 full)",
    )
    ap.add_argument(
        "--chaos-seed",
        type=int,
        default=1,
        help="fault-injection seed for the chaos bench",
    )
    ap.add_argument(
        "--serving-requests",
        type=int,
        default=None,
        help="requests per serving measurement (default 8 quick / 16 full)",
    )
    ap.add_argument(
        "--link-mbps",
        type=float,
        default=10.0,
        help="modeled client-link bandwidth for per-request transfer time",
    )
    ap.add_argument(
        "--append-trajectory",
        dest="append_trajectory",
        action="store_true",
        default=True,
        help="(default) preserve the bench history in the output files and "
        "append this run",
    )
    ap.add_argument(
        "--reset-trajectory",
        dest="append_trajectory",
        action="store_false",
        help="restart the bench history at this run (drops the committed "
        "trajectory the CI regression gate matches against)",
    )
    ap.add_argument("--degree", type=int, default=None, help="override ring degree")
    ap.add_argument("--primes", type=int, default=None, help="override chain length")
    args = ap.parse_args(argv)

    sections = {s.strip() for s in args.sections.split(",") if s.strip()}
    unknown = sections - set(KNOWN_SECTIONS)
    if unknown:
        ap.error(
            f"unknown section(s): {', '.join(sorted(unknown))}; "
            f"known sections: {', '.join(KNOWN_SECTIONS)}"
        )
    if not sections:
        ap.error(
            f"no sections selected; known sections: {', '.join(KNOWN_SECTIONS)}"
        )

    degree = args.degree or (256 if args.quick else 1024)
    primes = args.primes or (6 if args.quick else 10)
    repeats = 3 if args.quick else 5

    ctx = CkksContext.create(toy_params(degree=degree, num_primes=primes), seed=2025)
    meta_common = {
        "degree": degree,
        "num_primes": primes,
        "backend": default_backend_name(),
        "quick": bool(args.quick),
        "repeats": repeats,
    }

    if "core" in sections:
        results: dict[str, dict] = {}
        results.update(bench_kernels(ctx, repeats))
        results.update(bench_key_switch(ctx, repeats))
        results.update(bench_rotate(ctx, repeats))
        results.update(bench_bsgs(ctx, repeats))
        if not args.quick:
            results.update(bench_bootstrap_step(max(1, repeats - 3)))

        def ratio(slow: str, fast: str) -> float:
            return results[slow]["best_s"] / results[fast]["best_s"]

        speedups = {
            "key_switch": ratio("key_switch_loop", "key_switch_batched"),
            "rotate": ratio("rotate_reference", "rotate"),
            f"rotate_hoisted_x{HOIST_BATCH}": ratio(
                f"rotate_x{HOIST_BATCH}_reference", f"rotate_x{HOIST_BATCH}_hoisted"
            ),
            "bsgs_matmul": ratio("bsgs_matmul_reference", "bsgs_matmul_hoisted"),
        }
        payload = {
            "meta": {"bench": "keyswitch-engine", **meta_common},
            "results_s": results,
            "speedups_x": speedups,
        }
        _print_section(
            f"key-switch engine bench  (N=2^{degree.bit_length()-1}, L={primes}, "
            f"backend={meta_common['backend']})",
            results,
            speedups,
            "reference / engine",
        )
        _finalize(payload, Path(args.out), args.append_trajectory)

    if "runtime" in sections:
        rt_results, rt_fused_stats = bench_runtime(ctx, repeats)

        def rt_ratio(slow: str, fast: str) -> float:
            return rt_results[slow]["best_s"] / rt_results[fast]["best_s"]

        rt_speedups = {
            "bsgs_planned": rt_ratio("bsgs_eager_dispatch", "bsgs_planned"),
            "bsgs_batched_replay": rt_ratio(
                "bsgs_eager_dispatch", "bsgs_batched_replay_per_ct"
            ),
            "bsgs_fused_replay": rt_ratio(
                "bsgs_eager_dispatch", "bsgs_fused_replay_per_ct"
            ),
            "poly3_planned": rt_ratio("poly3_eager_dispatch", "poly3_planned"),
            "poly3_batched_replay": rt_ratio(
                "poly3_eager_dispatch", "poly3_batched_replay_per_ct"
            ),
            "poly3_fused_replay": rt_ratio(
                "poly3_eager_dispatch", "poly3_fused_replay_per_ct"
            ),
        }
        rt_payload = {
            "meta": {"bench": "lazy-runtime", **meta_common, "batch": RUNTIME_BATCH},
            "results_s": rt_results,
            "fused_stats": rt_fused_stats,
            "speedups_x": rt_speedups,
        }
        _print_section(
            f"\nlazy-runtime bench  (N=2^{degree.bit_length()-1}, L={primes}, "
            f"batch={RUNTIME_BATCH})",
            rt_results,
            rt_speedups,
            "eager dispatch / runtime",
        )
        _finalize(rt_payload, Path(args.runtime_out), args.append_trajectory)

    if "serving" in sections:
        workers = sorted(
            {int(w) for w in args.serving_workers.split(",") if w.strip()}
        )
        n_requests = args.serving_requests or (8 if args.quick else 16)
        serving = bench_serving(ctx, repeats, workers, n_requests, args.link_mbps)
        sv_payload = {
            "meta": {
                "bench": "serving-engine",
                **meta_common,
                "requests": n_requests,
                "workers": workers,
                "link_mbps": args.link_mbps,
            },
            **{k: v for k, v in serving.items() if k != "results"},
            "results_s": serving["results"],
            "speedups_x": serving["speedups_x"],
        }
        _print_section(
            f"\nserving-engine bench  (N=2^{degree.bit_length()-1}, L={primes}, "
            f"{n_requests} requests, workers={workers}, "
            f"modeled link {args.link_mbps:g} Mbps "
            f"-> {serving['io_model']['modeled_io_s']*1e3:.1f} ms/request)",
            serving["results"],
            serving["speedups_x"],
            "scaling vs smallest pool; batch latency / streaming latency",
        )
        st = serving["streaming"]
        print(
            f"  streaming: mean latency {st['mean_latency_s']*1e3:.1f} ms, "
            f"p95 {st['p95_latency_s']*1e3:.1f} ms, first result "
            f"{st['time_to_first_result_s']*1e3:.1f} ms, max queue depth "
            f"{st['max_queue_depth']}, {st['throughput_rps']:.1f} req/s"
        )
        print(
            "  dual-RSC policies (modeled): "
            + ", ".join(
                f"{p} {s*1e3:.3f} ms"
                for p, s in sorted(
                    serving["accel_policy_makespan_s"].items(), key=lambda kv: kv[1]
                )
            )
        )
        _finalize(sv_payload, Path(args.serving_out), args.append_trajectory)

    if "chaos" in sections:
        chaos_requests = args.chaos_requests or (16 if args.quick else 64)
        crash_rates = [0.05, 0.10, 0.20]
        chaos = bench_chaos(
            ctx, args.chaos_workers, chaos_requests, crash_rates, args.chaos_seed
        )
        ch_payload = {
            "meta": {
                "bench": "chaos-recovery",
                **meta_common,
                "requests": chaos_requests,
                "workers": args.chaos_workers,
                "crash_rates": crash_rates,
                "chaos_seed": args.chaos_seed,
            },
            **{k: v for k, v in chaos.items() if k != "results"},
            "results_s": chaos["results"],
            "speedups_x": chaos["speedups_x"],
        }
        _print_section(
            f"\nchaos-recovery bench  (N=2^{degree.bit_length()-1}, L={primes}, "
            f"{chaos_requests} requests, {args.chaos_workers} workers, "
            f"seed {args.chaos_seed}; surviving outputs asserted "
            "bit-identical, zero lost/duplicated)",
            chaos["results"],
            chaos["speedups_x"],
            "fault-free / faulted wall-clock (1.0 = recovery is free)",
        )
        for level, row in chaos["recovery"].items():
            print(
                f"  {level}: {row['worker_crashes']} crashes, "
                f"{row['respawns']} respawns, {row['retries']} retries, "
                f"overhead {row['overhead_x']:.2f}x"
            )
        _finalize(ch_payload, Path(args.chaos_out), args.append_trajectory)

    if "telemetry" in sections:
        tel_requests = args.telemetry_requests or (8 if args.quick else 16)
        tel = bench_telemetry(ctx, repeats, args.telemetry_workers, tel_requests)
        tel_payload = {
            "meta": {
                "bench": "telemetry-overhead",
                **meta_common,
                "requests": tel_requests,
                "workers": args.telemetry_workers,
                "batch": RUNTIME_BATCH,
            },
            **{k: v for k, v in tel.items() if k != "results"},
            "results_s": tel["results"],
            "speedups_x": tel["speedups_x"],
        }
        _print_section(
            f"\ntelemetry-overhead bench  (N=2^{degree.bit_length()-1}, "
            f"L={primes}, fused batch={RUNTIME_BATCH}, {tel_requests} "
            f"requests on {args.telemetry_workers} workers; in-run bounds: "
            "disabled hooks <=2%, full tracing <=10% on fused replay)",
            tel["results"],
            tel["speedups_x"],
            "telemetry off / mode wall-clock (1.0 = instrumentation is free)",
        )
        ov = tel["overhead"]
        print(
            f"  fused overhead: disabled {ov['fused_disabled_x']:.3f}x, "
            f"enabled {ov['fused_enabled_x']:.3f}x "
            f"({ov['spans_recorded_on']} spans recorded when on, "
            f"{ov['spans_recorded_disabled']} when sampled out)"
        )
        _finalize(tel_payload, Path(args.telemetry_out), args.append_trajectory)

    if "fabric" in sections:
        fabric_requests = args.fabric_requests or (8 if args.quick else 16)
        fabric = bench_fabric(
            ctx, repeats, args.fabric_workers, fabric_requests, args.quick
        )
        fb_payload = {
            "meta": {
                "bench": "serving-fabric",
                **meta_common,
                "requests": fabric_requests,
                "workers": args.fabric_workers,
            },
            **{k: v for k, v in fabric.items() if k != "results"},
            "results_s": fabric["results"],
            "speedups_x": fabric["speedups_x"],
        }
        lr = fabric["large_reply"]
        fr = fabric["framing"]
        _print_section(
            f"\nserving-fabric bench  (N=2^{degree.bit_length()-1}, L={primes}, "
            f"{fabric_requests} requests on {args.fabric_workers} workers; "
            "all transports asserted bit-identical; shm ring and batched "
            "framing asserted to win their micro-benches)",
            fabric["results"],
            fabric["speedups_x"],
            "pipe / shm large-reply time; per-message / batched framing time",
        )
        print(
            "  transports: "
            + ", ".join(
                f"{t} {rps:.1f} req/s"
                for t, rps in fabric["throughput_rps"].items()
            )
        )
        print(
            f"  large replies: {lr['replies']} x {lr['reply_bytes']>>20} MiB — "
            f"pipe {lr['pipe_s']*1e3:.1f} ms, shm ring {lr['shm_s']*1e3:.1f} ms"
        )
        print(
            f"  framing: {fr['messages']} x {fr['message_bytes']} B — "
            f"{fr['frames_per_message']} frames per-message vs "
            f"{fr['frames_batched']} batched "
            f"({fr['messages_per_frame']} msgs/frame)"
        )
        ra = fabric["remote_attach"]
        print(
            f"  remote host: cold start {ra['cold_s']*1e3:.0f} ms vs "
            f"reattach {ra['reattach_s']*1e3:.0f} ms "
            "(plan_uploads asserted 1 cold / 0 reattach)"
        )
        _finalize(fb_payload, Path(args.fabric_out), args.append_trajectory)

    if "planio" in sections:
        planio = bench_plan_io(ctx, repeats)
        pio_payload = {
            "meta": {"bench": "plan-io", **meta_common},
            **{k: v for k, v in planio.items() if k != "results"},
            "results_s": planio["results"],
        }
        _print_section(
            f"\nplan-io bench  (N=2^{degree.bit_length()-1}, L={primes}, "
            f"BSGS program: {planio['nodes']} nodes, "
            f"{planio['constants']} constants, "
            f"{planio['artifact_bytes']/1e6:.2f} MB artifact)",
            planio["results"],
            planio["speedups_x"],
            "cold compile / artifact path",
        )
        _finalize(pio_payload, Path(args.planio_out), args.append_trajectory)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
