"""Fig. 1 — client vs server execution-time breakdown (ResNet20-FHE)."""

from __future__ import annotations

from repro.experiments import fig1_breakdown


def test_fig1_breakdown(benchmark, report):
    rows = benchmark(fig1_breakdown)
    lines = [
        f"{r.platform:32s} client {r.client_share*100:5.1f}%  "
        f"server {r.server_share*100:5.1f}%  total {r.total_seconds*1e3:10.2f} ms"
        for r in rows
    ]
    lines.append("paper anchor: [34] client share = 69.4%, server = 30.6%")
    report("Fig. 1: execution-time breakdown", lines)

    sota = next(r for r in rows if r.platform.startswith("[34]"))
    assert abs(sota.client_share - 0.694) < 0.01
