"""Fig. 5(b) — lanes-per-PNL sweep: the LPDDR5 knee at 8 lanes."""

from __future__ import annotations

from repro.experiments import fig5b_lane_sweep, knee_lanes


def test_fig5b_lane_sweep(benchmark, report):
    points = benchmark(fig5b_lane_sweep)
    lines = [
        f"P={p.lanes:3d}: latency {p.latency_ms:7.3f} ms   "
        f"throughput {p.throughput:7.0f} ct/s   bound by {p.result.bound_by}"
        for p in points
    ]
    knee = knee_lanes(points)
    lines.append(f"knee (no further gain): {knee} lanes (paper: 8, LPDDR5-capped)")
    report("Fig. 5(b): lane sweep", lines)

    assert knee == 8
    lat = [p.result.latency_cycles for p in points]
    assert all(a >= b for a, b in zip(lat, lat[1:]))
