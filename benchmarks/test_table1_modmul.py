"""Table I — modular multiplier area, plus real software timing of the
three reduction algorithms (the hardware table's software shadow).

Two timing views: the scalar Python-int reducers (one residue at a time,
as the hardware datapath computes) and the vectorized numpy backends
(``repro.nums.kernels``) the library actually runs on."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.experiments import table1_modmul_areas
from repro.nums import BarrettReducer, MontgomeryReducer, NttFriendlyMontgomeryReducer
from repro.nums.kernels import available_backends, make_kernel
from repro.nums.primegen import find_primes

PRIME = find_primes(36, 1 << 16)[0]


def test_table1_areas(benchmark, report):
    rows = benchmark(table1_modmul_areas)
    lines = [
        f"{r.algorithm:14s} {r.area_um2:9.0f} um^2 "
        f"(paper {r.paper_area_um2}, {r.relative_error*100:+.2f}%)  "
        f"{r.pipeline_stages} stages"
        for r in rows
    ]
    nttf = next(r for r in rows if r.algorithm == "ntt_friendly")
    barrett = next(r for r in rows if r.algorithm == "barrett")
    mont = next(r for r in rows if r.algorithm == "montgomery")
    lines.append(
        f"reductions: vs Barrett {100*(1-nttf.area_um2/barrett.area_um2):.1f}% "
        f"(paper 67.7%), vs Montgomery {100*(1-nttf.area_um2/mont.area_um2):.1f}% "
        "(paper 41.2%)"
    )
    report("Table I: modular multiplier area", lines)
    for r in rows:
        assert abs(r.relative_error) < 0.005


def _mul_loop(reducer_mul, pairs):
    acc = 0
    for a, b in pairs:
        acc ^= reducer_mul(a, b)
    return acc


def _pairs(n=2000):
    rnd = random.Random(0)
    return [(rnd.randrange(PRIME.value), rnd.randrange(PRIME.value)) for _ in range(n)]


def test_barrett_software_timing(benchmark):
    red = BarrettReducer.for_modulus(PRIME.value)
    benchmark(_mul_loop, red.mul, _pairs())


def test_montgomery_software_timing(benchmark):
    red = MontgomeryReducer.for_modulus(PRIME.value)
    pairs = [(red.to_montgomery(a), red.to_montgomery(b)) for a, b in _pairs()]
    benchmark(_mul_loop, red.mul, pairs)


def test_ntt_friendly_montgomery_software_timing(benchmark):
    red = NttFriendlyMontgomeryReducer.for_prime(PRIME)
    pairs = [(red.to_montgomery(a), red.to_montgomery(b)) for a, b in _pairs()]
    benchmark(_mul_loop, red.mul, pairs)


@pytest.mark.parametrize("backend", available_backends())
def test_vectorized_backend_timing(benchmark, backend):
    """The same Table I algorithms as whole-array numpy kernels."""
    kern = make_kernel(PRIME.value, backend)
    rnd = np.random.default_rng(0)
    a = rnd.integers(0, PRIME.value, 1 << 14).astype(np.uint64)
    b = rnd.integers(0, PRIME.value, 1 << 14).astype(np.uint64)
    benchmark(kern.mul, a, b)
