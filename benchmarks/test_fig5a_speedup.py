"""Fig. 5(a) — execution time and speed-up vs CPU and prior accelerators.

Also times our *actual* Python CKKS implementation at a reduced ring as an
independent sanity check that a software client really does sit orders of
magnitude above the modeled accelerator.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import CkksContext, toy_params
from repro.experiments import fig5a_speedups
from repro.experiments.fig5 import (
    PAPER_SPEEDUP_CPU_DEC,
    PAPER_SPEEDUP_CPU_ENC,
    PAPER_SPEEDUP_SOTA_DEC,
    PAPER_SPEEDUP_SOTA_ENC,
)


def test_fig5a_speedups(benchmark, report):
    rows, speedups = benchmark(fig5a_speedups)
    lines = [
        f"{r.platform:28s} enc+enc {r.encode_encrypt_s*1e3:9.3f} ms   "
        f"dec+dec {r.decode_decrypt_s*1e3:8.3f} ms"
        for r in rows
    ]
    lines += [
        f"speed-up vs CPU:  enc {speedups['cpu_enc']:.0f}x (paper {PAPER_SPEEDUP_CPU_ENC:.0f}), "
        f"dec {speedups['cpu_dec']:.0f}x (paper {PAPER_SPEEDUP_CPU_DEC:.0f})",
        f"speed-up vs [34]: enc {speedups['sota_enc']:.0f}x (paper {PAPER_SPEEDUP_SOTA_ENC:.0f}), "
        f"dec {speedups['sota_dec']:.0f}x (paper {PAPER_SPEEDUP_SOTA_DEC:.0f})",
    ]
    report("Fig. 5(a): execution time and speed-up", lines)

    assert abs(speedups["cpu_enc"] - PAPER_SPEEDUP_CPU_ENC) / PAPER_SPEEDUP_CPU_ENC < 0.03
    assert abs(speedups["cpu_dec"] - PAPER_SPEEDUP_CPU_DEC) / PAPER_SPEEDUP_CPU_DEC < 0.03


def test_software_client_wall_clock(benchmark, report):
    """Wall-clock encode+encrypt of our own Python client at N = 2^12."""
    ctx = CkksContext.create(toy_params(degree=1 << 12, num_primes=8), seed=3)
    msg = np.linspace(-1, 1, ctx.params.slots)

    result = benchmark(lambda: ctx.encrypt(msg))
    assert result.level == 8
    report(
        "Fig. 5(a) sanity: pure-software client (this library)",
        [
            "see pytest-benchmark table: encode+encrypt @ N=2^12, L=8 "
            "takes milliseconds-to-tens-of-ms in software — consistent with "
            "the CPU bar sitting ~3 orders above the accelerator model",
        ],
    )
