"""Table II — area/power breakdown of the full chip."""

from __future__ import annotations

from repro.accel import calibration as cal
from repro.experiments import table2_breakdown


def test_table2_breakdown(benchmark, report):
    bd = benchmark(table2_breakdown)
    lines = []
    for row, paper_area in cal.TABLE2_AREA_MM2.items():
        area = bd.area_mm2[row]
        power = bd.power_w.get(row, float("nan"))
        paper_power = cal.TABLE2_POWER_W.get(row, float("nan"))
        lines.append(
            f"{row:28s} area {area:7.3f} mm^2 (paper {paper_area:7.3f})   "
            f"power {power:6.3f} W (paper {paper_power:6.3f})"
        )
    area7, power7 = bd.scaled_to_7nm()
    lines.append(f"scaled to 7 nm: {area7:.2f} mm^2, {power7:.2f} W (paper ~0.9, ~2.1)")
    report("Table II: area and power breakdown (28 nm)", lines)

    assert abs(bd.total_area - 28.638) / 28.638 < 0.02
    assert abs(bd.total_power - 5.654) / 5.654 < 0.03
