"""Section IV-B — client memory footprint and the usable-prime pool."""

from __future__ import annotations

from repro.experiments import sec4b_footprint, sec4b_prime_count
from repro.transforms.twiddle import TwiddleMemoryModel


def test_sec4b_footprint(benchmark, report):
    fp = benchmark(sec4b_footprint)
    mib = 2**20
    tw = TwiddleMemoryModel(degree=1 << 16, num_primes=24, coeff_bits=44)
    lines = [
        f"public key:     {fp.public_key_bytes/mib:6.2f} MiB (paper 16.5 MB)",
        f"masks + errors: {fp.masks_errors_bytes/mib:6.2f} MiB (paper 8.25 MB)",
        f"twiddle tables: {fp.twiddle_bytes/mib:6.2f} MiB (paper 8.25 MB)",
        f"with on-chip generation: {fp.total_with_generation} bytes "
        f"({fp.seed_bytes} B PRNG seed + {fp.twiddle_seed_bytes} B TF seeds)",
        f"storage reduction: {fp.reduction_ratio*100:.3f}% (paper >99.9%)",
        f"TF-seed memory fits hardware budget: {tw.seed_bytes} B <= 26.4 KB",
    ]
    report("Section IV-B: client memory footprint", lines)
    assert fp.public_key_bytes == int(16.5 * mib)
    assert fp.reduction_ratio > 0.999


def test_sec4b_prime_pool(benchmark, report):
    count = benchmark.pedantic(sec4b_prime_count, rounds=1, iterations=1)
    report(
        "Section IV-A: NTT-friendly prime pool",
        [f"36-bit primes usable at N=2^16: {count} (paper: 443 across 32-36 bits)"],
    )
    assert 400 <= count <= 500
