"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablations (Figs. 5b and 6b), these quantify:
single vs double RSC, seed-shared ciphertext output, under-sized on-chip
generators, double-scale vs wide-prime accounting, and the radix choice.
"""

from __future__ import annotations

from dataclasses import replace

from repro.accel.config import abc_fhe
from repro.accel.engines import GeneratorModel
from repro.accel.simulator import ClientSimulator
from repro.accel.workload import ClientWorkload
from repro.transforms.dataflow import pipeline_multipliers

WORKLOAD = ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)


def _latency(config) -> float:
    return ClientSimulator(config, WORKLOAD).encode_encrypt().latency_seconds


def test_ablation_rsc_count(benchmark, report):
    one = benchmark.pedantic(
        _latency, args=(replace(abc_fhe(), num_rscs=1),), rounds=1, iterations=1
    )
    two = _latency(abc_fhe())
    report(
        "Ablation: RSC count",
        [
            f"1 RSC: {one*1e6:7.1f} us   2 RSC: {two*1e6:7.1f} us   "
            f"gain {one/two:.2f}x (second core doubles transform engines)"
        ],
    )
    assert one > two


def test_ablation_seed_shared_output(benchmark, report):
    seeded = benchmark.pedantic(_latency, args=(abc_fhe(),), rounds=1, iterations=1)
    full = _latency(replace(abc_fhe(), seed_shared_c1=False))
    report(
        "Ablation: seed-shared c1 transmission",
        [
            f"seeded c1: {seeded*1e6:7.1f} us   full ciphertext: {full*1e6:7.1f} us   "
            f"({full/seeded:.2f}x more write traffic without seed sharing)"
        ],
    )
    assert full > seeded


def test_ablation_generator_sizing(benchmark, report):
    """Under-provisioned OTF TF Gen throughput stalls every lane."""
    lanes = 8
    required = lanes  # one twiddle per path per cycle
    stalls = benchmark.pedantic(
        lambda: {r: GeneratorModel(values_per_cycle=r).stall_factor(required) for r in (2, 4, 8, 16)},
        rounds=1,
        iterations=1,
    )
    lines = [f"gen rate {rate:2d}/cycle -> stall factor {stall:.2f}x" for rate, stall in stalls.items()]
    report("Ablation: on-chip generator sizing", lines)
    assert GeneratorModel(values_per_cycle=8).stall_factor(required) == 1.0


def test_ablation_double_scale_vs_wide_primes(benchmark, report):
    """Double-scale [1]: 24 x 36-bit limbs instead of 12 x 72-bit.

    Wide primes would double the datapath width; modular multiplier area
    grows ~quadratically with width, so 44 -> 80-bit costs ~3.3x the
    multiplier area while the limb count only halves: net ~1.65x more
    multiplier area for the same modulus budget.
    """
    from repro.accel.area import modmul_area_um2

    narrow, wide = benchmark.pedantic(
        lambda: (
            24 * modmul_area_um2(44, "ntt_friendly"),
            12 * modmul_area_um2(80, "ntt_friendly"),
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: double-scale (24x36b) vs wide primes (12x72b)",
        [
            f"24 narrow limbs: {narrow/1e6:.3f} mm^2-equivalents of multipliers",
            f"12 wide limbs:   {wide/1e6:.3f} mm^2-equivalents ({wide/narrow:.2f}x)",
        ],
    )
    assert wide > narrow


def test_ablation_radix_choice(benchmark, report):
    counts = benchmark.pedantic(
        lambda: {k: pipeline_multipliers(1 << 16, 8, k, "ntt").total for k in (1, 2, 4, 16)},
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: radix choice (NTT pipeline multipliers, N=2^16, P=8)",
        [f"radix-2^{k}: {v} multipliers" for k, v in counts.items()],
    )
    assert counts[16] == min(counts.values())


def test_ablation_dram_bandwidth(benchmark, report):
    """Halving LPDDR5 bandwidth moves the Fig. 5(b) knee down to 4 lanes."""
    slow = replace(abc_fhe(), dram_bytes_per_sec=34.2e9)
    pairs = benchmark.pedantic(
        lambda: [
            (lanes, _latency(abc_fhe(lanes)), _latency(slow.with_lanes(lanes)))
            for lanes in (2, 4, 8, 16)
        ],
        rounds=1,
        iterations=1,
    )
    lines = []
    for lanes, fast_lat, slow_lat in pairs:
        lines.append(
            f"P={lanes:2d}: 68.4 GB/s -> {fast_lat*1e6:7.1f} us   "
            f"34.2 GB/s -> {slow_lat*1e6:7.1f} us"
        )
    report("Ablation: DRAM bandwidth sensitivity", lines)
    assert _latency(slow.with_lanes(8)) == _latency(slow.with_lanes(16))


def test_ablation_scheduling_policy(benchmark, report):
    """The paper's "optimized task scheduling": mode selection matters."""
    from repro.accel.scheduler import RequestQueue, RscScheduler

    sched = RscScheduler(config=abc_fhe(), workload=WORKLOAD)
    queue = RequestQueue(encode_encrypt=16, decode_decrypt=16)
    results = benchmark.pedantic(sched.compare, args=(queue,), rounds=1, iterations=1)
    lines = [
        f"{r.policy:14s} makespan {r.makespan_seconds*1e3:8.3f} ms"
        for r in results
    ]
    best, worst = results[0], results[-1]
    lines.append(
        f"dynamic mode selection saves "
        f"{(1 - best.makespan_cycles/worst.makespan_cycles)*100:.0f}% vs the "
        "worst static policy"
    )
    report("Ablation: RSC operating-mode scheduling (16 enc + 16 dec)", lines)
    assert results[0].policy == "dynamic" or (
        results[0].makespan_cycles == min(r.makespan_cycles for r in results)
    )
