"""Bootstrapping bench: wall-clock cost and measured boot precision.

Extends the Fig. 3(c) reproduction: the paper's "Boot. prec." is the
post-bootstrap message precision, which this bench measures through the
*actual* bootstrapping pipeline rather than the bare-FFT proxy.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.ckks import Bootstrapper, BootstrapConfig, CkksContext, toy_params
from repro.ckks.bootstrap import measure_bootstrap_precision


@pytest.fixture(scope="module")
def boot_setting():
    params = replace(toy_params(degree=64, num_primes=22), secret_hamming_weight=8)
    ctx = CkksContext.create(params, seed=2)
    bs = Bootstrapper(
        ctx, BootstrapConfig(input_scale_bits=25, eval_mod_degree=63, wraps=7)
    )
    return ctx, bs


def test_bootstrap_latency(benchmark, boot_setting, report):
    ctx, bs = boot_setting
    z = np.linspace(-1, 1, ctx.params.slots)
    ct = ctx.encryptor.encrypt(
        ctx.encoder.encode(z, level=1, scale=bs.config.input_scale)
    )
    out = benchmark.pedantic(bs.bootstrap, args=(ct,), rounds=1, iterations=1)
    err = float(np.max(np.abs(ctx.decrypt_decode(out).real - z)))
    report(
        "Bootstrapping (software, N=64 toy ring)",
        [
            f"level {ct.level} -> {out.level}",
            f"message error {err:.2e} ({-np.log2(err):.1f} bits)",
            "ABC-FHE's client-side premise: encode/encrypt at parameters "
            "large enough for the server to run this refresh",
        ],
    )
    assert out.level > ct.level


def test_boot_precision_metric(benchmark, boot_setting, report):
    ctx, bs = boot_setting
    bits = benchmark.pedantic(
        measure_bootstrap_precision, args=(ctx, bs), kwargs={"trials": 1},
        rounds=1, iterations=1,
    )
    report(
        "Fig. 3(c) extension: measured bootstrapping precision",
        [
            f"boot precision: {bits:.1f} bits at sine degree 63 "
            "(paper: 23.39 bits at FP55 with production sine degrees)",
        ],
    )
    assert bits > 7


def test_boot_precision_vs_sine_degree(benchmark, report):
    """Boot precision is sine-degree-limited: doubling the EvalMod degree
    buys ~6 bits, trending toward the paper's 23.39-bit figure (which
    uses production-grade degrees at N = 2^16)."""
    params = replace(toy_params(degree=64, num_primes=26), secret_hamming_weight=8)
    ctx = CkksContext.create(params, seed=3)

    def run():
        out = {}
        for degree in (63, 127):
            bs = Bootstrapper(
                ctx,
                BootstrapConfig(input_scale_bits=25, eval_mod_degree=degree, wraps=7),
            )
            out[degree] = measure_bootstrap_precision(ctx, bs, trials=1)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Fig. 3(c) extension: boot precision vs EvalMod sine degree",
        [f"sine degree {d:3d} -> {b:5.1f} bits" for d, b in results.items()]
        + ["paper: 23.39 bits at FP55 (production sine degree, N=2^16)"],
    )
    assert results[127] > results[63]
