"""Fig. 2 — op counts and composition of client-side CKKS tasks."""

from __future__ import annotations

from repro.experiments import fig2_workload
from repro.experiments.fig2 import PAPER_DEC_MOPS, PAPER_ENC_MOPS


def test_fig2_workload(benchmark, report):
    summary = benchmark(fig2_workload)
    enc_shares = summary.encode_encrypt.shares()
    dec_shares = summary.decode_decrypt.shares()
    report(
        "Fig. 2: workload analysis (N=2^16, 24-level enc / 2-level dec)",
        [
            f"encode+encrypt: {summary.enc_mops:6.2f} MOPs (paper {PAPER_ENC_MOPS})",
            f"decode+decrypt: {summary.dec_mops:6.2f} MOPs (paper {PAPER_DEC_MOPS})",
            f"imbalance ratio: {summary.ratio:4.1f}x (paper ~9.3x)",
            "enc shares: " + "  ".join(f"{k}={v*100:.1f}%" for k, v in enc_shares.items()),
            "dec shares: " + "  ".join(f"{k}={v*100:.1f}%" for k, v in dec_shares.items()),
        ],
    )
    assert abs(summary.enc_mops - PAPER_ENC_MOPS) / PAPER_ENC_MOPS < 0.02
    assert abs(summary.dec_mops - PAPER_DEC_MOPS) / PAPER_DEC_MOPS < 0.10
