"""Pluggable worker-boundary transports for the serving fabric.

:class:`~repro.runtime.executor.ShardedExecutor` talks to its workers
through a *transport seam*: a :class:`Transport` spawns
:class:`WorkerEndpoint` objects, each exposing the same two duck-typed
handles the executor's I/O loop always used — a ``conn`` (``send`` /
``recv`` / ``poll`` / ``fileno`` / ``close``, carrying the exact message
tuples of the worker protocol in ``docs/formats.md``) and a ``proc``
(``pid`` / ``is_alive`` / ``join`` / ``terminate``).  Every message
payload that crosses an endpoint is already boundary-framed upstream
(``ENV1`` ciphertext envelopes, ``FLT1`` faults, ``TRC1`` traces), so
transports move opaque bytes and never interpret ciphertext content —
which is what makes them interchangeable without touching the fault or
telemetry semantics.

Three implementations:

* :class:`PipeTransport` — the historical default: fork one child per
  worker with a duplex :func:`multiprocessing.Pipe`.  Zero new
  semantics; the seed of the seam.
* :class:`ShmTransport` — same fork+pipe control plane, but every large
  ``bytes`` payload (the packed residue blobs of an ``(L, N)`` reply)
  is written into a per-worker :class:`ShmRing` —
  a :mod:`multiprocessing.shared_memory` segment split into a
  parent→worker and a worker→parent half — and replaced in the pickled
  message by a tiny :class:`ShmRef` descriptor.  Large replies stop
  streaming through the 64 KiB pipe buffer; the pipe carries only
  control tuples and descriptors.  Payloads that do not fit the ring
  fall back inline, so correctness never depends on the ring size.
* ``tcp`` (:class:`~repro.runtime.coordinator.TcpTransport`, in
  :mod:`repro.runtime.coordinator`) — worker slots multiplexed over one
  length-prefixed CRC-framed socket session per worker host.

Lifecycle contract (the leak-proofing the serving tests rely on): every
transport registers itself in a process-wide registry swept by
:mod:`atexit` (interpreter exit), and every transport that owns OS
resources additionally registers a :func:`weakref.finalize` over the
*concrete* resources — the ring list for ``shm`` (each
:class:`ShmRing` also finalizes its own segment), the host-handle list
for ``tcp`` — never over a weakref to the transport itself (a
finalizer that dereferences its own dying object always sees ``None``
and silently does nothing).  So a crashed test run cannot leak
``/dev/shm`` segments or bound ports even when
:meth:`ShardedExecutor.close` never ran.  ``close()`` is idempotent
everywhere.

Contract (see ``docs/architecture.md``): transports are parent-owned;
the worker side only ever sees its pre-fork channel object.  Nothing in
this module caches ciphertext bytes beyond the in-flight message.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import weakref
from dataclasses import dataclass

__all__ = [
    "ShmRef",
    "ShmRing",
    "ShmChannel",
    "Transport",
    "PipeTransport",
    "ShmTransport",
    "WorkerEndpoint",
    "available_transports",
    "create_transport",
]

# Payloads at or above this many bytes ride the shared-memory ring
# instead of the control pipe (descriptors + small tuples stay inline).
SHM_INLINE_THRESHOLD = 4096

# Default per-direction ring capacity; one worker holds at most one
# request *or* one reply per direction at a time, so the halves only
# need to fit the largest single message's payload set.
DEFAULT_RING_BYTES = 8 << 20


def available_transports() -> tuple[str, ...]:
    return ("pipe", "shm", "tcp")


# ---------------------------------------------------------------------------
# Process-wide teardown registry (satellite: no leaked /dev/shm segments
# or bound ports when close() never runs).
# ---------------------------------------------------------------------------

_LIVE_TRANSPORTS: "weakref.WeakSet[Transport]" = weakref.WeakSet()
_OWNER_PID = os.getpid()


def _close_live_transports() -> None:
    # Forked children inherit the registry; only the creating process
    # may unlink segments / reap host processes.
    if os.getpid() != _OWNER_PID:
        return
    for transport in list(_LIVE_TRANSPORTS):
        try:
            transport.close()
        except Exception:  # noqa: BLE001 — best-effort interpreter-exit sweep
            pass


atexit.register(_close_live_transports)


# ---------------------------------------------------------------------------
# Shared-memory ring
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShmRef:
    """Descriptor that replaces a large payload inside a pipe message:
    ``length`` bytes live at ``offset`` in the sender's ring half."""

    offset: int
    length: int


class ShmRing:
    """One shared-memory segment split into two half-duplex regions.

    ``[0, capacity)`` carries parent→worker payloads, ``[capacity,
    2*capacity)`` carries worker→parent payloads.  The worker protocol
    admits at most one in-flight message per direction per worker, and
    the receiver copies every referenced byte out during ``recv`` —
    so each sender can simply restart its region cursor at every
    message with no further synchronization.
    """

    def __init__(self, capacity: int = DEFAULT_RING_BYTES) -> None:
        from multiprocessing import shared_memory

        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = int(capacity)
        self._shm = shared_memory.SharedMemory(create=True, size=2 * self.capacity)
        self._owner_pid = os.getpid()
        self._closed = False
        # Object drop without close() must still unlink the segment.
        self._finalizer = weakref.finalize(
            self, ShmRing._unlink_by_name, self._shm, self._owner_pid
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    @staticmethod
    def _unlink_by_name(shm, owner_pid: int) -> None:
        try:
            shm.close()
        except (OSError, BufferError):
            pass
        if os.getpid() == owner_pid:  # children only unmap, never unlink
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass

    def close(self) -> None:
        """Unmap and (in the creating process) unlink; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()


class ShmChannel:
    """A pipe connection whose large payloads detour through a ring.

    ``send`` walks the message tuple/list structure, copies every
    ``bytes`` of at least :data:`SHM_INLINE_THRESHOLD` into this side's
    ring half, and substitutes a :class:`ShmRef`; ``recv`` resolves the
    descriptors back into (copied) bytes, so the region is free for the
    next message the moment ``recv`` returns.  Payloads that do not fit
    the remaining region stay inline — oversized messages degrade to
    pipe throughput instead of failing.
    """

    def __init__(self, conn, ring: ShmRing, *, tx_half: int) -> None:
        self._conn = conn
        self._ring = ring
        self._tx_base = tx_half * ring.capacity
        self._rx_base = (1 - tx_half) * ring.capacity
        self.shm_bytes = 0
        self.inline_bytes = 0

    # -- structural payload rewriting ----------------------------------

    def _swap_out(self, obj, cursor: list[int]):
        if isinstance(obj, bytes):
            if len(obj) >= SHM_INLINE_THRESHOLD:
                offset = cursor[0]
                end = offset + len(obj)
                if end <= self._tx_base + self._ring.capacity:
                    self._ring.buf[offset:end] = obj
                    cursor[0] = end
                    self.shm_bytes += len(obj)
                    return ShmRef(offset, len(obj))
            self.inline_bytes += len(obj)
            return obj
        if isinstance(obj, tuple):
            return tuple(self._swap_out(item, cursor) for item in obj)
        if isinstance(obj, list):
            return [self._swap_out(item, cursor) for item in obj]
        return obj

    def _swap_in(self, obj):
        if isinstance(obj, ShmRef):
            start = obj.offset
            return bytes(self._ring.buf[start : start + obj.length])
        if isinstance(obj, tuple):
            return tuple(self._swap_in(item) for item in obj)
        if isinstance(obj, list):
            return [self._swap_in(item) for item in obj]
        return obj

    # -- connection surface --------------------------------------------

    def send(self, msg) -> None:
        self._conn.send(self._swap_out(msg, [self._tx_base]))

    def recv(self):
        return self._swap_in(self._conn.recv())

    def poll(self, timeout=0.0) -> bool:
        return self._conn.poll(timeout)

    def fileno(self) -> int:
        return self._conn.fileno()

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Endpoints and transports
# ---------------------------------------------------------------------------


class WorkerEndpoint:
    """One worker's parent-side handles, however it is reached.

    Attributes:
        proc: process-like handle (``pid`` / ``is_alive`` / ``join`` /
            ``terminate``) — a real :class:`multiprocessing.Process` for
            local transports, a slot shim for socket transports.
        conn: duplex message channel carrying the worker protocol.
        host: stable host label for telemetry (``local`` for same-host
            transports, ``host<N>`` for TCP worker hosts).
    """

    def __init__(self, proc, conn, *, host: str = "local", on_kill=None, on_release=None):
        self.proc = proc
        self.conn = conn
        self.host = host
        self._on_kill = on_kill
        self._on_release = on_release

    def kill(self) -> None:
        """SIGKILL-equivalent: forcibly stop the worker this endpoint
        reaches (used for hang/deadline preemption and close
        escalation)."""
        if self._on_kill is not None:
            self._on_kill()
            return
        try:
            os.kill(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError, TypeError):
            pass

    def release(self) -> None:
        """Free per-endpoint transport resources (e.g. its ring
        segment) once the executor has retired the worker."""
        if self._on_release is not None:
            self._on_release()


class Transport:
    """Base class: spawn endpoints, account, tear down.

    Subclasses get the worker *factory* from the executor — the loop
    callable plus its leading arguments (`` (plan,)`` for warm-fork,
    ``(plan_blob, evaluator)`` for the shipped-plan wire path) — so the
    transport layer needs no knowledge of plan internals and
    :mod:`repro.runtime.executor` stays the composition root.
    """

    name = "?"

    def __init__(self) -> None:
        self._closed = False
        # Interpreter-exit sweep.  Subclasses owning OS resources must
        # ALSO register a weakref.finalize over the concrete resources
        # (never over a weakref to self: by finalize time the object is
        # dead and the ref yields None) — see ShmTransport's ring list
        # and TcpTransport's host-handle list.
        _LIVE_TRANSPORTS.add(self)

    def spawn(self) -> WorkerEndpoint:
        raise NotImplementedError

    def close(self) -> None:
        self._closed = True

    def stats(self) -> dict:
        return {"transport": self.name}


class PipeTransport(Transport):
    """Fork one child per worker with a duplex pipe (the default)."""

    name = "pipe"

    def __init__(self, ctx, target, head, cfg) -> None:
        super().__init__()
        self._ctx = ctx
        self._target = target
        self._head = head
        self._cfg = cfg

    def _fork(self, conn_pair_factory):
        parent_conn, child_conn, child_channel = conn_pair_factory()
        proc = self._ctx.Process(
            target=self._target,
            args=(*self._head, child_channel, self._cfg),
            daemon=True,
        )
        proc.start()
        # The parent's copy of the child end must close so worker death
        # surfaces as EOF on the parent connection.
        child_conn.close()
        return proc, parent_conn

    def spawn(self) -> WorkerEndpoint:
        def plain_pipe():
            parent_conn, child_conn = self._ctx.Pipe()
            return parent_conn, child_conn, child_conn

        proc, conn = self._fork(plain_pipe)
        return WorkerEndpoint(proc, conn)


class ShmTransport(PipeTransport):
    """Fork+pipe control plane with a per-worker shared-memory ring for
    residue payloads (see :class:`ShmRing`)."""

    name = "shm"

    def __init__(self, ctx, target, head, cfg, *, ring_bytes: int = DEFAULT_RING_BYTES):
        super().__init__(ctx, target, head, cfg)
        self._ring_bytes = int(ring_bytes)
        self._rings: list[ShmRing] = []
        self._lock = threading.Lock()
        # Drop-finalizer over the concrete ring list (rings never refer
        # back to the transport, so this is not a cycle): a transport
        # GC'd without close() unlinks its segments deterministically
        # instead of waiting on each ring's own GC.  close() drains the
        # same list in place.
        self._finalizer = weakref.finalize(
            self, ShmTransport._finalize_rings, self._rings, self._lock
        )

    @staticmethod
    def _finalize_rings(rings: list, lock: threading.Lock) -> None:
        with lock:
            drained, rings[:] = list(rings), []
        for ring in drained:
            try:
                ring.close()
            except Exception:  # noqa: BLE001 — finalizers must not raise
                pass

    def spawn(self) -> WorkerEndpoint:
        ring = ShmRing(self._ring_bytes)
        with self._lock:
            self._rings.append(ring)

        def shm_pipe():
            parent_conn, child_conn = self._ctx.Pipe()
            # Both channel objects exist pre-fork; the child inherits
            # its side (and the mapped segment) copy-on-write.
            parent_channel = ShmChannel(parent_conn, ring, tx_half=0)
            child_channel = ShmChannel(child_conn, ring, tx_half=1)
            return parent_channel, child_conn, child_channel

        proc, conn = self._fork(shm_pipe)

        def release() -> None:
            with self._lock:
                if ring in self._rings:
                    self._rings.remove(ring)
            ring.close()

        return WorkerEndpoint(proc, conn, on_release=release)

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        with self._lock:
            rings, self._rings[:] = list(self._rings), []
        for ring in rings:
            ring.close()
        self._finalizer.detach()

    def stats(self) -> dict:
        with self._lock:
            live = len(self._rings)
        return {
            "transport": self.name,
            "ring_bytes": self._ring_bytes,
            "live_rings": live,
        }


def create_transport(
    name: str,
    *,
    ctx,
    target,
    head,
    cfg,
    plan=None,
    plan_blob: bytes | None = None,
    signature: str = "",
    hosts=1,
    authkey: bytes | None = None,
    ring_bytes: int = DEFAULT_RING_BYTES,
    batch_messages: bool = True,
    chaos=None,
) -> Transport:
    """Build a transport by name (``pipe`` / ``shm`` / ``tcp``)."""
    if name == "pipe":
        return PipeTransport(ctx, target, head, cfg)
    if name == "shm":
        return ShmTransport(ctx, target, head, cfg, ring_bytes=ring_bytes)
    if name == "tcp":
        from repro.runtime.coordinator import TcpTransport

        return TcpTransport(
            ctx,
            plan=plan,
            cfg=cfg,
            plan_blob=plan_blob,
            signature=signature,
            hosts=hosts,
            authkey=authkey,
            batch_messages=batch_messages,
            chaos=chaos,
        )
    raise ValueError(
        f"unknown transport {name!r}; known: {', '.join(available_transports())}"
    )
