"""Standalone worker hosts: the serving fabric's cross-machine half.

``python -m repro.runtime.worker_host --bind HOST:PORT --authkey-file
KEYFILE`` runs a :class:`StandaloneWorkerHost` — a
:class:`~repro.runtime.coordinator.WorkerHostServer` with **no fork
relationship to any coordinator**.  Everything a fork-local host
inherits through process memory arrives explicitly instead:

* the session **authkey** is loaded from a file both ends share
  (``ServingConfig(authkey_file=...)`` on the coordinator) instead of
  being fork-inherited; the mutual HMAC handshake itself is unchanged;
* the **evaluator** is rebuilt from the
  :class:`~repro.runtime.coordinator.HostEnv` shipped inside the
  ``FHL1`` hello's worker config;
* the **plan** always arrives as ``FPL1`` bytes (``ship_plan=True`` is
  mandatory; there is no fork-warmed plan to fall back to) and is
  cached by content fingerprint across sessions, so a coordinator that
  reconnects never re-uploads.

A coordinator reaches such a host with
``ServingConfig(transport="tcp", hosts=("tcp://host:port",),
ship_plan=True, authkey_file=...)``.

Lifecycle differences from a fork-local host (which the coordinator
owns outright):

* a session ``("bye",)`` ends the session but never the host — a
  standalone host is operator-owned and keeps accepting;
* while one session is live, a second coordinator is authenticated and
  then refused with an ``FCT1`` ``("busy", pid)`` control frame — one
  session at a time stays an invariant, and the refusal is explicit
  rather than a hang;
* ``--idle-timeout-s`` drops a session whose coordinator has gone
  quiet, freeing the host for the next attach;
* SIGTERM/SIGINT **drain**: the host stops reading new requests, keeps
  relaying in-flight replies until no slot is busy (bounded by
  ``--drain-timeout-s``), then closes the session and exits.

Contract (see ``docs/serving.md``): one session at a time; nothing
host-side caches ciphertext bytes beyond the in-flight frame; the
session protocol (FHL1…FCT1, ``docs/formats.md``) is byte-identical to
the fork-local path.
"""

from __future__ import annotations

import argparse
import errno
import os
import pickle
import signal
import socket
import sys
import time

from repro.runtime.coordinator import (
    _HANDSHAKE_TIMEOUT_S,
    _SESSION_ERRORS,
    SESSION_CONTROL_MAGIC,
    WorkerHostServer,
    _auth_server,
    _SessionDrop,
    send_session_frame,
)

__all__ = [
    "MIN_AUTHKEY_BYTES",
    "StandaloneWorkerHost",
    "load_authkey",
    "main",
]

# An HMAC key shorter than this is a typo, not a secret.
MIN_AUTHKEY_BYTES = 16


def load_authkey(path: str) -> bytes:
    """Read the shared session authkey from ``path`` (raw bytes; a
    trailing newline is tolerated so ``openssl rand`` output works)."""
    with open(path, "rb") as fh:
        key = fh.read().strip()
    if len(key) < MIN_AUTHKEY_BYTES:
        raise ValueError(
            f"authkey file {path!r} holds {len(key)} bytes; need at "
            f"least {MIN_AUTHKEY_BYTES}"
        )
    return key


class StandaloneWorkerHost(WorkerHostServer):
    """A worker host bound to a configured address, owned by its
    operator rather than a coordinator (see module docstring)."""

    def __init__(
        self,
        bind: tuple[str, int],
        authkey: bytes,
        *,
        label: str | None = None,
        idle_timeout_s: float | None = None,
        drain_timeout_s: float = 10.0,
    ) -> None:
        super().__init__(None, label or f"{bind[0]}:{bind[1]}", authkey)
        self._bind_addr = bind
        self._idle_timeout_s = idle_timeout_s
        self._drain_timeout_s = drain_timeout_s
        self._drain_deadline: float | None = None
        self._terminate = False
        self.port: int | None = None

    # -- lifecycle -------------------------------------------------------

    def bind(self) -> int:
        """Bind the listener; returns the bound port.  Raises
        :class:`OSError` (e.g. ``EADDRINUSE``) untranslated — the CLI
        turns it into its user-facing message."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        # A supervised host restarting after a crash must be able to
        # rebind its published address while old connections sit in
        # TIME_WAIT; a *live* conflicting listener still raises
        # EADDRINUSE with SO_REUSEADDR set.
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind(self._bind_addr)
        except OSError:
            listener.close()
            raise
        listener.listen(4)
        listener.settimeout(0.5)
        self._listener = listener
        self.port = listener.getsockname()[1]
        return self.port

    def request_drain(self) -> None:
        """Begin a graceful exit: finish in-flight requests, relay their
        replies, then stop.  Async-signal-safe (only sets flags)."""
        self._terminate = True
        self._draining = True

    def serve_forever(self, *, port_file: str | None = None) -> None:
        """Accept-and-serve until :meth:`request_drain` (one session at
        a time; ``bye`` never retires the host)."""
        if self._listener is None:
            self.bind()
        listener = self._listener
        if port_file is not None:
            # Atomic write: a test (or launcher) polling for the file
            # never reads a half-written port.
            tmp = f"{port_file}.tmp"
            with open(tmp, "w") as fh:
                fh.write(f"{self.port}\n")
            os.replace(tmp, port_file)
        try:
            while not self._terminate:
                try:
                    sock, _ = listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                sock.settimeout(_HANDSHAKE_TIMEOUT_S)
                try:
                    try:
                        authed = _auth_server(sock, self.authkey)
                    except (TimeoutError, *_SESSION_ERRORS):
                        authed = False
                    if authed:
                        # Unlike run(): bye ends the session, not the
                        # host — the next coordinator may attach (and
                        # hit the warm plan cache).
                        self._serve_session(sock)
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
        finally:
            listener.close()

    # -- hook overrides (see WorkerHostServer) --------------------------

    def _session_tick(self) -> None:
        now = time.monotonic()
        if self._draining:
            if self._drain_deadline is None:
                self._drain_deadline = now + self._drain_timeout_s
            if not self._busy or now >= self._drain_deadline:
                raise _SessionDrop()
            return
        if (
            self._idle_timeout_s is not None
            and now - self._last_activity > self._idle_timeout_s
        ):
            raise _SessionDrop()

    def _extra_wait_conns(self) -> list:
        return [] if self._listener is None else [self._listener]

    def _on_extra_ready(self, ready) -> None:
        # A second coordinator dialed in while a session is live: prove
        # we share its key, then refuse explicitly.  Unauthenticated
        # peers are dropped without a frame, exactly as in the accept
        # loop (no unpickle surface for strangers).
        try:
            intruder, _ = ready.accept()
        except OSError:
            return
        intruder.settimeout(_HANDSHAKE_TIMEOUT_S)
        try:
            try:
                authed = _auth_server(intruder, self.authkey)
            except (TimeoutError, *_SESSION_ERRORS):
                authed = False
            if authed:
                try:
                    send_session_frame(
                        intruder,
                        SESSION_CONTROL_MAGIC,
                        pickle.dumps(("busy", os.getpid())),
                    )
                except (TimeoutError, *_SESSION_ERRORS):
                    pass
        finally:
            try:
                intruder.close()
            except OSError:
                pass


def _parse_bind(text: str) -> tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"--bind expects HOST:PORT (port 0 for ephemeral), got {text!r}"
        )
    return host, int(port)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.worker_host",
        description=(
            "Run a standalone serving-fabric worker host (no fork "
            "relationship to the coordinator; see docs/serving.md)."
        ),
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="address to listen on, HOST:PORT (port 0 = ephemeral; "
        "pair with --port-file so the coordinator can find it)",
    )
    parser.add_argument(
        "--authkey-file",
        required=True,
        help="file holding the shared session authkey (>= "
        f"{MIN_AUTHKEY_BYTES} raw bytes; the coordinator passes the "
        "same file as ServingConfig.authkey_file)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here (atomically) once listening",
    )
    parser.add_argument(
        "--label", default=None, help="host label for telemetry/logs"
    )
    parser.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        help="drop a session after this long without coordinator "
        "traffic (default: never)",
    )
    parser.add_argument(
        "--drain-timeout-s",
        type=float,
        default=10.0,
        help="on SIGTERM, wait at most this long for in-flight "
        "requests before exiting",
    )
    args = parser.parse_args(argv)
    try:
        bind = _parse_bind(args.bind)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        authkey = load_authkey(args.authkey_file)
    except (OSError, ValueError) as exc:
        print(f"worker-host: bad --authkey-file: {exc}", file=sys.stderr)
        return 2
    host = StandaloneWorkerHost(
        bind,
        authkey,
        label=args.label,
        idle_timeout_s=args.idle_timeout_s,
        drain_timeout_s=args.drain_timeout_s,
    )
    try:
        port = host.bind()
    except OSError as exc:
        detail = (
            "address already in use"
            if exc.errno == errno.EADDRINUSE
            else str(exc)
        )
        print(
            f"worker-host: cannot bind {bind[0]}:{bind[1]}: {detail}",
            file=sys.stderr,
        )
        return 2

    def _drain_handler(signum, frame):  # noqa: ARG001 — signal signature
        host.request_drain()

    signal.signal(signal.SIGTERM, _drain_handler)
    signal.signal(signal.SIGINT, _drain_handler)
    print(f"worker-host: listening on {bind[0]}:{port}", flush=True)
    host.serve_forever(port_file=args.port_file)
    return 0


if __name__ == "__main__":
    sys.exit(main())
