"""TCP worker-host coordination for the serving fabric.

This module implements the ``tcp`` transport of
:mod:`repro.runtime.transport`: worker *slots* hosted by a
:class:`WorkerHostServer` process and multiplexed over one
length-prefixed CRC-framed socket **session** per host.  The session
protocol reuses the repo's frame container
(:func:`repro.ckks.serialization.pack_frame`: ``tag(4) | u32 length |
payload | u32 crc32``) and carries the *unchanged* worker protocol
messages — every ciphertext still rides an ``ENV1`` envelope, faults
are still ``FLT1``, spans still ``TRC1`` — so swapping pipe for socket
changes byte transport, never semantics.

Session shape (documented normatively in ``docs/formats.md``):

0. both directions, before any frame: an HMAC-SHA256
   challenge/response over a per-transport random ``authkey`` that the
   host inherits through fork (it never crosses the wire), in the
   style of :mod:`multiprocessing.connection`.  The host refuses to
   parse a single session frame — in particular, to unpickle anything
   — from a peer that cannot answer the challenge, so another local
   user connecting to the loopback port gets silently disconnected
   instead of a pickle deserialization surface (CWE-502);
1. coordinator → host: ``FHL1`` HELLO (version, flags, plan
   fingerprint, pickled worker config);
2. host → coordinator: ``FHA1`` HELLO-ACK (``need_plan``, host pid) —
   the host caches deserialized plans by content fingerprint across
   sessions, so a reconnect (or a second pool) never re-uploads a plan
   the host already holds;
3. coordinator → host, only when asked: ``FPL1`` (the ``EPL1`` plan
   bytes);
4. both directions, steady state: ``FBT1`` batches (multiple worker
   messages per frame, amortizing framing + syscalls) and ``FCT1``
   control ops (slot spawn/kill, up/down notifications, session bye).

Fault model: the host relay consults the session chaos plan at the
``host_relay`` site (disconnect, partial frame, slow host).  Any
session loss — injected or real — closes every slot's parent-side
delivery pipe, which the executor's I/O loop observes as worker EOFs
and handles with its existing requeue/retry/quarantine machinery; the
transport then restarts the host (or reconnects) on the next spawn.
Requests are therefore never lost and never duplicated across host
loss, exactly as for single-process crashes.

Hosts come in two flavours behind one session protocol:

* **fork-local** (the default): :meth:`TcpTransport._fork_host` forks a
  :class:`WorkerHostServer` that binds an ephemeral loopback port and
  inherits the plan, the evaluator, and the authkey through fork.
* **standalone** (:mod:`repro.runtime.worker_host`): a separate OS
  process with *no* fork relationship, started via its own CLI
  entrypoint, possibly on another machine.  It inherits nothing: the
  authkey comes from a file, the evaluator is rebuilt from the
  :class:`HostEnv` shipped inside the ``FHL1`` hello's worker config,
  and the plan always arrives as ``FPL1`` bytes (``ship_plan=True`` is
  mandatory — there is no fork-warmed plan to fall back to).
  ``ServingConfig(hosts=("tcp://host:port", ...))`` dials such hosts;
  reconnecting to a surviving one reuses its fingerprint-deduped plan
  cache, so a reattach never re-uploads the plan.

Contract (see ``docs/architecture.md``): a fork-local host can never
outlive the coordinator (it watches for re-parenting); slot workers
run the verbatim :func:`repro.runtime.executor._worker_loop`; nothing
host-side caches ciphertext bytes beyond the in-flight frame.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import queue
import signal
import socket
import struct
import threading
import time
import weakref
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait

from repro.ckks.serialization import WireFormatError, pack_frame, read_frame

__all__ = [
    "SESSION_HELLO_MAGIC",
    "SESSION_ACK_MAGIC",
    "SESSION_PLAN_MAGIC",
    "SESSION_BATCH_MAGIC",
    "SESSION_CONTROL_MAGIC",
    "SESSION_VERSION",
    "MAX_SESSION_FRAME_BYTES",
    "HostEnv",
    "WorkerHostServer",
    "TcpTransport",
    "encode_batch",
    "decode_batch",
    "parse_host_specs",
    "recv_session_frame",
    "send_session_frame",
]

SESSION_HELLO_MAGIC = b"FHL1"
SESSION_ACK_MAGIC = b"FHA1"
SESSION_PLAN_MAGIC = b"FPL1"
SESSION_BATCH_MAGIC = b"FBT1"
SESSION_CONTROL_MAGIC = b"FCT1"
SESSION_VERSION = 1

_HELLO_FLAG_SHIP_PLAN = 1  # coordinator holds EPL1 bytes for this plan

_HANDSHAKE_TIMEOUT_S = 30.0
_SPAWN_ACK_TIMEOUT_S = 30.0

# How long spawn() keeps redialing a remote (standalone) host before
# giving up with HostUnreachable.  A supervised host that was just
# killed needs interpreter-startup time to rebind its address; refusing
# instantly would turn every restart into a tripped breaker.
_REMOTE_REDIAL_WINDOW_S = 15.0
_REMOTE_REDIAL_INTERVAL_S = 0.25

# Hard cap on one session frame's payload.  The length prefix is read
# before the CRC can vouch for it, so a corrupted u32 must not be able
# to demand a multi-GiB allocation; the largest legitimate frame is an
# FPL1 plan upload (tens of MiB), so 256 MiB is generous headroom.
MAX_SESSION_FRAME_BYTES = 256 << 20

_AUTH_NONCE_BYTES = 32

# Everything a malformed-but-CRC-valid (or simply hostile) session
# frame can raise while being sliced and unpickled.  Any of these ends
# the *session* — never the host process (its warm plan cache must
# survive) and never a pump thread without marking the session dead.
# WireFormatError subclasses ValueError.
_SESSION_ERRORS = (
    ConnectionError,
    OSError,
    EOFError,
    ValueError,
    IndexError,
    KeyError,
    struct.error,
    pickle.UnpicklingError,
)


@dataclass(frozen=True)
class HostEnv:
    """Everything a *standalone* worker host needs to rebuild an
    evaluator from scratch: the CKKS parameters and the exact RNS prime
    chain (both plain picklable values, a few hundred bytes total).

    Rides inside the ``FHL1`` hello's pickled worker config — the frame
    protocol is unchanged; fork-local hosts ignore it (their evaluator
    is fork-inherited).  The plan's backend is *not* here: ``EPL1``
    blobs carry their own backend in the META frame.
    """

    params: object  # CkksParameters
    primes: tuple  # tuple[NttFriendlyPrime, ...]

    def build_evaluator(self):
        from repro.ckks.evaluator import Evaluator
        from repro.rns.basis import RnsBasis

        basis = RnsBasis(degree=self.params.degree, primes=tuple(self.primes))
        return Evaluator(self.params, basis)


def parse_host_specs(hosts) -> list[tuple[str, int] | None]:
    """Normalize ``ServingConfig.hosts`` into per-index host specs.

    ``int`` means that many fork-local hosts.  A sequence mixes
    ``"local"`` (fork a loopback host) with ``"tcp://host:port"``
    (dial a standalone host started via
    ``python -m repro.runtime.worker_host``).
    """
    if isinstance(hosts, int):
        if hosts < 1:
            raise ValueError("tcp transport needs at least one host")
        return [None] * hosts
    specs: list[tuple[str, int] | None] = []
    for entry in hosts:
        if entry == "local":
            specs.append(None)
            continue
        if isinstance(entry, str) and entry.startswith("tcp://"):
            host, sep, port = entry[len("tcp://") :].rpartition(":")
            if sep and host and port.isdigit():
                specs.append((host, int(port)))
                continue
        raise ValueError(
            f"unrecognized host spec {entry!r}; expected 'local' or "
            "'tcp://host:port'"
        )
    if not specs:
        raise ValueError("tcp transport needs at least one host")
    return specs


# ---------------------------------------------------------------------------
# Frame plumbing
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("session socket closed mid-frame")
        buf += chunk
    return bytes(buf)


def recv_session_frame(
    sock: socket.socket, max_bytes: int = MAX_SESSION_FRAME_BYTES
) -> tuple[bytes, bytes]:
    """Read one CRC-framed session frame; raises on EOF/truncation and
    :class:`WireFormatError` on CRC mismatch or an oversized length
    prefix (all end the session)."""
    header = _recv_exact(sock, 8)
    (length,) = struct.unpack_from("<I", header, 4)
    if length > max_bytes:
        raise WireFormatError(
            f"session frame claims {length} bytes, above the "
            f"{max_bytes}-byte cap (corrupt length prefix?)"
        )
    body = _recv_exact(sock, length + 4)
    tag, payload, _ = read_frame(header + body, 0)
    return tag, payload


def send_session_frame(sock: socket.socket, tag: bytes, payload: bytes) -> None:
    sock.sendall(pack_frame(tag, payload))


def _session_loads(data: bytes):
    """Unpickle a session message with a typed failure mode.

    ``pickle.loads`` on crafted (CRC-valid but malformed) bytes can
    raise nearly anything — ``AttributeError``, ``TypeError``,
    ``ImportError`` — not just ``UnpicklingError``.  Funneling every
    failure into :class:`WireFormatError` (a ``ValueError``, hence in
    ``_SESSION_ERRORS``) guarantees a malformed message ends the
    *session*, never the host process or a pump thread.
    """
    try:
        return pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 — see docstring
        raise WireFormatError(f"undecodable session message: {exc!r}") from exc


def encode_batch(items: list[tuple[int, bytes]]) -> bytes:
    """``FBT1`` payload: ``u32 count | count x (u32 slot | u32 len |
    pickled worker message)``."""
    parts = [struct.pack("<I", len(items))]
    for slot, msg_bytes in items:
        parts.append(struct.pack("<II", slot, len(msg_bytes)))
        parts.append(msg_bytes)
    return b"".join(parts)


def decode_batch(payload: bytes) -> list[tuple[int, bytes]]:
    (count,) = struct.unpack_from("<I", payload, 0)
    offset = 4
    items: list[tuple[int, bytes]] = []
    for _ in range(count):
        slot, length = struct.unpack_from("<II", payload, offset)
        offset += 8
        items.append((slot, payload[offset : offset + length]))
        offset += length
    if offset != len(payload):
        raise WireFormatError("FBT1 batch payload has trailing bytes")
    return items


def _encode_hello(ship_plan: bool, signature: str, cfg) -> bytes:
    sig = signature.encode()
    cfg_blob = pickle.dumps(cfg)
    flags = _HELLO_FLAG_SHIP_PLAN if ship_plan else 0
    return (
        struct.pack("<HBH", SESSION_VERSION, flags, len(sig))
        + sig
        + struct.pack("<I", len(cfg_blob))
        + cfg_blob
    )


def _decode_hello(payload: bytes) -> tuple[int, int, str, object]:
    version, flags, sig_len = struct.unpack_from("<HBH", payload, 0)
    offset = 5
    sig = payload[offset : offset + sig_len].decode()
    offset += sig_len
    (cfg_len,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    cfg = _session_loads(payload[offset : offset + cfg_len])
    return version, flags, sig, cfg


# ---------------------------------------------------------------------------
# Session authentication
#
# The listener is loopback-only, but loopback is shared with every
# other local user: without authentication, anyone who can connect to
# the port gets a pickle.loads of attacker bytes in the host process
# (arbitrary code execution, CWE-502).  So before a single frame is
# parsed, both sides must prove knowledge of a per-transport random
# authkey that the host inherited through fork — the same model as
# multiprocessing.connection's deliver/answer_challenge, mutual here.
# ---------------------------------------------------------------------------


def _auth_digest(authkey: bytes, role: bytes, nonce: bytes) -> bytes:
    return hmac.new(authkey, role + b":" + nonce, hashlib.sha256).digest()


def _auth_server(sock: socket.socket, authkey: bytes) -> bool:
    """Host side: challenge the connecting peer; returns False (never
    raises into frame parsing) when the peer fails to authenticate."""
    nonce = os.urandom(_AUTH_NONCE_BYTES)
    sock.sendall(nonce)
    reply = _recv_exact(sock, 2 * _AUTH_NONCE_BYTES)
    digest = reply[:_AUTH_NONCE_BYTES]
    peer_nonce = reply[_AUTH_NONCE_BYTES:]
    if not hmac.compare_digest(digest, _auth_digest(authkey, b"coordinator", nonce)):
        return False
    sock.sendall(_auth_digest(authkey, b"host", peer_nonce))
    return True


def _auth_client(sock: socket.socket, authkey: bytes) -> None:
    """Coordinator side: answer the host's challenge, then verify the
    host's proof (mutual — a squatter on a recycled port fails too)."""
    nonce = _recv_exact(sock, _AUTH_NONCE_BYTES)
    my_nonce = os.urandom(_AUTH_NONCE_BYTES)
    sock.sendall(_auth_digest(authkey, b"coordinator", nonce) + my_nonce)
    proof = _recv_exact(sock, _AUTH_NONCE_BYTES)
    if not hmac.compare_digest(proof, _auth_digest(authkey, b"host", my_nonce)):
        raise WireFormatError("worker host failed session authentication")


# ---------------------------------------------------------------------------
# Worker host (child-process side)
# ---------------------------------------------------------------------------


class _SessionDrop(Exception):
    """Internal: tear the current session down (injected or real)."""


class WorkerHostServer:
    """One worker host: accepts coordinator sessions, forks slot workers.

    Runs as the body of a forked daemon process
    (:meth:`TcpTransport._fork_host` starts it) — or, with
    ``plan=None``, as the engine of a *standalone* host
    (:class:`repro.runtime.worker_host.StandaloneWorkerHost`) that
    rebuilds its evaluator from the hello's :class:`HostEnv` and only
    accepts shipped plans.  One session is served at a time; the plan
    cache (``fingerprint -> deserialized plan``) persists across
    sessions, which is what makes reconnect-after-drop cheap and keeps
    plan shipping once-per-host.
    """

    def __init__(self, plan, host_label: str, authkey: bytes) -> None:
        self.plan = plan  # fork-inherited (None for a standalone host)
        self.host_label = host_label
        self.authkey = authkey  # fork-inherited or loaded from a file
        self._plans_by_sig: dict[str, object] = {}
        self._listener: socket.socket | None = None
        # Session-scoped state the lifecycle hooks below consult: slots
        # with a request in flight, the drain flag (a standalone host's
        # SIGTERM sets it), and the last time the session moved bytes.
        self._busy: set[int] = set()
        self._draining = False
        self._last_activity = time.monotonic()

    # -- lifecycle hooks (no-ops for fork-local hosts) ------------------

    def _extra_wait_conns(self) -> list:
        """Extra waitables multiplexed into the session loop (a
        standalone host adds its listener so a second coordinator can be
        refused while a session is live)."""
        return []

    def _on_extra_ready(self, ready) -> None:
        """Handle one ready extra waitable."""

    def _session_tick(self) -> None:
        """Called once per session-loop iteration; raise
        :class:`_SessionDrop` to end the session (idle timeout, drain
        complete)."""

    # -- process body ---------------------------------------------------

    def run(self, report_conn) -> None:
        # The host forks slot workers, so it cannot be daemonic itself;
        # instead it watches for re-parenting (coordinator death) and
        # exits on its own — no orphaned hosts, no leaked ports.
        coordinator_pid = os.getppid()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        listener.settimeout(1.0)
        self._listener = listener
        report_conn.send((listener.getsockname()[1], os.getpid()))
        report_conn.close()
        try:
            while True:
                try:
                    sock, _ = listener.accept()
                except TimeoutError:
                    if os.getppid() != coordinator_pid:
                        break  # orphaned: the coordinator is gone
                    continue
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                # Bounded handshake: an unauthenticated peer can hold
                # the (one-session-at-a-time) accept loop for at most
                # the handshake timeout, and is disconnected before any
                # frame — hence any pickle — is parsed.
                sock.settimeout(_HANDSHAKE_TIMEOUT_S)
                try:
                    try:
                        authed = _auth_server(sock, self.authkey)
                    except (TimeoutError, *_SESSION_ERRORS):
                        authed = False
                    if authed and self._serve_session(sock):
                        break  # coordinator said bye: host retires
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
        finally:
            listener.close()

    # -- one session ----------------------------------------------------

    def _negotiate(self, sock: socket.socket):
        tag, payload = recv_session_frame(sock)
        if tag != SESSION_HELLO_MAGIC:
            raise WireFormatError(f"expected FHL1, got {tag!r}")
        version, flags, sig, cfg = _decode_hello(payload)
        if version != SESSION_VERSION:
            raise WireFormatError(f"unsupported session version {version}")
        if flags & _HELLO_FLAG_SHIP_PLAN:
            need_plan = sig not in self._plans_by_sig
            send_session_frame(
                sock,
                SESSION_ACK_MAGIC,
                struct.pack("<BI", int(need_plan), os.getpid()),
            )
            if need_plan:
                tag, blob = recv_session_frame(sock)
                if tag != SESSION_PLAN_MAGIC:
                    raise WireFormatError(f"expected FPL1, got {tag!r}")
                from repro.runtime.plan_io import deserialize_plan

                try:
                    self._plans_by_sig[sig] = deserialize_plan(
                        blob, self._session_evaluator(cfg)
                    )
                except WireFormatError:
                    raise
                except Exception as exc:  # noqa: BLE001 — see _session_loads
                    # Crafted plan bytes or a crafted HostEnv can raise
                    # nearly anything; all of it is a wire error that
                    # ends the session, never the host.
                    raise WireFormatError(
                        f"undecodable plan upload: {exc!r}"
                    ) from exc
            session_plan = self._plans_by_sig[sig]
        else:
            # Warm-fork mode: serve the fork-inherited plan (loopback
            # only; a genuinely remote host requires ship_plan=True).
            if self.plan is None:
                raise WireFormatError(
                    "standalone worker host has no fork-inherited plan; "
                    "the coordinator must use ship_plan=True"
                )
            send_session_frame(
                sock, SESSION_ACK_MAGIC, struct.pack("<BI", 0, os.getpid())
            )
            session_plan = self.plan
        return session_plan, cfg

    def _session_evaluator(self, cfg):
        """The evaluator plans deserialize against: fork-inherited when
        the host was forked, rebuilt from the hello's :class:`HostEnv`
        on a standalone host (which inherited nothing)."""
        if self.plan is not None:
            return self.plan.evaluator
        env = getattr(cfg, "env", None)
        if env is None:
            raise WireFormatError(
                "standalone worker host needs a HostEnv in the hello's "
                "worker config to rebuild its evaluator"
            )
        return env.build_evaluator()

    def _serve_session(self, sock: socket.socket) -> bool:
        """Serve one coordinator session; returns True on graceful bye."""
        import multiprocessing as mp

        from repro.runtime.executor import _worker_loop

        try:
            session_plan, cfg = self._negotiate(sock)
        except (TimeoutError, *_SESSION_ERRORS):
            return False
        sock.settimeout(None)  # steady state: blocking frame reads
        ctx = mp.get_context("fork")
        chaos = getattr(cfg, "chaos", None)
        workers: dict[int, tuple] = {}  # slot -> (proc, conn)
        self._busy.clear()
        self._last_activity = time.monotonic()
        bye = False
        try:
            while True:
                self._session_tick()
                # A draining host stops reading coordinator frames (no
                # new requests) but keeps relaying in-flight replies.
                conns = [w[1] for w in workers.values()]
                if not self._draining:
                    conns = [sock, *conns]
                extra = self._extra_wait_conns()
                ready_list = connection_wait(conns + extra, timeout=0.2)
                out: list[tuple[int, bytes]] = []
                for ready in ready_list:
                    if ready is sock:
                        bye = self._on_session_frame(
                            sock, workers, ctx, session_plan, cfg, _worker_loop
                        )
                        if bye:
                            raise _SessionDrop()
                        continue
                    if any(ready is item for item in extra):
                        self._on_extra_ready(ready)
                        continue
                    slot = next(
                        (s for s, w in workers.items() if w[1] is ready), None
                    )
                    if slot is None:
                        continue
                    try:
                        msg = ready.recv()
                    except (EOFError, OSError):
                        self._reap_slot(workers, slot)
                        self._busy.discard(slot)
                        out.append((slot, pickle.dumps(("down", slot))))
                        continue
                    if isinstance(msg, tuple) and len(msg) == 5:
                        self._busy.discard(slot)  # reply for the request
                    out.append((slot, pickle.dumps(msg)))
                if out:
                    self._relay_upstream(sock, out, chaos)
                    self._last_activity = time.monotonic()
        except _SessionDrop:
            pass
        except _SESSION_ERRORS:
            # Includes struct.error / UnpicklingError from a CRC-valid
            # but malformed frame: drop the session, keep the host (and
            # its warm plan cache) alive for the reconnect.
            pass
        finally:
            self._busy.clear()
            for slot in list(workers):
                self._kill_slot(workers, slot)
        return bye

    def _on_session_frame(
        self, sock, workers, ctx, session_plan, cfg, worker_loop
    ) -> bool:
        tag, payload = recv_session_frame(sock)
        self._last_activity = time.monotonic()
        if tag == SESSION_BATCH_MAGIC:
            for slot, msg_bytes in decode_batch(payload):
                entry = workers.get(slot)
                if entry is None:
                    continue
                msg = _session_loads(msg_bytes)
                try:
                    entry[1].send(msg)
                except (BrokenPipeError, OSError):
                    self._reap_slot(workers, slot)
                    continue
                if isinstance(msg, tuple) and len(msg) == 4:
                    self._busy.add(slot)  # a request is now in flight
            return False
        if tag == SESSION_CONTROL_MAGIC:
            op = _session_loads(payload)
            if not isinstance(op, tuple) or not op:
                raise WireFormatError(f"malformed session control op {op!r}")
            if op[0] == "spawn":
                slot = op[1]
                parent_conn, child_conn = ctx.Pipe()
                # Fork-inherited fds the slot worker must NOT keep: the
                # session socket and listener (a dead host's session
                # would otherwise never EOF at the coordinator while a
                # worker still holds them), its OWN parent-side pipe end
                # (holding both ends of one socketpair would mask the
                # host-death EOF forever), and the sibling workers'
                # parent ends (which would likewise mask sibling EOFs).
                inherited = [self._listener, sock, parent_conn]
                inherited += [w[1] for w in workers.values()]
                proc = ctx.Process(
                    target=_slot_entry,
                    args=(worker_loop, session_plan, child_conn, cfg, inherited),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                workers[slot] = (proc, parent_conn)
                send_session_frame(
                    sock,
                    SESSION_CONTROL_MAGIC,
                    pickle.dumps(("up", slot, proc.pid)),
                )
            elif op[0] == "kill":
                if op[1] in workers:
                    self._kill_slot(workers, op[1])
                    send_session_frame(
                        sock,
                        SESSION_CONTROL_MAGIC,
                        pickle.dumps(("down", op[1])),
                    )
            elif op[0] == "bye":
                return True
            return False
        raise WireFormatError(f"unexpected session frame {tag!r}")

    def _relay_upstream(self, sock, out, chaos) -> None:
        """Ship collected worker messages upstream as one batch,
        consulting the ``host_relay`` chaos site per reply."""
        clean: list[tuple[int, bytes]] = []
        deferred: list[tuple[int, bytes]] = []  # reorder: ship last
        for slot, msg_bytes in out:
            action = None
            if chaos is not None:
                msg = pickle.loads(msg_bytes)
                if isinstance(msg, tuple) and len(msg) == 5:
                    action = chaos.decide("host_relay", msg[1], msg[2])
            if action is None:
                clean.append((slot, msg_bytes))
                continue
            if action.kind in ("slow", "asym"):
                # "asym" models asymmetric latency: only this upstream
                # relay is delayed, never the downstream dispatch.
                time.sleep(action.duration_s)
                clean.append((slot, msg_bytes))
                continue
            if action.kind == "reorder":
                # The reply is overtaken by everything else relayed this
                # round (and ships in its own trailing frame).
                deferred.append((slot, msg_bytes))
                continue
            if action.kind == "duplicate":
                # Delivered twice, intact: the executor's stale-attempt
                # dedup must drop the second copy.
                clean.append((slot, msg_bytes))
                clean.append((slot, msg_bytes))
                continue
            # disconnect / partial: flush what precedes the fault, then
            # break the session (the faulted reply is lost either way —
            # its request re-runs under the executor's retry budget).
            if clean:
                send_session_frame(sock, SESSION_BATCH_MAGIC, encode_batch(clean))
            if action.kind == "partial":
                frame = pack_frame(
                    SESSION_BATCH_MAGIC, encode_batch([(slot, msg_bytes)])
                )
                sock.sendall(frame[: max(9, len(frame) // 2)])
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            raise _SessionDrop()
        if clean:
            send_session_frame(sock, SESSION_BATCH_MAGIC, encode_batch(clean))
        if deferred:
            send_session_frame(sock, SESSION_BATCH_MAGIC, encode_batch(deferred))

    @staticmethod
    def _reap_slot(workers: dict, slot: int) -> None:
        proc, conn = workers.pop(slot, (None, None))
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            proc.join(timeout=1.0)

    @staticmethod
    def _kill_slot(workers: dict, slot: int) -> None:
        proc, conn = workers.pop(slot, (None, None))
        if proc is not None and proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
            proc.join(timeout=2.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass


def _slot_entry(worker_loop, plan, conn, cfg, inherited) -> None:
    """Slot-worker process body: drop fork-inherited host fds (session
    socket, listener, sibling pipes) before entering the worker loop, so
    host death propagates as EOF instead of being masked by workers."""
    for obj in inherited:
        if obj is None:
            continue
        try:
            obj.close()
        except OSError:
            pass
    worker_loop(plan, conn, cfg)


def _host_main(plan, host_label: str, report_conn, authkey: bytes) -> None:
    WorkerHostServer(plan, host_label, authkey).run(report_conn)


# ---------------------------------------------------------------------------
# Coordinator (parent side)
# ---------------------------------------------------------------------------


class _SlotProc:
    """Process-like handle for a remote slot worker (the executor's
    ``worker.proc`` duck type)."""

    def __init__(self) -> None:
        self.pid: int | None = None
        self.up = threading.Event()
        self.down = threading.Event()

    def is_alive(self) -> bool:
        return self.up.is_set() and not self.down.is_set()

    def join(self, timeout: float | None = None) -> None:
        self.down.wait(timeout)

    def terminate(self) -> None:
        if self._kill is not None:
            self._kill()

    _kill = None  # bound by the host handle at slot-open time


class _SlotChannel:
    """Connection-like handle for a remote slot: sends enqueue into the
    host session's flusher; receives read a local delivery pipe fed by
    the session reader thread (so the executor's ``connection_wait``
    loop works unchanged)."""

    def __init__(self, handle: "_HostHandle", slot: int, delivery_r) -> None:
        self._handle = handle
        self._slot = slot
        self._delivery_r = delivery_r

    def send(self, msg) -> None:
        self._handle.enqueue(self._slot, msg)

    def recv(self):
        return self._delivery_r.recv()

    def poll(self, timeout=0.0) -> bool:
        return self._delivery_r.poll(timeout)

    def fileno(self) -> int:
        return self._delivery_r.fileno()

    def close(self) -> None:
        try:
            self._delivery_r.close()
        except OSError:
            pass


class _SlotState:
    __slots__ = ("proc", "delivery_w")

    def __init__(self, proc: _SlotProc, delivery_w) -> None:
        self.proc = proc
        self.delivery_w = delivery_w


_FLUSH_SENTINEL = object()


class _HostHandle:
    """One live host process + one session socket + its pump threads."""

    def __init__(
        self,
        transport: "TcpTransport",
        host_id: int,
        spec: tuple[str, int] | None = None,
    ) -> None:
        # Weak: the transport's drop-finalizer strongly holds its host
        # handles (to close them), so a strong back-reference here would
        # keep the transport reachable forever and the finalizer dead.
        self._transport_ref = weakref.ref(transport)
        # Per-transport immutables, snapshotted so the pump threads and
        # teardown never need the transport object itself.
        self.batch_messages = transport.batch_messages
        self._slot_ids = transport._slot_ids
        self._authkey = transport._authkey
        self.host_id = host_id
        self.spec = spec  # None = fork-local; (host, port) = standalone
        self.label = f"host{host_id}"
        self.dead = False
        self.host_proc = None
        self.host_pid: int | None = None
        self.port: int | None = None
        self.sock: socket.socket | None = None
        self.slots: dict[int, _SlotState] = {}
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.out_q: queue.SimpleQueue = queue.SimpleQueue()
        self.frames_sent = 0
        self.messages_sent = 0
        self.plan_uploaded = False
        self._threads: list[threading.Thread] = []

    @property
    def transport(self) -> "TcpTransport":
        t = self._transport_ref()
        if t is None:
            raise RuntimeError("tcp transport has been released")
        return t

    # -- bring-up -------------------------------------------------------

    def start(self, *, reuse_proc=None) -> None:
        t = self.transport
        if self.spec is not None:
            # Standalone host: dial its published address.  There is no
            # process to fork or reuse — "reconnect" IS a fresh dial,
            # and the host's plan cache makes it replan-free.
            address, self.port = self.spec, self.spec[1]
        elif reuse_proc is not None and reuse_proc.is_alive():
            self.host_proc = reuse_proc
            self.host_pid = reuse_proc.pid
            self.port = t._ports.get(id(reuse_proc))
            address = ("127.0.0.1", self.port)
        else:
            self.host_proc, self.port = t._fork_host(self.label)
            self.host_pid = self.host_proc.pid
            t._ports[id(self.host_proc)] = self.port
            address = ("127.0.0.1", self.port)
        self.sock = socket.create_connection(
            address, timeout=_HANDSHAKE_TIMEOUT_S
        )
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        _auth_client(self.sock, self._authkey)
        ship = t.plan_blob is not None
        send_session_frame(
            self.sock,
            SESSION_HELLO_MAGIC,
            _encode_hello(ship, t.signature, t.cfg),
        )
        tag, payload = recv_session_frame(self.sock)
        if tag == SESSION_CONTROL_MAGIC:
            op = _session_loads(payload)
            if isinstance(op, tuple) and op and op[0] == "busy":
                raise ConnectionError(
                    f"worker host at {address[0]}:{address[1]} is already "
                    "serving another coordinator"
                )
            raise WireFormatError(f"expected FHA1, got control op {op!r}")
        if tag != SESSION_ACK_MAGIC:
            raise WireFormatError(f"expected FHA1, got {tag!r}")
        need_plan, remote_pid = struct.unpack_from("<BI", payload, 0)
        if self.host_pid is None:
            self.host_pid = remote_pid  # standalone host's own report
        if ship and need_plan:
            send_session_frame(self.sock, SESSION_PLAN_MAGIC, t.plan_blob)
            self.plan_uploaded = True
        self.sock.settimeout(None)
        for name, target in (("reader", self._reader_loop), ("flusher", self._flush_loop)):
            thread = threading.Thread(
                target=target, name=f"fabric-{self.label}-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # -- outbound -------------------------------------------------------

    def enqueue(self, slot: int, msg) -> None:
        if self.dead:
            raise BrokenPipeError(f"session to {self.label} is down")
        self.out_q.put((slot, pickle.dumps(msg)))

    def _flush_loop(self) -> None:
        while True:
            item = self.out_q.get()
            if item is _FLUSH_SENTINEL:
                return
            items = [item]
            while True:
                try:
                    nxt = self.out_q.get(block=False)
                except queue.Empty:
                    break
                if nxt is _FLUSH_SENTINEL:
                    items = [i for i in items if i is not _FLUSH_SENTINEL]
                    self._send_items(items)
                    return
                items.append(nxt)
            self._send_items(items)

    def _send_items(self, items) -> None:
        if not items or self.dead:
            return
        try:
            with self.send_lock:
                if self.batch_messages:
                    send_session_frame(
                        self.sock, SESSION_BATCH_MAGIC, encode_batch(items)
                    )
                    self.frames_sent += 1
                else:
                    for entry in items:
                        send_session_frame(
                            self.sock, SESSION_BATCH_MAGIC, encode_batch([entry])
                        )
                        self.frames_sent += 1
                self.messages_sent += len(items)
        except (OSError, BrokenPipeError):
            self._mark_dead()

    def send_control(self, op: tuple) -> None:
        if self.dead:
            raise BrokenPipeError(f"session to {self.label} is down")
        try:
            with self.send_lock:
                send_session_frame(
                    self.sock, SESSION_CONTROL_MAGIC, pickle.dumps(op)
                )
        except (OSError, BrokenPipeError):
            self._mark_dead()
            raise BrokenPipeError(f"session to {self.label} is down") from None

    # -- inbound --------------------------------------------------------

    def _reader_loop(self) -> None:
        try:
            while True:
                tag, payload = recv_session_frame(self.sock)
                if tag == SESSION_BATCH_MAGIC:
                    for slot, msg_bytes in decode_batch(payload):
                        msg = _session_loads(msg_bytes)
                        if (
                            isinstance(msg, tuple)
                            and len(msg) == 2
                            and msg[0] == "down"
                        ):
                            self._close_slot(msg[1])
                            continue
                        with self.lock:
                            state = self.slots.get(slot)
                        if state is not None:
                            try:
                                state.delivery_w.send(msg)
                            except (BrokenPipeError, OSError):
                                pass
                elif tag == SESSION_CONTROL_MAGIC:
                    op = _session_loads(payload)
                    if not isinstance(op, tuple) or not op:
                        raise WireFormatError(
                            f"malformed session control op {op!r}"
                        )
                    if op[0] == "up":
                        with self.lock:
                            state = self.slots.get(op[1])
                        if state is not None:
                            state.proc.pid = op[2]
                            state.proc.up.set()
                    elif op[0] == "down":
                        self._close_slot(op[1])
        except _SESSION_ERRORS:
            # Includes struct.error / UnpicklingError from a CRC-valid
            # but malformed frame — the session dies (finally:), the
            # pump thread exits cleanly instead of with a traceback.
            pass
        finally:
            self._mark_dead()

    def _close_slot(self, slot: int) -> None:
        with self.lock:
            state = self.slots.pop(slot, None)
        if state is None:
            return
        state.proc.down.set()
        try:
            state.delivery_w.close()
        except OSError:
            pass

    def _mark_dead(self) -> None:
        if self.dead:
            return
        self.dead = True
        # Closing every delivery writer surfaces host loss to the
        # executor as per-worker EOFs — its standard crash path.
        with self.lock:
            slots = list(self.slots.items())
            self.slots.clear()
        for _, state in slots:
            state.proc.down.set()
            try:
                state.delivery_w.close()
            except OSError:
                pass
        self.out_q.put(_FLUSH_SENTINEL)

    # -- slots ----------------------------------------------------------

    def open_slot(self, ctx):
        from repro.runtime.transport import WorkerEndpoint

        with self.lock:
            slot = next(self._slot_ids)
        delivery_r, delivery_w = ctx.Pipe(duplex=False)
        proc = _SlotProc()
        state = _SlotState(proc, delivery_w)
        with self.lock:
            self.slots[slot] = state
        proc._kill = lambda: self._kill_slot(slot, proc)
        self.send_control(("spawn", slot))
        if not proc.up.wait(timeout=_SPAWN_ACK_TIMEOUT_S) or self.dead:
            self._close_slot(slot)
            raise BrokenPipeError(f"{self.label} never acked slot {slot}")
        channel = _SlotChannel(self, slot, delivery_r)
        return WorkerEndpoint(
            proc,
            channel,
            host=self.label,
            on_kill=lambda: self._kill_slot(slot, proc),
        )

    def _kill_slot(self, slot: int, proc: _SlotProc) -> None:
        # Loopback best effort first (prompt even if the relay is busy),
        # then the protocol kill so the host reaps and acks the slot.
        if proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
        try:
            self.send_control(("kill", slot))
        except BrokenPipeError:
            self._close_slot(slot)

    # -- teardown -------------------------------------------------------

    def close(self, *, retire_host: bool) -> None:
        if not self.dead and self.sock is not None:
            try:
                self.send_control(("bye",))
            except BrokenPipeError:
                pass
        self._mark_dead()
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        if retire_host and self.host_proc is not None:
            self.host_proc.join(timeout=2.0)
            if self.host_proc.is_alive():
                try:
                    os.kill(self.host_proc.pid, signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass
                self.host_proc.join(timeout=1.0)


class TcpTransport:
    """Socket transport: worker slots multiplexed over per-host
    sessions (see module docstring).  Duck-types
    :class:`repro.runtime.transport.Transport`."""

    name = "tcp"

    def __init__(
        self,
        ctx,
        *,
        plan,
        cfg,
        plan_blob: bytes | None = None,
        signature: str = "",
        hosts=1,
        batch_messages: bool = True,
        chaos=None,
        authkey: bytes | None = None,
    ) -> None:
        from repro.runtime import transport as _transport

        self._host_specs = parse_host_specs(hosts)
        num_hosts = len(self._host_specs)
        self._ctx = ctx
        self.plan = plan
        self.cfg = cfg
        self.plan_blob = plan_blob
        self.signature = signature or getattr(plan, "signature", "")
        self.num_hosts = num_hosts
        self.batch_messages = batch_messages
        self.chaos = chaos
        if any(s is not None for s in self._host_specs):
            if authkey is None:
                raise ValueError(
                    "remote tcp hosts need a shared authkey file "
                    "(ServingConfig.authkey_file) — a fork-inherited "
                    "random key cannot cross a process-tree boundary"
                )
            if plan_blob is None:
                raise ValueError(
                    "remote tcp hosts need ship_plan=True: a standalone "
                    "host has no fork-inherited plan to fall back to"
                )
        self._hosts: list[_HostHandle | None] = [None] * num_hosts
        self._host_ids = iter(range(10**9))
        self._slot_ids = iter(range(10**9))
        self._assign = 0
        self._ports: dict[int, int] = {}
        self._lock = threading.Lock()
        # Host bring-up (fork + TCP handshake + spawn-ack waits) runs
        # under a per-host lock, never the transport lock, so one hung
        # host can only stall spawns aimed at *its* index — close() and
        # other hosts' spawns stay responsive.
        self._index_locks = [threading.Lock() for _ in range(num_hosts)]
        # Per-transport session secret; forked hosts inherit it through
        # process memory, so it authenticates sessions without ever
        # crossing the wire (see _auth_server/_auth_client).  Standalone
        # hosts cannot inherit — both ends load the same keyfile
        # (ServingConfig.authkey_file / worker_host --authkey-file).
        self._authkey = authkey if authkey is not None else os.urandom(32)
        self._closed = False
        self.sessions_opened = 0
        self.hosts_spawned = 0
        self.plan_uploads = 0
        _transport._LIVE_TRANSPORTS.add(self)
        # Drop-finalizer over the concrete host-handle list (handles
        # hold only a weakref back, so this is not a cycle): a pool
        # that is GC'd without close() still retires its host processes
        # and sockets.  close() empties the same list in place.
        self._finalizer = weakref.finalize(
            self, TcpTransport._finalize_hosts, self._hosts
        )

    @staticmethod
    def _finalize_hosts(hosts: list) -> None:
        for index, handle in enumerate(hosts):
            hosts[index] = None
            if handle is not None:
                try:
                    handle.close(retire_host=True)
                except Exception:  # noqa: BLE001 — finalizers must not raise
                    pass

    # -- host lifecycle -------------------------------------------------

    def _fork_host(self, label: str):
        report_r, report_w = self._ctx.Pipe(duplex=False)
        # daemon=False: the host forks slot workers (daemonic processes
        # may not have children); it self-terminates when orphaned.
        proc = self._ctx.Process(
            target=_host_main,
            args=(self.plan, label, report_w, self._authkey),
            daemon=False,
        )
        proc.start()
        report_w.close()
        if not report_r.poll(_HANDSHAKE_TIMEOUT_S):
            proc.terminate()
            raise RuntimeError(f"worker host {label} never reported its port")
        port, _pid = report_r.recv()
        report_r.close()
        self.hosts_spawned += 1
        return proc, port

    def _ensure_host(self, index: int) -> _HostHandle:
        handle = self._hosts[index]
        if handle is not None and not handle.dead:
            return handle
        spec = self._host_specs[index]
        reuse = None
        if handle is not None:
            # Session died; reconnect to the host process when it is
            # still alive (plan cache warm — no re-upload), refork when
            # the host itself is gone.  A standalone host has no local
            # process either way: reattach is always a fresh dial, and
            # a dead one surfaces as a dial failure below (falling
            # through the caller's requeue/retry/breaker path).
            if handle.host_proc is not None and handle.host_proc.is_alive():
                reuse = handle.host_proc
            handle.close(retire_host=reuse is None and spec is None)
        fresh = _HostHandle(self, next(self._host_ids), spec=spec)
        try:
            fresh.start(reuse_proc=reuse)
        except (ConnectionError, OSError, WireFormatError):
            if reuse is None:
                raise
            # The host raced its own death: is_alive() said yes but the
            # listener is already gone (a SIGKILLed process is not
            # waitable for a moment).  Retire it and fork a fresh host.
            fresh.close(retire_host=True)
            fresh = _HostHandle(self, next(self._host_ids), spec=spec)
            fresh.start(reuse_proc=None)
        self.sessions_opened += 1
        if fresh.plan_uploaded:
            self.plan_uploads += 1
        self._hosts[index] = fresh
        if self._closed:
            # close() ran while this bring-up held the index lock past
            # close()'s acquire timeout: tear the fresh host down
            # instead of leaking it past the pool's lifetime.
            self._hosts[index] = None
            fresh.close(retire_host=True)
            raise RuntimeError("tcp transport is closed")
        return fresh

    # -- Transport surface ----------------------------------------------

    def spawn(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("tcp transport is closed")
            index = self._assign % self.num_hosts
            self._assign += 1
        # Bring-up happens under the per-index lock only: a hung host
        # blocks spawns for its own index, not close() or other hosts.
        with self._index_locks[index]:
            if self._closed:
                raise RuntimeError("tcp transport is closed")
            spec = self._host_specs[index]
            # Fork-local hosts get one immediate retry (a freshly dead
            # host).  Remote hosts get a redial *window*: a supervised
            # standalone host that just crashed needs a moment to be
            # restarted on the same address, and "killed then brought
            # back" is its normal operating mode, not an edge case.
            deadline = time.monotonic() + (
                _REMOTE_REDIAL_WINDOW_S if spec is not None else 0.0
            )
            last_error: Exception | None = None
            attempts = 0
            while True:
                attempts += 1
                try:
                    handle = self._ensure_host(index)
                    return handle.open_slot(self._ctx)
                except (
                    BrokenPipeError,
                    ConnectionError,
                    OSError,
                    WireFormatError,
                ) as exc:
                    last_error = exc
                    if self._hosts[index] is not None:
                        self._hosts[index]._mark_dead()
                if attempts >= 2 and time.monotonic() >= deadline:
                    break
                if self._closed:
                    break
                if spec is not None:
                    time.sleep(_REMOTE_REDIAL_INTERVAL_S)
            if spec is not None:
                from repro.runtime.faults import HostUnreachable

                raise HostUnreachable(
                    f"remote worker host tcp://{spec[0]}:{spec[1]} is "
                    f"unreachable: {last_error}"
                )
            raise RuntimeError(
                f"could not open a worker slot on host index {index}: {last_error}"
            )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for index, index_lock in enumerate(self._index_locks):
            # Best-effort acquire: a spawn stuck in bring-up holds this
            # lock for up to two handshake timeouts; _closed is already
            # set, so that spawn tears its own host down on completion
            # (see _ensure_host) and close() need not wait for it.
            acquired = index_lock.acquire(timeout=1.0)
            try:
                handle, self._hosts[index] = self._hosts[index], None
            finally:
                if acquired:
                    index_lock.release()
            if handle is not None:
                handle.close(retire_host=True)
        self._finalizer.detach()

    def host_pids(self) -> list[int]:
        return [
            h.host_pid
            for h in self._hosts
            if h is not None and h.host_pid is not None
        ]

    def stats(self) -> dict:
        return {
            "transport": self.name,
            "hosts": self.num_hosts,
            "remote_hosts": sum(
                1 for spec in self._host_specs if spec is not None
            ),
            "hosts_spawned": self.hosts_spawned,
            "sessions_opened": self.sessions_opened,
            "plan_uploads": self.plan_uploads,
            "frames_sent": sum(
                h.frames_sent for h in self._hosts if h is not None
            ),
            "messages_sent": sum(
                h.messages_sent for h in self._hosts if h is not None
            ),
            "batch_messages": self.batch_messages,
        }
