"""Unified serving surface: one frozen config, one facade.

The serving stack grew one keyword at a time — ``num_workers``,
``fused``, ``ship_plan``, ``policy``, ``chaos``, ``max_pending``, and
now transport selection — until standing up a pool meant threading six
knobs through two constructors.  This module consolidates all of it:

* :class:`ServingConfig` — a frozen dataclass holding every serving
  knob (pool shape, transport, execution mode, fault policy, chaos,
  streaming admission, tracing).  Immutable, hashable, and safe to
  share between a pool and its streaming front end.
* :func:`serve` — the facade: takes a compiled
  :class:`~repro.runtime.plan.ExecutionPlan` *or* a traceable function
  (compiled on the spot via :func:`~repro.runtime.trace.trace` +
  :func:`~repro.runtime.plan.compile_graph`), and returns a
  :class:`ServingSession` wrapping a configured
  :class:`~repro.runtime.executor.ShardedExecutor` with batch, submit,
  and async streaming entry points.

The legacy keyword surface keeps working for one release: passing the
old kwargs to :class:`ShardedExecutor` / :class:`StreamingServer` /
:func:`serve` emits a :class:`DeprecationWarning` whose message starts
with ``legacy serving kwargs`` (pin in tests with
``pytest.warns(DeprecationWarning, match="legacy serving kwargs")``)
and is translated onto a :class:`ServingConfig` internally, so both
surfaces execute the identical code path.

Contract (see ``docs/architecture.md``): pure parent-process
configuration — nothing here crosses the worker boundary except as
fields already covered by the executor's contract (policy/chaos values,
pool shape).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from repro.runtime.chaos import FaultPlan
from repro.runtime.faults import FaultPolicy
from repro.runtime.transport import DEFAULT_RING_BYTES, available_transports

__all__ = ["ServingConfig", "ServingSession", "serve"]

# One release of grace for the pre-config keyword surface; every warning
# about it starts with this prefix (pyproject ignores it suite-wide).
_DEPRECATION_PREFIX = "legacy serving kwargs"

# Executor-era keyword -> ServingConfig field.
_LEGACY_FIELDS = {
    "num_workers": "num_workers",
    "coeff_bits": "coeff_bits",
    "modeled_request_io_s": "modeled_request_io_s",
    "max_crash_respawns": "max_crash_respawns",
    "ship_plan": "ship_plan",
    "fused": "fused",
    "policy": "fault_policy",
    "fault_policy": "fault_policy",
    "chaos": "chaos",
    "transport": "transport",
    "hosts": "hosts",
    "ring_bytes": "ring_bytes",
    "batch_messages": "batch_messages",
    "max_pending": "max_pending",
    "trace": "trace",
    "trace_sample_rate": "trace_sample_rate",
}


@dataclass(frozen=True)
class ServingConfig:
    """Every serving knob in one immutable value.

    Attributes:
        num_workers: pool size; ``0`` selects the inline single-process
            fallback.
        transport: worker-boundary transport — ``"pipe"`` (fork+pipe,
            default), ``"shm"`` (pipe control + shared-memory ring for
            large payloads), or ``"tcp"`` (worker-host sessions over
            loopback sockets; see ``docs/serving.md``).
        hosts: worker hosts for the ``tcp`` transport (slots are
            assigned round-robin); ignored by same-host transports.
            Either an ``int`` count of fork-local hosts, or a tuple of
            specs mixing ``"local"`` (fork-local) and
            ``"tcp://host:port"`` (a standalone host started via
            ``python -m repro.runtime.worker_host``; requires
            ``ship_plan=True`` and ``authkey_file``).
        authkey_file: path to the shared session authkey file for
            remote ``tcp://`` hosts — the same file the standalone
            host was started with (``--authkey-file``).  ``None`` (the
            default) keeps the fork-inherited per-run random key.
        ship_plan: serialize the plan once and have each worker (or
            worker host, deduplicated by content fingerprint)
            deserialize its own copy — the cross-machine wire path.
        fused: replay through the arena-backed fused executor.
        fault_policy: deadlines / hang detection / retry budget /
            breaker behaviour (``None`` = :class:`FaultPolicy` defaults).
        chaos: deterministic fault injection plan (tests/benches only).
        max_pending: streaming admission bound
            (:class:`~repro.runtime.stream.StreamingServer`).
        modeled_request_io_s: modeled client-link transfer delay charged
            per request inside the worker (benchmarks only).
        coeff_bits: wire coefficient width override (``None`` = derived
            from the plan's modulus basis).
        max_crash_respawns: pool-lifetime crash budget override.
        ring_bytes: per-direction shared-memory ring capacity for the
            ``shm`` transport.
        batch_messages: batch multiple worker messages per TCP session
            frame (``False`` sends one frame per message — measurably
            slower; kept as a knob for the framing benchmark).
        trace: enable process-wide telemetry tracing when the session
            starts (left enabled on exit; use
            :meth:`Telemetry.disable` to turn it off).
        trace_sample_rate: trace sampling rate when ``trace`` is set.
    """

    num_workers: int = 2
    transport: str = "pipe"
    hosts: int | tuple = 1
    authkey_file: str | None = None
    ship_plan: bool = False
    fused: bool = False
    fault_policy: FaultPolicy | None = None
    chaos: FaultPlan | None = None
    max_pending: int = 8
    modeled_request_io_s: float = 0.0
    coeff_bits: int | None = None
    max_crash_respawns: int | None = None
    ring_bytes: int = DEFAULT_RING_BYTES
    batch_messages: bool = True
    trace: bool = False
    trace_sample_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.transport not in available_transports():
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"known: {', '.join(available_transports())}"
            )
        if isinstance(self.hosts, list):
            object.__setattr__(self, "hosts", tuple(self.hosts))
        if isinstance(self.hosts, int):
            if self.hosts < 1:
                raise ValueError("hosts must be >= 1")
        else:
            from repro.runtime.coordinator import parse_host_specs

            specs = parse_host_specs(self.hosts)
            if any(spec is not None for spec in specs):
                if not self.ship_plan:
                    raise ValueError(
                        "remote tcp:// hosts require ship_plan=True — a "
                        "standalone worker host has no fork-inherited plan"
                    )
                if self.authkey_file is None:
                    raise ValueError(
                        "remote tcp:// hosts require authkey_file= (the "
                        "file the worker host was started with)"
                    )
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.ring_bytes < 1:
            raise ValueError("ring_bytes must be positive")

    def replace(self, **changes) -> "ServingConfig":
        return dataclasses.replace(self, **changes)


def config_from_legacy_kwargs(
    config: ServingConfig | None,
    kwargs: dict,
    *,
    caller: str,
    stacklevel: int = 3,
) -> ServingConfig:
    """Translate a pre-config keyword surface onto a :class:`ServingConfig`.

    ``kwargs`` is consumed (translated keys are popped); unknown keys
    are left for the caller to reject.  Passing both a ``config`` and
    legacy keywords is an error — a half-overridden config is always a
    bug, not a convenience.
    """
    legacy = {k: kwargs.pop(k) for k in list(kwargs) if k in _LEGACY_FIELDS}
    if not legacy:
        return config if config is not None else ServingConfig()
    if config is not None:
        raise TypeError(
            f"{caller}: pass either config=ServingConfig(...) or the legacy "
            f"keywords ({', '.join(sorted(legacy))}), not both"
        )
    warnings.warn(
        f"{_DEPRECATION_PREFIX} on {caller} ({', '.join(sorted(legacy))}) are "
        "deprecated; pass config=ServingConfig(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return ServingConfig(
        **{_LEGACY_FIELDS[key]: value for key, value in legacy.items()}
    )


class ServingSession:
    """A configured pool plus its entry points, as one context manager.

    Synchronous use::

        with serve(plan, config) as session:
            outputs = session.run_batch(batches)

    Streaming use::

        session = serve(plan, config)
        async with session.streaming() as server:
            await server.serve(payloads, encrypt=enc, decrypt=dec)
    """

    def __init__(self, plan, config: ServingConfig, *, warm_inputs=None) -> None:
        from repro.runtime.executor import ShardedExecutor

        self.plan = plan
        self.config = config
        if config.trace:
            from repro.runtime.telemetry import get_telemetry

            get_telemetry().enable(sample_rate=config.trace_sample_rate)
        self.executor = ShardedExecutor(plan, config=config, warm_inputs=warm_inputs)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ServingSession":
        self.executor.start()
        return self

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "ServingSession":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving --------------------------------------------------------

    def submit(self, inputs, *, deadline_s: float | None = None, trace=None):
        return self.executor.submit(inputs, deadline_s=deadline_s, trace=trace)

    def run_batch(self, batches, timeout=None, *, deadline_s=None):
        return self.executor.run_batch(batches, timeout, deadline_s=deadline_s)

    def streaming(self):
        """A :class:`~repro.runtime.stream.StreamingServer` over this
        session's pool, admission-bounded by ``config.max_pending``."""
        from repro.runtime.stream import StreamingServer

        return StreamingServer(self.executor, config=self.config)

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        return self.executor.stats()


def serve(
    plan_or_fn,
    config: ServingConfig | None = None,
    *,
    evaluator=None,
    input_specs=None,
    warm_inputs=None,
    **legacy,
) -> ServingSession:
    """Build a :class:`ServingSession` for a plan or traceable function.

    Args:
        plan_or_fn: a compiled :class:`ExecutionPlan`, or a function
            written against the evaluator surface (then ``evaluator``
            and ``input_specs`` are required and the plan is compiled
            here through the process-level plan cache).
        config: the :class:`ServingConfig`; ``None`` means defaults.
        evaluator / input_specs: only for the traceable-function form.
        warm_inputs: optional real inputs replayed once in the parent
            before the first fork, warming every fork-shared cache.
        **legacy: the deprecated pre-config keyword surface; translated
            with a :class:`DeprecationWarning`.
    """
    config = config_from_legacy_kwargs(config, legacy, caller="serve()")
    if legacy:
        raise TypeError(f"serve() got unexpected keywords {sorted(legacy)}")
    from repro.runtime.plan import ExecutionPlan

    if isinstance(plan_or_fn, ExecutionPlan):
        plan = plan_or_fn
    elif callable(plan_or_fn):
        if evaluator is None or input_specs is None:
            raise TypeError(
                "serve(fn, ...) requires evaluator= and input_specs= to "
                "compile the function into a plan"
            )
        from repro.runtime.plan import compile_graph
        from repro.runtime.trace import trace as trace_fn

        graph = trace_fn(plan_or_fn, evaluator, input_specs)
        plan = compile_graph(graph, evaluator)
    else:
        raise TypeError(
            "serve() takes an ExecutionPlan or a traceable function, "
            f"got {type(plan_or_fn).__name__}"
        )
    return ServingSession(plan, config, warm_inputs=warm_inputs)
