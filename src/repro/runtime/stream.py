"""Streaming ingestion for the serving engine: async, bounded, measured.

:class:`StreamingServer` feeds a :class:`~repro.runtime.executor.ShardedExecutor`
from a bounded request queue instead of a materialized batch.  Admission
is a semaphore of ``max_pending`` slots covering a request's whole
lifetime, so producers feel backpressure the moment the engine is
saturated and memory stays bounded; each admitted request is dispatched
to the worker pool and awaited without blocking the event loop, which
lets the three phases of different requests overlap — request *k+1*
encrypts (on a dedicated phase thread, so client callables need not be
thread-safe) while request *k* evaluates in a worker process and
request *k-1* decrypts.

Every request is timed (queue wait, service, total) and the queue depth
is sampled at each admission and completion, so :meth:`stats` /
:meth:`latency_summary` quantify exactly what streaming buys over a
materialized ``run_batch``: time-to-first-result and per-request latency
drop while throughput stays pool-bound.  :meth:`schedule_comparison`
projects the same served queue onto the paper's dual-RSC scheduling
policies through the :mod:`repro.runtime.bridge` workload forms, putting
measured software serving and modeled accelerator scheduling side by
side.

Failure semantics ride through unchanged from the executor (see
``docs/architecture.md``): ``serve``/``serve_one``/``submit`` accept a
per-request ``deadline_s`` that is plumbed to
:meth:`ShardedExecutor.submit`, and a request that fails gets a
:class:`RequestRecord` with ``outcome="failed"`` and the typed error
name — the typed :class:`~repro.runtime.faults.RequestError` itself
propagates to the caller.  :meth:`stats` separates succeeded / retried /
failed requests and reports the retry latency contribution, and
:meth:`schedule_comparison` projects only *successful* service onto the
accelerator queue (failed requests contribute their encrypt leg via the
bridge's ``failures`` parameter), so scheduling numbers are never
flattered by requests that returned nothing.

Contract (see ``docs/architecture.md``): the server is parent-process
state only — records, depth samples, and the admission semaphore never
cross the worker boundary and are not fork-shared (the pool is started
*by* this class, after construction).  Everything a request sends to or
receives from a worker goes through the executor's serialization
boundary; this module never touches ciphertext bytes itself.
"""

from __future__ import annotations

import asyncio
import inspect
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from functools import partial

from repro.runtime.bridge import plan_schedule_comparison
from repro.runtime.faults import WorkerError
from repro.runtime.telemetry import get_telemetry
from repro.runtime.telemetry import now as _now

__all__ = ["RequestRecord", "StreamingServer"]


@dataclass
class RequestRecord:
    """Timings and outcome for one served request (times in seconds).

    Every duration is sourced from the telemetry monotonic clock
    (:func:`repro.runtime.telemetry.now`) — no ``time.time`` /
    ``perf_counter`` mixing — so records are directly comparable with
    executor- and worker-side span timestamps.
    """

    index: int
    wait_s: float = 0.0
    encrypt_s: float = 0.0
    service_s: float = 0.0
    decrypt_s: float = 0.0
    total_s: float = 0.0
    done_at_s: float = 0.0  # relative to server start
    outcome: str = "ok"  # "ok" | "failed"
    error: str | None = None  # taxonomy class name when failed
    error_code: int | None = None  # stable faults.py code when typed
    attempts: int = 1  # dispatch attempts the executor made
    retry_s: float = 0.0  # latency added by retries (first->last dispatch)
    trace_id: int = 0  # telemetry trace id (0 == untraced)

    def to_dict(self) -> dict:
        """JSON-ready form; typed errors ride as (name, stable code)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RequestRecord":
        return cls(**data)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


class StreamingServer:
    """Bounded-queue streaming front end over a sharded worker pool.

    Attributes:
        executor: the pool requests are served by (any object with
            ``submit(inputs) -> concurrent.futures.Future`` and a
            ``plan``; inline executors work for tests).
        max_pending: admission bound — at most this many requests are
            inside the engine (queued or in flight) at once.  Prefer
            passing ``config=ServingConfig(max_pending=...)``; the bare
            ``max_pending=`` keyword is the deprecated legacy surface.
    """

    def __init__(self, executor, *, config=None, **legacy) -> None:
        from repro.runtime.serving import config_from_legacy_kwargs

        cfg = config_from_legacy_kwargs(
            config, legacy, caller="StreamingServer"
        )
        if legacy:
            raise TypeError(
                f"StreamingServer got unexpected keyword(s) {sorted(legacy)}"
            )
        self.executor = executor
        self.max_pending = cfg.max_pending
        self._sem: asyncio.Semaphore | None = None
        self._phase_pool: ThreadPoolExecutor | None = None
        self._depth = 0
        self._depth_samples: list[int] = []
        self._records: list[RequestRecord] = []
        self._started_at: float | None = None
        self._index = 0
        self._accepts_trace: bool | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "StreamingServer":
        self.executor.start()
        self._sem = asyncio.Semaphore(self.max_pending)
        # CPU-side phases run on ONE dedicated thread: encrypt/decrypt
        # callables need not be thread-safe (Encryptor mutates XOF
        # state), and serializing them costs nothing — the overlap that
        # matters is against the worker pool, not between two encrypts.
        self._phase_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="stream-phase"
        )
        self._started_at = _now()
        return self

    async def __aexit__(self, *exc) -> None:
        self.executor.close()
        if self._phase_pool is not None:
            self._phase_pool.shutdown(wait=True)
            self._phase_pool = None
        self._sem = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    async def submit(self, inputs, *, deadline_s: float | None = None) -> list:
        """Admit one request (awaiting a slot under backpressure), serve
        it on the pool, and return its output ciphertexts."""
        return await self._serve_request(inputs, None, None, deadline_s)

    async def serve_one(self, payload, *, encrypt, decrypt, deadline_s=None):
        """Full client pipeline for one request: encrypt -> evaluate ->
        decrypt, with the CPU phases off the event loop so they overlap
        other requests' pool evaluation.  ``deadline_s`` bounds the
        request's time inside the *pool* (executor deadline semantics);
        a typed :class:`~repro.runtime.faults.DeadlineExceeded` reaches
        the caller when it fires."""
        return await self._serve_request(payload, encrypt, decrypt, deadline_s)

    async def serve(self, payloads, *, encrypt, decrypt, deadline_s=None) -> list:
        """Stream a sequence of request payloads through the pipeline,
        returning results in request order."""
        return list(
            await asyncio.gather(
                *(
                    self.serve_one(
                        p, encrypt=encrypt, decrypt=decrypt, deadline_s=deadline_s
                    )
                    for p in payloads
                )
            )
        )

    async def _serve_request(self, payload, encrypt, decrypt, deadline_s=None):
        """One request, entirely inside the admission bound: at most
        ``max_pending`` requests are in *any* phase at once, so memory
        stays O(max_pending) however long the payload stream is."""
        if self._sem is None:
            raise RuntimeError("use 'async with StreamingServer(...)'")
        loop = asyncio.get_running_loop()
        telemetry = get_telemetry()
        record = RequestRecord(self._next_index())
        # The trace is minted at streaming ingress; the executor parents
        # its queue/attempt/worker spans under our service span via the
        # ``trace=`` kwarg (only passed to executors that accept it).
        root = telemetry.start_trace(
            "request", category="stream", index=record.index
        )
        record.trace_id = root.ctx.trace_id
        enqueue = _now()
        await self._sem.acquire()
        self._admit()
        record.wait_s = _now() - enqueue
        telemetry.record_span(
            "admission_wait", root.ctx, enqueue, enqueue + record.wait_s,
            category="stream",
        )
        try:
            if encrypt is None:
                inputs = payload
            else:
                t0 = _now()
                inputs = await loop.run_in_executor(
                    self._phase_pool, encrypt, payload
                )
                record.encrypt_s = _now() - t0
                telemetry.record_span(
                    "encrypt", root.ctx, t0, t0 + record.encrypt_s,
                    category="stream",
                )
            t0 = _now()
            # executor.submit serializes the inputs before returning its
            # future — run it on the phase thread, not the event loop.
            # The deadline/trace kwargs are only passed when set, so plain
            # ``submit(inputs)`` executors (test stubs) keep working.
            kwargs = {}
            if deadline_s is not None:
                kwargs["deadline_s"] = deadline_s
            service = telemetry.child_span("service", root.ctx, category="stream")
            if service and self._submit_accepts_trace():
                kwargs["trace"] = service.ctx
            submit_call = partial(self.executor.submit, inputs, **kwargs)
            try:
                pool_future = await loop.run_in_executor(
                    self._phase_pool, submit_call
                )
                try:
                    outputs = await asyncio.wrap_future(pool_future)
                except WorkerError as exc:
                    record.outcome = "failed"
                    record.error = type(exc).__name__
                    record.error_code = getattr(exc, "code", None)
                    record.attempts = max(1, getattr(exc, "attempts", 0) or 1)
                    record.service_s = _now() - t0
                    raise
            finally:
                service.end(status=record.outcome)
            record.service_s = _now() - t0
            record.attempts = max(1, getattr(pool_future, "attempts", 1))
            record.retry_s = getattr(pool_future, "retry_s", 0.0)
            if decrypt is None:
                result = outputs
            else:
                t0 = _now()
                result = await loop.run_in_executor(
                    self._phase_pool, decrypt, outputs
                )
                record.decrypt_s = _now() - t0
                telemetry.record_span(
                    "decrypt", root.ctx, t0, t0 + record.decrypt_s,
                    category="stream",
                )
        except Exception as exc:
            if record.outcome == "ok":  # phase failures, cancellation, ...
                record.outcome = "failed"
                record.error = type(exc).__name__
                record.error_code = getattr(exc, "code", None)
            raise
        finally:
            self._finish()
            self._sem.release()
            record.total_s = _now() - enqueue
            record.done_at_s = _now() - self._started_at
            self._records.append(record)
            root.end(status=record.outcome)
        return result

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def records(self) -> list[RequestRecord]:
        return list(self._records)

    def latency_summary(self) -> dict[str, float]:
        """Latency percentiles over *successful* requests only — failed
        requests returned nothing, so mixing their (often deadline-
        truncated) timings in would corrupt the service-time picture."""
        totals = sorted(r.total_s for r in self._records if r.outcome == "ok")
        return {
            "count": len(totals),
            "mean_s": sum(totals) / len(totals) if totals else 0.0,
            "p50_s": _percentile(totals, 0.50),
            "p95_s": _percentile(totals, 0.95),
            "max_s": totals[-1] if totals else 0.0,
        }

    def stats(self) -> dict:
        ok = [r for r in self._records if r.outcome == "ok"]
        failed = [r for r in self._records if r.outcome != "ok"]
        retried = [r for r in ok if r.attempts > 1]
        failures_by_type: dict[str, int] = {}
        for r in failed:
            name = r.error or "unknown"
            failures_by_type[name] = failures_by_type.get(name, 0) + 1
        done = [r.done_at_s for r in ok]
        makespan = max(done) if done else 0.0
        return {
            "completed": len(ok),
            "failed": len(failed),
            "retried": len(retried),
            "retry_latency_s": sum(r.retry_s for r in ok),
            "failures_by_type": failures_by_type,
            "max_queue_depth": max(self._depth_samples, default=0),
            "mean_queue_depth": (
                sum(self._depth_samples) / len(self._depth_samples)
                if self._depth_samples
                else 0.0
            ),
            "time_to_first_result_s": min(done) if done else 0.0,
            "makespan_s": makespan,
            "throughput_rps": len(done) / makespan if makespan else 0.0,
            "latency": self.latency_summary(),
            "executor": self.executor.stats(),
        }

    def to_dict(self) -> dict:
        """JSON-round-trippable snapshot: :meth:`stats` plus every
        :class:`RequestRecord` (typed errors already rendered as stable
        name/code pairs).  ``json.loads(json.dumps(server.to_dict()))``
        reproduces the same structure bit-for-bit."""
        return {
            "stats": self.stats(),
            "records": [r.to_dict() for r in self._records],
        }

    def schedule_comparison(self, config=None, degree: int | None = None):
        """The served queue on the accelerator's dual-RSC policies (via
        the bridge's workload forms), best makespan first.  Only
        successful requests count as served; failed ones contribute just
        their client-side encrypt leg."""
        ok = sum(1 for r in self._records if r.outcome == "ok")
        failed = len(self._records) - ok
        return plan_schedule_comparison(
            self.executor.plan,
            requests=max(1, ok),
            config=config,
            degree=degree,
            failures=failed,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_index(self) -> int:
        index = self._index
        self._index += 1
        return index

    def _submit_accepts_trace(self) -> bool:
        """Whether the executor's ``submit`` takes a ``trace=`` kwarg —
        probed once, so plain ``submit(inputs)`` stubs keep working."""
        if self._accepts_trace is None:
            try:
                params = inspect.signature(self.executor.submit).parameters
            except (TypeError, ValueError):
                self._accepts_trace = False
            else:
                self._accepts_trace = "trace" in params
        return self._accepts_trace

    def _admit(self) -> None:
        self._depth += 1
        self._depth_samples.append(self._depth)

    def _finish(self) -> None:
        self._depth -= 1
        self._depth_samples.append(self._depth)
