"""Typed failure taxonomy and fault policy for the serving stack.

Before this layer existed, every serving failure surfaced as a bare
``WorkerError`` string and the only recovery semantics were EOF-detected
crashes with an unconditional front-requeue.  This module makes the
failure model explicit and *typed* so callers (and, eventually, the
cross-machine socket fabric) can distinguish what happened and decide
what is safe to retry:

* :class:`WorkerCrash` — the worker process died (EOF on its pipe, e.g.
  SIGKILL/segfault).  The request is retried under the retry budget: a
  crash says nothing certain about the request itself.
* :class:`WorkerHang` — the worker stopped making progress (no heartbeat
  for :attr:`FaultPolicy.hang_timeout_s`) while a request was in flight.
  The worker is SIGKILLed and replaced; the request is retried.
* :class:`DeadlineExceeded` — the request's total time budget elapsed
  (queued + all attempts).  The request fails itself, typed, immediately;
  deadlines are *not* retried — the deadline already covered the retries.
* :class:`WireCorruption` — a serialization envelope failed its CRC or
  framing on either side of the worker boundary.  The payload bytes held
  by the parent are intact, so the request is retried.
* :class:`PoisonRequest` — the request exhausted its retry budget
  (:attr:`FaultPolicy.max_attempts`).  It is quarantined: it fails alone,
  with the per-attempt causes attached, while the pool keeps serving
  every other request.
* :class:`HostUnreachable` — a remote worker host (a standalone
  ``tcp://host:port`` spec) could not be dialed or re-dialed.  The
  requests it held are retried on surviving hosts; repeated dial
  failures trip the crash-loop breaker like any other respawn failure.

All of these subclass :class:`RequestError`, which subclasses the legacy
:class:`WorkerError`, so existing ``except WorkerError`` call sites keep
working unchanged.

:class:`FaultPolicy` is the knob set the executor's parent I/O loop
enforces: per-request deadlines, heartbeat-based hang detection, a retry
budget with deterministic exponential backoff + jitter (seeded, so test
runs are reproducible), a pool-level crash budget, and the crash-loop
breaker that (optionally) degrades the pool to the inline single-process
path instead of deadlocking when replacement forks keep dying.

Faults also have a wire form: :func:`serialize_fault` packs a typed
failure into an ``FLT1`` frame (the CRC-guarded frame container of
``docs/formats.md``) and :func:`deserialize_fault` rebuilds the typed
exception.  Workers reply with this frame instead of a bare string so
the parent — today across a pipe, tomorrow across a socket — recovers
the exact type.

Contract (see ``docs/architecture.md``): pure data — nothing here is
fork-shared or process-cached; policies and fault frames are immutable
values that cross the worker boundary by pickling/bytes.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.ckks.serialization import pack_frame, read_frame

__all__ = [
    "WorkerError",
    "RequestError",
    "WorkerCrash",
    "WorkerHang",
    "DeadlineExceeded",
    "WireCorruption",
    "PoisonRequest",
    "HostUnreachable",
    "FaultPolicy",
    "FAULT_MAGIC",
    "serialize_fault",
    "deserialize_fault",
]

FAULT_MAGIC = b"FLT1"


class WorkerError(RuntimeError):
    """Legacy base: any failure surfaced by the serving engine.

    Kept as the root of the taxonomy so pre-existing ``except
    WorkerError`` handlers continue to catch every typed subtype.
    """


class RequestError(WorkerError):
    """A failure attributed to one request, carried through its Future.

    Attributes:
        request_id: the executor's request id, if known.
        attempts: dispatch attempts made before the failure was raised.
        retriable: whether the executor's policy engine may retry the
            request after this failure (class-level default).
    """

    code = 0
    retriable = False

    def __init__(
        self,
        message: str,
        *,
        request_id: int | None = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.request_id = request_id
        self.attempts = attempts


class WorkerCrash(RequestError):
    """The worker process serving the request died (pipe EOF)."""

    code = 1
    retriable = True


class WorkerHang(RequestError):
    """The worker stopped heartbeating mid-request and was SIGKILLed."""

    code = 2
    retriable = True


class DeadlineExceeded(RequestError):
    """The request's total deadline elapsed (queued time + attempts)."""

    code = 3
    retriable = False


class WireCorruption(RequestError):
    """A boundary envelope failed CRC/framing; the source bytes are
    intact in the parent, so a retry re-sends them."""

    code = 4
    retriable = True


class PoisonRequest(RequestError):
    """Quarantined: the request exhausted its retry budget.

    ``causes`` lists one line per failed attempt (what failed and how),
    so the final typed error tells the whole story.
    """

    code = 5
    retriable = False

    def __init__(
        self,
        message: str,
        *,
        request_id: int | None = None,
        attempts: int = 0,
        causes: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message, request_id=request_id, attempts=attempts)
        self.causes = tuple(causes)


class HostUnreachable(RequestError):
    """A remote worker host could not be dialed (or re-dialed after it
    dropped).  Retriable: the executor requeues the host's in-flight
    requests and brings the host back up — on a surviving address if
    the dead one stays down."""

    code = 6
    retriable = True


_FAULT_TYPES: dict[int, type[RequestError]] = {
    cls.code: cls
    for cls in (
        RequestError,
        WorkerCrash,
        WorkerHang,
        DeadlineExceeded,
        WireCorruption,
        PoisonRequest,
        HostUnreachable,
    )
}


def serialize_fault(exc: RequestError) -> bytes:
    """Pack a typed failure into one ``FLT1`` frame (see docs/formats.md).

    Payload: ``u8 code``, ``u32 attempts``, ``u32 message length``, the
    UTF-8 message.  The frame container adds the tag, length, and CRC-32.
    """
    message = str(exc).encode("utf-8")
    payload = struct.pack("<BI", exc.code, max(0, exc.attempts)) + struct.pack(
        "<I", len(message)
    ) + message
    return pack_frame(FAULT_MAGIC, payload)


def deserialize_fault(
    blob: bytes, *, request_id: int | None = None
) -> RequestError:
    """Rebuild the typed exception from an ``FLT1`` frame.

    Unknown codes degrade to the :class:`RequestError` base rather than
    failing, so a newer worker never wedges an older parent.
    """
    tag, payload, _ = read_frame(blob, 0)
    if tag != FAULT_MAGIC:
        raise ValueError(f"not a fault frame: tag {tag!r}")
    code, attempts = struct.unpack_from("<BI", payload, 0)
    (msg_len,) = struct.unpack_from("<I", payload, 5)
    message = payload[9 : 9 + msg_len].decode("utf-8")
    cls = _FAULT_TYPES.get(code, RequestError)
    return cls(message, request_id=request_id, attempts=attempts)


@dataclass(frozen=True)
class FaultPolicy:
    """Per-pool fault-tolerance knobs, enforced in the parent I/O loop.

    Attributes:
        deadline_s: default per-request total deadline (queued time plus
            every attempt); ``None`` disables deadlines.  Overridable per
            request via ``submit(..., deadline_s=...)``.
        hang_timeout_s: no worker heartbeat for this long while a request
            is in flight declares the worker hung (SIGKILL + replace +
            retry).  ``None`` disables hang detection (and heartbeats).
        max_attempts: retry budget — total dispatch attempts per request
            before it is quarantined as a :class:`PoisonRequest`.
        backoff_base_s / backoff_factor / backoff_max_s: exponential
            backoff between attempts (attempt ``k`` waits roughly
            ``base * factor**(k-1)``, capped).
        backoff_jitter: fraction of the backoff added as deterministic
            jitter (seeded per request id and attempt).
        seed: jitter seed; fixed so recovery schedules are reproducible.
        crash_loop_threshold: this many *consecutive* worker crashes with
            no completed request in between trips the breaker.
        degrade_to_inline: what the breaker does — ``True`` drains the
            queue through the inline single-process path (with a warning)
            and keeps serving; ``False`` fails all outstanding requests
            and stops the pool (the historical behavior).
    """

    deadline_s: float | None = None
    hang_timeout_s: float | None = None
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.25
    seed: int = 0
    crash_loop_threshold: int = 5
    degrade_to_inline: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        if self.crash_loop_threshold < 1:
            raise ValueError("crash_loop_threshold must be >= 1")

    def heartbeat_interval_s(self) -> float | None:
        """Worker-side heartbeat period: a quarter of the hang timeout,
        clamped to [20 ms, 1 s] — several beats must fit in one timeout
        window so a single delayed beat never looks like a hang."""
        if self.hang_timeout_s is None:
            return None
        return min(1.0, max(0.02, self.hang_timeout_s / 4.0))

    def backoff_s(self, attempt: int, request_id: int) -> float:
        """Delay before re-dispatching ``request_id`` attempt ``attempt``
        (1-based: the delay after the first failure is ``backoff_s(1, ...)``).

        Deterministic: the jitter is a pure function of ``(seed,
        request_id, attempt)``, so a seeded chaos run replays the exact
        same recovery schedule.
        """
        if attempt < 1:
            return 0.0
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.backoff_jitter <= 0:
            return base
        digest = hashlib.blake2b(
            f"{self.seed}|{request_id}|{attempt}".encode(), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "big") / 2**64
        return base * (1.0 + self.backoff_jitter * unit)
