"""Multi-process plan serving: a fork-shared persistent worker pool.

:class:`ShardedExecutor` scales :meth:`ExecutionPlan.run_batch` past one
core.  Compiled plans are immutable, evaluation keys are read-only, and
every process-level cache (lowered closures, stacked key tensors, NTT
twiddle pre-forms, Galois permutation tables) is warmed *before* the pool
starts — so forked workers inherit all of it copy-on-write and execute
with zero per-process recompilation.  Only the per-request ciphertexts
move between processes, through the exact wire formats of
:mod:`repro.ckks.serialization` (packed at :func:`wire_coeff_bits`, with
raw-double scales, so a round trip is bit-exact and sharded output is
bit-identical to the single-process batched executor).  Every blob is
wrapped in a CRC-guarded ``ENV1`` envelope frame at the boundary, so a
flipped byte anywhere in transit is *detected* — and surfaces as a typed
per-request :class:`~repro.runtime.faults.WireCorruption`, never as a
silent wrong answer or a dead worker.

**Failure semantics** (see ``docs/architecture.md`` "Failure semantics"
and :mod:`repro.runtime.faults`): the parent I/O loop enforces a
:class:`~repro.runtime.faults.FaultPolicy` — per-request deadlines,
heartbeat-based hang detection (a hung worker is SIGKILLed and replaced
like a crashed one; a slow worker keeps heartbeating and is left alone),
a retry budget with deterministic exponential backoff + jitter, and
quarantine: a request that keeps killing workers fails *itself* with a
typed :class:`~repro.runtime.faults.PoisonRequest` while the pool keeps
serving everything else.  If replacement forks keep dying, the
crash-loop breaker either fails outstanding requests loudly (default) or
— with ``FaultPolicy(degrade_to_inline=True)`` — drains the queue
through the inline single-process path with a warning instead of
deadlocking.  Deterministic fault injection for all of these paths is
provided by :class:`~repro.runtime.chaos.FaultPlan` via the ``chaos=``
constructor knob.

``ship_plan=True`` selects the **wire path** instead of the warm-fork
path: the parent serializes the compiled plan once
(:func:`repro.runtime.plan_io.serialize_plan`, constants inline) and each
worker deserializes its own copy from bytes — no reliance on fork-shared
plan state, exactly what a cross-machine pool will do.  Outputs are
byte-identical either way (pinned in
``tests/integration/test_backend_identity.py``); the warm-fork default
stays cheaper on one host because workers inherit the lowered closures
and stacked key tensors copy-on-write instead of rebuilding them.

Topology: one duplex pipe per worker, at most one request in flight per
worker, a single parent-side I/O thread multiplexing dispatch,
collection, heartbeats, and timers with
:func:`multiprocessing.connection.wait`.  Because the parent always
knows which request (and which attempt) each worker holds, a crashed
worker is detected by pipe EOF, its in-flight request is re-queued under
the retry budget, and a replacement is forked — requests are never lost
and never duplicated.

``num_workers=0`` (or a platform without ``fork``) degrades to an inline
executor that still routes every request through the serialization
boundary, so codec behaviour is identical everywhere.  The inline path
never consults the chaos plan and cannot preempt, so deadlines/hangs do
not apply there (documented degradation ladder).

``modeled_request_io_s`` optionally charges each request a client-link
transfer delay inside the worker (upload before evaluation, download
after).  The serving benchmarks derive it from the serialization layer's
exact wire byte counts, making the pool's latency-hiding measurable even
on a single core; it defaults to zero and is never used by the library
itself.

Contract summary (see ``docs/architecture.md``): fork-shared — plans,
keys, every warmed cache, and the (immutable) policy/chaos values;
crossing the worker boundary — per-request ciphertexts/plaintexts always
(``ENV1``-framed ``CTF2``/``PTX1``), typed failures as ``FLT1`` frames,
the compiled plan itself only under ``ship_plan=True`` (``EPL1``);
process-cached in the parent — request table, futures, retry/backoff
schedule, and crash accounting.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
import warnings
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.serialization import (
    PLAINTEXT_MAGIC,
    WireFormatError,
    deserialize_ciphertext,
    deserialize_plaintext,
    pack_frame,
    read_frame,
    serialize_ciphertext,
    serialize_plaintext,
    wire_coeff_bits,
)
from repro.runtime.chaos import FaultPlan, flip_frame_byte
from repro.runtime.faults import (
    DeadlineExceeded,
    FaultPolicy,
    PoisonRequest,
    RequestError,
    WireCorruption,
    WorkerCrash,
    WorkerError,
    WorkerHang,
    deserialize_fault,
    serialize_fault,
)
from repro.runtime.plan import ExecutionPlan
from repro.runtime.serving import ServingConfig, config_from_legacy_kwargs
from repro.runtime.telemetry import (
    WorkerSpanRecorder,
    deserialize_trace_frame,
    get_telemetry,
    serialize_trace_context,
)
from repro.runtime.telemetry import now as _mono
from repro.runtime.transport import create_transport

__all__ = ["ShardedExecutor", "WorkerError", "ENVELOPE_MAGIC"]

# Boundary envelope: every blob crossing the worker pipe rides in one
# CRC-guarded frame so corruption is detected, not silently decoded.
ENVELOPE_MAGIC = b"ENV1"

# Distinguishes the metric label set of concurrently-live pools in one
# process (test suites build dozens); monotone so exports stay stable.
_POOL_IDS = itertools.count()


def _encode_value(value, coeff_bits: int) -> bytes:
    if isinstance(value, Ciphertext):
        blob = serialize_ciphertext(value, coeff_bits=coeff_bits)
    elif isinstance(value, Plaintext):
        blob = serialize_plaintext(value, coeff_bits=coeff_bits)
    else:
        raise TypeError(
            f"plan inputs must be Ciphertext or Plaintext, got {type(value).__name__}"
        )
    return pack_frame(ENVELOPE_MAGIC, blob)


def _decode_value(frame: bytes, basis):
    tag, blob, _ = read_frame(frame, 0)
    if tag != ENVELOPE_MAGIC:
        raise WireFormatError(f"unexpected boundary frame tag {tag!r}")
    if blob[:4] == PLAINTEXT_MAGIC:
        return deserialize_plaintext(blob, basis)
    return deserialize_ciphertext(blob, basis)


@dataclass(frozen=True)
class _WorkerConfig:
    """Per-worker knobs, pickled once into every (re)spawned child."""

    coeff_bits: int
    io_s: float
    fused: bool
    chaos: FaultPlan | None
    heartbeat_s: float | None
    # HostEnv for standalone worker hosts (tcp transport only): lets a
    # host with no fork relationship rebuild the evaluator that FPL1
    # plan bytes deserialize against.  None on same-host transports.
    env: object | None = None


def _wire_worker_loop(plan_blob: bytes, evaluator, conn, cfg: _WorkerConfig) -> None:
    """Child process body for the shipped-plan path: rebuild the plan
    from its EPL1 bytes (constants resolved from the inline PCS1
    payload, no re-trace, no fork-shared plan state), then serve."""
    from repro.runtime.plan_io import deserialize_plan

    plan = deserialize_plan(plan_blob, evaluator)
    _worker_loop(plan, conn, cfg)


def _heartbeat_loop(conn, send_lock, state, stop, interval: float) -> None:
    """Worker-side progress beacon: while a request is being served (and
    not chaos-suppressed), tell the parent we are alive every
    ``interval`` seconds.  A SIGSTOPped worker stops beating — which is
    exactly how the parent tells hung from slow."""
    while not stop.wait(interval):
        req_id = state.get("req")
        if req_id is None or state.get("suspend"):
            continue
        try:
            with send_lock:
                conn.send(("hb", req_id, state.get("attempt", 0)))
        except (BrokenPipeError, OSError):
            return


def _inject(action, state) -> None:
    """Apply one worker-side chaos action at its hook point."""
    if action.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action.kind == "stop":
        # Genuinely stuck-not-dead: the whole process (heartbeat thread
        # included) freezes until the parent SIGKILLs it.
        os.kill(os.getpid(), signal.SIGSTOP)
    elif action.kind == "hang":
        state["suspend"] = True  # stop heartbeating: look hung, not slow
        time.sleep(action.duration_s)
    elif action.kind == "slow":
        time.sleep(action.duration_s)


def _serve_request(
    plan, basis, cfg: _WorkerConfig, state, req_id, attempt, blobs, rec
):
    """Serve one request in the worker; always returns a reply tuple.

    Wire corruption in the incoming frames becomes a typed
    ``WireCorruption`` reply; any evaluation error becomes a typed
    ``RequestError`` reply — the worker itself never dies for a bad
    request, only for injected/real process faults.  ``rec`` is the
    attempt's :class:`WorkerSpanRecorder`; when the attempt is traced,
    deserialize/evaluate/serialize spans ship back in the reply's final
    TRC1 field (on a crash the worker dies with its spans — the parent's
    attempt span still records the attempt's extent and outcome).
    """
    chaos = cfg.chaos
    upload_s = download_s = cfg.io_s / 2.0
    try:
        try:
            with rec.span("deserialize", blobs=len(blobs)):
                inputs = [_decode_value(b, basis) for b in blobs]
        except WireFormatError as exc:
            fault = WireCorruption(
                f"request frame corrupt: {exc}",
                request_id=req_id,
                attempts=attempt + 1,
            )
            return ("err", req_id, attempt, serialize_fault(fault), rec.payload())
        action = chaos.decide("pre_evaluate", req_id, attempt) if chaos else None
        if action is not None:
            _inject(action, state)
        if upload_s:
            with rec.span("upload_wait"):
                time.sleep(upload_s)
        with rec.span("evaluate"):
            outputs = plan.run_batch([inputs], fused=cfg.fused)[0]
        action = chaos.decide("post_evaluate", req_id, attempt) if chaos else None
        if action is not None:
            _inject(action, state)
        with rec.span("serialize"):
            payload = [_encode_value(o, cfg.coeff_bits) for o in outputs]
        action = chaos.decide("reply_encode", req_id, attempt) if chaos else None
        if action is not None and action.kind == "flip":
            payload[0] = flip_frame_byte(payload[0], action)
        if download_s:
            with rec.span("download_wait"):
                time.sleep(download_s)
        return ("ok", req_id, attempt, payload, rec.payload())
    except Exception as exc:  # noqa: BLE001 — forwarded to the parent, typed
        fault = RequestError(
            f"{type(exc).__name__}: {exc}", request_id=req_id, attempts=attempt + 1
        )
        return ("err", req_id, attempt, serialize_fault(fault), rec.payload())


def _worker_loop(plan: ExecutionPlan, conn, cfg: _WorkerConfig) -> None:
    """Child process body: recv request -> replay plan -> send reply."""
    basis = plan.evaluator.basis
    send_lock = threading.Lock()
    state: dict = {"req": None, "attempt": 0, "suspend": False}
    hb_stop = threading.Event()
    if cfg.heartbeat_s:
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, send_lock, state, hb_stop, cfg.heartbeat_s),
            daemon=True,
        ).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        req_id, attempt, blobs, trace_blob = msg
        ctx = None
        if trace_blob is not None:
            try:
                kind, ctx = deserialize_trace_frame(trace_blob)
                if kind != "ctx":
                    ctx = None
            except WireFormatError:
                ctx = None  # a corrupt trace frame never fails the request
        rec = WorkerSpanRecorder(ctx, attempt)
        state["attempt"] = attempt
        state["suspend"] = False
        state["req"] = req_id
        reply = _serve_request(
            plan, basis, cfg, state, req_id, attempt, blobs, rec
        )
        state["req"] = None
        try:
            with send_lock:
                conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    hb_stop.set()
    conn.close()


class _Request:
    __slots__ = (
        "id",
        "blobs",
        "future",
        "attempts",
        "causes",
        "deadline_at",
        "submitted_at",
        "first_dispatch_at",
        "last_dispatch_at",
        "cancelled",
        "trace",
        "root_span",
        "attempt_span",
        "backoff_from",
    )

    def __init__(self, req_id: int, blobs, future: Future, deadline_at):
        self.id = req_id
        self.blobs = blobs
        self.future = future
        self.attempts = 0  # dispatches so far; attempt index is 0-based
        self.causes: list[str] = []
        self.deadline_at = deadline_at
        self.submitted_at = time.monotonic()
        self.first_dispatch_at: float | None = None
        self.last_dispatch_at: float | None = None
        self.cancelled = False
        self.trace = None  # TraceContext spans parent under (None=untraced)
        self.root_span = None  # executor-owned root handle, if we minted it
        self.attempt_span = None  # open span for the in-flight attempt
        self.backoff_from: float | None = None  # retry scheduled at (mono)


class _Worker:
    __slots__ = (
        "endpoint",
        "proc",
        "conn",
        "host",
        "busy",
        "busy_attempt",
        "dispatched_at",
        "last_beat",
    )

    def __init__(self, endpoint):
        self.endpoint = endpoint
        self.proc = endpoint.proc
        self.conn = endpoint.conn
        self.host = endpoint.host
        self.busy: int | None = None  # request id in flight, if any
        self.busy_attempt = 0
        self.dispatched_at = 0.0
        self.last_beat = 0.0

    def kill(self) -> None:
        self.endpoint.kill()

    def release(self) -> None:
        self.endpoint.release()


def _resolve(fut: Future, *, result=None, exc=None) -> None:
    """Resolve a future exactly once; cancelled futures are left alone."""
    if fut.done():
        return
    try:
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(result)
    except Exception:  # noqa: BLE001 — lost a race with cancel()
        pass


class ShardedExecutor:
    """Shards plan replays across a persistent pool of forked workers.

    Attributes:
        plan: the compiled :class:`ExecutionPlan` every worker replays.
        num_workers: pool size; ``0`` selects the inline (single-process)
            fallback that still crosses the serialization boundary.
        policy: the :class:`~repro.runtime.faults.FaultPolicy` enforced by
            the parent I/O loop (deadlines, hang detection, retry budget,
            quarantine, breaker behaviour).
        chaos: optional :class:`~repro.runtime.chaos.FaultPlan` consulted
            at the documented hook points for deterministic fault
            injection (tests/benches only; ``None`` in production).
        fused: route every replay through the arena-backed
            :class:`~repro.runtime.plan.FusedExecutor` instead of the
            batched interpreter.  Output bits are identical either way;
            the fused warm (arena + key pre-forms) happens in the parent
            before the first fork so workers inherit it copy-on-write.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        num_workers: int | None = None,
        *,
        config: ServingConfig | None = None,
        warm_inputs=None,
        **legacy,
    ) -> None:
        # Preferred surface: ``ShardedExecutor(plan, config=ServingConfig(...))``.
        # The historical keyword sprawl (ship_plan/fused/policy/chaos/...)
        # still works for one release behind a DeprecationWarning; the
        # positional pool size alone stays silent.
        cfg = config_from_legacy_kwargs(config, legacy, caller="ShardedExecutor")
        if legacy:
            raise TypeError(
                f"ShardedExecutor got unexpected keyword(s) {sorted(legacy)}"
            )
        if num_workers is not None:
            if config is not None:
                raise TypeError(
                    "pass the pool size inside ServingConfig when using config="
                )
            if num_workers < 0:
                raise ValueError("num_workers must be >= 0")
            cfg = cfg.replace(num_workers=num_workers)
        self.config = cfg
        num_workers = cfg.num_workers
        self.plan = plan
        self.num_workers = num_workers
        self.ship_plan = cfg.ship_plan
        self.fused = cfg.fused
        self.policy = (
            cfg.fault_policy if cfg.fault_policy is not None else FaultPolicy()
        )
        self.chaos = cfg.chaos
        self._plan_blob: bytes | None = None
        self._coeff_bits = cfg.coeff_bits or wire_coeff_bits(plan.evaluator.basis)
        self._io_s = float(cfg.modeled_request_io_s)
        self._max_crashes = (
            cfg.max_crash_respawns
            if cfg.max_crash_respawns is not None
            else 3 + 2 * max(num_workers, 1)
        )
        self._transport = None
        self._inline = num_workers == 0 or "fork" not in mp.get_all_start_methods()
        if self._inline and num_workers > 0:
            warnings.warn(
                "fork start method unavailable; ShardedExecutor degrades to "
                "the inline single-process executor",
                RuntimeWarning,
                stacklevel=2,
            )
        self._ctx = None if self._inline else mp.get_context("fork")
        self._workers: list[_Worker] = []
        self._io_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._pending: deque[int] = deque()
        self._delayed: list[tuple[float, int]] = []  # (ready_at, req_id) heap
        self._requests: dict[int, _Request] = {}
        self._consecutive_crashes = 0
        self._degraded = False
        self._has_deadlines = self.policy.deadline_s is not None
        self._req_ids = itertools.count()
        self._started = False
        # Single source of truth for pool accounting: a telemetry counter
        # group (unique per pool instance); stats() stays a dict view.
        self._telemetry = get_telemetry()
        self._m = self._telemetry.group(
            "executor", pool=str(next(_POOL_IDS))
        ).declare(
            "submitted",
            "completed",
            "errors",
            "worker_crashes",
            "respawns",
            "retries",
            "hang_kills",
            "deadline_failures",
            "wire_corruptions",
            "poisoned",
            "cancelled",
            "busy_s",
        )
        self._staleness_gauge = self._telemetry.gauge(
            "executor_heartbeat_staleness_s", **self._m.labels
        )
        # Warm every fork-shared cache in the parent: the lowered closure
        # schedule always, plus (optionally) one real replay so stacked
        # key tensors and permutation tables exist before the first fork.
        # Under ``fused=True`` the warm goes through the fused replayer so
        # the arena layout, fused closures, and per-key pre-formed tensors
        # (``SwitchingKey.stacked_pre``) are all built once in the parent
        # and inherited copy-on-write — the pre-forms are by far the most
        # expensive warm step and must never be paid per worker.
        plan.run_batch(
            [warm_inputs] if warm_inputs is not None else [], fused=self.fused
        )
        if self.ship_plan and not self._inline:
            # Serialize once; every (re)spawned worker deserializes the
            # same artifact instead of relying on the fork-warmed plan.
            from repro.runtime.plan_io import serialize_plan

            self._plan_blob = serialize_plan(plan)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardedExecutor":
        with self._lock:  # concurrent first submits must not double-fork
            if self._started or self._inline:
                self._started = True
                return self
            self._stop.clear()
            self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
            self._transport = self._make_transport()
            for _ in range(self.num_workers):
                self._workers.append(self._spawn())
            self._io_thread = threading.Thread(
                target=self._io_loop, name="sharded-executor-io", daemon=True
            )
            self._io_thread.start()
            self._started = True
        return self

    def close(self) -> None:
        """Stop the pool; outstanding futures fail.  Idempotent, and loud
        (warns with pids) when a worker has to be escalated or leaks
        instead of joining."""
        if self._inline or not self._started:
            self._started = False
            return
        self._started = False  # flip first: a second close() is a no-op
        self._stop.set()
        self._wake()
        if self._io_thread is not None:
            self._io_thread.join(timeout=5.0)
            if self._io_thread.is_alive():
                warnings.warn(
                    "ShardedExecutor I/O thread failed to stop within 5s",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._io_thread = None
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        escalated: list[int] = []
        leaked: list[int] = []
        for worker in self._workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                # A SIGSTOPped (or otherwise wedged) worker ignores the
                # sentinel and holds SIGTERM pending; SIGKILL (locally,
                # or the transport's kill-slot escalation) is the only
                # path guaranteed to reap it.
                escalated.append(worker.proc.pid)
                worker.kill()
                worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                leaked.append(worker.proc.pid)
            worker.conn.close()
            worker.release()
        if escalated:
            warnings.warn(
                f"ShardedExecutor.close(): worker(s) failed to join and were "
                f"SIGKILLed: pids {escalated}",
                RuntimeWarning,
                stacklevel=2,
            )
        if leaked:
            warnings.warn(
                f"ShardedExecutor.close(): worker(s) leaked (still alive after "
                f"SIGKILL): pids {leaked}",
                RuntimeWarning,
                stacklevel=2,
            )
        self._workers.clear()
        # Transport teardown frees everything workers rode on — sockets,
        # host processes, /dev/shm segments.  Transports also register
        # atexit/finalize hooks, so even a run that never reaches this
        # line cannot leak segments or bound ports.
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        for pipe_end in (self._wake_r, self._wake_w):
            try:
                pipe_end.close()
            except OSError:
                pass
        with self._lock:
            requests = list(self._requests.values())
            self._requests.clear()
            self._pending.clear()
            self._delayed.clear()
        for req in requests:
            self._close_attempt(req, "closed")
            self._finish_trace(req, "closed")
            _resolve(req.future, exc=RuntimeError("executor closed"))

    def __enter__(self) -> "ShardedExecutor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, inputs, *, deadline_s: float | None = None, trace=None
    ) -> Future:
        """Queue one plan replay; resolves to its output ciphertexts.

        ``deadline_s`` bounds the request's *total* time in the engine
        (queue wait plus every attempt); past it the request fails with a
        typed :class:`~repro.runtime.faults.DeadlineExceeded`.  ``None``
        falls back to the policy default.

        ``trace`` optionally parents this request's spans under a caller
        :class:`~repro.runtime.telemetry.TraceContext` (the streaming
        front end passes its service span); otherwise the executor mints
        a fresh trace at ingress when tracing is enabled.
        """
        if not self._started:
            self.start()
        if not self._inline and not self._degraded and self._stop.is_set():
            # The pool exceeded its crash budget and shut itself down;
            # fail fast instead of queueing requests nobody will serve.
            raise RuntimeError("executor stopped (crash budget exceeded)")
        blobs = [_encode_value(v, self._coeff_bits) for v in inputs]
        fut: Future = Future()
        if self._inline or self._degraded:
            self._run_inline(blobs, fut, trace=trace)
            return fut
        deadline = deadline_s if deadline_s is not None else self.policy.deadline_s
        deadline_at = None if deadline is None else time.monotonic() + deadline
        with self._lock:
            req_id = next(self._req_ids)
            fut.request_id = req_id
            self._m.inc("submitted")
            req = _Request(req_id, blobs, fut, deadline_at)
            # Trace minting happens under the lock so trace ids follow
            # request ids deterministically under concurrent submitters.
            if trace is not None and trace.sampled:
                req.trace = trace
            else:
                root = self._telemetry.start_trace(
                    "request", category="serve", request=req_id
                )
                if root:
                    req.root_span = root
                    req.trace = root.ctx
            self._requests[req_id] = req
            self._pending.append(req_id)
            if deadline_at is not None:
                self._has_deadlines = True
        self._wake()
        return fut

    def cancel(self, fut: Future) -> bool:
        """Cancel one submitted request.

        Pending (queued or backoff-delayed) requests are dropped
        immediately; an in-flight request is *drained* — its worker is
        left to finish and the result is discarded, so the pool stays
        healthy.  Returns whether the future was cancelled.
        """
        req_id = getattr(fut, "request_id", None)
        if req_id is None:
            return False
        with self._lock:
            req = self._requests.get(req_id)
            if req is None or req.cancelled:
                return False
            in_flight = any(w.busy == req_id for w in self._workers)
            req.cancelled = True
            if not in_flight:
                self._requests.pop(req_id, None)
            self._m.inc("cancelled")
        self._close_attempt(req, "cancelled")
        self._finish_trace(req, "cancelled")
        return fut.cancel()

    def run_batch(
        self, batches, timeout: float | None = None, *, deadline_s: float | None = None
    ):
        """Shard a materialized batch across the pool, order-preserving.

        Bit-identical to ``plan.run_batch(batches)``: every entry is the
        same plan replay, inputs/outputs round-trip losslessly through the
        wire format, and results are returned in submission order no
        matter which worker finished first.

        ``timeout`` bounds the whole batch; on expiry every unfinished
        request is cancelled (queued entries dropped, in-flight entries
        drained and discarded), ``TimeoutError`` is raised, and the pool
        remains fully serviceable for the next batch.
        """
        futures = [self.submit(entry, deadline_s=deadline_s) for entry in batches]
        budget = None if timeout is None else time.monotonic() + timeout
        results = []
        try:
            for fut in futures:
                remaining = None if budget is None else budget - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise _FuturesTimeout()
                results.append(fut.result(timeout=remaining))
        except (_FuturesTimeout, TimeoutError):
            dropped = sum(
                1 for f in futures if not f.done() and self.cancel(f)
            )
            raise TimeoutError(
                f"run_batch timed out after {timeout:g}s; cancelled {dropped} "
                "outstanding request(s) (queued dropped, in-flight drained); "
                "the pool remains serviceable"
            ) from None
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            out = self._m.to_dict()  # view over the telemetry registry
            out["pending"] = len(self._pending) + len(self._delayed)
        out["num_workers"] = self.num_workers
        out["inline"] = self._inline
        out["plan_wire"] = self._plan_blob is not None
        out["fused"] = self.fused
        out["degraded"] = self._degraded
        out["transport"] = self.config.transport
        transport = self._transport
        if transport is not None:
            out["transport_stats"] = transport.stats()
        return out

    def worker_pids(self) -> list[int]:
        return [w.proc.pid for w in self._workers]

    # ------------------------------------------------------------------
    # Inline / degraded path
    # ------------------------------------------------------------------

    def _run_inline(self, blobs, fut: Future, trace=None) -> None:
        basis = self.plan.evaluator.basis
        self._m.inc("submitted")
        if trace is not None and trace.sampled:
            span = self._telemetry.child_span(
                "inline_evaluate", trace, category="serve"
            )
        else:
            span = self._telemetry.start_trace("inline_evaluate", category="serve")
        try:
            if self._io_s:  # parity with the worker-side link model
                time.sleep(self._io_s)
            inputs = [_decode_value(b, basis) for b in blobs]
            outputs = self.plan.run_batch([inputs], fused=self.fused)[0]
            round_tripped = [
                _decode_value(_encode_value(o, self._coeff_bits), basis)
                for o in outputs
            ]
        except Exception as exc:  # noqa: BLE001 — mirror the pool contract
            span.end(status="error")
            self._m.inc("errors")
            fut.attempts = 1
            _resolve(
                fut, exc=RequestError(f"{type(exc).__name__}: {exc}", attempts=1)
            )
            return
        span.end(status="ok")
        self._m.inc("completed")
        fut.attempts = 1
        fut.retry_s = 0.0
        _resolve(fut, result=round_tripped)

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _close_attempt(req: _Request, status: str, **attrs) -> None:
        """Close the in-flight attempt span (idempotent): the parent
        records the attempt's extent and outcome even when the worker
        died and its own spans never came back."""
        span, req.attempt_span = req.attempt_span, None
        if span is not None:
            span.end(status=status, **attrs)

    @staticmethod
    def _finish_trace(req: _Request, status: str) -> None:
        """Close the request root span iff this executor minted it (a
        caller-provided trace context is closed by the caller)."""
        span, req.root_span = req.root_span, None
        if span is not None:
            span.end(status=status)

    def _accrue_busy(self, worker: _Worker, now: float) -> None:
        """Fold one finished (or terminated) attempt's wall time into
        the pool's busy-seconds counter — worker utilization is
        ``busy_s / (workers * pool uptime)``."""
        if worker.dispatched_at:
            self._m.inc("busy_s", max(0.0, now - worker.dispatched_at))
            worker.dispatched_at = 0.0

    def _ingest_worker_spans(self, span_blob) -> None:
        if span_blob is None:
            return
        try:
            kind, spans = deserialize_trace_frame(span_blob)
        except (WireFormatError, ValueError, KeyError):
            return  # corrupt telemetry never fails a request
        if kind == "spans":
            try:
                self._telemetry.ingest_spans(spans)
            except (TypeError, KeyError):
                pass

    # ------------------------------------------------------------------
    # Pool internals (parent I/O thread unless noted)
    # ------------------------------------------------------------------

    def _make_transport(self):
        """Build the worker-boundary transport from the serving config.

        The executor stays the composition root: it hands the transport
        the worker loop callable and its leading arguments (the wire
        path's plan blob + evaluator, or the warm-fork plan object), so
        transports never reach into plan internals themselves.
        """
        env = None
        authkey = None
        if self.config.transport == "tcp":
            from repro.runtime.coordinator import HostEnv

            evaluator = self.plan.evaluator
            env = HostEnv(
                params=evaluator.params,
                primes=tuple(evaluator.basis.primes),
            )
            if self.config.authkey_file is not None:
                from repro.runtime.worker_host import load_authkey

                authkey = load_authkey(self.config.authkey_file)
        cfg = _WorkerConfig(
            coeff_bits=self._coeff_bits,
            io_s=self._io_s,
            fused=self.fused,
            chaos=self.chaos,
            heartbeat_s=self.policy.heartbeat_interval_s(),
            env=env,
        )
        if self._plan_blob is not None:
            target, head = _wire_worker_loop, (self._plan_blob, self.plan.evaluator)
        else:
            target, head = _worker_loop, (self.plan,)
        return create_transport(
            self.config.transport,
            ctx=self._ctx,
            target=target,
            head=head,
            cfg=cfg,
            plan=self.plan,
            plan_blob=self._plan_blob,
            signature=getattr(self.plan, "signature", ""),
            hosts=self.config.hosts,
            authkey=authkey,
            ring_bytes=self.config.ring_bytes,
            batch_messages=self.config.batch_messages,
            chaos=self.chaos,
        )

    def _spawn(self) -> _Worker:
        return _Worker(self._transport.spawn())

    def _respawn(self, reason: str) -> None:
        """Replace a retired worker, accounting the respawn; a spawn
        failure (e.g. an unreachable worker host) trips the breaker
        instead of killing the I/O thread."""
        if self._stop.is_set():
            return  # closing: late EOFs must not refork workers/hosts
        try:
            worker = self._spawn()
        except Exception as exc:  # noqa: BLE001 — any spawn failure trips
            self._trip_breaker(f"respawn after {reason} failed: {exc}")
            return
        self._workers.append(worker)
        self._m.inc("respawns")
        self._telemetry.event(
            "respawn", pool=self._m.labels["pool"], reason=reason, host=worker.host
        )

    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"x")
        except (BrokenPipeError, OSError, AttributeError):
            pass

    def _io_loop(self) -> None:
        while not self._stop.is_set():
            now = time.monotonic()
            self._promote_delayed(now)
            self._check_deadlines(now)
            self._check_hangs(now)
            if self._stop.is_set():  # a breaker may have tripped above
                break
            self._dispatch()
            conns = [w.conn for w in self._workers] + [self._wake_r]
            timeout = 0.05 if self._timers_active() else 0.2
            for ready in connection_wait(conns, timeout=timeout):
                if ready is self._wake_r:
                    while self._wake_r.poll():
                        self._wake_r.recv_bytes()
                    continue
                worker = next(
                    (w for w in self._workers if w.conn is ready), None
                )
                if worker is None:  # retired earlier in this very loop
                    continue
                try:
                    msg = ready.recv()
                except (EOFError, OSError):
                    self._on_worker_death(worker)
                    continue
                self._on_message(worker, msg)

    def _timers_active(self) -> bool:
        return bool(
            self._delayed
            or self._has_deadlines
            or (
                self.policy.hang_timeout_s is not None
                and any(w.busy is not None for w in self._workers)
            )
        )

    def _promote_delayed(self, now: float) -> None:
        """Move backoff-expired retries to the *front* of the queue."""
        due: list[int] = []
        with self._lock:
            while self._delayed and self._delayed[0][0] <= now:
                _, req_id = heapq.heappop(self._delayed)
                req = self._requests.get(req_id)
                if req is not None and not req.cancelled:
                    due.append(req_id)
            if due:
                self._pending.extendleft(reversed(due))

    def _check_deadlines(self, now: float) -> None:
        if not self._has_deadlines:
            return
        in_flight = {w.busy: w for w in self._workers if w.busy is not None}
        with self._lock:
            expired = [
                req
                for req in self._requests.values()
                if req.deadline_at is not None
                and now > req.deadline_at
                and not req.cancelled
            ]
        for req in expired:
            worker = in_flight.get(req.id)
            if worker is not None:
                # The worker is stuck on this request past its budget;
                # the only way to reclaim it is to replace the process.
                self._accrue_busy(worker, now)
                self._kill_and_retire(worker)
                self._respawn("deadline")
            with self._lock:
                self._requests.pop(req.id, None)
            self._m.inc("deadline_failures")
            self._m.inc("errors")
            elapsed = now - req.submitted_at
            self._close_attempt(req, "deadline")
            self._finish_trace(req, "deadline")
            self._telemetry.event(
                "deadline_failure",
                request=req.id,
                attempts=req.attempts,
                code=DeadlineExceeded.code,
            )
            req.future.attempts = req.attempts
            _resolve(
                req.future,
                exc=DeadlineExceeded(
                    f"request {req.id} exceeded its {elapsed:.3f}s "
                    f"deadline after {req.attempts} attempt(s)",
                    request_id=req.id,
                    attempts=req.attempts,
                ),
            )

    def _check_hangs(self, now: float) -> None:
        hang_timeout = self.policy.hang_timeout_s
        if hang_timeout is None:
            return
        staleness = 0.0
        for worker in list(self._workers):
            if worker.busy is None:
                continue
            stale = now - worker.last_beat
            if stale > staleness:
                staleness = stale
            if stale <= hang_timeout:
                continue
            req_id = worker.busy
            pid = worker.proc.pid
            host = worker.host
            self._accrue_busy(worker, now)
            self._kill_and_retire(worker)
            self._m.inc("hang_kills")
            with self._lock:
                req = self._requests.get(req_id)
                if req is not None and req.cancelled:
                    self._requests.pop(req_id, None)
                    req = None
            self._telemetry.event(
                "hang_kill",
                pool=self._m.labels["pool"],
                worker_pid=pid,
                host=host,
                request=req_id,
                code=WorkerHang.code,
            )
            if req is not None:
                self._close_attempt(req, "hang", worker_pid=pid)
                self._retry_or_fail(
                    req,
                    f"worker pid {pid} hung (no heartbeat for "
                    f"{hang_timeout:g}s) on attempt {req.attempts}",
                    kind=WorkerHang,
                )
            self._respawn("hang")
        self._staleness_gauge.set(staleness)

    def _dispatch(self) -> None:
        for worker in list(self._workers):
            if worker.busy is not None:
                continue
            req = self._next_ready_request()
            if req is None:
                return
            blobs = req.blobs
            if self.chaos is not None:
                action = self.chaos.decide("pre_dispatch", req.id, req.attempts)
                if action is not None and action.kind == "flip":
                    blobs = [flip_frame_byte(blobs[0], action), *blobs[1:]]
            trace_blob = None
            if req.trace is not None and req.trace.sampled:
                now = _mono()
                if req.backoff_from is not None:
                    self._telemetry.record_span(
                        "backoff",
                        req.trace,
                        req.backoff_from,
                        now,
                        category="serve",
                        after_attempt=req.attempts - 1,
                    )
                if req.first_dispatch_at is None:
                    self._telemetry.record_span(
                        "queue_wait", req.trace, req.submitted_at, now,
                        category="serve",
                    )
                req.attempt_span = self._telemetry.child_span(
                    f"attempt-{req.attempts}",
                    req.trace,
                    category="serve",
                    worker_pid=worker.proc.pid,
                )
                trace_blob = serialize_trace_context(req.attempt_span.ctx)
            req.backoff_from = None
            try:
                worker.conn.send((req.id, req.attempts, blobs, trace_blob))
            except (BrokenPipeError, OSError):
                self._close_attempt(req, "send_failed")
                with self._lock:
                    self._pending.appendleft(req.id)
                self._on_worker_death(worker)
                continue
            now = time.monotonic()
            req.attempts += 1
            if req.first_dispatch_at is None:
                req.first_dispatch_at = now
            req.last_dispatch_at = now
            worker.busy = req.id
            worker.busy_attempt = req.attempts - 1
            worker.dispatched_at = now
            worker.last_beat = now

    def _next_ready_request(self) -> _Request | None:
        with self._lock:
            while self._pending:
                req_id = self._pending.popleft()
                req = self._requests.get(req_id)
                if req is not None and not req.cancelled:
                    return req
        return None

    def _on_message(self, worker: _Worker, msg) -> None:
        kind = msg[0]
        if kind == "hb":
            _, req_id, attempt = msg
            if worker.busy == req_id and worker.busy_attempt == attempt:
                worker.last_beat = time.monotonic()
            return
        _, req_id, attempt, payload, span_blob = msg
        if worker.busy != req_id or worker.busy_attempt != attempt:
            return  # stale reply from a superseded attempt; drop it
        worker.busy = None
        self._accrue_busy(worker, _mono())
        with self._lock:
            req = self._requests.get(req_id)
            if req is not None and req.cancelled:
                self._requests.pop(req_id, None)
                req = None
        if req is None:
            return
        self._ingest_worker_spans(span_blob)
        if kind == "err":
            fault = deserialize_fault(payload, request_id=req_id)
            if isinstance(fault, WireCorruption):
                self._m.inc("wire_corruptions")
                self._close_attempt(req, "wire_corruption")
                self._telemetry.event(
                    "wire_corruption", request=req_id, code=WireCorruption.code
                )
                self._retry_or_fail(req, str(fault), kind=WireCorruption)
                return
            fault.attempts = req.attempts
            with self._lock:
                self._requests.pop(req_id, None)
            self._m.inc("errors")
            self._close_attempt(req, "error", code=getattr(fault, "code", None))
            self._finish_trace(req, "error")
            req.future.attempts = req.attempts
            _resolve(req.future, exc=fault)
            return
        basis = self.plan.evaluator.basis
        decode_from = _mono()
        try:
            outputs = [_decode_value(b, basis) for b in payload]
        except (WireFormatError, ValueError) as exc:
            self._m.inc("wire_corruptions")
            self._close_attempt(req, "wire_corruption")
            self._telemetry.event(
                "wire_corruption", request=req_id, code=WireCorruption.code
            )
            self._retry_or_fail(req, f"reply frame corrupt: {exc}", kind=WireCorruption)
            return
        with self._lock:
            self._requests.pop(req_id, None)
        self._m.inc("completed")
        self._consecutive_crashes = 0
        if req.trace is not None and req.trace.sampled:
            self._telemetry.record_span(
                "reply_decode", req.trace, decode_from, _mono(), category="serve"
            )
        self._close_attempt(req, "ok")
        self._finish_trace(req, "ok")
        req.future.attempts = req.attempts
        req.future.retry_s = (
            (req.last_dispatch_at or 0.0) - (req.first_dispatch_at or 0.0)
            if req.attempts > 1
            else 0.0
        )
        _resolve(req.future, result=outputs)

    def _retry_or_fail(self, req: _Request, cause: str, *, kind) -> None:
        """Apply the retry budget to one failed attempt.

        Either schedules a backoff-delayed re-dispatch or quarantines the
        request as a typed :class:`PoisonRequest` carrying every cause.
        The caller has already freed/replaced the worker.
        """
        req.causes.append(cause)
        if req.attempts >= self.policy.max_attempts:
            with self._lock:
                self._requests.pop(req.id, None)
            self._m.inc("poisoned")
            self._m.inc("errors")
            self._telemetry.event(
                "quarantine",
                request=req.id,
                attempts=req.attempts,
                code=PoisonRequest.code,
                causes=len(req.causes),
            )
            self._finish_trace(req, "poisoned")
            req.future.attempts = req.attempts
            _resolve(
                req.future,
                exc=PoisonRequest(
                    f"request {req.id} quarantined after {req.attempts} "
                    f"attempt(s): " + "; ".join(req.causes),
                    request_id=req.id,
                    attempts=req.attempts,
                    causes=tuple(req.causes),
                ),
            )
            return
        if kind is not None and not kind.retriable:
            raise AssertionError(f"{kind.__name__} must not reach the retry path")
        delay = self.policy.backoff_s(req.attempts, req.id)
        self._m.inc("retries")
        self._telemetry.event(
            "retry",
            request=req.id,
            attempt=req.attempts,
            code=None if kind is None else kind.code,
            backoff_s=delay,
        )
        req.backoff_from = _mono()
        with self._lock:
            heapq.heappush(self._delayed, (time.monotonic() + delay, req.id))

    def _kill_and_retire(self, worker: _Worker) -> None:
        """Forcibly stop a worker the parent has given up on
        (hang/deadline) and remove it from the pool without touching
        crash accounting.  ``kill`` goes through the transport endpoint
        (a SIGKILL locally, a kill-slot control op on a worker host)."""
        if worker in self._workers:
            self._workers.remove(worker)
        worker.kill()
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=2.0)
        worker.release()

    def _retire(self, worker: _Worker) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        worker.release()

    def _on_worker_death(self, worker: _Worker) -> None:
        """An unexpected EOF: account the crash, retry its request under
        the budget, and either respawn or trip the breaker."""
        if worker not in self._workers:
            return
        pid = worker.proc.pid
        self._accrue_busy(worker, _mono())
        self._retire(worker)
        self._m.inc("worker_crashes")
        self._consecutive_crashes += 1
        req_id = worker.busy
        self._telemetry.event(
            "worker_crash",
            pool=self._m.labels["pool"],
            worker_pid=pid,
            host=worker.host,
            request=req_id,
            code=WorkerCrash.code,
        )
        if req_id is not None:
            with self._lock:
                req = self._requests.get(req_id)
                if req is not None and req.cancelled:
                    self._requests.pop(req_id, None)
                    req = None
            if req is not None:
                self._close_attempt(req, "crash", worker_pid=pid)
                self._retry_or_fail(
                    req,
                    f"worker pid {pid} crashed on attempt {req.attempts}",
                    kind=WorkerCrash,
                )
        budget_blown = self._m.get("worker_crashes") > self._max_crashes
        crash_loop = self._consecutive_crashes >= self.policy.crash_loop_threshold
        if budget_blown or crash_loop:
            reason = (
                f"pool exceeded {self._max_crashes} worker crashes"
                if budget_blown
                else f"{self._consecutive_crashes} consecutive worker crashes "
                "with no completed request (crash loop)"
            )
            self._trip_breaker(reason)
            return
        self._respawn("crash")

    def _trip_breaker(self, reason: str) -> None:
        """Replacement forks keep dying: stop forking.  Either degrade to
        the inline path (serve the queue in-process, keep accepting) or
        fail everything outstanding and stop the pool."""
        for worker in list(self._workers):
            self._kill_and_retire(worker)
        if self.policy.degrade_to_inline:
            warnings.warn(
                f"ShardedExecutor crash-loop breaker tripped ({reason}); "
                "degrading to the inline single-process executor — worker "
                "fault injection and preemption no longer apply",
                RuntimeWarning,
                stacklevel=2,
            )
            self._degraded = True
            with self._lock:
                queued = sorted(self._requests.items())
                self._requests.clear()
                self._pending.clear()
                self._delayed.clear()
            for _, req in queued:
                if req.cancelled:
                    continue
                self._close_attempt(req, "breaker")
                self._finish_trace(req, "degraded_inline")
                # Inline drain double-counts "submitted"; undo it so the
                # counter keeps meaning "requests entering the engine".
                self._run_inline(req.blobs, req.future)
                self._m.inc("submitted", -1)
            self._stop.set()
            return
        with self._lock:
            requests = list(self._requests.values())
            self._requests.clear()
            self._pending.clear()
            self._delayed.clear()
        for req in requests:
            self._close_attempt(req, "breaker")
            self._finish_trace(req, "breaker")
            _resolve(
                req.future,
                exc=WorkerCrash(reason, request_id=req.id, attempts=req.attempts),
            )
        self._stop.set()
