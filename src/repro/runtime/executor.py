"""Multi-process plan serving: a fork-shared persistent worker pool.

:class:`ShardedExecutor` scales :meth:`ExecutionPlan.run_batch` past one
core.  Compiled plans are immutable, evaluation keys are read-only, and
every process-level cache (lowered closures, stacked key tensors, NTT
twiddle pre-forms, Galois permutation tables) is warmed *before* the pool
starts — so forked workers inherit all of it copy-on-write and execute
with zero per-process recompilation.  Only the per-request ciphertexts
move between processes, through the exact wire formats of
:mod:`repro.ckks.serialization` (packed at :func:`wire_coeff_bits`, with
raw-double scales, so a round trip is bit-exact and sharded output is
bit-identical to the single-process batched executor).

``ship_plan=True`` selects the **wire path** instead of the warm-fork
path: the parent serializes the compiled plan once
(:func:`repro.runtime.plan_io.serialize_plan`, constants inline) and each
worker deserializes its own copy from bytes — no reliance on fork-shared
plan state, exactly what a cross-machine pool will do.  Outputs are
byte-identical either way (pinned in
``tests/integration/test_backend_identity.py``); the warm-fork default
stays cheaper on one host because workers inherit the lowered closures
and stacked key tensors copy-on-write instead of rebuilding them.

Topology: one duplex pipe per worker, at most one request in flight per
worker, a single parent-side I/O thread multiplexing dispatch and
collection with :func:`multiprocessing.connection.wait`.  Because the
parent always knows which request each worker holds, a crashed worker is
detected by pipe EOF, its in-flight request is requeued at the front,
and a replacement is forked — requests are never lost and never
duplicated.

``num_workers=0`` (or a platform without ``fork``) degrades to an inline
executor that still routes every request through the serialization
boundary, so codec behaviour is identical everywhere.

``modeled_request_io_s`` optionally charges each request a client-link
transfer delay inside the worker (upload before evaluation, download
after).  The serving benchmarks derive it from the serialization layer's
exact wire byte counts, making the pool's latency-hiding measurable even
on a single core; it defaults to zero and is never used by the library
itself.

Contract summary (see ``docs/architecture.md``): fork-shared — plans,
keys, and every warmed cache (default path); crossing the worker
boundary — per-request ciphertexts/plaintexts always (``CTF2``/``PTX1``),
the compiled plan itself only under ``ship_plan=True`` (``EPL1``);
process-cached in the parent — pending payloads, futures, and crash
accounting.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
import time
import warnings
from collections import deque
from concurrent.futures import Future
from multiprocessing.connection import wait as connection_wait

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.serialization import (
    PLAINTEXT_MAGIC,
    deserialize_ciphertext,
    deserialize_plaintext,
    serialize_ciphertext,
    serialize_plaintext,
    wire_coeff_bits,
)
from repro.runtime.plan import ExecutionPlan

__all__ = ["ShardedExecutor", "WorkerError"]


class WorkerError(RuntimeError):
    """An exception raised inside a worker process, re-raised verbatim
    (as text) in the parent so failed requests fail their futures instead
    of wedging the pool."""


def _encode_value(value, coeff_bits: int) -> bytes:
    if isinstance(value, Ciphertext):
        return serialize_ciphertext(value, coeff_bits=coeff_bits)
    if isinstance(value, Plaintext):
        return serialize_plaintext(value, coeff_bits=coeff_bits)
    raise TypeError(
        f"plan inputs must be Ciphertext or Plaintext, got {type(value).__name__}"
    )


def _decode_value(blob: bytes, basis):
    if blob[:4] == PLAINTEXT_MAGIC:
        return deserialize_plaintext(blob, basis)
    return deserialize_ciphertext(blob, basis)


def _wire_worker_loop(
    plan_blob: bytes, evaluator, conn, coeff_bits: int, io_s: float, fused: bool
) -> None:
    """Child process body for the shipped-plan path: rebuild the plan
    from its EPL1 bytes (constants resolved from the inline PCS1
    payload, no re-trace, no fork-shared plan state), then serve."""
    from repro.runtime.plan_io import deserialize_plan

    plan = deserialize_plan(plan_blob, evaluator)
    _worker_loop(plan, conn, coeff_bits, io_s, fused)


def _worker_loop(
    plan: ExecutionPlan, conn, coeff_bits: int, io_s: float, fused: bool = False
) -> None:
    """Child process body: recv request -> replay plan -> send result."""
    basis = plan.evaluator.basis
    upload_s = download_s = io_s / 2.0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        req_id, blobs = msg
        try:
            if upload_s:
                time.sleep(upload_s)
            inputs = [_decode_value(b, basis) for b in blobs]
            outputs = plan.run_batch([inputs], fused=fused)[0]
            payload = [_encode_value(o, coeff_bits) for o in outputs]
            if download_s:
                time.sleep(download_s)
            reply = (req_id, True, payload)
        except Exception as exc:  # noqa: BLE001 — forwarded to the parent
            reply = (req_id, False, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _Worker:
    __slots__ = ("proc", "conn", "busy")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.busy: int | None = None  # request id in flight, if any


class ShardedExecutor:
    """Shards plan replays across a persistent pool of forked workers.

    Attributes:
        plan: the compiled :class:`ExecutionPlan` every worker replays.
        num_workers: pool size; ``0`` selects the inline (single-process)
            fallback that still crosses the serialization boundary.
        fused: route every replay through the arena-backed
            :class:`~repro.runtime.plan.FusedExecutor` instead of the
            batched interpreter.  Output bits are identical either way;
            the fused warm (arena + key pre-forms) happens in the parent
            before the first fork so workers inherit it copy-on-write.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        num_workers: int = 2,
        *,
        coeff_bits: int | None = None,
        modeled_request_io_s: float = 0.0,
        warm_inputs=None,
        max_crash_respawns: int | None = None,
        ship_plan: bool = False,
        fused: bool = False,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.plan = plan
        self.num_workers = num_workers
        self.ship_plan = ship_plan
        self.fused = fused
        self._plan_blob: bytes | None = None
        self._coeff_bits = coeff_bits or wire_coeff_bits(plan.evaluator.basis)
        self._io_s = float(modeled_request_io_s)
        self._max_crashes = (
            max_crash_respawns
            if max_crash_respawns is not None
            else 3 + 2 * max(num_workers, 1)
        )
        self._inline = num_workers == 0 or "fork" not in mp.get_all_start_methods()
        if self._inline and num_workers > 0:
            warnings.warn(
                "fork start method unavailable; ShardedExecutor degrades to "
                "the inline single-process executor",
                RuntimeWarning,
                stacklevel=2,
            )
        self._ctx = None if self._inline else mp.get_context("fork")
        self._workers: list[_Worker] = []
        self._io_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._pending: deque[int] = deque()
        self._payloads: dict[int, list[bytes]] = {}
        self._futures: dict[int, Future] = {}
        self._crash_counts: dict[int, int] = {}
        self._max_request_retries = 2
        self._req_ids = itertools.count()
        self._started = False
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "errors": 0,
            "worker_crashes": 0,
            "respawns": 0,
        }
        # Warm every fork-shared cache in the parent: the lowered closure
        # schedule always, plus (optionally) one real replay so stacked
        # key tensors and permutation tables exist before the first fork.
        # Under ``fused=True`` the warm goes through the fused replayer so
        # the arena layout, fused closures, and per-key pre-formed tensors
        # (``SwitchingKey.stacked_pre``) are all built once in the parent
        # and inherited copy-on-write — the pre-forms are by far the most
        # expensive warm step and must never be paid per worker.
        plan.run_batch(
            [warm_inputs] if warm_inputs is not None else [], fused=fused
        )
        if ship_plan and not self._inline:
            # Serialize once; every (re)spawned worker deserializes the
            # same artifact instead of relying on the fork-warmed plan.
            from repro.runtime.plan_io import serialize_plan

            self._plan_blob = serialize_plan(plan)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardedExecutor":
        with self._lock:  # concurrent first submits must not double-fork
            if self._started or self._inline:
                self._started = True
                return self
            self._stop.clear()
            self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
            for _ in range(self.num_workers):
                self._workers.append(self._spawn())
            self._io_thread = threading.Thread(
                target=self._io_loop, name="sharded-executor-io", daemon=True
            )
            self._io_thread.start()
            self._started = True
        return self

    def close(self) -> None:
        """Drain nothing, stop the pool; outstanding futures fail."""
        if self._inline or not self._started:
            self._started = False
            return
        self._stop.set()
        self._wake()
        self._io_thread.join(timeout=5.0)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            worker.conn.close()
        self._workers.clear()
        for pipe_end in (self._wake_r, self._wake_w):
            try:
                pipe_end.close()
            except OSError:
                pass
        with self._lock:
            for fut in self._futures.values():
                if not fut.done():
                    fut.set_exception(RuntimeError("executor closed"))
            self._futures.clear()
            self._payloads.clear()
            self._pending.clear()
        self._started = False

    def __enter__(self) -> "ShardedExecutor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, inputs) -> Future:
        """Queue one plan replay; resolves to its output ciphertexts."""
        if not self._started:
            self.start()
        if not self._inline and self._stop.is_set():
            # The pool exceeded its crash budget and shut itself down;
            # fail fast instead of queueing requests nobody will serve.
            raise RuntimeError("executor stopped (crash budget exceeded)")
        blobs = [_encode_value(v, self._coeff_bits) for v in inputs]
        fut: Future = Future()
        if self._inline:
            self._run_inline(blobs, fut)
            return fut
        with self._lock:
            req_id = next(self._req_ids)
            self._stats["submitted"] += 1
            self._futures[req_id] = fut
            self._payloads[req_id] = blobs
            self._pending.append(req_id)
        self._wake()
        return fut

    def run_batch(self, batches, timeout: float | None = None):
        """Shard a materialized batch across the pool, order-preserving.

        Bit-identical to ``plan.run_batch(batches)``: every entry is the
        same plan replay, inputs/outputs round-trip losslessly through the
        wire format, and results are returned in submission order no
        matter which worker finished first.
        """
        futures = [self.submit(entry) for entry in batches]
        return [f.result(timeout=timeout) for f in futures]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            out = dict(self._stats)
        out["num_workers"] = self.num_workers
        out["inline"] = self._inline
        out["plan_wire"] = self._plan_blob is not None
        out["fused"] = self.fused
        out["pending"] = len(self._pending)
        return out

    def worker_pids(self) -> list[int]:
        return [w.proc.pid for w in self._workers]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_inline(self, blobs, fut: Future) -> None:
        basis = self.plan.evaluator.basis
        self._stats["submitted"] += 1
        try:
            if self._io_s:  # parity with the worker-side link model
                time.sleep(self._io_s)
            inputs = [_decode_value(b, basis) for b in blobs]
            outputs = self.plan.run_batch([inputs], fused=self.fused)[0]
            round_tripped = [
                _decode_value(_encode_value(o, self._coeff_bits), basis)
                for o in outputs
            ]
        except Exception as exc:  # noqa: BLE001 — mirror the pool contract
            self._stats["errors"] += 1
            fut.set_exception(WorkerError(f"{type(exc).__name__}: {exc}"))
            return
        self._stats["completed"] += 1
        fut.set_result(round_tripped)

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        if self._plan_blob is not None:
            target, head = _wire_worker_loop, (self._plan_blob, self.plan.evaluator)
        else:
            target, head = _worker_loop, (self.plan,)
        proc = self._ctx.Process(
            target=target,
            args=(*head, child_conn, self._coeff_bits, self._io_s, self.fused),
            daemon=True,
        )
        proc.start()
        # The parent's copy of the child end must close so worker death
        # surfaces as EOF on the parent connection.
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"x")
        except (BrokenPipeError, OSError):
            pass

    def _io_loop(self) -> None:
        while not self._stop.is_set():
            self._dispatch()
            conns = [w.conn for w in self._workers] + [self._wake_r]
            for ready in connection_wait(conns, timeout=0.2):
                if ready is self._wake_r:
                    while self._wake_r.poll():
                        self._wake_r.recv_bytes()
                    continue
                worker = next(w for w in self._workers if w.conn is ready)
                try:
                    req_id, ok, payload = ready.recv()
                except (EOFError, OSError):
                    self._handle_crash(worker)
                    continue
                self._complete(worker, req_id, ok, payload)

    def _dispatch(self) -> None:
        for worker in list(self._workers):
            with self._lock:
                if worker.busy is not None or not self._pending:
                    continue
                req_id = self._pending.popleft()
                payload = self._payloads[req_id]
            try:
                worker.conn.send((req_id, payload))
            except (BrokenPipeError, OSError):
                with self._lock:
                    self._pending.appendleft(req_id)
                self._handle_crash(worker)
                continue
            worker.busy = req_id

    def _complete(self, worker: _Worker, req_id: int, ok: bool, payload) -> None:
        worker.busy = None
        with self._lock:
            fut = self._futures.pop(req_id, None)
            self._payloads.pop(req_id, None)
            self._crash_counts.pop(req_id, None)
        if fut is None:
            return
        if not ok:
            self._stats["errors"] += 1
            fut.set_exception(WorkerError(payload))
            return
        basis = self.plan.evaluator.basis
        try:
            outputs = [_decode_value(b, basis) for b in payload]
        except Exception as exc:  # noqa: BLE001 — corrupt reply
            self._stats["errors"] += 1
            fut.set_exception(WorkerError(f"undecodable reply: {exc}"))
            return
        self._stats["completed"] += 1
        fut.set_result(outputs)

    def _handle_crash(self, worker: _Worker) -> None:
        """Requeue the dead worker's in-flight request and fork a spare."""
        if worker not in self._workers:
            return
        self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        self._stats["worker_crashes"] += 1
        requeued = worker.busy
        poisoned: Future | None = None
        if requeued is not None:
            with self._lock:
                if requeued in self._futures:
                    crashes = self._crash_counts.get(requeued, 0) + 1
                    self._crash_counts[requeued] = crashes
                    if crashes > self._max_request_retries:
                        # A poison request must not serially kill every
                        # respawn: fail it alone, keep the pool serving.
                        poisoned = self._futures.pop(requeued)
                        self._payloads.pop(requeued, None)
                        self._crash_counts.pop(requeued, None)
                    else:
                        self._pending.appendleft(requeued)
        if poisoned is not None and not poisoned.done():
            poisoned.set_exception(
                WorkerError(
                    f"request crashed {self._max_request_retries + 1} "
                    "worker(s) in a row; giving up on it"
                )
            )
        if self._stats["worker_crashes"] > self._max_crashes:
            with self._lock:
                futures = list(self._futures.values())
                self._futures.clear()
                self._payloads.clear()
                self._pending.clear()
            for fut in futures:
                if not fut.done():
                    fut.set_exception(
                        WorkerError(
                            f"pool exceeded {self._max_crashes} worker crashes"
                        )
                    )
            self._stop.set()
            return
        self._stats["respawns"] += 1
        self._workers.append(self._spawn())
