"""Optimizer passes over the ciphertext computation graph.

Every pass is a pure ``Graph -> Graph`` rewrite (graphs are rebuilt, never
mutated) and every rewrite is *bit-preserving*: an optimized plan must
decrypt to the exact bytes the eager :class:`~repro.ckks.evaluator.Evaluator`
produces.  That constraint shapes what the passes are allowed to do:

* **CSE** merges structurally identical nodes — same op, operands, attrs,
  and captured constants.  Commutative ops (modular add / tensor multiply)
  are canonicalized by operand id, which is safe because limb-wise modular
  arithmetic commutes bitwise (adds additionally require exactly equal
  scales so the merged node's scale metadata is unambiguous).
* **Rescale fusion** collapses ``rescale(rescale(x, t1), t2)`` into one
  ``rescale(x, t1 + t2)`` when the inner node has no other consumer.
  :meth:`repro.rns.poly.RnsPolynomial.rescale` guarantees the fused
  multi-prime division is bit-identical to the sequential one, and the
  fused node pays a single coeff<->eval round trip instead of two.
* **DCE** drops nodes unreachable from the outputs (symbolic inputs are
  kept so plan arity always matches the trace's input specs).
* **Hoist grouping** does not rewrite at all — it *annotates*: automorphism
  nodes sharing a source ciphertext are grouped so the executors gadget-
  decompose that source once (`Evaluator.decompose`) and replay the
  decomposition across the whole group, exactly what `linear.py` used to
  hand-code.
* **check_alignment** re-derives every node's level/scale/size from its
  operands and fails compilation — naming the offending op and the ops
  that produced its operands — if the graph violates the eager evaluator's
  rules.  Plans fail at compile time, not mid-execution.

Contract (see ``docs/architecture.md``): passes are stateless pure
functions — no process-level caches, nothing fork-shared, nothing on the
worker boundary.  They run exactly once per compiled plan, on the
compiling host; a deserialized plan arrives already optimized and only
re-runs ``check_alignment`` (as validation against corrupt or
hand-crafted artifacts), never the rewrites.
"""

from __future__ import annotations

import math

from repro.ckks.evaluator import SCALE_RTOL
from repro.runtime.graph import (
    AUTOMORPHISM_OPS,
    COMMUTATIVE_OPS,
    ELEMENTWISE_OPS,
    FusedGroup,
    Graph,
    GraphBuilder,
    Node,
)

__all__ = [
    "PlanValidationError",
    "eliminate_common_subexpressions",
    "fuse_rescales",
    "eliminate_dead_nodes",
    "hoist_groups",
    "fusion_groups",
    "check_alignment",
    "optimize",
]


class PlanValidationError(ValueError):
    """A graph failed plan-time level/scale/key alignment checks."""


# ---------------------------------------------------------------------------
# Rewrites
# ---------------------------------------------------------------------------


def eliminate_common_subexpressions(graph: Graph) -> Graph:
    """Merge structurally identical nodes (one rotation instead of two)."""
    builder = GraphBuilder(graph)
    seen: dict[tuple, int] = {}
    for node in graph.nodes:
        inputs = builder.remap_inputs(node)
        consts = tuple(id(graph.consts[c]) for c in node.consts)
        if node.op in ("input", "pt_input"):
            builder.emit(node)
            continue
        key_inputs = inputs
        if node.op in COMMUTATIVE_OPS:
            a, b = (graph.nodes[i] for i in node.inputs)
            # add's result scale is the lhs scale; only canonicalize when
            # swapping operands cannot change any recorded metadata.
            if node.op == "multiply" or a.scale == b.scale:
                key_inputs = tuple(sorted(inputs))
        key = (node.op, key_inputs, node.attrs, consts)
        hit = seen.get(key)
        if hit is not None:
            builder.alias(node.id, hit)
        else:
            seen[key] = builder.emit(node, inputs=inputs)
    return builder.finish()


def fuse_rescales(graph: Graph) -> Graph:
    """Merge rescale chains into single multi-prime rescales."""
    consumers = graph.consumer_counts()
    # An inner rescale is absorbed when its *only* consumer is another
    # rescale (and it is not itself an output): the downstream node takes
    # over its dropped primes.  Chains absorb transitively.
    absorbed: set[int] = set()
    for node in graph.nodes:
        if node.op != "rescale":
            continue
        inner = graph.nodes[node.inputs[0]]
        if (
            inner.op == "rescale"
            and consumers[inner.id] == 1
            and inner.id not in graph.outputs
        ):
            absorbed.add(inner.id)
    builder = GraphBuilder(graph)
    for node in graph.nodes:
        if node.id in absorbed:
            continue  # its single consumer re-points past it below
        if node.op == "rescale":
            times = node.attrs[0]
            src = node.inputs[0]
            while src in absorbed:
                times += graph.nodes[src].attrs[0]
                src = graph.nodes[src].inputs[0]
            builder.emit(node, inputs=(builder.mapping[src],), attrs=(times,))
        else:
            builder.emit(node)
    return builder.finish()


def eliminate_dead_nodes(graph: Graph) -> Graph:
    """Drop nodes no output depends on (inputs are always kept)."""
    live: set[int] = set(graph.input_ids)
    stack = list(graph.outputs)
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.nodes[nid].inputs)
    builder = GraphBuilder(graph)
    for node in graph.nodes:
        if node.id in live:
            builder.emit(node)
    return builder.finish()


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------


def hoist_groups(graph: Graph) -> dict[int, tuple[int, ...]]:
    """Map source-node id -> automorphism nodes that can share one
    gadget decomposition (groups of at least two)."""
    by_source: dict[int, list[int]] = {}
    for node in graph.nodes:
        if node.op in AUTOMORPHISM_OPS:
            by_source.setdefault(node.inputs[0], []).append(node.id)
    return {
        src: tuple(nodes) for src, nodes in by_source.items() if len(nodes) > 1
    }


#: Ops a linear fused chain may contain: per-element runs plus rescale
#: (whose fused coeff<->eval round trip is itself one dispatch).
_CHAINABLE_OPS = ELEMENTWISE_OPS | {"rescale"}


def _captured_only(node: Node) -> bool:
    """Whether a plain-operand op reads a captured constant (not a
    symbolic pt_input), so its plaintext is resolvable at lower time."""
    return node.op not in ("add_plain", "multiply_plain") or len(node.inputs) == 1


def fusion_groups(
    graph: Graph, hoist: dict[int, tuple[int, ...]] | None = None
) -> tuple[FusedGroup, ...]:
    """Discover fused schedule steps; pure analysis, no rewrite.

    Three shapes, claimed greedily and disjointly (a node belongs to at
    most one group):

    1. ``hoisted_automorphisms`` — the :func:`hoist_groups` families,
       lifted into schedule steps so one gadget decomposition (one batched
       NTT dispatch) serves every rotation of the family.
    2. ``mac`` / ``sum`` — add-reduction trees.  Interior adds must be
       single-consumer non-outputs at the root's level/size, so collapsing
       the tree into one deferred-reduction accumulate is invisible
       outside the group; when *every* leaf is a single-consumer
       captured-constant ``multiply_plain`` at the same level, the leaves
       fold in too and the whole tree becomes one ``mul_accumulate``
       (``mac``).  Trees need >= 3 leaves to beat two binary adds.
    3. ``chain`` — maximal linear runs of elementwise/rescale ops where
       each node's sole consumer is the next and every external operand
       precedes the run, executed back-to-back in one step.

    Bit-identity: modular addition of canonical residues is exactly
    associative/commutative, and deferred uint64 accumulation reduces to
    the same canonical bytes (``ReducerKernel.add_accumulate``), so
    regrouping changes no output bit.
    """
    hoist = hoist_groups(graph) if hoist is None else hoist
    consumers = graph.consumer_counts()
    outputs = set(graph.outputs)
    claimed: set[int] = set()
    groups: list[FusedGroup] = []

    for src, members in sorted(hoist.items()):
        groups.append(
            FusedGroup(
                kind="hoisted_automorphisms",
                anchor=min(members),
                members=tuple(members),
                outputs=tuple(members),
                sources=(src,),
            )
        )
        claimed.update(members)

    def _expandable(nid: int, root: Node) -> bool:
        n = graph.nodes[nid]
        return (
            n.op == "add"
            and n.kind == "ct"
            and consumers[nid] == 1
            and nid not in outputs
            and nid not in claimed
            and n.level == root.level
            and n.size == root.size
        )

    def _mac_term(nid: int, root: Node) -> bool:
        n = graph.nodes[nid]
        return (
            n.op == "multiply_plain"
            and len(n.inputs) == 1
            and consumers[nid] == 1
            and nid not in outputs
            and nid not in claimed
            and n.level == root.level
            and n.size == root.size
            and graph.nodes[n.inputs[0]].level == root.level
        )

    for root in reversed(graph.nodes):
        if root.op != "add" or root.kind != "ct" or root.id in claimed:
            continue
        interiors: list[int] = []
        terms: list[int] = []
        stack = [root.id]
        while stack:
            nid = stack.pop()
            for i in graph.nodes[nid].inputs:
                if _expandable(i, root):
                    interiors.append(i)
                    stack.append(i)
                else:
                    terms.append(i)
        if len(terms) < 3:
            continue
        # The fused accumulate stacks every term at the root's shape; a
        # term at a different level/size would need the eager add's
        # drop-to-min branches, so such trees stay unfused.
        if not all(
            graph.nodes[t].kind == "ct"
            and graph.nodes[t].level == root.level
            and graph.nodes[t].size == root.size
            for t in terms
        ):
            continue
        if all(_mac_term(t, root) for t in terms):
            members = (root.id, *interiors, *terms)
            group = FusedGroup(
                kind="mac",
                anchor=root.id,
                members=members,
                outputs=(root.id,),
                sources=tuple(graph.nodes[t].inputs[0] for t in terms),
                payload=tuple(terms),
            )
        else:
            members = (root.id, *interiors)
            group = FusedGroup(
                kind="sum",
                anchor=root.id,
                members=members,
                outputs=(root.id,),
                sources=tuple(terms),
            )
        groups.append(group)
        claimed.update(members)

    def _chainable(nid: int) -> bool:
        n = graph.nodes[nid]
        return (
            n.kind == "ct"
            and n.op in _CHAINABLE_OPS
            and nid not in claimed
            and _captured_only(n)
        )

    for node in graph.nodes:
        if not _chainable(node.id):
            continue
        run = [node.id]
        cur = node.id
        while consumers[cur] == 1 and cur not in outputs:
            # The sole consumer (node ids are topological, so scan forward).
            nxt = next(
                (
                    n.id
                    for n in graph.nodes[cur + 1 :]
                    if cur in n.inputs
                ),
                None,
            )
            if (
                nxt is None
                or not _chainable(nxt)
                or any(
                    i != cur and i >= node.id for i in graph.nodes[nxt].inputs
                )
            ):
                break
            run.append(nxt)
            cur = nxt
        if len(run) < 2:
            continue
        in_run = set(run)
        sources = tuple(
            dict.fromkeys(
                i
                for nid in run
                for i in graph.nodes[nid].inputs
                if i not in in_run
            )
        )
        groups.append(
            FusedGroup(
                kind="chain",
                anchor=run[0],
                members=tuple(run),
                outputs=(run[-1],),
                sources=sources,
            )
        )
        claimed.update(run)

    return tuple(sorted(groups, key=lambda g: g.anchor))


def check_alignment(graph: Graph) -> None:
    """Re-derive and verify every node's metadata; raise on any mismatch.

    This is the plan-time analogue of ``Evaluator._check_scales`` — but
    instead of failing mid-execution it rejects the whole plan, and the
    error names the offending node *and* the ops that produced its
    operands, levels and scales included.
    """

    def fail(node: Node, why: str) -> None:
        operands = ", ".join(graph.provenance(i) for i in node.inputs)
        raise PlanValidationError(
            f"{graph.provenance(node.id)}: {why}"
            + (f"; operands: {operands}" if operands else "")
        )

    for node in graph.nodes:
        ins = [graph.nodes[i] for i in node.inputs]
        if node.op in ("input", "pt_input"):
            continue
        if node.op in ("add", "sub"):
            a, b = ins
            if not math.isclose(a.scale, b.scale, rel_tol=SCALE_RTOL):
                fail(node, f"operand scales misaligned: {a.scale:g} vs {b.scale:g}")
            if node.level != min(a.level, b.level):
                fail(node, f"level {node.level} != min(operand levels)")
        elif node.op == "multiply":
            a, b = ins
            if a.size != 2 or b.size != 2:
                fail(node, "tensor multiply needs 2-part operands")
            if node.size != 3 or node.scale != a.scale * b.scale:
                fail(node, "multiply metadata inconsistent")
        elif node.op == "relinearize":
            (a,) = ins
            key = graph.consts[node.consts[0]]
            if a.size != 3:
                fail(node, f"relinearize needs a 3-part operand, got {a.size}")
            if key.level != a.level:
                fail(node, f"switching key level {key.level} != operand level {a.level}")
        elif node.op == "rescale":
            (a,) = ins
            times = node.attrs[0]
            if a.level - times < 1 or node.level != a.level - times:
                fail(node, f"rescale x{times} from level {a.level} is invalid")
        elif node.op in AUTOMORPHISM_OPS:
            a = ins[0]
            key = graph.consts[node.consts[0]]
            if a.size != 2:
                fail(node, "automorphisms need a relinearized (2-part) operand")
            if key.level != a.level:
                fail(node, f"switching key level {key.level} != operand level {a.level}")
        elif node.op in ("add_plain", "multiply_plain"):
            ct = ins[0]
            if len(ins) == 2:
                pt_level, pt_scale = ins[1].level, ins[1].scale
            else:
                pt = graph.consts[node.consts[0]]
                pt_level, pt_scale = pt.level, pt.scale
            if pt_level < ct.level:
                fail(node, f"plaintext level {pt_level} below ciphertext level {ct.level}")
            if node.op == "add_plain" and not math.isclose(
                ct.scale, pt_scale, rel_tol=SCALE_RTOL
            ):
                fail(node, f"plain scale {pt_scale:g} != ciphertext scale {ct.scale:g}")
        elif node.op == "negate":
            pass
        else:
            fail(node, f"unknown op {node.op!r}")


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------


def optimize(graph: Graph) -> Graph:
    """The default pass pipeline: CSE -> rescale fusion -> DCE -> verify.

    With telemetry enabled, each pass runs under a ``compile`` span and
    records its wall time plus node-count delta (the registry keeps a
    per-pass seconds histogram either way the trace sampling falls);
    when disabled the pipeline is the plain four calls.
    """
    from repro.runtime.telemetry import get_telemetry
    from repro.runtime.telemetry import now as _mono

    telemetry = get_telemetry()
    if not telemetry.enabled:
        graph = eliminate_common_subexpressions(graph)
        graph = fuse_rescales(graph)
        graph = eliminate_dead_nodes(graph)
        check_alignment(graph)
        return graph
    pipeline = (
        ("cse", eliminate_common_subexpressions),
        ("fuse_rescales", fuse_rescales),
        ("dce", eliminate_dead_nodes),
    )
    root = telemetry.start_trace(
        "compile", category="compile", nodes_in=len(graph.nodes)
    )
    try:
        for name, fn in pipeline:
            before = len(graph.nodes)
            start = _mono()
            with telemetry.child_span(name, root.ctx, category="compile"):
                graph = fn(graph)
            telemetry.histogram(
                "compile_pass_seconds", **{"pass": name}
            ).observe(_mono() - start)
            telemetry.event(
                "compile_pass",
                nodes_before=before,
                nodes_after=len(graph.nodes),
                delta=len(graph.nodes) - before,
                **{"pass": name},
            )
        with telemetry.child_span("check_alignment", root.ctx, category="compile"):
            check_alignment(graph)
    finally:
        root.end(nodes_out=len(graph.nodes))
    return graph
