"""Execution plans: topologically scheduled, ref-counted, cached, replayable.

An :class:`ExecutionPlan` binds an optimized :class:`~repro.runtime.graph.Graph`
to one eager :class:`~repro.ckks.evaluator.Evaluator` and executes it two
ways:

* :meth:`ExecutionPlan.run` — the **reference interpreter**.  It walks the
  schedule node by node, issuing the exact eager-evaluator calls the
  traced program would have made (automorphisms go through
  ``Evaluator.apply_galois`` with a shared hoisted decomposition, which is
  precisely what the eager path computes internally), so its outputs are
  bit-identical to running the original function eagerly.
* :meth:`ExecutionPlan.run_batch` — the **batched executor** for
  throughput serving.  The schedule is pre-lowered once into per-node
  closures with every constant resolved ahead of time (switching keys
  bound, Galois elements computed, plaintext operands pre-dropped to
  level and pre-transformed to the NTT domain), then replayed across many
  input ciphertexts.  Same bits, far less per-op dispatch work.

Both executors release intermediate buffers by reference counting: a
node's ciphertext is freed the moment its last consumer has run, so a
deep pipeline's live set stays proportional to its width, not its length.

``compile_graph`` / ``compile_fn`` front a **process-level plan cache**
keyed by (graph signature, parameter fingerprint, reducer backend): one
trace of a serving program is optimized once and the same plan object is
replayed for every subsequent request with the same structure.  The
cache can additionally be backed by an **on-disk plan store**
(:func:`set_plan_store`): cache misses then consult a directory of
serialized ``EPL1`` artifacts (:mod:`repro.runtime.plan_io`) keyed by
the *content* signature of the traced graph — so a plan compiled by one
process (or one host) is reused by every other, trace -> load -> execute
with the optimizer skipped.

Process/fork contract (see ``docs/architecture.md``): the plan cache,
each plan's lowered closure schedule, and every constant it binds are
process-local state that forked serving workers inherit copy-on-write;
nothing in this module crosses the worker boundary except through
:mod:`repro.runtime.plan_io`'s explicit wire formats.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.evaluator import SCALE_RTOL, Evaluator
from repro.nums.kernels import default_backend_name
from repro.runtime.graph import AUTOMORPHISM_OPS, CtSpec, Graph, Node, PtSpec
from repro.runtime.passes import check_alignment, hoist_groups, optimize
from repro.runtime.trace import trace

__all__ = [
    "ExecutionPlan",
    "compile_graph",
    "compile_fn",
    "params_fingerprint",
    "plan_cache_info",
    "clear_plan_cache",
    "set_plan_store",
    "get_plan_store",
]


def params_fingerprint(evaluator: Evaluator) -> tuple:
    """What makes two evaluators interchangeable for a cached plan."""
    return (evaluator.basis.degree, tuple(evaluator.basis.moduli))


@dataclass
class ExecutionPlan:
    """A compiled, executable CKKS program.

    Attributes:
        graph: the optimized op DAG.
        evaluator: the eager evaluator ops are dispatched through.
        signature: structural fingerprint of the *traced* graph (the plan
            cache key component).
        backend: reducer backend the plan was compiled under.
        hoist: source-node id -> automorphism nodes sharing one
            decomposition.
    """

    graph: Graph
    evaluator: Evaluator
    signature: str
    backend: str
    hoist: dict[int, tuple[int, ...]]
    _releases: list[tuple[int, ...]] = field(init=False, repr=False)
    _dec_done: dict[int, int] = field(init=False, repr=False)
    _steps: list | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._releases = self._release_schedule()
        # Schedule position at which each hoist group's decomposition dies
        # (a node belongs to at most one group, so last-member ids are
        # unique across groups).
        self._dec_done = {members[-1]: src for src, members in self.hoist.items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def input_specs(self) -> tuple:
        return tuple(self.graph.input_specs)

    @property
    def num_outputs(self) -> int:
        return len(self.graph.outputs)

    def op_histogram(self) -> dict[str, int]:
        return self.graph.op_histogram()

    def summary(self) -> str:
        hist = ", ".join(
            f"{op} x{n}" for op, n in sorted(self.op_histogram().items())
        )
        return (
            f"ExecutionPlan[{self.signature[:12]}] "
            f"{len(self.graph.nodes)} nodes, "
            f"{len(self.input_specs)} inputs -> {self.num_outputs} outputs, "
            f"{len(self.hoist)} hoist group(s), backend={self.backend}: {hist}"
        )

    # ------------------------------------------------------------------
    # Reference interpreter
    # ------------------------------------------------------------------

    def run(self, inputs) -> list[Ciphertext]:
        """Execute once, issuing plain eager-evaluator calls per node."""
        self._check_inputs(inputs)
        ev = self.evaluator
        env: dict[int, object] = {}
        dec_cache: dict[int, object] = {}
        for node in self.graph.nodes:
            env[node.id] = self._interpret(node, env, ev, inputs, dec_cache)
            done_src = self._dec_done.get(node.id)
            if done_src is not None:
                dec_cache.pop(done_src, None)
            for victim in self._releases[node.id]:
                env.pop(victim, None)
        return [env[o] for o in self.graph.outputs]

    def _interpret(self, node: Node, env, ev: Evaluator, inputs, dec_cache):
        op = node.op
        g = self.graph
        if op == "input" or op == "pt_input":
            return inputs[node.attrs[0]]
        ins = [env[i] for i in node.inputs]
        if op == "add":
            return ev.add(*ins)
        if op == "sub":
            return ev.sub(*ins)
        if op == "negate":
            return ev.negate(*ins)
        if op == "multiply":
            return ev.multiply(*ins)
        if op == "add_plain" or op == "multiply_plain":
            pt = ins[1] if len(ins) == 2 else g.consts[node.consts[0]]
            method = ev.add_plain if op == "add_plain" else ev.multiply_plain
            return method(ins[0], pt)
        if op == "relinearize":
            key = g.consts[node.consts[0]]
            return ev.relinearize(ins[0], {g.nodes[node.inputs[0]].level: key})
        if op == "rescale":
            return ev.rescale(ins[0], times=node.attrs[0])
        if op in AUTOMORPHISM_OPS:
            key = g.consts[node.consts[0]]
            galois_elt = node.attrs[-1]
            src = node.inputs[0]
            dec = None
            if src in self.hoist:
                dec = dec_cache.get(src)
                if dec is None:
                    dec = dec_cache[src] = ev.decompose(ins[0])
            return ev.apply_galois(ins[0], galois_elt, key, decomposed=dec)
        raise AssertionError(f"unschedulable op {op!r}")

    # ------------------------------------------------------------------
    # Batched executor
    # ------------------------------------------------------------------

    def run_batch(self, batches) -> list[list[Ciphertext]]:
        """Replay the plan across many input tuples (throughput serving).

        ``batches`` is a sequence of input lists, each matching
        ``input_specs``; returns one output list per batch entry.  The
        schedule is lowered to pre-resolved closures on first use and
        shared by every replay (and every later ``run_batch`` call).
        """
        if self._steps is None:
            self._steps = self._lower()
        results = []
        for inputs in batches:
            self._check_inputs(inputs)
            env: dict[int, object] = {"inputs": inputs}
            dec_cache: dict[int, object] = {}
            for node_id, fn, releases in self._steps:
                env[node_id] = fn(env, dec_cache)
                for victim in releases:
                    env.pop(victim, None)
            results.append([env[o] for o in self.graph.outputs])
        return results

    def _lower(self) -> list:
        """Pre-resolve every node into a closure over (env, dec_cache)."""
        ev = self.evaluator
        g = self.graph
        steps = []
        for node in g.nodes:
            steps.append(
                (node.id, self._lower_node(node, ev, g), self._releases[node.id])
            )
        return steps

    def _lower_node(self, node: Node, ev: Evaluator, g: Graph):
        op = node.op
        if op in ("input", "pt_input"):
            index = node.attrs[0]
            return lambda env, dec: env["inputs"][index]
        ids = node.inputs
        if op == "add":
            a, b = ids
            return lambda env, dec: ev.add(env[a], env[b])
        if op == "sub":
            a, b = ids
            return lambda env, dec: ev.sub(env[a], env[b])
        if op == "negate":
            (a,) = ids
            return lambda env, dec: ev.negate(env[a])
        if op == "multiply":
            a, b = ids
            return lambda env, dec: ev.multiply(env[a], env[b])
        if op in ("add_plain", "multiply_plain"):
            a = ids[0]
            if len(ids) == 2:  # symbolic plaintext, bound per run
                p = ids[1]
                method = ev.add_plain if op == "add_plain" else ev.multiply_plain
                return lambda env, dec: method(env[a], env[p])
            # Captured constant: pre-drop to the consumer's level and
            # pre-transform to the NTT domain once, then each replay is a
            # pure limb-wise op — bit-identical to the eager path, which
            # recomputes the same drop+NTT on every call.
            pt = g.consts[node.consts[0]]
            ct_level = g.nodes[a].level
            m = pt.poly.drop_limbs(ct_level).to_eval()
            pt_scale = pt.scale
            if op == "add_plain":
                return lambda env, dec: Ciphertext(
                    parts=[env[a].parts[0] + m]
                    + [p.copy() for p in env[a].parts[1:]],
                    scale=env[a].scale,
                )
            return lambda env, dec: Ciphertext(
                parts=[p * m for p in env[a].parts],
                scale=env[a].scale * pt_scale,
            )
        if op == "relinearize":
            (a,) = ids
            key_dict = {g.nodes[a].level: g.consts[node.consts[0]]}
            return lambda env, dec: ev.relinearize(env[a], key_dict)
        if op == "rescale":
            (a,) = ids
            times = node.attrs[0]
            return lambda env, dec: ev.rescale(env[a], times=times)
        if op in AUTOMORPHISM_OPS:
            (a,) = ids
            key = g.consts[node.consts[0]]
            galois_elt = node.attrs[-1]
            if a in self.hoist:
                last = self.hoist[a][-1] == node.id

                def hoisted(env, dec, a=a, key=key, galois_elt=galois_elt, last=last):
                    d = dec.get(a)
                    if d is None:
                        d = dec[a] = ev.decompose(env[a])
                    out = ev.apply_galois(env[a], galois_elt, key, decomposed=d)
                    if last:
                        del dec[a]
                    return out

                return hoisted
            return lambda env, dec: ev.apply_galois(env[a], galois_elt, key)
        raise AssertionError(f"unschedulable op {op!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _release_schedule(self) -> list[tuple[int, ...]]:
        """For each schedule position, the node ids whose buffers die there."""
        remaining = self.graph.consumer_counts()
        outputs = set(self.graph.outputs)
        releases: list[tuple[int, ...]] = []
        for node in self.graph.nodes:
            dead = []
            for i in node.inputs:
                remaining[i] -= 1
                if remaining[i] == 0 and i not in outputs:
                    dead.append(i)
            releases.append(tuple(dict.fromkeys(dead)))
        return releases

    def _check_inputs(self, inputs) -> None:
        specs = self.graph.input_specs
        if len(inputs) != len(specs):
            raise ValueError(
                f"plan expects {len(specs)} input(s), got {len(inputs)}"
            )
        for i, (spec, value) in enumerate(zip(specs, inputs)):
            if isinstance(spec, CtSpec):
                if not isinstance(value, Ciphertext):
                    raise TypeError(f"input {i}: expected a Ciphertext")
                if value.level != spec.level or value.size != spec.size:
                    raise ValueError(
                        f"input {i}: plan compiled for level {spec.level} / "
                        f"{spec.size} parts, got level {value.level} / "
                        f"{value.size} parts"
                    )
            elif isinstance(spec, PtSpec):
                if not isinstance(value, Plaintext):
                    raise TypeError(f"input {i}: expected a Plaintext")
                if value.level < spec.level:
                    raise ValueError(
                        f"input {i}: plaintext level {value.level} below the "
                        f"compiled level {spec.level}"
                    )
            if not math.isclose(value.scale, spec.scale, rel_tol=SCALE_RTOL):
                raise ValueError(
                    f"input {i}: plan compiled for scale {spec.scale:g}, "
                    f"got {value.scale:g}"
                )


# ---------------------------------------------------------------------------
# Process-level plan cache
# ---------------------------------------------------------------------------

_PLAN_CACHE: dict[tuple, ExecutionPlan] = {}
_CACHE_STATS = {"hits": 0, "misses": 0, "disk_hits": 0, "disk_saves": 0}
_PLAN_STORE = None


def set_plan_store(store) -> None:
    """Back the process-level plan cache with an on-disk plan store.

    ``store`` is a :class:`repro.runtime.plan_io.PlanStore`, a directory
    path to create one at, or ``None`` to detach.  While installed,
    ``compile_graph`` resolves cache misses against the store (loading a
    serialized plan instead of running the optimizer) and persists every
    freshly compiled plan back to it — fleet-wide plan caching.
    """
    global _PLAN_STORE
    if store is None or hasattr(store, "load"):
        _PLAN_STORE = store
        return
    from repro.runtime.plan_io import PlanStore

    _PLAN_STORE = PlanStore(store)


def get_plan_store():
    """The installed on-disk plan store, or ``None``."""
    return _PLAN_STORE


def compile_graph(
    graph: Graph, evaluator: Evaluator, *, run_passes: bool = True
) -> ExecutionPlan:
    """Optimize and schedule a traced graph, reusing a cached plan when the
    same program structure was compiled before under the same parameters
    and reducer backend (optimized and pass-free compiles cache
    separately).  With a plan store installed (:func:`set_plan_store`),
    misses fall through to the on-disk artifact before the optimizer runs."""
    key = (
        graph.signature(),
        params_fingerprint(evaluator),
        default_backend_name(),
        run_passes,
    )
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _CACHE_STATS["hits"] += 1
        return cached
    _CACHE_STATS["misses"] += 1
    if run_passes and _PLAN_STORE is not None:
        # Fail open: a corrupt/truncated/newer-version artifact or a lost
        # sidecar must degrade to a recompile, never to a compile outage.
        try:
            loaded = _PLAN_STORE.load(graph, evaluator, key[2])
        except (ValueError, OSError) as exc:
            loaded = None
            warnings.warn(
                f"plan store load failed ({exc}); recompiling",
                RuntimeWarning,
                stacklevel=2,
            )
        if loaded is not None:
            _CACHE_STATS["disk_hits"] += 1
            loaded.signature = key[0]
            _PLAN_CACHE[key] = loaded
            return loaded
    if run_passes:
        optimized = optimize(graph)
    else:
        check_alignment(graph)
        optimized = graph
    plan = ExecutionPlan(
        graph=optimized,
        evaluator=evaluator,
        signature=key[0],
        backend=key[2],
        hoist=hoist_groups(optimized),
    )
    _PLAN_CACHE[key] = plan
    if run_passes and _PLAN_STORE is not None:
        try:
            _PLAN_STORE.save(plan, graph=graph)
            _CACHE_STATS["disk_saves"] += 1
        except OSError as exc:  # full/read-only disk must not kill serving
            warnings.warn(
                f"plan store save failed ({exc})", RuntimeWarning, stacklevel=2
            )
    return plan


def compile_fn(fn, evaluator: Evaluator, input_specs, *, run_passes: bool = True):
    """Trace ``fn`` and compile it in one step (the common entry point)."""
    return compile_graph(
        trace(fn, evaluator, input_specs), evaluator, run_passes=run_passes
    )


def plan_cache_info() -> dict[str, int]:
    """Hit/miss/size counters for the process-level plan cache."""
    return {**_CACHE_STATS, "size": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    _PLAN_CACHE.clear()
    for counter in _CACHE_STATS:
        _CACHE_STATS[counter] = 0
