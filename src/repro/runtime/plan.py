"""Execution plans: topologically scheduled, ref-counted, cached, replayable.

An :class:`ExecutionPlan` binds an optimized :class:`~repro.runtime.graph.Graph`
to one eager :class:`~repro.ckks.evaluator.Evaluator` and executes it three
ways:

* :meth:`ExecutionPlan.run` — the **reference interpreter**.  It walks the
  schedule node by node, issuing the exact eager-evaluator calls the
  traced program would have made (automorphisms go through
  ``Evaluator.apply_galois`` with a shared hoisted decomposition, which is
  precisely what the eager path computes internally), so its outputs are
  bit-identical to running the original function eagerly.
* :meth:`ExecutionPlan.run_batch` — the **batched executor** for
  throughput serving.  The schedule is pre-lowered once into per-node
  closures with every constant resolved ahead of time (switching keys
  bound, Galois elements computed, plaintext operands pre-dropped to
  level and pre-transformed to the NTT domain), then replayed across many
  input ciphertexts.  Same bits, far less per-op dispatch work.
* ``run_batch(..., fused=True)`` — the **fused replayer**
  (:class:`FusedExecutor`).  Fusion groups
  (:func:`~repro.runtime.passes.fusion_groups`) collapse elementwise
  runs, MAC/sum trees, and hoisted rotation families into single fused
  kernel dispatches; an :class:`~repro.runtime.arena.ArenaLayout`
  preassigns every intermediate to a slot in one preallocated
  ``(slots, L, N)`` pool, so steady-state replay performs zero
  result-buffer allocations; and all array math goes through a
  pluggable :class:`~repro.nums.backend.ArrayNamespace` resolved at
  lower time (numpy default, optional CuPy/torch).  Still the same
  bits: every fused transformation rests on the uniqueness of canonical
  residues (deferred uint64 accumulation and Shoup/Montgomery
  pre-formed constant multiplies reproduce exact eager bytes).

The first two executors release intermediate buffers by reference
counting: a node's ciphertext is freed the moment its last consumer has
run, so a deep pipeline's live set stays proportional to its width, not
its length.  The fused replayer makes the same liveness decisions at
lower time via its arena layout.

Process/fork contract for the fused path: each plan caches one
:class:`FusedExecutor` per array-namespace name; the executor's arena
pool, fused closures, and the per-key pre-formed switching-key tensors
it triggers (:meth:`SwitchingKey.stacked_pre`) are all parent-process
state that forked serving workers inherit copy-on-write when the parent
warms ``fused=True`` before forking (``ShardedExecutor`` does).

``compile_graph`` / ``compile_fn`` front a **process-level plan cache**
keyed by (graph signature, parameter fingerprint, reducer backend): one
trace of a serving program is optimized once and the same plan object is
replayed for every subsequent request with the same structure.  The
cache can additionally be backed by an **on-disk plan store**
(:func:`set_plan_store`): cache misses then consult a directory of
serialized ``EPL1`` artifacts (:mod:`repro.runtime.plan_io`) keyed by
the *content* signature of the traced graph — so a plan compiled by one
process (or one host) is reused by every other, trace -> load -> execute
with the optimizer skipped.

Process/fork contract (see ``docs/architecture.md``): the plan cache,
each plan's lowered closure schedule, and every constant it binds are
process-local state that forked serving workers inherit copy-on-write;
nothing in this module crosses the worker boundary except through
:mod:`repro.runtime.plan_io`'s explicit wire formats.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.evaluator import SCALE_RTOL, Evaluator
from repro.nums.backend import get_array_namespace
from repro.nums.kernels import default_backend_name, make_kernel
from repro.rns.poly import EVAL, RnsPolynomial
from repro.runtime.arena import ArenaLayout, ArenaStep, BufferArena
from repro.runtime.graph import AUTOMORPHISM_OPS, CtSpec, Graph, Node, PtSpec
from repro.runtime.passes import (
    check_alignment,
    fusion_groups,
    hoist_groups,
    optimize,
)
from repro.runtime.telemetry import get_telemetry
from repro.runtime.trace import trace
from repro.transforms.ntt import galois_permutation

__all__ = [
    "ExecutionPlan",
    "FusedExecutor",
    "compile_graph",
    "compile_fn",
    "params_fingerprint",
    "plan_cache_info",
    "clear_plan_cache",
    "set_plan_store",
    "get_plan_store",
]


def params_fingerprint(evaluator: Evaluator) -> tuple:
    """What makes two evaluators interchangeable for a cached plan."""
    return (evaluator.basis.degree, tuple(evaluator.basis.moduli))


@dataclass
class ExecutionPlan:
    """A compiled, executable CKKS program.

    Attributes:
        graph: the optimized op DAG.
        evaluator: the eager evaluator ops are dispatched through.
        signature: structural fingerprint of the *traced* graph (the plan
            cache key component).
        backend: reducer backend the plan was compiled under.
        hoist: source-node id -> automorphism nodes sharing one
            decomposition.
    """

    graph: Graph
    evaluator: Evaluator
    signature: str
    backend: str
    hoist: dict[int, tuple[int, ...]]
    _releases: list[tuple[int, ...]] = field(init=False, repr=False)
    _dec_done: dict[int, int] = field(init=False, repr=False)
    _steps: list | None = field(default=None, init=False, repr=False)
    _fused: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        self._releases = self._release_schedule()
        # Schedule position at which each hoist group's decomposition dies
        # (a node belongs to at most one group, so last-member ids are
        # unique across groups).
        self._dec_done = {members[-1]: src for src, members in self.hoist.items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def input_specs(self) -> tuple:
        return tuple(self.graph.input_specs)

    @property
    def num_outputs(self) -> int:
        return len(self.graph.outputs)

    def op_histogram(self) -> dict[str, int]:
        return self.graph.op_histogram()

    def summary(self) -> str:
        hist = ", ".join(
            f"{op} x{n}" for op, n in sorted(self.op_histogram().items())
        )
        return (
            f"ExecutionPlan[{self.signature[:12]}] "
            f"{len(self.graph.nodes)} nodes, "
            f"{len(self.input_specs)} inputs -> {self.num_outputs} outputs, "
            f"{len(self.hoist)} hoist group(s), backend={self.backend}: {hist}"
        )

    def stats(self) -> dict:
        """Plan-shape and fused-replay statistics (lowers the fused
        executor for the default array backend on first call)."""
        ex = self.fused()
        fused_nodes = sum(len(g.members) for g in ex.groups)
        return {
            "nodes": len(self.graph.nodes),
            "consts": len(self.graph.consts),
            "hoist_groups": len(self.hoist),
            "fused_groups": len(ex.groups),
            "fused_nodes": fused_nodes,
            "dispatch_count_batched": len(self.graph.nodes),
            "dispatch_count_fused": ex.dispatch_count,
            "arena_slots": ex.layout.num_slots,
            "arena_peak_bytes": ex.layout.pool_bytes,
            "array_backend": ex.xp.name,
        }

    # ------------------------------------------------------------------
    # Reference interpreter
    # ------------------------------------------------------------------

    def run(self, inputs) -> list[Ciphertext]:
        """Execute once, issuing plain eager-evaluator calls per node."""
        self._check_inputs(inputs)
        ev = self.evaluator
        env: dict[int, object] = {}
        dec_cache: dict[int, object] = {}
        for node in self.graph.nodes:
            env[node.id] = self._interpret(node, env, ev, inputs, dec_cache)
            done_src = self._dec_done.get(node.id)
            if done_src is not None:
                dec_cache.pop(done_src, None)
            for victim in self._releases[node.id]:
                env.pop(victim, None)
        return [env[o] for o in self.graph.outputs]

    def _interpret(self, node: Node, env, ev: Evaluator, inputs, dec_cache):
        op = node.op
        g = self.graph
        if op == "input" or op == "pt_input":
            return inputs[node.attrs[0]]
        ins = [env[i] for i in node.inputs]
        if op == "add":
            return ev.add(*ins)
        if op == "sub":
            return ev.sub(*ins)
        if op == "negate":
            return ev.negate(*ins)
        if op == "multiply":
            return ev.multiply(*ins)
        if op == "add_plain" or op == "multiply_plain":
            pt = ins[1] if len(ins) == 2 else g.consts[node.consts[0]]
            method = ev.add_plain if op == "add_plain" else ev.multiply_plain
            return method(ins[0], pt)
        if op == "relinearize":
            key = g.consts[node.consts[0]]
            return ev.relinearize(ins[0], {g.nodes[node.inputs[0]].level: key})
        if op == "rescale":
            return ev.rescale(ins[0], times=node.attrs[0])
        if op in AUTOMORPHISM_OPS:
            key = g.consts[node.consts[0]]
            galois_elt = node.attrs[-1]
            src = node.inputs[0]
            dec = None
            if src in self.hoist:
                dec = dec_cache.get(src)
                if dec is None:
                    dec = dec_cache[src] = ev.decompose(ins[0])
            return ev.apply_galois(ins[0], galois_elt, key, decomposed=dec)
        raise AssertionError(f"unschedulable op {op!r}")

    # ------------------------------------------------------------------
    # Batched executor
    # ------------------------------------------------------------------

    def run_batch(
        self, batches, *, fused: bool = False, array_backend=None
    ) -> list[list[Ciphertext]]:
        """Replay the plan across many input tuples (throughput serving).

        ``batches`` is a sequence of input lists, each matching
        ``input_specs``; returns one output list per batch entry.  The
        schedule is lowered to pre-resolved closures on first use and
        shared by every replay (and every later ``run_batch`` call).

        With ``fused=True`` the replay goes through the
        :class:`FusedExecutor` instead — arena-backed buffers, fused
        kernel dispatch, optionally on a non-default array backend —
        with bit-identical outputs.
        """
        if fused or array_backend is not None:
            return self.fused(array_backend).run_batch(batches)
        if self._steps is None:
            self._steps = self._lower()
        results = []
        for inputs in batches:
            self._check_inputs(inputs)
            env: dict[int, object] = {"inputs": inputs}
            dec_cache: dict[int, object] = {}
            for node_id, fn, releases in self._steps:
                env[node_id] = fn(env, dec_cache)
                for victim in releases:
                    env.pop(victim, None)
            results.append([env[o] for o in self.graph.outputs])
        if batches:
            get_telemetry().counter(
                "plan_replays", mode="batched", plan=self.signature[:12]
            ).inc(len(batches))
        return results

    def _lower(self) -> list:
        """Pre-resolve every node into a closure over (env, dec_cache)."""
        ev = self.evaluator
        g = self.graph
        steps = []
        for node in g.nodes:
            steps.append(
                (node.id, self._lower_node(node, ev, g), self._releases[node.id])
            )
        return steps

    def _lower_node(self, node: Node, ev: Evaluator, g: Graph):
        op = node.op
        if op in ("input", "pt_input"):
            index = node.attrs[0]
            return lambda env, dec: env["inputs"][index]
        ids = node.inputs
        if op == "add":
            a, b = ids
            return lambda env, dec: ev.add(env[a], env[b])
        if op == "sub":
            a, b = ids
            return lambda env, dec: ev.sub(env[a], env[b])
        if op == "negate":
            (a,) = ids
            return lambda env, dec: ev.negate(env[a])
        if op == "multiply":
            a, b = ids
            return lambda env, dec: ev.multiply(env[a], env[b])
        if op in ("add_plain", "multiply_plain"):
            a = ids[0]
            if len(ids) == 2:  # symbolic plaintext, bound per run
                p = ids[1]
                method = ev.add_plain if op == "add_plain" else ev.multiply_plain
                return lambda env, dec: method(env[a], env[p])
            # Captured constant: pre-drop to the consumer's level and
            # pre-transform to the NTT domain once, then each replay is a
            # pure limb-wise op — bit-identical to the eager path, which
            # recomputes the same drop+NTT on every call.
            pt = g.consts[node.consts[0]]
            ct_level = g.nodes[a].level
            m = pt.poly.drop_limbs(ct_level).to_eval()
            pt_scale = pt.scale
            if op == "add_plain":
                return lambda env, dec: Ciphertext(
                    parts=[env[a].parts[0] + m]
                    + [p.copy() for p in env[a].parts[1:]],
                    scale=env[a].scale,
                )
            return lambda env, dec: Ciphertext(
                parts=[p * m for p in env[a].parts],
                scale=env[a].scale * pt_scale,
            )
        if op == "relinearize":
            (a,) = ids
            key_dict = {g.nodes[a].level: g.consts[node.consts[0]]}
            return lambda env, dec: ev.relinearize(env[a], key_dict)
        if op == "rescale":
            (a,) = ids
            times = node.attrs[0]
            return lambda env, dec: ev.rescale(env[a], times=times)
        if op in AUTOMORPHISM_OPS:
            (a,) = ids
            key = g.consts[node.consts[0]]
            galois_elt = node.attrs[-1]
            if a in self.hoist:
                last = self.hoist[a][-1] == node.id

                def hoisted(env, dec, a=a, key=key, galois_elt=galois_elt, last=last):
                    d = dec.get(a)
                    if d is None:
                        d = dec[a] = ev.decompose(env[a])
                    out = ev.apply_galois(env[a], galois_elt, key, decomposed=d)
                    if last:
                        del dec[a]
                    return out

                return hoisted
            return lambda env, dec: ev.apply_galois(env[a], galois_elt, key)
        raise AssertionError(f"unschedulable op {op!r}")

    # ------------------------------------------------------------------
    # Fused executor
    # ------------------------------------------------------------------

    def fused(self, array_backend=None) -> "FusedExecutor":
        """The arena-backed fused replayer, lowered once per array backend.

        ``array_backend`` is an array-namespace name (``"numpy"``,
        ``"cupy"``, ``"torch"``, or anything registered via
        :func:`repro.nums.backend.register_array_namespace`) or an
        :class:`~repro.nums.backend.ArrayNamespace`; ``None`` means the
        process default.  Executors are cached per namespace name — the
        same ``EPL1`` artifact replays anywhere without re-lowering.
        """
        xp = get_array_namespace(array_backend)
        ex = self._fused.get(xp.name)
        if ex is None:
            ex = self._fused[xp.name] = FusedExecutor(self, array_backend=xp)
        return ex

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _release_schedule(self) -> list[tuple[int, ...]]:
        """For each schedule position, the node ids whose buffers die there."""
        remaining = self.graph.consumer_counts()
        outputs = set(self.graph.outputs)
        releases: list[tuple[int, ...]] = []
        for node in self.graph.nodes:
            dead = []
            for i in node.inputs:
                remaining[i] -= 1
                if remaining[i] == 0 and i not in outputs:
                    dead.append(i)
            releases.append(tuple(dict.fromkeys(dead)))
        return releases

    def _check_inputs(self, inputs) -> None:
        specs = self.graph.input_specs
        if len(inputs) != len(specs):
            raise ValueError(
                f"plan expects {len(specs)} input(s), got {len(inputs)}"
            )
        for i, (spec, value) in enumerate(zip(specs, inputs)):
            if isinstance(spec, CtSpec):
                if not isinstance(value, Ciphertext):
                    raise TypeError(f"input {i}: expected a Ciphertext")
                if value.level != spec.level or value.size != spec.size:
                    raise ValueError(
                        f"input {i}: plan compiled for level {spec.level} / "
                        f"{spec.size} parts, got level {value.level} / "
                        f"{value.size} parts"
                    )
            elif isinstance(spec, PtSpec):
                if not isinstance(value, Plaintext):
                    raise TypeError(f"input {i}: expected a Plaintext")
                if value.level < spec.level:
                    raise ValueError(
                        f"input {i}: plaintext level {value.level} below the "
                        f"compiled level {spec.level}"
                    )
            if not math.isclose(value.scale, spec.scale, rel_tol=SCALE_RTOL):
                raise ValueError(
                    f"input {i}: plan compiled for scale {spec.scale:g}, "
                    f"got {value.scale:g}"
                )


# ---------------------------------------------------------------------------
# Fused executor: arena buffers + fused kernel dispatch + array namespace
# ---------------------------------------------------------------------------


def _rescale_consts(basis, lvl: int, times: int):
    """Everything :meth:`RnsPolynomial.rescale` recomputes per call,
    resolved once at lower time: the per-digit tail kernels and inverses,
    the mixed-radix weights, and the final ``P^{-1}`` column."""
    keep = lvl - times
    tail = []
    for t in range(times):
        rows = times - 1 - t
        if rows:
            bk = basis.kernel_range(keep, keep + rows)
            q_d = basis.moduli[lvl - 1 - t]
            inv = np.array(
                [pow(q_d, -1, basis.moduli[keep + i]) for i in range(rows)],
                dtype=np.uint64,
            ).reshape(-1, 1)
            tail.append((rows, bk, inv))
        else:
            tail.append((0, None, None))
    kern = basis.kernel(keep)
    kept = basis.moduli[:keep]
    weights = np.empty((times, keep, 1), dtype=np.uint64)
    radix = 1
    for t in range(times):
        weights[t, :, 0] = [radix % q for q in kept]
        radix *= basis.moduli[lvl - 1 - t]
    inv_col = np.array(
        [pow(radix, -1, q) for q in kept], dtype=np.uint64
    ).reshape(-1, 1)
    return keep, tail, kern, weights, inv_col


def _rescale_stack(coeff_all: np.ndarray, consts) -> np.ndarray:
    """:meth:`RnsPolynomial.rescale` vectorized over a leading part axis.

    ``coeff_all`` is ``(P, L, N)`` — all ciphertext parts stacked.  Every
    kernel call below is the eager rescale's call on a leading-axis-
    stacked operand: the moduli columns broadcast against the trailing
    ``(rows, N)`` dims and the deferred accumulation sums the same terms,
    so the result is bit-identical per part.
    """
    keep, tail, kern, weights, inv_col = consts
    times = len(tail)
    parts, _, n = coeff_all.shape
    block = coeff_all[:, keep:, :].copy()
    digits = np.empty((parts, times, n), dtype=np.uint64)
    for t, (rows, bk, inv) in enumerate(tail):
        digit = block[:, rows, :]
        digits[:, t, :] = digit
        if rows:
            red = bk.reduce(np.broadcast_to(digit[:, None, :], (parts, rows, n)))
            block[:, :rows, :] = bk.mul(bk.sub(block[:, :rows, :], red), inv)
    wide = np.broadcast_to(digits[:, :, None, :], (parts, times, keep, n))
    remainder = kern.mul_accumulate(kern.reduce(wide), weights, axis=1)
    diff = kern.sub(coeff_all[:, :keep, :], remainder)
    return kern.mul(diff, inv_col)


class FusedExecutor:
    """Arena-backed fused replayer for one plan on one array namespace.

    Lowering (once per plan per namespace) runs :func:`fusion_groups`,
    plans an :class:`ArenaLayout` over the *fused* schedule, allocates the
    buffer pool, and compiles every step into a closure that reads its
    operands from preassigned pool views and writes its result into its
    own — steady-state replay performs zero result-buffer allocations and
    ``dispatch_count`` Python dispatches (vs one per graph node for the
    batched executor).  Outputs are bit-identical to the eager evaluator:
    every raw step mirrors the eager op's exact kernel calls, and the
    fused accumulations are exact by deferred-reduction canonicity (see
    :mod:`repro.runtime.passes`).

    Array namespace: elementwise and accumulate steps run on ``xp``
    (numpy by default; CuPy/torch/registered namespaces otherwise);
    NTT-bound steps (key switching, rescale) stage through the host via
    the namespace's exact uint64 ``to_numpy``/``from_numpy`` boundary.
    The executor (pool included) is per-process state — forked workers
    inherit it copy-on-write when the parent lowered before forking;
    nothing here crosses the worker boundary or the ``EPL1`` format.
    """

    def __init__(self, plan: ExecutionPlan, array_backend=None) -> None:
        self.plan = plan
        self.xp = get_array_namespace(array_backend)
        self._host = self.xp.is_host
        self._basis = plan.evaluator.basis
        self._dkern_cache: dict[int, object] = {}
        self._scratch_cache: dict[tuple, object] = {}
        g = plan.graph
        self.groups = fusion_groups(g, plan.hoist)
        by_anchor = {grp.anchor: grp for grp in self.groups}
        covered = {m for grp in self.groups for m in grp.members}

        schedule: list[tuple[str, object]] = []
        arena_steps: list[ArenaStep] = []
        for node in g.nodes:
            grp = by_anchor.get(node.id)
            if grp is not None:
                schedule.append(("group", grp))
                arena_steps.append(self._arena_step_for_group(grp, g))
            elif node.id in covered:
                continue
            elif node.op in ("input", "pt_input"):
                schedule.append(("node", node))
                arena_steps.append(ArenaStep(produced=(), consumed=()))
            else:
                schedule.append(("node", node))
                arena_steps.append(
                    ArenaStep(
                        produced=((node.id, node.size),), consumed=node.inputs
                    )
                )
        level = max(
            (
                g.nodes[nid].level
                for step in arena_steps
                for nid, _ in step.produced
            ),
            default=1,
        )
        self.layout = ArenaLayout.plan(
            arena_steps, g.outputs, level=level, degree=self._basis.degree
        )
        self.arena = BufferArena(self.layout, self.xp)
        self.arena.ensure()
        self._views = {
            nid: self.arena.views(nid, g.nodes[nid].level)
            for nid in self.layout.slots
        }
        template: list = [None] * len(g.nodes)
        for nid, views in self._views.items():
            template[nid] = views
        self._template = template
        self._steps = [
            self._lower_group(obj) if kind == "group" else self._lower_raw(obj)
            for kind, obj in schedule
        ]
        # Stable per-step labels for traced replay: fused groups by
        # kind@anchor, raw nodes by op@id — deterministic per plan.
        self._step_labels = [
            f"{obj.kind}@{obj.anchor}" if kind == "group" else f"{obj.op}@{obj.id}"
            for kind, obj in schedule
        ]
        telemetry = get_telemetry()
        self._telemetry = telemetry
        self._metrics = telemetry.group(
            "fused", plan=plan.signature[:12], backend=self.xp.name
        ).declare("replays", "dispatches")
        # Arena occupancy is plan metadata: publish it once as gauges so
        # the exporter sees the same numbers ``plan.stats()`` reports.
        telemetry.gauge(
            "fused_arena_slots", plan=plan.signature[:12], backend=self.xp.name
        ).set(self.layout.num_slots)
        telemetry.gauge(
            "fused_arena_peak_bytes",
            plan=plan.signature[:12],
            backend=self.xp.name,
        ).set(self.layout.pool_bytes)
        self._out_build = []
        for o in g.outputs:
            node = g.nodes[o]
            if node.op in ("input", "pt_input"):
                self._out_build.append((None, node.attrs[0], None, None))
            else:
                self._out_build.append((o, None, node.scale, node.level))

    @property
    def dispatch_count(self) -> int:
        """Python dispatches (schedule steps) per replay."""
        return len(self._steps)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, inputs) -> list[Ciphertext]:
        return self.run_batch([inputs])[0]

    def run_batch(self, batches) -> list[list[Ciphertext]]:
        telemetry = self._telemetry
        results = []
        for inputs in batches:
            self.plan._check_inputs(inputs)
            env = self._template.copy()
            if telemetry.enabled:
                self._run_steps_traced(telemetry, env, inputs)
            else:
                for fn in self._steps:
                    fn(env, inputs)
            results.append(self._collect(inputs))
        if batches:
            self._metrics.inc("replays", len(batches))
            self._metrics.inc("dispatches", len(self._steps) * len(batches))
        return results

    def _run_steps_traced(self, telemetry, env, inputs) -> None:
        """One replay under tracing: a root span per replay with one
        child span per fused step.  Only reached when telemetry is
        enabled; an unsampled trace falls back to the plain loop."""
        root = telemetry.start_trace(
            "fused_replay",
            category="replay",
            plan=self.plan.signature[:12],
            backend=self.xp.name,
            arena_slots=self.layout.num_slots,
            arena_peak_bytes=self.layout.pool_bytes,
        )
        if not root:
            for fn in self._steps:
                fn(env, inputs)
            return
        try:
            for fn, label in zip(self._steps, self._step_labels):
                with telemetry.child_span(label, root.ctx, category="replay"):
                    fn(env, inputs)
        finally:
            root.end(dispatches=len(self._steps))

    def _collect(self, inputs) -> list[Ciphertext]:
        basis = self._basis
        outs = []
        for nid, input_index, scale, _level in self._out_build:
            if nid is None:
                outs.append(inputs[input_index])
                continue
            parts = [
                RnsPolynomial(basis, np.array(self._H(v), copy=True), EVAL)
                for v in self._views[nid]
            ]
            outs.append(Ciphertext(parts=parts, scale=scale))
        return outs

    # ------------------------------------------------------------------
    # Namespace staging helpers
    # ------------------------------------------------------------------

    def _H(self, x):
        """Host view of an array (identity on the numpy namespace)."""
        return x if self._host else np.asarray(self.xp.to_numpy(x))

    def _S(self, view, host_arr) -> None:
        """Store a host result into a pool view."""
        if self._host:
            np.copyto(view, host_arr)
        else:
            self.xp.copyto(
                view, self.xp.from_numpy(np.ascontiguousarray(host_arr))
            )

    def _dev(self, host_arr):
        return host_arr if self._host else self.xp.asarray(host_arr)

    def _add_into(self, kern, a, b, view) -> None:
        if self._host:
            kern.add(a, b, out=view)
        else:
            self._S(view, kern.add(a, b))

    def _dkern(self, lvl: int):
        """Kernel for fused elementwise steps, in the active namespace."""
        if self._host:
            return self._basis.kernel(lvl)
        kern = self._dkern_cache.get(lvl)
        if kern is None:
            q_col = np.array(
                self._basis.moduli[:lvl], dtype=np.uint64
            ).reshape(-1, 1)
            kern = make_kernel(q_col, self.plan.backend, xp=self.xp)
            self._dkern_cache[lvl] = kern
        return kern

    def _scratch(self, tag: str, lvl: int, *, host: bool = False):
        """A lower-time-allocated ``(lvl, N)`` uint64 work buffer.

        Keyed by (tag, lvl) so independent closures never share a buffer
        that could still be live; replays reuse the same arrays, keeping
        the steady state allocation-free.
        """
        key = (tag, lvl, host)
        buf = self._scratch_cache.get(key)
        if buf is None:
            shape = (lvl, self._basis.degree)
            buf = (
                np.empty(shape, dtype=np.uint64)
                if host or self._host
                else self.xp.empty(shape, dtype=np.uint64)
            )
            self._scratch_cache[key] = buf
        return buf

    def _contract(self, kern, tensor, pre, lvl: int, out=None):
        """``sum_j tensor[j] * key[j] mod q`` — the key-switch inner product
        as per-digit-row precomputed-constant multiplies with raw uint64
        accumulation.

        Bit-identical to ``kern.mul_accumulate(tensor, stacked)``: each
        row product is the same canonical residue whichever multiplication
        algorithm produced it, the uint64 sum of L canonical terms is far
        inside the deferred-reduction headroom, and the single final
        reduce sees the identical accumulator.  Row-sized operands keep
        every temporary cache-resident, which is where the speedup over
        one whole-tensor multiply comes from.
        """
        acc = self._scratch("ks-acc", lvl, host=True)
        tmp = self._scratch("ks-tmp", lvl, host=True)
        # Backend pre-forms may stack extra precomputed pieces ahead of the
        # value axes (Barrett's Shoup pieces); index rows accordingly.
        stacked = pre.ndim == tensor.ndim + 1
        kern.mul_pre(tensor[0], pre[:, 0] if stacked else pre[0], out=acc)
        for j in range(1, tensor.shape[0]):
            kern.mul_pre(tensor[j], pre[:, j] if stacked else pre[j], out=tmp)
            acc += tmp
        return kern.reduce(acc, out=out)

    def _contract2(
        self, kern, tensor, b_pre, a_pre, lvl: int, perm=None, out0=None, out1=None
    ):
        """Both key-component contractions in one pass over the digit rows.

        Same arithmetic as two :meth:`_contract` calls, but each (possibly
        permuted) tensor row is gathered once and fed to both component
        multiplies while cache-hot, and the optional ``perm`` folds the
        Galois slot permutation into the row loop instead of materializing
        a permuted copy of the whole tensor.  Permuting row-by-row gathers
        the identical elements, so the products — and every accumulated
        bit — match the whole-tensor-permute path exactly.
        """
        acc0 = self._scratch("ks-acc0", lvl, host=True)
        acc1 = self._scratch("ks-acc1", lvl, host=True)
        tmp = self._scratch("ks-tmp", lvl, host=True)
        stacked = b_pre.ndim == tensor.ndim + 1

        def _row(pre, j):
            return pre[:, j] if stacked else pre[j]

        row = tensor[0] if perm is None else tensor[0][:, perm]
        kern.mul_pre(row, _row(b_pre, 0), out=acc0)
        kern.mul_pre(row, _row(a_pre, 0), out=acc1)
        for j in range(1, tensor.shape[0]):
            row = tensor[j] if perm is None else tensor[j][:, perm]
            kern.mul_pre(row, _row(b_pre, j), out=tmp)
            acc0 += tmp
            kern.mul_pre(row, _row(a_pre, j), out=tmp)
            acc1 += tmp
        return kern.reduce(acc0, out=out0), kern.reduce(acc1, out=out1)

    # ------------------------------------------------------------------
    # Host-staged key-switch core (mirrors KeySwitchEngine bit-for-bit)
    # ------------------------------------------------------------------

    def _decompose(self, data: np.ndarray, lvl: int) -> np.ndarray:
        basis = self._basis
        bat = basis.batch_ntt(lvl)
        coeff = bat.inverse(data)
        wide = np.broadcast_to(
            coeff[:, np.newaxis, :], (lvl, lvl, basis.degree)
        )
        return bat.forward(basis.kernel(lvl).reduce(wide))

    def _apply(self, tensor: np.ndarray, key, lvl: int, perm=None, out0=None, out1=None):
        """Contract a decomposed tensor against one switching key.

        Unlike the eager engine (which pre-forms key tensors only when
        ``constant_pre_cheap`` holds), the fused replayer always uses
        :meth:`SwitchingKey.stacked_pre` — the pre-form cost is paid once
        per (key, backend) and cached on the key, and every replay then
        runs the cache-friendly per-row contraction (see :meth:`_contract`
        for the bit-identity argument).
        """
        kern = self._basis.kernel(lvl)
        b_pre, a_pre = key.stacked_pre(kern)
        return self._contract2(
            kern, tensor, b_pre, a_pre, lvl, perm=perm, out0=out0, out1=out1
        )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    @staticmethod
    def _arena_step_for_group(grp, g: Graph) -> ArenaStep:
        if grp.kind in ("mac", "sum"):
            return ArenaStep(
                produced=((grp.anchor, g.nodes[grp.anchor].size),),
                consumed=grp.sources,
            )
        if grp.kind == "hoisted_automorphisms":
            return ArenaStep(
                produced=tuple((m, g.nodes[m].size) for m in grp.members),
                consumed=grp.sources,
            )
        # chain: internal edges count too, so interior slots free at the
        # end of the step rather than leaking for the whole replay.
        return ArenaStep(
            produced=tuple((m, g.nodes[m].size) for m in grp.members),
            consumed=tuple(
                i for m in grp.members for i in g.nodes[m].inputs
            ),
        )

    def _lower_group(self, grp):
        g = self.plan.graph
        if grp.kind == "chain":
            closures = [self._lower_raw(g.nodes[m]) for m in grp.members]

            def chain_step(env, inputs):
                for fn in closures:
                    fn(env, inputs)

            return chain_step
        if grp.kind == "hoisted_automorphisms":
            return self._lower_hoisted(grp)
        root = g.nodes[grp.anchor]
        lvl = root.level
        dkern = self._dkern(lvl)
        xp = self.xp
        views = self._views[root.id]
        srcs = grp.sources
        # Raw uint64 accumulation of canonical terms with one final reduce
        # is bit-identical to the eager binary add tree (canonical residues
        # are unique; see ReducerKernel.add_accumulate) as long as the term
        # count stays inside the deferred-reduction headroom.
        assert len(srcs) <= dkern._acc_headroom
        # Shared per-level work buffers: replay is single-threaded and the
        # accumulator is dead by the end of each group step.
        acc = self._scratch("grp-acc", lvl)
        tmp = self._scratch("grp-tmp", lvl)
        if grp.kind == "mac":
            # Per-term precomputed-constant multiplies (Shoup/Montgomery
            # pre-forms, resolved at lower time) beat one stacked multiply:
            # same canonical products, but row-sized temporaries stay in
            # cache and the constant pre-form halves the per-element work.
            m_pre = [
                dkern.pre(
                    self._dev(
                        g.consts[g.nodes[t].consts[0]]
                        .poly.drop_limbs(lvl)
                        .to_eval()
                        .data
                    )
                )
                for t in grp.payload
            ]

            def mac_step(env, inputs):
                a_ = acc  # local alias: += must not rebind the closure cell
                for i, v in enumerate(views):
                    dkern.mul_pre(env[srcs[0]][i][:lvl], m_pre[0], out=a_)
                    for t in range(1, len(srcs)):
                        dkern.mul_pre(env[srcs[t]][i][:lvl], m_pre[t], out=tmp)
                        a_ += tmp
                    dkern.reduce(a_, out=v)

            return mac_step

        def sum_step(env, inputs):
            a_ = acc
            for i, v in enumerate(views):
                xp.copyto(a_, env[srcs[0]][i][:lvl])
                for t in range(1, len(srcs)):
                    a_ += env[srcs[t]][i][:lvl]
                dkern.reduce(a_, out=v)

        return sum_step

    def _lower_hoisted(self, grp):
        g = self.plan.graph
        src = grp.sources[0]
        lvl = g.nodes[src].level
        hkern = self._basis.kernel(lvl)
        two_n = 2 * self._basis.degree
        members_meta = [
            (
                galois_permutation(self._basis.degree, g.nodes[m].attrs[-1] % two_n),
                g.consts[g.nodes[m].consts[0]],
                self._views[m],
            )
            for m in grp.members
        ]

        host = self._host

        def hoisted_step(env, inputs):
            parts = env[src]
            p0 = self._H(parts[0][:lvl])
            dec = self._decompose(self._H(parts[1][:lvl]), lvl)
            for perm, key, mviews in members_meta:
                out1 = mviews[1] if host else None
                ks0, ks1 = self._apply(dec, key, lvl, perm=perm, out1=out1)
                self._add_into(hkern, p0[:, perm], ks0, mviews[0])
                if not host:
                    self._S(mviews[1], ks1)

        return hoisted_step

    def _lower_raw(self, node: Node):
        """One node -> one closure writing into its preassigned views.

        Each branch issues the exact kernel-call sequence the eager
        evaluator performs for that op (with ``out=`` routed into the
        arena), so single-node steps are bit-identical by construction.
        """
        g = self.plan.graph
        op = node.op
        xp = self.xp
        nid = node.id
        if op in ("input", "pt_input"):
            index = node.attrs[0]
            if op == "pt_input":

                def pt_step(env, inputs):
                    env[nid] = inputs[index]

                return pt_step

            def input_step(env, inputs):
                env[nid] = [self._dev(p.data) for p in inputs[index].parts]

            return input_step

        views = self._views[nid]
        lvl = node.level
        ids = node.inputs
        if op in ("add", "sub"):
            a, b = ids
            asize = g.nodes[a].size
            bsize = g.nodes[b].size
            kern = self._dkern(lvl)
            is_sub = op == "sub"

            def add_step(env, inputs):
                pa = env[a]
                pb = env[b]
                for i, v in enumerate(views):
                    if i < asize and i < bsize:
                        if is_sub:
                            # kern.sub == add(a, neg(b)) by canonicity.
                            kern.sub(pa[i][:lvl], pb[i][:lvl], out=v)
                        else:
                            kern.add(pa[i][:lvl], pb[i][:lvl], out=v)
                    elif i < asize:
                        xp.copyto(v, pa[i][:lvl])
                    elif is_sub:
                        kern.neg(pb[i][:lvl], out=v)
                    else:
                        xp.copyto(v, pb[i][:lvl])

            return add_step
        if op == "negate":
            (a,) = ids
            kern = self._dkern(lvl)

            def neg_step(env, inputs):
                pa = env[a]
                for i, v in enumerate(views):
                    kern.neg(pa[i][:lvl], out=v)

            return neg_step
        if op == "multiply":
            a, b = ids
            kern = self._dkern(lvl)

            def mul_step(env, inputs):
                pa = env[a]
                pb = env[b]
                a0, a1 = pa[0][:lvl], pa[1][:lvl]
                b0, b1 = pb[0][:lvl], pb[1][:lvl]
                kern.mul(a0, b0, out=views[0])
                kern.add(kern.mul(a0, b1), kern.mul(a1, b0), out=views[1])
                kern.mul(a1, b1, out=views[2])

            return mul_step
        if op in ("add_plain", "multiply_plain"):
            if len(ids) == 2:  # symbolic plaintext: eager fallback
                return self._lower_plain_fallback(node)
            (a,) = ids
            pt = g.consts[node.consts[0]]
            m = self._dev(pt.poly.drop_limbs(lvl).to_eval().data)
            kern = self._dkern(lvl)
            if op == "add_plain":

                def addp_step(env, inputs):
                    pa = env[a]
                    kern.add(pa[0][:lvl], m, out=views[0])
                    for i in range(1, len(views)):
                        xp.copyto(views[i], pa[i][:lvl])

                return addp_step

            m_pre = kern.pre(m)  # constant operand: pre-form at lower time

            def mulp_step(env, inputs):
                pa = env[a]
                for i, v in enumerate(views):
                    kern.mul_pre(pa[i][:lvl], m_pre, out=v)

            return mulp_step
        if op == "relinearize":
            (a,) = ids
            key = g.consts[node.consts[0]]
            hkern = self._basis.kernel(lvl)

            def relin_step(env, inputs):
                parts = env[a]
                dec = self._decompose(self._H(parts[2][:lvl]), lvl)
                ks0, ks1 = self._apply(dec, key, lvl)
                self._add_into(hkern, self._H(parts[0][:lvl]), ks0, views[0])
                self._add_into(hkern, self._H(parts[1][:lvl]), ks1, views[1])

            return relin_step
        if op == "rescale":
            (a,) = ids
            times = node.attrs[0]
            lvl_in = g.nodes[a].level
            consts = _rescale_consts(self._basis, lvl_in, times)
            bat_in = self._basis.batch_ntt(lvl_in)
            bat_out = self._basis.batch_ntt(lvl_in - times)

            def rescale_step(env, inputs):
                stacked = np.stack([self._H(p[:lvl_in]) for p in env[a]])
                res = _rescale_stack(bat_in.inverse(stacked), consts)
                out = bat_out.forward(res)
                for i, v in enumerate(views):
                    self._S(v, out[i])

            return rescale_step
        if op in AUTOMORPHISM_OPS:
            (a,) = ids
            key = g.consts[node.consts[0]]
            hkern = self._basis.kernel(lvl)
            perm = galois_permutation(
                self._basis.degree, node.attrs[-1] % (2 * self._basis.degree)
            )

            host = self._host

            def galois_step(env, inputs):
                parts = env[a]
                dec = self._decompose(self._H(parts[1][:lvl]), lvl)
                out1 = views[1] if host else None
                ks0, ks1 = self._apply(dec, key, lvl, perm=perm, out1=out1)
                c0r = self._H(parts[0][:lvl])[:, perm]
                self._add_into(hkern, c0r, ks0, views[0])
                if not host:
                    self._S(views[1], ks1)

            return galois_step
        raise AssertionError(f"unschedulable op {op!r}")

    def _lower_plain_fallback(self, node: Node):
        """Plain op over a *symbolic* plaintext: per-replay data, so the
        step materializes containers and calls the eager evaluator."""
        g = self.plan.graph
        ev = self.plan.evaluator
        basis = self._basis
        a, p = node.inputs
        method = ev.add_plain if node.op == "add_plain" else ev.multiply_plain
        alvl = g.nodes[a].level
        scale = g.nodes[a].scale
        views = self._views[node.id]

        def plain_step(env, inputs):
            ct = Ciphertext(
                parts=[
                    RnsPolynomial(basis, self._H(part[:alvl]), EVAL)
                    for part in env[a]
                ],
                scale=scale,
            )
            res = method(ct, env[p])
            for i, v in enumerate(views):
                self._S(v, res.parts[i].data)

        return plain_step


# ---------------------------------------------------------------------------
# Process-level plan cache
# ---------------------------------------------------------------------------

_PLAN_CACHE: dict[tuple, ExecutionPlan] = {}
# Single source of truth for the cache accounting: a telemetry counter
# group; ``plan_cache_info()`` stays the thin dict view over it.
_CACHE_STATS = get_telemetry().group("plan_cache").declare(
    "hits", "misses", "disk_hits", "disk_saves"
)
_PLAN_STORE = None


def set_plan_store(store) -> None:
    """Back the process-level plan cache with an on-disk plan store.

    ``store`` is a :class:`repro.runtime.plan_io.PlanStore`, a directory
    path to create one at, or ``None`` to detach.  While installed,
    ``compile_graph`` resolves cache misses against the store (loading a
    serialized plan instead of running the optimizer) and persists every
    freshly compiled plan back to it — fleet-wide plan caching.
    """
    global _PLAN_STORE
    if store is None or hasattr(store, "load"):
        _PLAN_STORE = store
        return
    from repro.runtime.plan_io import PlanStore

    _PLAN_STORE = PlanStore(store)


def get_plan_store():
    """The installed on-disk plan store, or ``None``."""
    return _PLAN_STORE


def compile_graph(
    graph: Graph, evaluator: Evaluator, *, run_passes: bool = True
) -> ExecutionPlan:
    """Optimize and schedule a traced graph, reusing a cached plan when the
    same program structure was compiled before under the same parameters
    and reducer backend (optimized and pass-free compiles cache
    separately).  With a plan store installed (:func:`set_plan_store`),
    misses fall through to the on-disk artifact before the optimizer runs."""
    key = (
        graph.signature(),
        params_fingerprint(evaluator),
        default_backend_name(),
        run_passes,
    )
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _CACHE_STATS.inc("hits")
        return cached
    _CACHE_STATS.inc("misses")
    if run_passes and _PLAN_STORE is not None:
        # Fail open: a corrupt/truncated/newer-version artifact or a lost
        # sidecar must degrade to a recompile, never to a compile outage.
        try:
            loaded = _PLAN_STORE.load(graph, evaluator, key[2])
        except (ValueError, OSError) as exc:
            loaded = None
            warnings.warn(
                f"plan store load failed ({exc}); recompiling",
                RuntimeWarning,
                stacklevel=2,
            )
        if loaded is not None:
            _CACHE_STATS.inc("disk_hits")
            loaded.signature = key[0]
            _PLAN_CACHE[key] = loaded
            return loaded
    if run_passes:
        optimized = optimize(graph)
    else:
        check_alignment(graph)
        optimized = graph
    plan = ExecutionPlan(
        graph=optimized,
        evaluator=evaluator,
        signature=key[0],
        backend=key[2],
        hoist=hoist_groups(optimized),
    )
    _PLAN_CACHE[key] = plan
    if run_passes and _PLAN_STORE is not None:
        try:
            _PLAN_STORE.save(plan, graph=graph)
            _CACHE_STATS.inc("disk_saves")
        except OSError as exc:  # full/read-only disk must not kill serving
            warnings.warn(
                f"plan store save failed ({exc})", RuntimeWarning, stacklevel=2
            )
    return plan


def compile_fn(fn, evaluator: Evaluator, input_specs, *, run_passes: bool = True):
    """Trace ``fn`` and compile it in one step (the common entry point)."""
    return compile_graph(
        trace(fn, evaluator, input_specs), evaluator, run_passes=run_passes
    )


def plan_cache_info() -> dict[str, int]:
    """Hit/miss/size counters for the process-level plan cache — a view
    over the telemetry registry's ``plan_cache_*`` counters."""
    return {**_CACHE_STATS.to_dict(), "size": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    _PLAN_CACHE.clear()
    _CACHE_STATS.reset()
