"""Tracing: record an Evaluator-shaped program into a :class:`Graph`.

:class:`LazyEvaluator` mirrors the :class:`~repro.ckks.evaluator.Evaluator`
surface method-for-method, but its "ciphertexts" are symbolic
:class:`LazyCiphertext` handles carrying only (level, scale, size)
metadata.  Any function written against the shared surface — the BSGS
linear layer's emitter, a bootstrap segment, a user model — runs
unmodified under either evaluator, so the *same callable* can be executed
eagerly or traced::

    from repro.runtime import CtSpec, trace

    def program(ev, x):
        sq = ev.multiply_relin_rescale(x, x, relin_keys)
        return ev.add(sq, x)

    graph = trace(program, ctx.evaluator, [CtSpec(level=6, scale=delta)])

Level/scale bookkeeping follows the eager evaluator's rules exactly, so a
malformed program (scale mismatch, missing key, exhausted levels) fails
*at trace time* with the producing ops named — not mid-execution on live
data.  Captured plaintexts and switching keys are interned in the graph's
constant table; the specific key each op needs is resolved during tracing
(levels are known), so a plan can never hit a missing-key ``KeyError`` at
run time.

Contract (see ``docs/architecture.md``): tracing is a pure, process-local
recording step — it caches nothing process-wide and shares nothing
across forks.  In a serving fleet, tracing happens once on the compiling
host; remote workers skip this module entirely when a serialized plan
arrives over the wire (:mod:`repro.runtime.plan_io`), and a local fresh
process only re-traces to *derive the plan-store key*, never to
re-optimize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ckks.containers import Plaintext
from repro.ckks.evaluator import SCALE_RTOL
from repro.ckks.keys import SwitchingKey, rotation_galois_elt
from repro.ckks.params import CkksParameters
from repro.rns.basis import RnsBasis
from repro.runtime.graph import CtSpec, Graph, PtSpec

__all__ = [
    "TraceError",
    "LazyCiphertext",
    "LazyPlaintext",
    "LazyDecomposed",
    "LazyEvaluator",
    "trace",
]


class TraceError(ValueError):
    """A program violated level/scale/key rules while being traced."""


@dataclass(frozen=True)
class LazyCiphertext:
    """Symbolic ciphertext handle: a node id plus its graph."""

    graph: Graph
    node: int

    @property
    def level(self) -> int:
        return self.graph.nodes[self.node].level

    @property
    def scale(self) -> float:
        return self.graph.nodes[self.node].scale

    @property
    def size(self) -> int:
        return self.graph.nodes[self.node].size


@dataclass(frozen=True)
class LazyPlaintext:
    """Symbolic plaintext handle (a ``pt_input`` leaf)."""

    graph: Graph
    node: int

    @property
    def level(self) -> int:
        return self.graph.nodes[self.node].level

    @property
    def scale(self) -> float:
        return self.graph.nodes[self.node].scale


@dataclass(frozen=True)
class LazyDecomposed:
    """Mirror of :class:`~repro.ckks.keyswitch.DecomposedPoly` for surface
    compatibility: hoisting is rediscovered by the optimizer, so the lazy
    handle only remembers which ciphertext it came from."""

    graph: Graph
    source: int


@dataclass
class LazyEvaluator:
    """Evaluator look-alike that records ops instead of executing them.

    Attributes:
        params: CKKS parameters (level/scale rules come from here).
        basis: the RNS chain (rescale needs the dropped moduli).
        graph: the graph under construction.
    """

    params: CkksParameters
    basis: RnsBasis
    graph: Graph

    # ------------------------------------------------------------------
    # Linear operations
    # ------------------------------------------------------------------

    def add(self, a: LazyCiphertext, b: LazyCiphertext) -> LazyCiphertext:
        self._check_scales(a, b, op="add")
        return self._emit(
            "add", (a.node, b.node),
            level=min(a.level, b.level), scale=a.scale, size=max(a.size, b.size),
        )

    def sub(self, a: LazyCiphertext, b: LazyCiphertext) -> LazyCiphertext:
        self._check_scales(a, b, op="sub")
        return self._emit(
            "sub", (a.node, b.node),
            level=min(a.level, b.level), scale=a.scale, size=max(a.size, b.size),
        )

    def negate(self, a: LazyCiphertext) -> LazyCiphertext:
        return self._emit(
            "negate", (a.node,), level=a.level, scale=a.scale, size=a.size
        )

    def add_plain(self, ct: LazyCiphertext, pt) -> LazyCiphertext:
        self._check_plain(ct, pt, op="add_plain")
        if not math.isclose(ct.scale, pt.scale, rel_tol=SCALE_RTOL):
            raise TraceError(
                f"add_plain: scale mismatch: ciphertext from "
                f"{self.graph.provenance(ct.node)} has scale {ct.scale:g} but "
                f"the plaintext's is {pt.scale:g}"
            )
        inputs, consts = self._plain_operand(ct, pt)
        return self._emit(
            "add_plain", inputs, consts=consts,
            level=ct.level, scale=ct.scale, size=ct.size,
        )

    def multiply_plain(self, ct: LazyCiphertext, pt) -> LazyCiphertext:
        self._check_plain(ct, pt, op="multiply_plain")
        inputs, consts = self._plain_operand(ct, pt)
        return self._emit(
            "multiply_plain", inputs, consts=consts,
            level=ct.level, scale=ct.scale * pt.scale, size=ct.size,
        )

    # ------------------------------------------------------------------
    # Multiplication / relinearization / rescaling
    # ------------------------------------------------------------------

    def multiply(self, a: LazyCiphertext, b: LazyCiphertext) -> LazyCiphertext:
        if a.size != 2 or b.size != 2:
            raise TraceError(
                f"multiply expects relinearized (2-part) inputs; got "
                f"{self.graph.provenance(a.node)} and {self.graph.provenance(b.node)}"
            )
        return self._emit(
            "multiply", (a.node, b.node),
            level=min(a.level, b.level), scale=a.scale * b.scale, size=3,
        )

    def relinearize(
        self, ct: LazyCiphertext, relin_keys: dict[int, SwitchingKey]
    ) -> LazyCiphertext:
        if ct.size == 2:
            return ct
        if ct.size != 3:
            raise TraceError(
                f"can only relinearize 3-part ciphertexts, got "
                f"{self.graph.provenance(ct.node)}"
            )
        key = relin_keys.get(ct.level)
        if key is None:
            raise TraceError(
                f"no relinearization key for level {ct.level} "
                f"(needed by {self.graph.provenance(ct.node)})"
            )
        return self._emit(
            "relinearize", (ct.node,), consts=(self.graph.add_const(key),),
            level=ct.level, scale=ct.scale, size=2,
        )

    def rescale(self, ct: LazyCiphertext, times: int = 1) -> LazyCiphertext:
        if times == 0:
            return ct
        if ct.level - times < 1:
            raise TraceError(
                f"rescale x{times} would exhaust the modulus chain: "
                f"{self.graph.provenance(ct.node)} has only "
                f"{ct.level - 1} droppable prime(s) left"
            )
        scale = ct.scale
        for t in range(times):
            scale /= self.basis.moduli[ct.level - 1 - t]
        return self._emit(
            "rescale", (ct.node,), attrs=(times,),
            level=ct.level - times, scale=scale, size=ct.size,
        )

    def multiply_relin_rescale(
        self, a: LazyCiphertext, b: LazyCiphertext, relin_keys: dict[int, SwitchingKey]
    ) -> LazyCiphertext:
        prod = self.relinearize(self.multiply(a, b), relin_keys)
        return self.rescale(prod, times=self.params.levels_per_multiplication)

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------

    def decompose(self, ct: LazyCiphertext) -> LazyDecomposed:
        """Surface-compatible no-op: the hoisting pass regroups rotations
        sharing a source automatically, so an explicit hoist is just a
        marker validated against later ``decomposed=`` uses."""
        if ct.size != 2:
            raise TraceError(
                f"hoisting expects relinearized (2-part) ciphertexts, got "
                f"{self.graph.provenance(ct.node)}"
            )
        return LazyDecomposed(graph=self.graph, source=ct.node)

    def rotate(
        self,
        ct: LazyCiphertext,
        steps: int,
        galois_keys: dict[tuple[int, int], SwitchingKey],
        decomposed: LazyDecomposed | None = None,
    ) -> LazyCiphertext:
        key = galois_keys.get((steps, ct.level))
        if key is None:
            raise TraceError(
                f"no Galois key for rotation {steps} at level {ct.level} "
                f"(needed by {self.graph.provenance(ct.node)})"
            )
        galois_elt = rotation_galois_elt(
            steps, self.params.slots, 2 * self.basis.degree
        )
        return self._automorphism(
            "rotate", ct, galois_elt, key, decomposed, attrs=(steps, galois_elt)
        )

    def conjugate(
        self, ct: LazyCiphertext, conj_keys: dict[int, SwitchingKey]
    ) -> LazyCiphertext:
        key = conj_keys.get(ct.level)
        if key is None:
            raise TraceError(
                f"no conjugation key at level {ct.level} "
                f"(needed by {self.graph.provenance(ct.node)})"
            )
        galois_elt = 2 * self.basis.degree - 1
        return self._automorphism("conjugate", ct, galois_elt, key, None,
                                  attrs=(galois_elt,))

    def apply_galois(
        self,
        ct: LazyCiphertext,
        galois_elt: int,
        key: SwitchingKey,
        decomposed: LazyDecomposed | None = None,
    ) -> LazyCiphertext:
        return self._automorphism(
            "apply_galois", ct, galois_elt, key, decomposed, attrs=(galois_elt,)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _emit(self, op, inputs, *, level, scale, size, attrs=(), consts=()):
        node = self.graph.add_node(
            op, inputs=inputs, attrs=attrs, consts=consts,
            level=level, scale=scale, size=size,
        )
        return LazyCiphertext(graph=self.graph, node=node)

    def _automorphism(self, op, ct, galois_elt, key, decomposed, attrs):
        if ct.size != 2:
            raise TraceError(
                f"relinearize before applying automorphisms: "
                f"{self.graph.provenance(ct.node)} has {ct.size} parts"
            )
        if key.level != ct.level:
            raise TraceError(
                f"{op}: switching key level {key.level} != ciphertext level "
                f"{ct.level} ({self.graph.provenance(ct.node)})"
            )
        if decomposed is not None and decomposed.source != ct.node:
            raise TraceError(
                f"{op}: decomposed= was hoisted from "
                f"{self.graph.provenance(decomposed.source)} but the rotated "
                f"ciphertext is {self.graph.provenance(ct.node)}"
            )
        return self._emit(
            op, (ct.node,), attrs=attrs, consts=(self.graph.add_const(key),),
            level=ct.level, scale=ct.scale, size=2,
        )

    def _plain_operand(self, ct, pt):
        if isinstance(pt, LazyPlaintext):
            return (ct.node, pt.node), ()
        return (ct.node,), (self.graph.add_const(pt),)

    def _check_plain(self, ct, pt, *, op: str) -> None:
        if not isinstance(pt, (Plaintext, LazyPlaintext)):
            raise TraceError(f"{op} expects a Plaintext, got {type(pt).__name__}")
        if pt.level < ct.level:
            raise TraceError(
                f"{op}: plaintext at level {pt.level} cannot reach ciphertext "
                f"level {ct.level} ({self.graph.provenance(ct.node)})"
            )

    def _check_scales(self, a, b, *, op: str) -> None:
        if not math.isclose(a.scale, b.scale, rel_tol=SCALE_RTOL):
            raise TraceError(
                f"{op}: scale mismatch: {a.scale:g} (from "
                f"{self.graph.provenance(a.node)}) vs {b.scale:g} (from "
                f"{self.graph.provenance(b.node)}); rescale first"
            )


def trace(fn, evaluator, input_specs) -> Graph:
    """Record ``fn(lazy_evaluator, *handles)`` into a fresh :class:`Graph`.

    Args:
        fn: a program written against the Evaluator surface.
        evaluator: the eager :class:`~repro.ckks.evaluator.Evaluator` (or
            any object exposing ``params`` and ``basis``) the program will
            eventually run under.
        input_specs: :class:`CtSpec`/:class:`PtSpec` for each symbolic
            argument ``fn`` receives after the evaluator.

    Returns:
        The recorded graph with outputs set (``fn`` may return one handle
        or a sequence of handles).
    """
    specs = tuple(input_specs)
    graph = Graph(specs)
    lazy = LazyEvaluator(params=evaluator.params, basis=evaluator.basis, graph=graph)
    handles = []
    for spec in specs:
        nid = graph.add_input(spec)
        if isinstance(spec, CtSpec):
            handles.append(LazyCiphertext(graph=graph, node=nid))
        elif isinstance(spec, PtSpec):
            handles.append(LazyPlaintext(graph=graph, node=nid))
        else:
            raise TypeError(f"input spec must be CtSpec or PtSpec, got {spec!r}")
    out = fn(lazy, *handles)
    if out is None:
        raise TraceError("traced function must return handles from this trace")
    if isinstance(out, (LazyCiphertext, LazyPlaintext)):
        out = (out,)
    nodes = []
    for h in out:
        if not isinstance(h, (LazyCiphertext, LazyPlaintext)) or h.graph is not graph:
            raise TraceError("traced function must return handles from this trace")
        nodes.append(h.node)
    if not nodes:
        raise TraceError("traced function returned no outputs")
    graph.set_outputs(nodes)
    return graph
