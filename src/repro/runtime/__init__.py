"""Lazy computation-graph runtime: trace, optimize, and batch-execute
CKKS programs.

Instead of driving the eager :class:`~repro.ckks.evaluator.Evaluator` one
op at a time, write the program once against the shared surface and let
the runtime plan it::

    from repro.runtime import CtSpec, compile_fn

    def model(ev, x):
        sq = ev.multiply_relin_rescale(x, x, relin_keys)
        return ev.add(ev.rotate(sq, 1, galois_keys), sq)

    plan = compile_fn(model, ctx.evaluator, [CtSpec(level=6, scale=delta)])
    [out] = plan.run([ct])                  # bit-identical to eager
    outs = plan.run_batch([[ct] for ct in requests])   # throughput serving

Pipeline: :func:`trace` records an op DAG over symbolic handles
(:mod:`repro.runtime.trace`); optimizer passes eliminate common
subexpressions and dead nodes, fuse rescale chains, group hoistable
rotations, and validate level/scale alignment at plan time
(:mod:`repro.runtime.passes`); the resulting
:class:`~repro.runtime.plan.ExecutionPlan` is cached process-wide and
executed by a bit-identical reference interpreter, a batched replayer, or
the fused replayer (``plan.run_batch(..., fused=True)``) — an
arena-backed :class:`~repro.runtime.plan.FusedExecutor` that preassigns
every intermediate to a slot in one preallocated pool and collapses
elementwise/MAC/hoisted-rotation runs into single kernel dispatches,
optionally on a non-numpy array namespace (:mod:`repro.nums.backend`);
:mod:`repro.runtime.bridge` converts traced plans into accelerator
workload/queue form for scheduler experiments.

For serving, the stable surface is :func:`~repro.runtime.serving.serve`
plus a frozen :class:`~repro.runtime.serving.ServingConfig`::

    from repro.runtime import ServingConfig, serve

    with serve(plan, ServingConfig(num_workers=4, transport="shm")) as s:
        outputs = s.run_batch(batches)

Underneath, :class:`~repro.runtime.executor.ShardedExecutor` shards
``run_batch`` across a worker pool (bit-identical, crash-recovering,
order-preserving) reached through a pluggable transport — fork+pipe,
a same-host shared-memory ring, or TCP worker-host sessions
(:mod:`repro.runtime.transport` / :mod:`repro.runtime.coordinator`,
``docs/serving.md``) — and
:class:`~repro.runtime.stream.StreamingServer` feeds it from a bounded
async queue with backpressure so encrypt/evaluate/decrypt phases of
different requests overlap.

Compiled plans are durable artifacts: :mod:`repro.runtime.plan_io`
serializes an :class:`~repro.runtime.plan.ExecutionPlan` to the
versioned ``EPL1`` wire format (constants deduplicated by content
fingerprint, shipped inline or as a separate ``PCS1`` payload), a
:class:`~repro.runtime.plan_io.PlanStore` directory backs the plan cache
across processes (:func:`~repro.runtime.plan.set_plan_store`), and
``ShardedExecutor(ship_plan=True)`` sends the serialized plan to each
worker instead of relying on fork-shared state.  See
``docs/architecture.md`` for the layer map and ``docs/formats.md`` for
the wire formats.

Observability: :mod:`repro.runtime.telemetry` is the process-wide
metric registry and cross-process tracer behind every layer — compiler
passes, plan cache/store, fused replay, executor, and streaming
admission all report into it, and per-request trace contexts ride the
worker pipe as ``TRC1`` frames so one request's spans nest into a
single Perfetto-loadable timeline across processes and retries (see
``docs/observability.md``).
"""

from repro.runtime.bridge import (
    plan_op_counts,
    plan_schedule_comparison,
    plan_to_request_queue,
    plan_to_workload,
)
from repro.runtime.arena import ArenaLayout, ArenaStep, BufferArena
from repro.runtime.chaos import SITES, FaultAction, FaultPlan, flip_frame_byte
from repro.runtime.executor import ShardedExecutor, WorkerError
from repro.runtime.faults import (
    FAULT_MAGIC,
    DeadlineExceeded,
    FaultPolicy,
    HostUnreachable,
    PoisonRequest,
    RequestError,
    WireCorruption,
    WorkerCrash,
    WorkerHang,
    deserialize_fault,
    serialize_fault,
)
from repro.runtime.graph import ELEMENTWISE_OPS, CtSpec, FusedGroup, Graph, Node, PtSpec
from repro.runtime.passes import (
    PlanValidationError,
    check_alignment,
    eliminate_common_subexpressions,
    eliminate_dead_nodes,
    fuse_rescales,
    fusion_groups,
    hoist_groups,
    optimize,
)
from repro.runtime.plan import (
    ExecutionPlan,
    FusedExecutor,
    clear_plan_cache,
    compile_fn,
    compile_graph,
    get_plan_store,
    plan_cache_info,
    set_plan_store,
)
from repro.runtime.plan_io import (
    ConstantStore,
    MissingConstantsError,
    PlanFormatError,
    PlanStore,
    constant_fingerprint,
    deserialize_plan,
    graph_content_signature,
    load_plan,
    save_plan,
    serialize_constants,
    serialize_plan,
)
from repro.runtime.serving import ServingConfig, ServingSession, serve
from repro.runtime.stream import RequestRecord, StreamingServer
from repro.runtime.transport import (
    PipeTransport,
    ShmTransport,
    Transport,
    available_transports,
)
from repro.runtime.telemetry import (
    TRACE_MAGIC,
    MetricGroup,
    Span,
    Telemetry,
    TraceContext,
    WorkerSpanRecorder,
    deserialize_trace_frame,
    get_telemetry,
    serialize_trace_context,
    serialize_worker_spans,
)
from repro.runtime.telemetry import now as monotonic_now
from repro.runtime.trace import (
    LazyCiphertext,
    LazyDecomposed,
    LazyEvaluator,
    LazyPlaintext,
    TraceError,
    trace,
)

__all__ = [
    "CtSpec",
    "PtSpec",
    "Graph",
    "Node",
    "FusedGroup",
    "ELEMENTWISE_OPS",
    "TraceError",
    "LazyCiphertext",
    "LazyPlaintext",
    "LazyDecomposed",
    "LazyEvaluator",
    "trace",
    "PlanValidationError",
    "optimize",
    "eliminate_common_subexpressions",
    "eliminate_dead_nodes",
    "fuse_rescales",
    "fusion_groups",
    "hoist_groups",
    "check_alignment",
    "ExecutionPlan",
    "FusedExecutor",
    "ArenaLayout",
    "ArenaStep",
    "BufferArena",
    "compile_fn",
    "compile_graph",
    "plan_cache_info",
    "clear_plan_cache",
    "set_plan_store",
    "get_plan_store",
    "ConstantStore",
    "MissingConstantsError",
    "PlanFormatError",
    "PlanStore",
    "constant_fingerprint",
    "graph_content_signature",
    "serialize_plan",
    "deserialize_plan",
    "serialize_constants",
    "save_plan",
    "load_plan",
    "plan_op_counts",
    "plan_to_workload",
    "plan_to_request_queue",
    "plan_schedule_comparison",
    "ShardedExecutor",
    "WorkerError",
    "RequestError",
    "WorkerCrash",
    "HostUnreachable",
    "WorkerHang",
    "DeadlineExceeded",
    "WireCorruption",
    "PoisonRequest",
    "FaultPolicy",
    "FAULT_MAGIC",
    "serialize_fault",
    "deserialize_fault",
    "FaultAction",
    "FaultPlan",
    "SITES",
    "flip_frame_byte",
    "serve",
    "ServingConfig",
    "ServingSession",
    "Transport",
    "PipeTransport",
    "ShmTransport",
    "available_transports",
    "StreamingServer",
    "RequestRecord",
    "Telemetry",
    "TraceContext",
    "Span",
    "MetricGroup",
    "WorkerSpanRecorder",
    "TRACE_MAGIC",
    "get_telemetry",
    "monotonic_now",
    "serialize_trace_context",
    "serialize_worker_spans",
    "deserialize_trace_frame",
]
