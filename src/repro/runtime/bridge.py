"""Bridge from traced execution plans to the accelerator cost model.

The :mod:`repro.accel` simulator and :class:`~repro.accel.scheduler.RscScheduler`
were seeded with hand-written analytic workloads (fixed op counts per
task).  This module derives the same quantities from a *real* traced
plan, so Figure-style scheduler and workload experiments can run on the
programs the runtime actually executes:

* :func:`plan_op_counts` — the server-side op histogram of a plan turned
  into the accelerator's multiplier-bound :class:`~repro.accel.workload.OpCounts`
  accounting (NTT butterflies for every transform the executor issues,
  RNS digit expansions for key switching, element-wise MACs in
  ``other_ops``);
* :func:`plan_to_workload` — the *client-side* :class:`ClientWorkload`
  implied by a plan's boundary: inputs must be encoded+encrypted at the
  plan's input level, outputs decoded+decrypted at its output level;
* :func:`plan_to_request_queue` — a :class:`RequestQueue` for ``requests``
  replays of the plan, ready for ``RscScheduler.compare``.

Accounting follows :mod:`repro.accel.workload`'s documented rules: one
modular butterfly = 1 op, RNS expansion = 1 op per (coefficient, limb),
element-wise MACs ride in ``other_ops``.

Contract (see ``docs/architecture.md``): pure analysis over an
in-process plan — no process-level caches, nothing fork-shared, nothing
crossing the worker boundary.  Because a deserialized plan preserves the
full op DAG and metadata, these projections give identical results for a
plan loaded from an ``EPL1`` artifact and for the plan it was serialized
from.
"""

from __future__ import annotations

from repro.accel.scheduler import RequestQueue
from repro.accel.workload import ClientWorkload, OpCounts
from repro.runtime.graph import AUTOMORPHISM_OPS
from repro.runtime.plan import ExecutionPlan
from repro.utils.bitops import ilog2

__all__ = [
    "plan_op_counts",
    "plan_to_workload",
    "plan_to_request_queue",
    "plan_schedule_comparison",
]


def _ntt_butterflies(degree: int) -> int:
    """Butterflies in one N-point merged negacyclic NTT pass."""
    return (degree // 2) * ilog2(degree)


def plan_op_counts(plan: ExecutionPlan) -> OpCounts:
    """Multiplier-bound op tally for one execution of a plan.

    Walks the scheduled nodes and charges each one the transforms and
    element-wise work the executor actually issues — including the
    hoisting discount: a hoisted automorphism group pays its gadget
    decomposition (L inverse-NTT rows + L*L forward-NTT rows) once for
    the whole group, not once per rotation.
    """
    g = plan.graph
    n = plan.evaluator.basis.degree
    bfly = _ntt_butterflies(n)
    ntt = rns = other = 0
    decomposed: set[int] = set()
    for node in g.nodes:
        lvl = node.level
        if node.op in ("input", "pt_input"):
            continue
        if node.op in ("add", "sub", "negate"):
            other += node.size * lvl * n
        elif node.op == "add_plain":
            other += lvl * n
        elif node.op == "multiply_plain":
            other += node.size * lvl * n
        elif node.op == "multiply":
            other += 4 * lvl * n  # a0b0, a0b1, a1b0, a1b1 limb-wise MACs
        elif node.op == "rescale":
            times = node.attrs[0]
            src_lvl = g.nodes[node.inputs[0]].level
            # Per part: one inverse pass at the source level, one forward
            # pass at the dropped level, plus the fold-in MACs.
            ntt += node.size * (src_lvl + lvl) * bfly
            rns += node.size * times * lvl * n
            other += node.size * lvl * n
        elif node.op == "relinearize" or node.op in AUTOMORPHISM_OPS:
            src = node.inputs[0]
            hoisted = node.op in AUTOMORPHISM_OPS and src in plan.hoist
            if not hoisted or src not in decomposed:
                # Gadget decomposition: inverse NTT of the source (L rows),
                # digit re-reduction (L*L residues per coefficient), and
                # the forward batch NTT over all L*L digit rows.
                ntt += lvl * bfly + lvl * lvl * bfly
                rns += lvl * lvl * n
                if hoisted:
                    decomposed.add(src)
            # Key contraction: two fused MACs over the (L, L, N) tensors.
            other += 2 * lvl * lvl * n
        # input/pt_input handled above; unknown ops were rejected at
        # compile time by check_alignment.
    return OpCounts(fft_ops=0, ntt_ops=ntt, rns_ops=rns, other_ops=other)


def plan_to_workload(plan: ExecutionPlan, degree: int | None = None) -> ClientWorkload:
    """The client-side workload implied by a plan's I/O boundary.

    Inputs enter at the plan's (maximum) input level — that is what the
    client must encode+encrypt to — and outputs leave at the plan's
    (minimum) output level — what the client decodes+decrypts.  Pass
    ``degree`` to project the same program shape onto the paper's
    bootstrappable ring instead of the traced toy ring.
    """
    g = plan.graph
    enc_levels = max(
        (g.nodes[i].level for i in g.input_ids if g.nodes[i].kind == "ct"),
        default=1,
    )
    dec_levels = min(g.nodes[o].level for o in g.outputs)
    return ClientWorkload(
        degree=degree if degree is not None else plan.evaluator.basis.degree,
        enc_levels=enc_levels,
        dec_levels=dec_levels,
    )


def plan_to_request_queue(
    plan: ExecutionPlan, requests: int = 1, *, failures: int = 0
) -> RequestQueue:
    """Client task queue for ``requests`` replays of the plan.

    Every replay makes the client encode+encrypt one ciphertext per plan
    input and decode+decrypt one per plan output; feeding the result to
    :meth:`repro.accel.scheduler.RscScheduler.compare` runs the paper's
    scheduling-policy experiment on a real traced program instead of an
    analytic queue.

    ``failures`` counts requests that entered the engine but never
    produced a result (deadline-failed, poisoned).  They still cost the
    client their encode+encrypt — the upload happened before the failure
    — but never reach decode+decrypt, so the two queue legs diverge
    exactly the way a faulted serving run does.
    """
    if failures < 0:
        raise ValueError("failures must be >= 0")
    num_ct_inputs = sum(
        1 for i in plan.graph.input_ids if plan.graph.nodes[i].kind == "ct"
    )
    return RequestQueue(
        encode_encrypt=(requests + failures) * num_ct_inputs,
        decode_decrypt=requests * plan.num_outputs,
    )


def plan_schedule_comparison(
    plan: ExecutionPlan,
    requests: int,
    config=None,
    degree: int | None = None,
    *,
    failures: int = 0,
):
    """Schedule ``requests`` replays of a plan on the dual RSCs.

    Builds the client-side queue and workload a served plan implies and
    runs every :class:`~repro.accel.scheduler.RscScheduler` policy on it
    (best makespan first) — the accelerator-side counterpart of the
    software serving engine's measured queue, so streaming-server stats
    can sit next to the paper's dual-RSC scheduling policies.
    ``failures`` projects failed requests onto the queue the same way
    :func:`plan_to_request_queue` does (encrypt leg only).
    """
    from repro.accel.config import abc_fhe
    from repro.accel.scheduler import RscScheduler

    scheduler = RscScheduler(
        config=config if config is not None else abc_fhe(),
        workload=plan_to_workload(plan, degree=degree),
    )
    return scheduler.compare(
        plan_to_request_queue(plan, requests=requests, failures=failures)
    )
