"""Deterministic fault injection for the serving stack.

:class:`FaultPlan` is a *seeded, pure* description of which faults to
inject where: given a hook site, a request id, and an attempt number it
always returns the same decision, in every process, regardless of call
order.  The executor consults it at four well-defined hook points:

* ``pre_dispatch`` (parent, before the request is sent): byte-flips the
  outgoing request envelope — exercises worker-side CRC detection and
  the typed :class:`~repro.runtime.faults.WireCorruption` reply path;
* ``pre_evaluate`` (worker, after decoding inputs): ``crash`` (SIGKILL
  self), ``stop`` (SIGSTOP self — a genuinely stuck-not-dead worker, the
  hang detector's prey), ``hang`` (sleep with heartbeats suppressed),
  ``slow`` (sleep with heartbeats flowing — slow is *not* hung);
* ``post_evaluate`` (worker, after computing, before replying): ``crash``
  — exercises exactly-once delivery when work is lost after completion;
* ``reply_encode`` (worker, after encoding outputs): byte-flips the
  reply envelope — exercises parent-side CRC detection and retry;
* ``host_relay`` (worker host, before relaying a reply upstream over
  the TCP session — see :mod:`repro.runtime.coordinator`):
  ``disconnect`` (drop the session socket), ``partial`` (write half a
  frame, then drop), ``slow`` (delay the relay with heartbeats already
  through) — exercises the coordinator's host-loss requeue path and
  frame-truncation detection.

Decisions are rate-based (one hash draw per ``(seed, site, request_id,
attempt)``) and can be pinned exactly with ``scripted`` entries for
surgical tests.  Because retries carry a fresh attempt number, a request
that draws a crash on attempt 0 usually draws nothing on attempt 1 and
completes — which is exactly the recovery path under test.

Contract (see ``docs/architecture.md``): immutable value object; crosses
the worker boundary by pickling at fork/spawn time; never consulted by
the inline degraded path (injecting a SIGKILL into the parent process
would defeat the purpose of graceful degradation).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

__all__ = ["FaultAction", "FaultPlan", "SITES", "flip_frame_byte"]

SITES = (
    "pre_dispatch",
    "pre_evaluate",
    "post_evaluate",
    "reply_encode",
    "host_relay",
)

# Fixed draw order within a site: at most one fault fires per decision.
_PRE_EVALUATE_KINDS = ("crash", "stop", "hang", "slow")
_HOST_RELAY_KINDS = ("disconnect", "partial", "slow")


@dataclass(frozen=True)
class FaultAction:
    """One injected fault: what to do, where, and any parameters."""

    kind: str  # "crash" | "stop" | "hang" | "slow" | "flip"
    site: str
    duration_s: float = 0.0  # for hang/slow
    salt: int = 0  # for flip: which byte of the frame payload


class FaultPlan:
    """Seeded fault schedule, identical in parent and workers.

    Attributes:
        seed: the injection seed; two plans with equal seeds and rates
            make identical decisions everywhere.
        crash_rate / stop_rate / hang_rate / slow_rate: per-attempt
            probabilities at ``pre_evaluate`` (drawn in that order from
            one hash, so at most one fires).
        crash_after_rate: probability of a ``post_evaluate`` crash.
        request_flip_rate: probability of a ``pre_dispatch`` byte flip.
        reply_flip_rate: probability of a ``reply_encode`` byte flip.
        disconnect_rate / partial_frame_rate / slow_host_rate:
            per-reply probabilities at the TCP coordinator's
            ``host_relay`` site (drawn in that order from one hash, so
            at most one fires per relayed reply).
        hang_s / slow_s: sleep durations for hang/slow injections.
        slow_host_s: relay delay for a ``host_relay`` slow injection.
        scripted: exact overrides — ``{(site, request_id, attempt):
            FaultAction | None}``; ``None`` pins "no fault" at that key.
    """

    def __init__(
        self,
        seed: int,
        *,
        crash_rate: float = 0.0,
        stop_rate: float = 0.0,
        hang_rate: float = 0.0,
        slow_rate: float = 0.0,
        crash_after_rate: float = 0.0,
        request_flip_rate: float = 0.0,
        reply_flip_rate: float = 0.0,
        disconnect_rate: float = 0.0,
        partial_frame_rate: float = 0.0,
        slow_host_rate: float = 0.0,
        hang_s: float = 30.0,
        slow_s: float = 0.05,
        slow_host_s: float = 0.05,
        scripted: dict[tuple[str, int, int], FaultAction | None] | None = None,
    ) -> None:
        rates = (
            crash_rate,
            stop_rate,
            hang_rate,
            slow_rate,
            crash_after_rate,
            request_flip_rate,
            reply_flip_rate,
            disconnect_rate,
            partial_frame_rate,
            slow_host_rate,
        )
        if any(r < 0 or r > 1 for r in rates):
            raise ValueError("fault rates must be in [0, 1]")
        if sum((crash_rate, stop_rate, hang_rate, slow_rate)) > 1:
            raise ValueError("pre_evaluate rates must sum to <= 1")
        if sum((disconnect_rate, partial_frame_rate, slow_host_rate)) > 1:
            raise ValueError("host_relay rates must sum to <= 1")
        self.seed = seed
        self.crash_rate = crash_rate
        self.stop_rate = stop_rate
        self.hang_rate = hang_rate
        self.slow_rate = slow_rate
        self.crash_after_rate = crash_after_rate
        self.request_flip_rate = request_flip_rate
        self.reply_flip_rate = reply_flip_rate
        self.disconnect_rate = disconnect_rate
        self.partial_frame_rate = partial_frame_rate
        self.slow_host_rate = slow_host_rate
        self.hang_s = hang_s
        self.slow_s = slow_s
        self.slow_host_s = slow_host_s
        self.scripted = dict(scripted or {})

    # ------------------------------------------------------------------

    def _draw(self, site: str, request_id: int, attempt: int) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}|{site}|{request_id}|{attempt}".encode(),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def decide(
        self, site: str, request_id: int, attempt: int
    ) -> FaultAction | None:
        """The (deterministic) fault to inject at this hook, if any."""
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}")
        key = (site, request_id, attempt)
        if key in self.scripted:
            return self.scripted[key]
        u = self._draw(site, request_id, attempt)
        salt = int(self._draw(site + "#salt", request_id, attempt) * 2**31)
        if site == "pre_evaluate":
            edge = 0.0
            for kind, rate in zip(
                _PRE_EVALUATE_KINDS,
                (self.crash_rate, self.stop_rate, self.hang_rate, self.slow_rate),
            ):
                edge += rate
                if u < edge:
                    duration = (
                        self.hang_s
                        if kind == "hang"
                        else self.slow_s
                        if kind == "slow"
                        else 0.0
                    )
                    return FaultAction(kind, site, duration_s=duration, salt=salt)
            return None
        if site == "post_evaluate":
            if u < self.crash_after_rate:
                return FaultAction("crash", site, salt=salt)
            return None
        if site == "host_relay":
            edge = 0.0
            for kind, rate in zip(
                _HOST_RELAY_KINDS,
                (self.disconnect_rate, self.partial_frame_rate, self.slow_host_rate),
            ):
                edge += rate
                if u < edge:
                    duration = self.slow_host_s if kind == "slow" else 0.0
                    return FaultAction(kind, site, duration_s=duration, salt=salt)
            return None
        rate = (
            self.request_flip_rate
            if site == "pre_dispatch"
            else self.reply_flip_rate
        )
        if u < rate:
            return FaultAction("flip", site, salt=salt)
        return None

    def __reduce__(self):
        return (
            _rebuild_plan,
            (
                self.seed,
                self.crash_rate,
                self.stop_rate,
                self.hang_rate,
                self.slow_rate,
                self.crash_after_rate,
                self.request_flip_rate,
                self.reply_flip_rate,
                self.disconnect_rate,
                self.partial_frame_rate,
                self.slow_host_rate,
                self.hang_s,
                self.slow_s,
                self.slow_host_s,
                self.scripted,
            ),
        )


def _rebuild_plan(
    seed,
    crash_rate,
    stop_rate,
    hang_rate,
    slow_rate,
    crash_after_rate,
    request_flip_rate,
    reply_flip_rate,
    disconnect_rate,
    partial_frame_rate,
    slow_host_rate,
    hang_s,
    slow_s,
    slow_host_s,
    scripted,
) -> FaultPlan:
    return FaultPlan(
        seed,
        crash_rate=crash_rate,
        stop_rate=stop_rate,
        hang_rate=hang_rate,
        slow_rate=slow_rate,
        crash_after_rate=crash_after_rate,
        request_flip_rate=request_flip_rate,
        reply_flip_rate=reply_flip_rate,
        disconnect_rate=disconnect_rate,
        partial_frame_rate=partial_frame_rate,
        slow_host_rate=slow_host_rate,
        hang_s=hang_s,
        slow_s=slow_s,
        slow_host_s=slow_host_s,
        scripted=scripted,
    )


def flip_frame_byte(frame: bytes, action: FaultAction) -> bytes:
    """Flip one byte inside a frame's *payload* region.

    The boundary envelope is ``tag(4) | u32 length | payload | crc32``
    (see docs/formats.md), so flipping inside the payload is guaranteed
    to trip the CRC check on the receiving side — a deterministic,
    detectable corruption.  Frames too short to carry a payload get
    their last byte flipped instead (caught as truncation/CRC anyway).
    """
    (length,) = struct.unpack_from("<I", frame, 4)
    mutated = bytearray(frame)
    if length > 0:
        index = 8 + (action.salt % length)
    else:
        index = len(frame) - 1
    mutated[index] ^= 0xFF
    return bytes(mutated)
