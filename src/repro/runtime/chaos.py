"""Deterministic fault injection for the serving stack.

:class:`FaultPlan` is a *seeded, pure* description of which faults to
inject where: given a hook site, a request id, and an attempt number it
always returns the same decision, in every process, regardless of call
order.  The executor consults it at four well-defined hook points:

* ``pre_dispatch`` (parent, before the request is sent): byte-flips the
  outgoing request envelope — exercises worker-side CRC detection and
  the typed :class:`~repro.runtime.faults.WireCorruption` reply path;
* ``pre_evaluate`` (worker, after decoding inputs): ``crash`` (SIGKILL
  self), ``stop`` (SIGSTOP self — a genuinely stuck-not-dead worker, the
  hang detector's prey), ``hang`` (sleep with heartbeats suppressed),
  ``slow`` (sleep with heartbeats flowing — slow is *not* hung);
* ``post_evaluate`` (worker, after computing, before replying): ``crash``
  — exercises exactly-once delivery when work is lost after completion;
* ``reply_encode`` (worker, after encoding outputs): byte-flips the
  reply envelope — exercises parent-side CRC detection and retry;
* ``host_relay`` (worker host, before relaying a reply upstream over
  the TCP session — see :mod:`repro.runtime.coordinator`):
  ``disconnect`` (drop the session socket), ``partial`` (write half a
  frame, then drop), ``slow`` (delay the relay with heartbeats already
  through), ``asym`` (asymmetric latency: delay only the upstream
  direction, the shape loopback never exhibits), ``reorder`` (hold the
  reply back and ship it after the batch that follows it), ``duplicate``
  (deliver the reply twice — the executor's stale-attempt dedup must
  drop the extra copy) — exercises the coordinator's host-loss requeue
  path, frame-truncation detection, and delivery-order independence.

For faults below the frame level — delaying, reordering, or duplicating
whole *frames* on the wire rather than replies inside the host —
:class:`NetworkShaper` is a deterministic loopback proxy a test can park
between the coordinator and a worker host.

Decisions are rate-based (one hash draw per ``(seed, site, request_id,
attempt)``) and can be pinned exactly with ``scripted`` entries for
surgical tests.  Because retries carry a fresh attempt number, a request
that draws a crash on attempt 0 usually draws nothing on attempt 1 and
completes — which is exactly the recovery path under test.

Contract (see ``docs/architecture.md``): immutable value object; crosses
the worker boundary by pickling at fork/spawn time; never consulted by
the inline degraded path (injecting a SIGKILL into the parent process
would defeat the purpose of graceful degradation).
"""

from __future__ import annotations

import hashlib
import socket
import struct
import threading
import time
from dataclasses import dataclass

__all__ = [
    "FaultAction",
    "FaultPlan",
    "NetworkShaper",
    "SITES",
    "flip_frame_byte",
]

SITES = (
    "pre_dispatch",
    "pre_evaluate",
    "post_evaluate",
    "reply_encode",
    "host_relay",
)

# Fixed draw order within a site: at most one fault fires per decision.
_PRE_EVALUATE_KINDS = ("crash", "stop", "hang", "slow")
_HOST_RELAY_KINDS = (
    "disconnect",
    "partial",
    "slow",
    "asym",
    "reorder",
    "duplicate",
)


@dataclass(frozen=True)
class FaultAction:
    """One injected fault: what to do, where, and any parameters."""

    kind: str  # "crash" | "stop" | "hang" | "slow" | "flip"
    site: str
    duration_s: float = 0.0  # for hang/slow
    salt: int = 0  # for flip: which byte of the frame payload


class FaultPlan:
    """Seeded fault schedule, identical in parent and workers.

    Attributes:
        seed: the injection seed; two plans with equal seeds and rates
            make identical decisions everywhere.
        crash_rate / stop_rate / hang_rate / slow_rate: per-attempt
            probabilities at ``pre_evaluate`` (drawn in that order from
            one hash, so at most one fires).
        crash_after_rate: probability of a ``post_evaluate`` crash.
        request_flip_rate: probability of a ``pre_dispatch`` byte flip.
        reply_flip_rate: probability of a ``reply_encode`` byte flip.
        disconnect_rate / partial_frame_rate / slow_host_rate /
        asym_latency_rate / reorder_rate / duplicate_rate:
            per-reply probabilities at the TCP coordinator's
            ``host_relay`` site (drawn in that order from one hash, so
            at most one fires per relayed reply).
        hang_s / slow_s: sleep durations for hang/slow injections.
        slow_host_s: relay delay for a ``host_relay`` slow injection.
        asym_latency_s: upstream-only relay delay for an ``asym``
            injection (downstream dispatch is never delayed — the
            asymmetric shape loopback cannot produce).
        scripted: exact overrides — ``{(site, request_id, attempt):
            FaultAction | None}``; ``None`` pins "no fault" at that key.
    """

    def __init__(
        self,
        seed: int,
        *,
        crash_rate: float = 0.0,
        stop_rate: float = 0.0,
        hang_rate: float = 0.0,
        slow_rate: float = 0.0,
        crash_after_rate: float = 0.0,
        request_flip_rate: float = 0.0,
        reply_flip_rate: float = 0.0,
        disconnect_rate: float = 0.0,
        partial_frame_rate: float = 0.0,
        slow_host_rate: float = 0.0,
        asym_latency_rate: float = 0.0,
        reorder_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        hang_s: float = 30.0,
        slow_s: float = 0.05,
        slow_host_s: float = 0.05,
        asym_latency_s: float = 0.05,
        scripted: dict[tuple[str, int, int], FaultAction | None] | None = None,
    ) -> None:
        rates = (
            crash_rate,
            stop_rate,
            hang_rate,
            slow_rate,
            crash_after_rate,
            request_flip_rate,
            reply_flip_rate,
            disconnect_rate,
            partial_frame_rate,
            slow_host_rate,
            asym_latency_rate,
            reorder_rate,
            duplicate_rate,
        )
        if any(r < 0 or r > 1 for r in rates):
            raise ValueError("fault rates must be in [0, 1]")
        if sum((crash_rate, stop_rate, hang_rate, slow_rate)) > 1:
            raise ValueError("pre_evaluate rates must sum to <= 1")
        if (
            sum(
                (
                    disconnect_rate,
                    partial_frame_rate,
                    slow_host_rate,
                    asym_latency_rate,
                    reorder_rate,
                    duplicate_rate,
                )
            )
            > 1
        ):
            raise ValueError("host_relay rates must sum to <= 1")
        self.seed = seed
        self.crash_rate = crash_rate
        self.stop_rate = stop_rate
        self.hang_rate = hang_rate
        self.slow_rate = slow_rate
        self.crash_after_rate = crash_after_rate
        self.request_flip_rate = request_flip_rate
        self.reply_flip_rate = reply_flip_rate
        self.disconnect_rate = disconnect_rate
        self.partial_frame_rate = partial_frame_rate
        self.slow_host_rate = slow_host_rate
        self.asym_latency_rate = asym_latency_rate
        self.reorder_rate = reorder_rate
        self.duplicate_rate = duplicate_rate
        self.hang_s = hang_s
        self.slow_s = slow_s
        self.slow_host_s = slow_host_s
        self.asym_latency_s = asym_latency_s
        self.scripted = dict(scripted or {})

    # ------------------------------------------------------------------

    def _draw(self, site: str, request_id: int, attempt: int) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}|{site}|{request_id}|{attempt}".encode(),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def decide(
        self, site: str, request_id: int, attempt: int
    ) -> FaultAction | None:
        """The (deterministic) fault to inject at this hook, if any."""
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}")
        key = (site, request_id, attempt)
        if key in self.scripted:
            return self.scripted[key]
        u = self._draw(site, request_id, attempt)
        salt = int(self._draw(site + "#salt", request_id, attempt) * 2**31)
        if site == "pre_evaluate":
            edge = 0.0
            for kind, rate in zip(
                _PRE_EVALUATE_KINDS,
                (self.crash_rate, self.stop_rate, self.hang_rate, self.slow_rate),
            ):
                edge += rate
                if u < edge:
                    duration = (
                        self.hang_s
                        if kind == "hang"
                        else self.slow_s
                        if kind == "slow"
                        else 0.0
                    )
                    return FaultAction(kind, site, duration_s=duration, salt=salt)
            return None
        if site == "post_evaluate":
            if u < self.crash_after_rate:
                return FaultAction("crash", site, salt=salt)
            return None
        if site == "host_relay":
            edge = 0.0
            for kind, rate in zip(
                _HOST_RELAY_KINDS,
                (
                    self.disconnect_rate,
                    self.partial_frame_rate,
                    self.slow_host_rate,
                    self.asym_latency_rate,
                    self.reorder_rate,
                    self.duplicate_rate,
                ),
            ):
                edge += rate
                if u < edge:
                    if kind == "slow":
                        duration = self.slow_host_s
                    elif kind == "asym":
                        duration = self.asym_latency_s
                    else:
                        duration = 0.0
                    return FaultAction(kind, site, duration_s=duration, salt=salt)
            return None
        rate = (
            self.request_flip_rate
            if site == "pre_dispatch"
            else self.reply_flip_rate
        )
        if u < rate:
            return FaultAction("flip", site, salt=salt)
        return None

    def __reduce__(self):
        return (
            _rebuild_plan,
            (
                self.seed,
                self.crash_rate,
                self.stop_rate,
                self.hang_rate,
                self.slow_rate,
                self.crash_after_rate,
                self.request_flip_rate,
                self.reply_flip_rate,
                self.disconnect_rate,
                self.partial_frame_rate,
                self.slow_host_rate,
                self.asym_latency_rate,
                self.reorder_rate,
                self.duplicate_rate,
                self.hang_s,
                self.slow_s,
                self.slow_host_s,
                self.asym_latency_s,
                self.scripted,
            ),
        )


def _rebuild_plan(
    seed,
    crash_rate,
    stop_rate,
    hang_rate,
    slow_rate,
    crash_after_rate,
    request_flip_rate,
    reply_flip_rate,
    disconnect_rate,
    partial_frame_rate,
    slow_host_rate,
    asym_latency_rate,
    reorder_rate,
    duplicate_rate,
    hang_s,
    slow_s,
    slow_host_s,
    asym_latency_s,
    scripted,
) -> FaultPlan:
    return FaultPlan(
        seed,
        crash_rate=crash_rate,
        stop_rate=stop_rate,
        hang_rate=hang_rate,
        slow_rate=slow_rate,
        crash_after_rate=crash_after_rate,
        request_flip_rate=request_flip_rate,
        reply_flip_rate=reply_flip_rate,
        disconnect_rate=disconnect_rate,
        partial_frame_rate=partial_frame_rate,
        slow_host_rate=slow_host_rate,
        asym_latency_rate=asym_latency_rate,
        reorder_rate=reorder_rate,
        duplicate_rate=duplicate_rate,
        hang_s=hang_s,
        slow_s=slow_s,
        slow_host_s=slow_host_s,
        asym_latency_s=asym_latency_s,
        scripted=scripted,
    )


# ---------------------------------------------------------------------------
# Network shaper: deterministic frame-level delivery faults on the wire
# ---------------------------------------------------------------------------


def _shaper_recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("shaper stream closed")
        buf += chunk
    return bytes(buf)


class NetworkShaper:
    """A deterministic loopback proxy injecting *delivery* faults.

    Park it between a coordinator and a worker host: the coordinator
    dials ``shaper.port`` instead of the host, and the shaper relays the
    session — first the raw (unframed) mutual-auth preamble
    byte-for-byte, then whole CRC-framed session frames — while
    injecting the network misbehaviour loopback never exhibits:

    * **asymmetric latency** — ``up_delay_s`` / ``down_delay_s`` delay
      every frame of one direction only (``up`` = coordinator→host);
    * **reorder** — hold a frame back one slot, shipping it after its
      successor;
    * **duplicate** — deliver a frame twice (intact both times — the
      receiver's dedup, not its CRC check, is under test).

    Per-frame faults are drawn deterministically from ``seed`` per
    ``(direction, frame_index)``, or pinned exactly with
    ``scripted={("up"|"down", index): "reorder"|"duplicate"|None}``.
    The first ``grace_frames`` frames of each direction never draw a
    fault: holding back an ``FHL1``/``FHA1``/``FPL1`` negotiation frame
    would deadlock the handshake rather than exercise recovery
    (``scripted`` entries still override, for tests that want exactly
    that).
    Frame *bytes* are never mutated — corruption is the frame fuzzer's
    job; the shaper exercises delivery order and timing against intact
    frames, so every injected fault must be absorbed silently (no
    session loss, no wrong results).
    """

    def __init__(
        self,
        target: tuple[str, int],
        *,
        seed: int = 0,
        up_delay_s: float = 0.0,
        down_delay_s: float = 0.0,
        reorder_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        grace_frames: int = 3,
        scripted: dict[tuple[str, int], str | None] | None = None,
    ) -> None:
        if reorder_rate + duplicate_rate > 1:
            raise ValueError("shaper fault rates must sum to <= 1")
        self._target = target
        self.seed = seed
        self.grace_frames = grace_frames
        self.up_delay_s = up_delay_s
        self.down_delay_s = down_delay_s
        self.reorder_rate = reorder_rate
        self.duplicate_rate = duplicate_rate
        self.scripted = dict(scripted or {})
        self.frames_relayed = {"up": 0, "down": 0}
        self.injected = {"reorder": 0, "duplicate": 0}
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._conns: list[socket.socket] = []
        self._threads: list[threading.Thread] = []
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        accept = threading.Thread(
            target=self._accept_loop, name="network-shaper-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "NetworkShaper":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- relay ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self._target, timeout=10.0)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns += [client, upstream]
            worker = threading.Thread(
                target=self._serve,
                args=(client, upstream),
                name="network-shaper-session",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def _serve(self, client: socket.socket, upstream: socket.socket) -> None:
        from repro.runtime.coordinator import _AUTH_NONCE_BYTES

        # The mutual-auth preamble is raw unframed bytes (nonce down,
        # digest+nonce up, proof down); relay it verbatim before
        # switching to frame-granular pumping.
        try:
            client.sendall(_shaper_recv_exact(upstream, _AUTH_NONCE_BYTES))
            upstream.sendall(_shaper_recv_exact(client, 2 * _AUTH_NONCE_BYTES))
            client.sendall(_shaper_recv_exact(upstream, _AUTH_NONCE_BYTES))
        except (ConnectionError, OSError):
            for sock in (client, upstream):
                try:
                    sock.close()
                except OSError:
                    pass
            return
        up = threading.Thread(
            target=self._pump,
            args=(client, upstream, "up", self.up_delay_s),
            name="network-shaper-up",
            daemon=True,
        )
        up.start()
        self._threads.append(up)
        self._pump(upstream, client, "down", self.down_delay_s)

    def _read_session_frame(self, src: socket.socket) -> bytes:
        from repro.runtime.coordinator import MAX_SESSION_FRAME_BYTES

        header = _shaper_recv_exact(src, 8)
        (length,) = struct.unpack_from("<I", header, 4)
        if length > MAX_SESSION_FRAME_BYTES:
            raise ConnectionError("shaper saw an oversized frame")
        return header + _shaper_recv_exact(src, length + 4)

    def _decide(self, direction: str, index: int) -> str | None:
        key = (direction, index)
        if key in self.scripted:
            return self.scripted[key]
        if index < self.grace_frames:
            return None
        digest = hashlib.blake2b(
            f"{self.seed}|shaper|{direction}|{index}".encode(), digest_size=8
        ).digest()
        u = int.from_bytes(digest, "big") / 2**64
        if u < self.reorder_rate:
            return "reorder"
        if u < self.reorder_rate + self.duplicate_rate:
            return "duplicate"
        return None

    def _pump(self, src, dst, direction: str, delay_s: float) -> None:
        held: bytes | None = None
        index = 0
        try:
            while True:
                frame = self._read_session_frame(src)
                fault = self._decide(direction, index)
                index += 1
                self.frames_relayed[direction] += 1
                if delay_s:
                    time.sleep(delay_s)
                if fault == "reorder" and held is None:
                    # Hold this frame one slot; its successor overtakes.
                    held = frame
                    self.injected["reorder"] += 1
                    continue
                dst.sendall(frame)
                if fault == "duplicate":
                    dst.sendall(frame)
                    self.injected["duplicate"] += 1
                if held is not None:
                    dst.sendall(held)
                    held = None
        except (ConnectionError, OSError):
            # One side closed: flush any held frame, then mirror the
            # close to the other side so EOF semantics survive the hop.
            if held is not None:
                try:
                    dst.sendall(held)
                except OSError:
                    pass
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass


def flip_frame_byte(frame: bytes, action: FaultAction) -> bytes:
    """Flip one byte inside a frame's *payload* region.

    The boundary envelope is ``tag(4) | u32 length | payload | crc32``
    (see docs/formats.md), so flipping inside the payload is guaranteed
    to trip the CRC check on the receiving side — a deterministic,
    detectable corruption.  Frames too short to carry a payload get
    their last byte flipped instead (caught as truncation/CRC anyway).
    """
    (length,) = struct.unpack_from("<I", frame, 4)
    mutated = bytearray(frame)
    if length > 0:
        index = 8 + (action.salt % length)
    else:
        index = len(frame) - 1
    mutated[index] ^= 0xFF
    return bytes(mutated)
