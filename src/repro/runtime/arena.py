"""Buffer arena: slot-preassigned storage for fused plan replay.

The batched replayer already releases intermediates by ref-count, but it
still *allocates* a fresh ``(L, N)`` array for every produced part of
every node on every replay — at N=2^10/L=10 that is hundreds of numpy
allocations per ciphertext, and the allocator shows up right next to
Python dispatch in the profile.  This module moves that cost to lower
time: :meth:`ArenaLayout.plan` walks the (fused) topo schedule with the
same ref-counts the release machinery uses and preassigns every
intermediate to a *slot* in one preallocated ``(slots, L, N)`` uint64
pool.  A slot is reused only after the last consumer of its previous
tenant has executed, so aliasing is provably safe (and property-tested);
steady-state replay then performs **zero** result-buffer allocations —
every fused kernel writes straight into its preassigned views.  (Kernel
and NTT temporaries remain: ``BatchNtt`` copies its input internally by
design.)

Contract (mirrors the other runtime modules): an :class:`ArenaLayout` is
immutable plan metadata — pure ints derived from the graph, safe to hash,
share, or recompute anywhere.  A :class:`BufferArena` is the *mutable*
per-executor pool: it lives in exactly one process, is inherited
copy-on-write by forked serving workers when the parent lowered (warmed)
the plan before the fork, and never crosses a worker boundary — ``EPL1``
artifacts carry no arena state; a deserialized plan re-derives its layout
at lower time on the replaying host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ArenaStep", "ArenaLayout", "BufferArena"]


@dataclass(frozen=True)
class ArenaStep:
    """One schedule step's storage events, in execution order.

    Attributes:
        produced: ``(node_id, num_buffers)`` pairs materialized by this
            step (``num_buffers`` = ciphertext part count).  Empty for
            graph inputs, which live outside the arena.
        consumed: node ids this step reads (duplicates count — a node
            consumed twice by one step decrements its ref-count twice,
            matching :meth:`Graph.consumer_counts`).
    """

    produced: tuple[tuple[int, int], ...]
    consumed: tuple[int, ...] = ()


@dataclass(frozen=True)
class ArenaLayout:
    """Immutable slot assignment for every arena-resident buffer.

    ``slots[node_id]`` lists the pool slots holding that node's parts.
    Liveness discipline: a step's slots are allocated *before* its
    consumed refs are decremented, so a node never writes into a slot
    still owned by one of its own inputs — fused kernels may therefore
    read operand views and write result views in any order.
    """

    slots: dict[int, tuple[int, ...]] = field(repr=False)
    num_slots: int
    level: int
    degree: int

    @classmethod
    def plan(
        cls,
        steps: list[ArenaStep] | tuple[ArenaStep, ...],
        outputs,
        *,
        level: int,
        degree: int,
    ) -> "ArenaLayout":
        """Greedy first-fit slot assignment over a topo schedule.

        ``outputs`` are pinned: each output node carries one extra ref
        that is never released, so its slots survive the whole replay
        (the executor copies them out before the next replay reuses the
        pool).
        """
        refs: dict[int, int] = {}
        for step in steps:
            for nid in step.consumed:
                refs[nid] = refs.get(nid, 0) + 1
        for nid in outputs:
            refs[nid] = refs.get(nid, 0) + 1

        slots: dict[int, tuple[int, ...]] = {}
        free: list[int] = []
        next_slot = 0
        for step in steps:
            # Allocate-before-free: freeing this step's dying inputs
            # first would let a result slot alias a live operand.
            for nid, parts in step.produced:
                mine = []
                for _ in range(parts):
                    if free:
                        mine.append(free.pop())
                    else:
                        mine.append(next_slot)
                        next_slot += 1
                slots[nid] = tuple(mine)
            for nid in step.consumed:
                refs[nid] -= 1
                if refs[nid] == 0 and nid in slots:
                    free.extend(slots[nid])
        return cls(slots=slots, num_slots=next_slot, level=level, degree=degree)

    @classmethod
    def for_graph(cls, graph, *, degree: int) -> "ArenaLayout":
        """Per-node layout for an unfused schedule (one step per node)."""
        steps = [
            ArenaStep(
                produced=()
                if node.op in ("input", "pt_input")
                else ((node.id, node.size),),
                consumed=node.inputs,
            )
            for node in graph.nodes
        ]
        level = max((node.level for node in graph.nodes), default=1)
        return cls.plan(steps, graph.outputs, level=level, degree=degree)

    @property
    def slot_bytes(self) -> int:
        """Bytes per pool slot (one full-level uint64 residue matrix)."""
        return self.level * self.degree * 8

    @property
    def pool_bytes(self) -> int:
        """Peak resident bytes of the whole pool."""
        return self.num_slots * self.slot_bytes


class BufferArena:
    """The preallocated pool an :class:`ArenaLayout` indexes into.

    One contiguous ``(num_slots, level, degree)`` uint64 array, allocated
    once on first :meth:`ensure` (in the layout's array namespace) and
    reused for every subsequent replay.  ``allocations`` counts pool
    allocations so tests can assert steady-state replay performs none.
    """

    def __init__(self, layout: ArenaLayout, xp) -> None:
        self.layout = layout
        self.xp = xp
        self.pool = None
        self.allocations = 0

    def ensure(self):
        """Allocate the pool if needed; returns it (stable identity)."""
        if self.pool is None:
            self.pool = self.xp.empty(
                (self.layout.num_slots, self.layout.level, self.layout.degree),
                dtype=np.uint64,
            )
            self.allocations += 1
        return self.pool

    def views(self, node_id: int, level: int):
        """The node's part buffers, trimmed to its level (zero-copy)."""
        pool = self.ensure()
        return [pool[s, :level] for s in self.layout.slots[node_id]]
