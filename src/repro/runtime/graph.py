"""The ciphertext computation graph: symbolic handles plus an op DAG.

A traced CKKS program is a DAG of :class:`Node` records.  Each node is one
:class:`~repro.ckks.evaluator.Evaluator` operation over *symbolic*
ciphertext/plaintext handles, annotated with the metadata the optimizer
and plan-time checker reason about — level, scale, part count, and (for
automorphisms) the Galois element.  Ciphertext *values* never appear in
the graph; captured constants (encoded plaintexts, switching keys) live
in a side table so one graph can be compiled once and replayed across
millions of input ciphertexts.

Graphs are append-only during tracing; optimizer passes
(:mod:`repro.runtime.passes`) rebuild them wholesale, which keeps node
ids dense and in topological order — an invariant both executors and the
``EPL1`` wire format rely on.

Contract (see ``docs/architecture.md``): a graph is plain process-local
data — nothing here is cached process-wide or shared across forks on its
own.  Constants are interned **by object identity** (``id()``), which is
what :meth:`Graph.signature` hashes for the in-memory plan cache; the
content-addressed, process-independent counterpart used by the on-disk
store and the worker boundary is
:func:`repro.runtime.plan_io.graph_content_signature`.  A graph crosses
the worker boundary only after compilation, as a serialized plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = [
    "CtSpec",
    "PtSpec",
    "Node",
    "Graph",
    "FusedGroup",
    "CT_OPS",
    "AUTOMORPHISM_OPS",
    "COMMUTATIVE_OPS",
    "ELEMENTWISE_OPS",
]

# Every ciphertext-producing op the tracer records.  ``input``/``pt_input``
# are the symbolic leaves; everything else mirrors one Evaluator method.
CT_OPS = frozenset(
    {
        "input",
        "add",
        "sub",
        "negate",
        "add_plain",
        "multiply_plain",
        "multiply",
        "relinearize",
        "rescale",
        "rotate",
        "conjugate",
        "apply_galois",
    }
)

#: Ops that permute slots then key-switch; candidates for hoisting when
#: several of them share one source ciphertext.
AUTOMORPHISM_OPS = frozenset({"rotate", "conjugate", "apply_galois"})

#: Ops whose operand order does not change the result bit pattern
#: (modular adds/multiplies commute limb-wise); CSE canonicalizes these.
COMMUTATIVE_OPS = frozenset({"add", "multiply"})

#: Per-element ops over same-level operands — the fusion pass may collapse
#: runs of these into single fused kernel dispatches without changing a
#: single output bit (modular add/sub/neg and per-element products are
#: position-independent, and deferred-reduction accumulation of canonical
#: residues is exact; see ``ReducerKernel.add_accumulate``).
ELEMENTWISE_OPS = frozenset({"add", "sub", "negate", "add_plain", "multiply_plain"})


@dataclass(frozen=True)
class CtSpec:
    """Shape of a symbolic ciphertext input.

    Attributes:
        level: RNS level the input arrives at.
        scale: encoding scale Δ of the input.
        size: number of polynomial parts (2 unless pre-relinearization).
    """

    level: int
    scale: float
    size: int = 2


@dataclass(frozen=True)
class PtSpec:
    """Shape of a symbolic plaintext input (level and scale only)."""

    level: int
    scale: float


@dataclass(frozen=True)
class Node:
    """One recorded operation.

    Attributes:
        id: dense topological index into ``Graph.nodes``.
        op: operation name (member of :data:`CT_OPS` or ``pt_input``).
        inputs: ids of operand nodes, in call order.
        attrs: hashable op attributes (rotation steps, rescale times,
            Galois element, input index).
        consts: indices into ``Graph.consts`` (captured plaintexts/keys).
        level / scale / size: inferred output metadata.
        kind: ``"ct"`` or ``"pt"``.
    """

    id: int
    op: str
    inputs: tuple[int, ...]
    attrs: tuple
    consts: tuple[int, ...]
    level: int
    scale: float
    size: int
    kind: str = "ct"


@dataclass(frozen=True)
class FusedGroup:
    """One fused schedule step discovered by the fusion pass.

    Pure analysis metadata over node ids — the graph itself is never
    rewritten by fusion (ids stay dense and topological; the EPL1 wire
    format is untouched).  The fused executor replays every ``members``
    node as a single dispatch anchored at the ``anchor`` schedule slot.

    Attributes:
        kind: ``"mac"`` (multiply_plain terms folded into one
            mul-accumulate), ``"sum"`` (an add-reduction tree folded into
            one add-accumulate), ``"hoisted_automorphisms"`` (rotations
            sharing one gadget decomposition, batched through one NTT
            dispatch), or ``"chain"`` (a linear elementwise run executed
            back-to-back in one step).
        anchor: node id whose schedule position the group executes at.
        members: every node id the group covers (skipped elsewhere).
        outputs: member ids whose buffers later steps (or the caller)
            read.
        sources: external node ids the group reads.
        payload: kind-specific extras (e.g. the mac's term node ids).
    """

    kind: str
    anchor: int
    members: tuple[int, ...]
    outputs: tuple[int, ...]
    sources: tuple[int, ...]
    payload: tuple = ()


class Graph:
    """An op DAG over symbolic handles plus its captured-constant table.

    Attributes:
        input_specs: ordered :class:`CtSpec`/:class:`PtSpec` leaves.
        nodes: topologically ordered :class:`Node` list.
        consts: captured runtime objects (Plaintext, SwitchingKey).
        outputs: node ids returned by the traced function.
    """

    def __init__(self, input_specs: tuple[CtSpec | PtSpec, ...] = ()):
        self.input_specs: list[CtSpec | PtSpec] = list(input_specs)
        self.nodes: list[Node] = []
        self.consts: list = []
        self._const_index: dict[int, int] = {}
        self.outputs: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_const(self, obj) -> int:
        """Intern a captured object; deduplicated by identity."""
        idx = self._const_index.get(id(obj))
        if idx is None:
            idx = len(self.consts)
            self.consts.append(obj)
            self._const_index[id(obj)] = idx
        return idx

    def add_node(
        self,
        op: str,
        inputs: tuple[int, ...] = (),
        attrs: tuple = (),
        consts: tuple[int, ...] = (),
        *,
        level: int,
        scale: float,
        size: int,
        kind: str = "ct",
    ) -> int:
        node = Node(
            id=len(self.nodes),
            op=op,
            inputs=inputs,
            attrs=attrs,
            consts=consts,
            level=level,
            scale=scale,
            size=size,
            kind=kind,
        )
        self.nodes.append(node)
        return node.id

    def add_input(self, spec: CtSpec | PtSpec) -> int:
        """Register a symbolic input leaf and return its node id."""
        index = len([n for n in self.nodes if n.op in ("input", "pt_input")])
        if isinstance(spec, CtSpec):
            return self.add_node(
                "input", attrs=(index,), level=spec.level, scale=spec.scale,
                size=spec.size,
            )
        return self.add_node(
            "pt_input", attrs=(index,), level=spec.level, scale=spec.scale,
            size=1, kind="pt",
        )

    def set_outputs(self, node_ids) -> None:
        self.outputs = tuple(node_ids)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def input_ids(self) -> tuple[int, ...]:
        return tuple(n.id for n in self.nodes if n.op in ("input", "pt_input"))

    def consumer_counts(self) -> list[int]:
        """How many downstream uses each node has (outputs count once)."""
        counts = [0] * len(self.nodes)
        for node in self.nodes:
            for i in node.inputs:
                counts[i] += 1
        for out in self.outputs:
            counts[out] += 1
        return counts

    def op_histogram(self) -> dict[str, int]:
        """Op name -> occurrence count (the bridge's input)."""
        hist: dict[str, int] = {}
        for node in self.nodes:
            hist[node.op] = hist.get(node.op, 0) + 1
        return hist

    def provenance(self, node_id: int) -> str:
        """Human-readable description of a node for error messages."""
        node = self.nodes[node_id]
        return (
            f"node #{node.id} '{node.op}' (level {node.level}, "
            f"scale {node.scale:g}, {node.size} parts)"
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def signature(self) -> str:
        """Structural fingerprint for the process-level plan cache.

        Hashes the full op structure and metadata plus the *identities* of
        captured constants: two traces reusing the same key/plaintext
        objects over the same op sequence collide (and may share a cached
        plan); traces over different key material do not.  Constant
        identity uses ``id()``, which is safe because any cached plan
        keeps its constants alive — a live object's id cannot be reused.
        """
        h = hashlib.blake2b(digest_size=16)
        for spec in self.input_specs:
            h.update(repr(spec).encode())
        for node in self.nodes:
            h.update(
                (
                    f"{node.op}|{node.inputs}|{node.attrs}|"
                    f"{tuple(id(self.consts[c]) for c in node.consts)}|"
                    f"{node.level}|{node.scale!r}|{node.size}|{node.kind}\n"
                ).encode()
            )
        h.update(repr(self.outputs).encode())
        return h.hexdigest()


@dataclass
class GraphBuilder:
    """Helper for passes rebuilding a graph node-by-node with id remaps."""

    source: Graph
    graph: Graph = field(init=False)
    mapping: dict[int, int] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.graph = Graph(tuple(self.source.input_specs))

    def remap_inputs(self, node: Node) -> tuple[int, ...]:
        return tuple(self.mapping[i] for i in node.inputs)

    def remap_consts(self, node: Node) -> tuple[int, ...]:
        return tuple(
            self.graph.add_const(self.source.consts[c]) for c in node.consts
        )

    def emit(self, node: Node, inputs=None, attrs=None, **meta) -> int:
        new_id = self.graph.add_node(
            node.op,
            inputs=self.remap_inputs(node) if inputs is None else inputs,
            attrs=node.attrs if attrs is None else attrs,
            consts=self.remap_consts(node),
            level=meta.get("level", node.level),
            scale=meta.get("scale", node.scale),
            size=meta.get("size", node.size),
            kind=node.kind,
        )
        self.mapping[node.id] = new_id
        return new_id

    def alias(self, node_id: int, target_new_id: int) -> None:
        self.mapping[node_id] = target_new_id

    def finish(self) -> Graph:
        self.graph.set_outputs(self.mapping[o] for o in self.source.outputs)
        return self.graph
