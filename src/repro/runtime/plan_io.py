"""Plan serialization: ship compiled ExecutionPlans across processes and hosts.

This module gives a compiled :class:`~repro.runtime.plan.ExecutionPlan` a
durable, versioned wire form so a serving fleet can distribute compiled
artifacts instead of re-tracing and re-optimizing per process:

* :func:`serialize_plan` / :func:`deserialize_plan` — the ``EPL1`` framed
  binary format: graph structure (input specs, op schedule, outputs) with
  every captured constant carried *by content fingerprint*;
* :class:`ConstantStore` — fingerprint -> constant resolution, with a
  ``PCS1`` wire form of its own so large plaintext tables and switching
  keys are deduplicated and can ship separately from (or inline with)
  the plans that reference them;
* :func:`graph_content_signature` — a process-independent structural
  fingerprint (constants hashed by content, not ``id()``), the key the
  on-disk store is addressed by;
* :class:`PlanStore` — a directory of ``.epl1`` artifacts keyed by
  (graph content signature, params fingerprint, reducer backend); the
  process-level plan cache (:func:`repro.runtime.plan.set_plan_store`)
  loads from and saves to it transparently.

Byte layouts and versioning/compat rules are specified normatively in
``docs/formats.md``; the framing primitives (:func:`pack_frame` /
:func:`read_frame`) are shared with :mod:`repro.ckks.serialization`.

Worker-boundary contract: nothing in this module is fork-shared or
process-cached — a serialized plan is a self-contained byte string (plus,
optionally, a ``PCS1`` constant payload), and deserializing it in a fresh
process rebuilds a plan whose batched execution is bit-identical to the
plan it was serialized from (pinned across all reducer backends by
``tests/integration/test_backend_identity.py``).  Constant fingerprints
are cached on the constant objects themselves, so fingerprinting a graph
twice costs one pass of hashing, not two.
"""

from __future__ import annotations

import hashlib
import os
import struct
from pathlib import Path

from repro.ckks.containers import Plaintext
from repro.ckks.keys import SwitchingKey
from repro.ckks.serialization import (
    PLAINTEXT_MAGIC,
    SWITCHING_KEY_MAGIC,
    WireFormatError,
    deserialize_plaintext,
    deserialize_switching_key,
    pack_frame,
    read_frame,
    serialize_plaintext,
    serialize_switching_key,
    wire_coeff_bits,
)
from repro.runtime.graph import CtSpec, Graph, PtSpec
from repro.runtime.passes import check_alignment, hoist_groups
from repro.runtime.telemetry import get_telemetry
from repro.runtime.plan import ExecutionPlan, params_fingerprint

__all__ = [
    "PLAN_MAGIC",
    "CONSTSTORE_MAGIC",
    "PLAN_VERSION",
    "CONSTSTORE_VERSION",
    "PlanFormatError",
    "MissingConstantsError",
    "constant_fingerprint",
    "graph_content_signature",
    "ConstantStore",
    "serialize_plan",
    "deserialize_plan",
    "serialize_constants",
    "save_plan",
    "load_plan",
    "PlanStore",
]

# Public: consumers that sniff blob types must dispatch on these, never
# on hardcoded copies (same rule as the ciphertext magics).
PLAN_MAGIC = b"EPL1"
CONSTSTORE_MAGIC = b"PCS1"

PLAN_VERSION = 1
CONSTSTORE_VERSION = 1

#: Set in the EPL1 header flags when a PCS1 constant payload is inline.
_FLAG_CONSTANTS_INLINE = 0x0001

_FINGERPRINT_BYTES = 16

# Stable opcode table (docs/formats.md "EPL1 / NODE").  Append-only:
# codes are part of the wire format and must never be renumbered.
OP_CODES = {
    "input": 0,
    "pt_input": 1,
    "add": 2,
    "sub": 3,
    "negate": 4,
    "add_plain": 5,
    "multiply_plain": 6,
    "multiply": 7,
    "relinearize": 8,
    "rescale": 9,
    "rotate": 10,
    "conjugate": 11,
    "apply_galois": 12,
}
_OP_NAMES = {code: name for name, code in OP_CODES.items()}

_KIND_CT = 0
_KIND_PT = 1

_CONST_PLAINTEXT = 0
_CONST_SWITCHING_KEY = 1


class PlanFormatError(WireFormatError):
    """A plan/constant blob is malformed: bad magic, unsupported version,
    truncated or corrupt frame, or inconsistent graph structure.

    Subclasses :class:`repro.ckks.serialization.WireFormatError`, so the
    serving stack's worker boundary surfaces a corrupt shipped plan as
    the same typed corruption signal as any other bad wire frame."""


class MissingConstantsError(PlanFormatError):
    """A plan references constant fingerprints the resolver cannot supply."""

    def __init__(self, fingerprints: list[bytes]):
        self.fingerprints = fingerprints
        listing = ", ".join(fp.hex() for fp in fingerprints)
        super().__init__(
            f"{len(fingerprints)} plan constant(s) unresolved: {listing}; "
            "supply a ConstantStore covering them (a PCS1 payload or the "
            "live traced graph)"
        )


# ---------------------------------------------------------------------------
# Content fingerprints
# ---------------------------------------------------------------------------


def _const_kind(obj) -> int:
    """Wire kind code for a plan constant (cheap, no serialization)."""
    if isinstance(obj, Plaintext):
        return _CONST_PLAINTEXT
    if isinstance(obj, SwitchingKey):
        return _CONST_SWITCHING_KEY
    raise TypeError(
        f"plan constants must be Plaintext or SwitchingKey, got "
        f"{type(obj).__name__}"
    )


def _canonical_const_blob(obj) -> tuple[int, bytes]:
    """(kind code, canonical wire encoding) for a plan constant."""
    kind = _const_kind(obj)
    if kind == _CONST_PLAINTEXT:
        bits = wire_coeff_bits(obj.poly.basis)
        return kind, serialize_plaintext(obj, coeff_bits=bits)
    return kind, serialize_switching_key(obj)


def constant_fingerprint(obj) -> bytes:
    """16-byte BLAKE2b digest of a constant's canonical wire encoding.

    Content-addressed (unlike ``Graph.signature``'s ``id()``-based
    interning), so the same key material fingerprints identically in
    every process — the property the on-disk plan store depends on.
    Cached on the object: constants are immutable once captured.
    """
    cached = getattr(obj, "_plan_fingerprint", None)
    if cached is None:
        _, blob = _canonical_const_blob(obj)
        cached = hashlib.blake2b(blob, digest_size=_FINGERPRINT_BYTES).digest()
        obj._plan_fingerprint = cached
    return cached


def graph_content_signature(graph: Graph) -> str:
    """Process-independent structural fingerprint of a graph.

    Identical to :meth:`Graph.signature` except captured constants are
    hashed by :func:`constant_fingerprint` instead of object identity:
    tracing the same program over the same key material in two different
    processes yields the same signature, so both resolve to the same
    on-disk plan artifact.
    """
    h = hashlib.blake2b(digest_size=_FINGERPRINT_BYTES)
    for spec in graph.input_specs:
        h.update(repr(spec).encode())
    for node in graph.nodes:
        fps = tuple(
            constant_fingerprint(graph.consts[c]).hex() for c in node.consts
        )
        h.update(
            (
                f"{node.op}|{node.inputs}|{node.attrs}|{fps}|"
                f"{node.level}|{node.scale!r}|{node.size}|{node.kind}\n"
            ).encode()
        )
    h.update(repr(graph.outputs).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Constant store (PCS1)
# ---------------------------------------------------------------------------


class ConstantStore:
    """Fingerprint -> constant resolution, with a ``PCS1`` wire form.

    Content addressing deduplicates: adding the same plaintext table (by
    value) twice stores it once, and a fleet can ship one constant
    payload for many plans that share key material.
    """

    def __init__(self) -> None:
        self._by_fp: dict[bytes, object] = {}

    def __len__(self) -> int:
        return len(self._by_fp)

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._by_fp

    def fingerprints(self) -> list[bytes]:
        return sorted(self._by_fp)

    def add(self, obj) -> bytes:
        """Intern one constant; returns its fingerprint."""
        fp = constant_fingerprint(obj)
        self._by_fp.setdefault(fp, obj)
        return fp

    def add_graph(self, graph: Graph) -> "ConstantStore":
        for obj in graph.consts:
            self.add(obj)
        return self

    @classmethod
    def from_graph(cls, graph: Graph) -> "ConstantStore":
        """Resolve against a live graph's captured constants — the
        zero-copy path when the referencing program was just traced."""
        return cls().add_graph(graph)

    def get(self, fingerprint: bytes):
        obj = self._by_fp.get(fingerprint)
        if obj is None:
            raise MissingConstantsError([fingerprint])
        return obj

    def merge(self, other: "ConstantStore") -> "ConstantStore":
        """Fold ``other``'s constants in (existing entries win)."""
        for fp, obj in other._by_fp.items():
            self._by_fp.setdefault(fp, obj)
        return self

    def to_bytes(self) -> bytes:
        """``PCS1`` blob: header + one CRC-guarded frame per constant,
        sorted by fingerprint for deterministic output."""
        out = [
            CONSTSTORE_MAGIC,
            struct.pack("<HHI", CONSTSTORE_VERSION, 0, len(self._by_fp)),
        ]
        for fp in sorted(self._by_fp):
            kind, blob = _canonical_const_blob(self._by_fp[fp])
            out.append(pack_frame(b"CNST", fp + bytes([kind]) + blob))
        return b"".join(out)

    @classmethod
    def from_bytes(cls, blob: bytes, basis) -> "ConstantStore":
        """Parse a ``PCS1`` blob, verifying every entry's fingerprint."""
        if blob[:4] != CONSTSTORE_MAGIC:
            raise PlanFormatError("not a PCS1 constant-store blob")
        version, _, count = struct.unpack_from("<HHI", blob, 4)
        if version > CONSTSTORE_VERSION:
            raise PlanFormatError(
                f"PCS1 version {version} is newer than supported "
                f"({CONSTSTORE_VERSION})"
            )
        store = cls()
        offset = 4 + struct.calcsize("<HHI")
        parsed = 0
        while offset < len(blob) and parsed < count:
            tag, payload, offset = read_frame(blob, offset)
            if tag != b"CNST":
                continue  # forward compat: skip unknown frames
            parsed += 1
            fp = payload[:_FINGERPRINT_BYTES]
            kind = payload[_FINGERPRINT_BYTES]
            body = payload[_FINGERPRINT_BYTES + 1 :]
            if kind == _CONST_PLAINTEXT:
                if body[:4] != PLAINTEXT_MAGIC:
                    raise PlanFormatError("PCS1 plaintext entry lacks PTX1 magic")
                obj = deserialize_plaintext(body, basis)
            elif kind == _CONST_SWITCHING_KEY:
                if body[:4] != SWITCHING_KEY_MAGIC:
                    raise PlanFormatError("PCS1 key entry lacks SWK1 magic")
                obj = deserialize_switching_key(body, basis)
            else:
                raise PlanFormatError(f"unknown PCS1 constant kind {kind}")
            if constant_fingerprint(obj) != fp:
                raise PlanFormatError(
                    f"PCS1 entry fingerprint mismatch for {fp.hex()}"
                )
            store._by_fp[fp] = obj
        if parsed < count:
            raise PlanFormatError(
                f"PCS1 blob declares {count} constant(s) but only {parsed} "
                "CNST frame(s) present"
            )
        return store


# ---------------------------------------------------------------------------
# Plan serialization (EPL1)
# ---------------------------------------------------------------------------


def _pack_meta(plan: ExecutionPlan) -> bytes:
    basis = plan.evaluator.basis
    moduli = list(basis.moduli)
    backend = plan.backend.encode()
    signature = plan.signature.encode()
    return b"".join(
        [
            struct.pack("<IHH", basis.degree, len(moduli), len(backend)),
            struct.pack(f"<{len(moduli)}Q", *moduli),
            backend,
            struct.pack("<H", len(signature)),
            signature,
        ]
    )


def _unpack_meta(payload: bytes) -> tuple[int, tuple[int, ...], str, str]:
    degree, num_moduli, backend_len = struct.unpack_from("<IHH", payload, 0)
    offset = struct.calcsize("<IHH")
    moduli = struct.unpack_from(f"<{num_moduli}Q", payload, offset)
    offset += 8 * num_moduli
    backend = payload[offset : offset + backend_len].decode()
    offset += backend_len
    (sig_len,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    signature = payload[offset : offset + sig_len].decode()
    return degree, moduli, backend, signature


def _pack_input_specs(graph: Graph) -> bytes:
    out = [struct.pack("<I", len(graph.input_specs))]
    for spec in graph.input_specs:
        if isinstance(spec, CtSpec):
            out.append(
                struct.pack("<BHHd", _KIND_CT, spec.level, spec.size, spec.scale)
            )
        else:
            out.append(struct.pack("<BHHd", _KIND_PT, spec.level, 1, spec.scale))
    return b"".join(out)


def _unpack_input_specs(payload: bytes) -> list[CtSpec | PtSpec]:
    (count,) = struct.unpack_from("<I", payload, 0)
    offset = 4
    specs: list[CtSpec | PtSpec] = []
    for _ in range(count):
        kind, level, size, scale = struct.unpack_from("<BHHd", payload, offset)
        offset += struct.calcsize("<BHHd")
        if kind == _KIND_CT:
            specs.append(CtSpec(level=level, scale=scale, size=size))
        elif kind == _KIND_PT:
            specs.append(PtSpec(level=level, scale=scale))
        else:
            raise PlanFormatError(f"unknown input-spec kind {kind}")
    return specs


def _pack_nodes(graph: Graph) -> bytes:
    out = [struct.pack("<I", len(graph.nodes))]
    for node in graph.nodes:
        code = OP_CODES.get(node.op)
        if code is None:
            raise PlanFormatError(f"op {node.op!r} has no wire opcode")
        kind = _KIND_CT if node.kind == "ct" else _KIND_PT
        out.append(
            struct.pack(
                "<BBHHdHHH",
                code,
                kind,
                node.level,
                node.size,
                node.scale,
                len(node.inputs),
                len(node.attrs),
                len(node.consts),
            )
        )
        if node.inputs:
            out.append(struct.pack(f"<{len(node.inputs)}I", *node.inputs))
        if node.attrs:
            out.append(struct.pack(f"<{len(node.attrs)}q", *node.attrs))
        if node.consts:
            out.append(struct.pack(f"<{len(node.consts)}I", *node.consts))
    return b"".join(out)


def _unpack_nodes(payload: bytes, graph: Graph) -> None:
    (count,) = struct.unpack_from("<I", payload, 0)
    offset = 4
    head = struct.Struct("<BBHHdHHH")
    for node_id in range(count):
        code, kind, level, size, scale, n_in, n_attr, n_const = head.unpack_from(
            payload, offset
        )
        offset += head.size
        op = _OP_NAMES.get(code)
        if op is None:
            raise PlanFormatError(f"unknown opcode {code} at node {node_id}")
        inputs = struct.unpack_from(f"<{n_in}I", payload, offset)
        offset += 4 * n_in
        attrs = struct.unpack_from(f"<{n_attr}q", payload, offset)
        offset += 8 * n_attr
        consts = struct.unpack_from(f"<{n_const}I", payload, offset)
        offset += 4 * n_const
        if any(i >= node_id for i in inputs):
            raise PlanFormatError(
                f"node {node_id} references a non-topological input"
            )
        graph.add_node(
            op,
            inputs=tuple(int(i) for i in inputs),
            attrs=tuple(int(a) for a in attrs),
            consts=tuple(int(c) for c in consts),
            level=level,
            scale=scale,
            size=size,
            kind="ct" if kind == _KIND_CT else "pt",
        )


def serialize_plan(plan: ExecutionPlan, *, include_constants: bool = True) -> bytes:
    """Encode a compiled plan as an ``EPL1`` framed blob.

    With ``include_constants`` (the default) a ``PCS1`` payload carrying
    every captured plaintext and switching key rides inline, making the
    blob fully self-contained.  Without it, constants travel only as
    16-byte fingerprints and the receiver must resolve them against a
    :class:`ConstantStore` (shipped separately or built from live
    objects) — the deduplicated-fleet path.
    """
    graph = plan.graph
    flags = _FLAG_CONSTANTS_INLINE if include_constants else 0
    fps = b"".join(
        [struct.pack("<I", len(graph.consts))]
        + [
            bytes([_const_kind(obj)]) + constant_fingerprint(obj)
            for obj in graph.consts
        ]
    )
    out = [
        PLAN_MAGIC,
        struct.pack("<HH", PLAN_VERSION, flags),
        pack_frame(b"META", _pack_meta(plan)),
        pack_frame(b"ISPC", _pack_input_specs(graph)),
        pack_frame(b"NODE", _pack_nodes(graph)),
        pack_frame(
            b"OUTS",
            struct.pack("<I", len(graph.outputs))
            + struct.pack(f"<{len(graph.outputs)}I", *graph.outputs),
        ),
        pack_frame(b"CFPS", fps),
    ]
    if include_constants:
        out.append(
            pack_frame(b"CPAY", ConstantStore.from_graph(graph).to_bytes())
        )
    return b"".join(out)


def serialize_constants(plan: ExecutionPlan) -> bytes:
    """The ``PCS1`` constant payload for a plan, shipped separately."""
    return ConstantStore.from_graph(plan.graph).to_bytes()


def deserialize_plan(
    blob: bytes,
    evaluator,
    *,
    constants: ConstantStore | None = None,
    validate: bool = True,
) -> ExecutionPlan:
    """Rebuild an executable plan from an ``EPL1`` blob — no re-trace,
    no re-optimize.

    Constants are resolved fingerprint-by-fingerprint: first against the
    caller's ``constants`` store (live objects — the zero-copy path),
    then against the blob's inline ``PCS1`` payload if present.  Raises
    :class:`MissingConstantsError` listing every unresolved fingerprint,
    and :class:`PlanFormatError` on truncation, corruption, unsupported
    versions, or (with ``validate``) a graph that fails plan-time
    alignment checks.
    """
    if blob[:4] != PLAN_MAGIC:
        raise PlanFormatError("not an EPL1 plan blob")
    version, flags = struct.unpack_from("<HH", blob, 4)
    if version > PLAN_VERSION:
        raise PlanFormatError(
            f"EPL1 version {version} is newer than supported ({PLAN_VERSION})"
        )
    frames: dict[bytes, bytes] = {}
    offset = 8
    while offset < len(blob):
        try:
            tag, payload, offset = read_frame(blob, offset)
        except ValueError as exc:
            raise PlanFormatError(str(exc)) from None
        frames[tag] = payload  # unknown tags tolerated (forward compat)
    for required in (b"META", b"ISPC", b"NODE", b"OUTS", b"CFPS"):
        if required not in frames:
            raise PlanFormatError(f"EPL1 blob missing required frame {required!r}")

    degree, moduli, backend, signature = _unpack_meta(frames[b"META"])
    basis = evaluator.basis
    if (degree, tuple(moduli)) != params_fingerprint(evaluator):
        raise PlanFormatError(
            f"plan compiled for degree {degree} / {len(moduli)}-prime chain; "
            f"evaluator has degree {basis.degree} / "
            f"{len(basis.moduli)}-prime chain"
        )

    graph = Graph(tuple(_unpack_input_specs(frames[b"ISPC"])))
    _unpack_nodes(frames[b"NODE"], graph)
    outs = frames[b"OUTS"]
    (n_outs,) = struct.unpack_from("<I", outs, 0)
    outputs = struct.unpack_from(f"<{n_outs}I", outs, 4)
    if any(o >= len(graph.nodes) for o in outputs):
        raise PlanFormatError("plan output references a node past the schedule")
    graph.set_outputs(int(o) for o in outputs)

    fps_payload = frames[b"CFPS"]
    (n_consts,) = struct.unpack_from("<I", fps_payload, 0)
    entry = 1 + _FINGERPRINT_BYTES
    if len(fps_payload) < 4 + n_consts * entry:
        raise PlanFormatError("CFPS frame shorter than its declared count")

    inline: ConstantStore | None = None
    missing: list[bytes] = []
    for i in range(n_consts):
        start = 4 + i * entry
        fp = fps_payload[start + 1 : start + entry]
        if constants is not None and fp in constants:
            graph.consts.append(constants.get(fp))
            continue
        if inline is None and flags & _FLAG_CONSTANTS_INLINE and b"CPAY" in frames:
            # Parsed lazily: when the caller's resolver covers every
            # fingerprint (live-graph resolution, the plan-store hot
            # path), the potentially-large inline payload is never
            # decoded at all.
            inline = ConstantStore.from_bytes(frames[b"CPAY"], basis)
        if inline is not None and fp in inline:
            graph.consts.append(inline.get(fp))
        else:
            missing.append(fp)
    if missing:
        raise MissingConstantsError(missing)

    if validate:
        check_alignment(graph)
    return ExecutionPlan(
        graph=graph,
        evaluator=evaluator,
        signature=signature,
        backend=backend,
        hoist=hoist_groups(graph),
    )


def _atomic_write(path: Path, blob: bytes) -> None:
    """Write-then-rename with a per-writer temp name, so two processes
    racing to publish the same artifact each rename a complete file."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{os.urandom(4).hex()}.tmp")
    try:
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def save_plan(path, plan: ExecutionPlan, *, include_constants: bool = True) -> Path:
    """Write a plan artifact atomically (unique tmp file + rename)."""
    path = Path(path)
    _atomic_write(path, serialize_plan(plan, include_constants=include_constants))
    return path


def load_plan(
    path, evaluator, *, constants: ConstantStore | None = None
) -> ExecutionPlan:
    """Read one plan artifact (see :func:`deserialize_plan`)."""
    return deserialize_plan(
        Path(path).read_bytes(), evaluator, constants=constants
    )


# ---------------------------------------------------------------------------
# On-disk plan store
# ---------------------------------------------------------------------------


class PlanStore:
    """A directory of compiled-plan artifacts, content-addressed.

    Artifacts are named by a digest of (traced-graph content signature,
    parameter fingerprint, reducer backend) — the same triple the
    in-memory plan cache keys on, but with the constants hashed by
    content so every process, on every host, derives the same key for
    the same program.  Install one with
    :func:`repro.runtime.plan.set_plan_store` and ``compile_graph``
    becomes trace -> disk hit -> execute, skipping the optimizer.

    Each plan is stored **lean** (``<key>.epl1``, fingerprints only) with
    its constants in a ``<key>.pcs1`` sidecar: the in-process hot path
    resolves constants from the live traced graph and never touches the
    multi-megabyte sidecar, while a fresh host reads both
    (:meth:`load_path`).
    """

    SUFFIX = ".epl1"
    CONSTS_SUFFIX = ".pcs1"

    # Store traffic accounting, shared by every PlanStore instance in
    # the process (the store is fleet-level state, not per-directory).
    _METRICS = get_telemetry().group("plan_store").declare(
        "hits", "misses", "bytes_read", "bytes_written"
    )

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def store_key(content_signature: str, evaluator, backend: str) -> str:
        h = hashlib.blake2b(digest_size=_FINGERPRINT_BYTES)
        h.update(content_signature.encode())
        h.update(repr(params_fingerprint(evaluator)).encode())
        h.update(backend.encode())
        return h.hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{self.SUFFIX}"

    def constants_path_for(self, key: str) -> Path:
        return self.root / f"{key}{self.CONSTS_SUFFIX}"

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob(f"*{self.SUFFIX}"))

    def __len__(self) -> int:
        return len(self.keys())

    def save(self, plan: ExecutionPlan, *, graph: Graph | None = None) -> Path:
        """Persist a plan, keyed by the *traced* graph when supplied (the
        key a fresh process can recompute before optimizing)."""
        sig = graph_content_signature(graph if graph is not None else plan.graph)
        key = self.store_key(sig, plan.evaluator, plan.backend)
        # Sidecar first: a reader that sees the plan must find its
        # constants (the reverse order would race).
        sidecar_blob = serialize_constants(plan)
        _atomic_write(self.constants_path_for(key), sidecar_blob)
        saved = save_plan(self.path_for(key), plan, include_constants=False)
        self._METRICS.inc(
            "bytes_written", len(sidecar_blob) + saved.stat().st_size
        )
        return saved

    def load(
        self,
        graph: Graph,
        evaluator,
        backend: str,
        *,
        constants: ConstantStore | None = None,
    ) -> ExecutionPlan | None:
        """Look up the compiled artifact for a traced graph; ``None`` on
        miss.  Constants resolve from the live graph first (no copies,
        no sidecar read); the sidecar is only decoded for fingerprints
        the graph cannot supply."""
        key = self.store_key(graph_content_signature(graph), evaluator, backend)
        path = self.path_for(key)
        if not path.exists():
            self._METRICS.inc("misses")
            return None
        resolver = ConstantStore.from_graph(graph)
        if constants is not None:
            resolver.merge(constants)
        blob = path.read_bytes()
        self._METRICS.inc("hits")
        self._METRICS.inc("bytes_read", len(blob))
        try:
            return deserialize_plan(blob, evaluator, constants=resolver)
        except MissingConstantsError:
            sidecar = self.constants_path_for(key)
            if not sidecar.exists():
                raise
            sidecar_blob = sidecar.read_bytes()
            self._METRICS.inc("bytes_read", len(sidecar_blob))
            resolver.merge(
                ConstantStore.from_bytes(sidecar_blob, evaluator.basis)
            )
            return deserialize_plan(blob, evaluator, constants=resolver)

    def load_path(
        self,
        path,
        evaluator,
        *,
        constants: ConstantStore | None = None,
    ) -> ExecutionPlan:
        """Load one artifact on a fresh host (no traced graph): caller
        constants first, then the artifact's ``.pcs1`` sidecar."""
        path = Path(path)
        resolver = ConstantStore() if constants is None else constants
        sidecar = path.with_suffix(self.CONSTS_SUFFIX)
        if sidecar.exists():
            resolver.merge(
                ConstantStore.from_bytes(sidecar.read_bytes(), evaluator.basis)
            )
        return load_plan(path, evaluator, constants=resolver)
