"""Unified telemetry: metrics registry, cross-process tracing, timelines.

One process-wide :class:`Telemetry` object (reachable via
:func:`get_telemetry`) is the single source of truth for everything the
pipeline measures:

* **Metrics** — named counters / gauges / histograms with sorted label
  sets.  These are *always on*: they are plain dict-slot updates, cheap
  enough that `ShardedExecutor.stats()`, `plan_cache_info()`, and the
  `PlanStore` hit/miss accounting are now thin views over this registry
  instead of parallel hand-kept dicts.  :class:`MetricGroup` bundles the
  counters of one subsystem under a shared prefix + label set.
* **Traces** — monotonic-clock spans grouped by a per-request trace ID,
  minted at `StreamingServer`/`ShardedExecutor` ingress and propagated
  across the worker process boundary as a ``TRC1`` frame riding the
  request tuple next to the ``ENV1`` payload blobs.  A request's spans —
  queue wait, backoff sleeps, per-attempt dispatch, worker-side
  deserialize/evaluate/serialize, reply decode — nest into one causally
  ordered timeline even across crash/retry/hang-kill, because every
  attempt span carries the same trace ID and worker-side spans are
  shipped back in the reply and re-parented under their attempt span.
  Tracing is **disabled by default** (`enabled=False`) and additionally
  gated by a deterministic ``sample_rate`` knob for high-QPS runs; when
  off, every tracing entry point returns a shared no-op handle.
* **Events** — a structured JSON-ready log of discrete occurrences
  (retries, quarantines, hang kills, respawns), each tagged with the
  stable :mod:`repro.runtime.faults` code where one applies.

Exports: :meth:`Telemetry.export_chrome_trace` emits Chrome trace-event
JSON (``ph:"X"`` complete events, microsecond timestamps, one process
row per OS pid and one thread row per trace) that loads directly in
Perfetto; :meth:`Telemetry.export_prometheus` emits a text-exposition
snapshot of the metric registry; :meth:`Telemetry.export_events` returns
the event log.  :meth:`Telemetry.span_structure` reduces a trace to its
canonical nested ``(name, category, children)`` shape — the form the
determinism tests compare byte-for-byte across seeded chaos repeats.

Clock discipline: :func:`now` is ``time.monotonic`` — CLOCK_MONOTONIC on
Linux, which forked workers share with the parent, so parent- and
worker-recorded span timestamps are directly comparable and every
latency field in the stack (`stream.py` included) is sourced from this
one helper.  IDs are deterministic: trace/span IDs come from per-process
counters, worker-side span IDs are derived by hashing
``(trace_id, attempt, seq)`` — so a seeded chaos run produces an
identical span structure on every repeat.

Wire format (``TRC1``, documented in ``docs/formats.md``): the payload
of a standard :func:`repro.ckks.serialization.pack_frame` container,
first byte a *kind* discriminator — kind 0 is a trace context
(``<u64 trace_id, u64 parent_span_id, u8 sampled>``, parent→worker),
kind 1 is a worker span batch (``u32`` length + UTF-8 JSON list,
worker→parent).  A missing/None field means "not traced" and costs the
hot path one ``is None`` check.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import struct
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.ckks.serialization import WireFormatError, pack_frame, read_frame

__all__ = [
    "TRACE_MAGIC",
    "now",
    "TraceContext",
    "Span",
    "SpanHandle",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricGroup",
    "Telemetry",
    "WorkerSpanRecorder",
    "get_telemetry",
    "serialize_trace_context",
    "serialize_worker_spans",
    "deserialize_trace_frame",
]

# Trace-context / worker-span frames riding the worker pipe next to the
# ENV1 payload blobs (see docs/formats.md, "TRC1").
TRACE_MAGIC = b"TRC1"

_CTX_STRUCT = struct.Struct("<QQB")  # trace_id, parent_span_id, sampled

#: The one clock every latency field in the stack reads.  CLOCK_MONOTONIC
#: is shared across forked processes on Linux, so worker span timestamps
#: are directly comparable with the parent's.
now = time.monotonic


def _hash_id(*parts) -> int:
    """Deterministic 63-bit id from a tuple of ints/strings."""
    h = hashlib.blake2b(repr(parts).encode(), digest_size=8)
    return int.from_bytes(h.digest(), "little") >> 1


@dataclass(frozen=True)
class TraceContext:
    """What crosses a boundary: enough to parent remote spans."""

    trace_id: int
    span_id: int
    sampled: bool


NOOP_CTX = TraceContext(0, 0, False)


@dataclass
class Span:
    """One closed (complete) span in the in-memory trace buffer."""

    trace_id: int
    span_id: int
    parent_id: int  # 0 == root
    name: str
    category: str
    start_s: float
    end_s: float
    pid: int
    attrs: dict = field(default_factory=dict)


class Counter:
    """Monotonically *intended* numeric cell (negative deltas allowed so
    legacy accounting like the breaker's submitted-undo keeps working)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n


class Gauge:
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v) -> None:
        self.value = v


class Histogram:
    """Fixed log-spaced latency buckets + count/sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum", "min", "max")

    DEFAULT_BOUNDS = (
        1e-5, 1e-4, 1e-3, 4e-3, 1.6e-2, 6.4e-2, 2.56e-1, 1.024, 4.096,
    )

    def __init__(self, name: str, labels: tuple, bounds=None) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, v: float) -> None:
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum_s": self.sum,
            "mean_s": self.sum / self.count if self.count else 0.0,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }


class MetricGroup:
    """One subsystem's counters under a shared prefix + label set.

    The executor's ``stats()`` and ``plan_cache_info()`` are dict views
    over groups like this — the registry is the single source of truth,
    the old accessors stay as thin projections.
    """

    __slots__ = ("_telemetry", "prefix", "labels", "_cells")

    def __init__(self, telemetry: "Telemetry", prefix: str, labels: dict) -> None:
        self._telemetry = telemetry
        self.prefix = prefix
        self.labels = dict(labels)
        self._cells: dict[str, Counter] = {}

    def declare(self, *names: str) -> "MetricGroup":
        for name in names:
            self.counter(name)
        return self

    def counter(self, name: str) -> Counter:
        cell = self._cells.get(name)
        if cell is None:
            cell = self._telemetry.counter(f"{self.prefix}_{name}", **self.labels)
            self._cells[name] = cell
        return cell

    def inc(self, name: str, n=1) -> None:
        self.counter(name).inc(n)

    def get(self, name: str):
        return self.counter(name).value

    def to_dict(self) -> dict:
        return {name: cell.value for name, cell in self._cells.items()}

    def reset(self) -> None:
        for cell in self._cells.values():
            cell.value = 0


class SpanHandle:
    """An open span; close with :meth:`end` or as a context manager."""

    __slots__ = ("_telemetry", "name", "category", "ctx", "parent_id", "start_s", "attrs")

    def __init__(self, telemetry, name, category, ctx, parent_id, attrs) -> None:
        self._telemetry = telemetry
        self.name = name
        self.category = category
        self.ctx = ctx
        self.parent_id = parent_id
        self.start_s = now()
        self.attrs = attrs

    def end(self, **attrs) -> None:
        if self._telemetry is None:  # already closed
            return
        telemetry, self._telemetry = self._telemetry, None
        if attrs:
            self.attrs = {**self.attrs, **attrs}
        telemetry._append_span(
            Span(
                trace_id=self.ctx.trace_id,
                span_id=self.ctx.span_id,
                parent_id=self.parent_id,
                name=self.name,
                category=self.category,
                start_s=self.start_s,
                end_s=now(),
                pid=os.getpid(),
                attrs=self.attrs,
            )
        )

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class _NoopSpan:
    """Shared do-nothing handle returned whenever tracing is off."""

    __slots__ = ()
    ctx = NOOP_CTX
    name = ""
    category = ""

    def end(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Telemetry:
    """Process-wide metric registry + opt-in trace/event recorder."""

    def __init__(self, *, enabled: bool = False, sample_rate: float = 1.0) -> None:
        self.enabled = enabled
        self.sample_rate = float(sample_rate)
        self._lock = threading.RLock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._spans: list[Span] = []
        self._events: list[dict] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- lifecycle -----------------------------------------------------

    def configure(self, *, enabled: bool | None = None, sample_rate=None) -> None:
        if enabled is not None:
            self.enabled = bool(enabled)
        if sample_rate is not None:
            self.sample_rate = float(sample_rate)

    def enable(self, sample_rate: float = 1.0) -> None:
        self.configure(enabled=True, sample_rate=sample_rate)

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric and drop spans/events — but keep the metric
        *objects*, so subsystems holding a :class:`MetricGroup` keep
        writing to live cells after a test-suite reset."""
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for gauge in self._gauges.values():
                gauge.value = 0.0
            for hist in self._histograms.values():
                hist.bucket_counts = [0] * (len(hist.bounds) + 1)
                hist.count = 0
                hist.sum = 0.0
                hist.min = float("inf")
                hist.max = 0.0
            self._spans.clear()
            self._events.clear()
            self._trace_ids = itertools.count(1)
            self._span_ids = itertools.count(1)

    # -- metrics (always on) -------------------------------------------

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        key = self._key(name, labels)
        cell = self._counters.get(key)
        if cell is None:
            with self._lock:
                cell = self._counters.setdefault(key, Counter(name, key[1]))
        return cell

    def gauge(self, name: str, **labels) -> Gauge:
        key = self._key(name, labels)
        cell = self._gauges.get(key)
        if cell is None:
            with self._lock:
                cell = self._gauges.setdefault(key, Gauge(name, key[1]))
        return cell

    def histogram(self, name: str, bounds=None, **labels) -> Histogram:
        key = self._key(name, labels)
        cell = self._histograms.get(key)
        if cell is None:
            with self._lock:
                cell = self._histograms.setdefault(
                    key, Histogram(name, key[1], bounds)
                )
        return cell

    def group(self, prefix: str, **labels) -> MetricGroup:
        return MetricGroup(self, prefix, labels)

    # -- tracing (gated on enabled + sampling) -------------------------

    def _sampled(self, trace_id: int) -> bool:
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        # Deterministic per-trace decision: same id -> same verdict.
        return _hash_id("sample", trace_id) % 10_000 < int(rate * 10_000)

    def start_trace(self, name: str, *, category: str = "request", **attrs):
        """Mint a new trace and open its root span.  Returns the shared
        no-op handle when tracing is disabled or the trace is unsampled."""
        if not self.enabled:
            return NOOP_SPAN
        with self._lock:
            trace_id = next(self._trace_ids)
            if not self._sampled(trace_id):
                return NOOP_SPAN
            span_id = next(self._span_ids)
        ctx = TraceContext(trace_id, span_id, True)
        return SpanHandle(self, name, category, ctx, 0, attrs)

    def child_span(self, name: str, parent: TraceContext, *, category="request", **attrs):
        """Open a span under ``parent`` (a :class:`TraceContext`)."""
        if not self.enabled or not parent.sampled:
            return NOOP_SPAN
        with self._lock:
            span_id = next(self._span_ids)
        ctx = TraceContext(parent.trace_id, span_id, True)
        return SpanHandle(self, name, category, ctx, parent.span_id, attrs)

    def record_span(
        self,
        name: str,
        parent: TraceContext,
        start_s: float,
        end_s: float,
        *,
        category: str = "request",
        **attrs,
    ) -> int:
        """Record an already-elapsed span post hoc (e.g. queue wait,
        measured by timestamps rather than an open handle)."""
        if not self.enabled or not parent.sampled:
            return 0
        with self._lock:
            span_id = next(self._span_ids)
        self._append_span(
            Span(
                trace_id=parent.trace_id,
                span_id=span_id,
                parent_id=parent.span_id,
                name=name,
                category=category,
                start_s=start_s,
                end_s=end_s,
                pid=os.getpid(),
                attrs=attrs,
            )
        )
        return span_id

    def ingest_spans(self, span_dicts) -> None:
        """Adopt spans recorded in another process (a worker's TRC1
        reply batch); they keep their own pid and deterministic ids."""
        if not span_dicts:
            return
        spans = [
            Span(
                trace_id=d["trace_id"],
                span_id=d["span_id"],
                parent_id=d["parent_id"],
                name=d["name"],
                category=d.get("cat", "worker"),
                start_s=d["start_s"],
                end_s=d["end_s"],
                pid=d.get("pid", 0),
                attrs=d.get("attrs", {}),
            )
            for d in span_dicts
        ]
        with self._lock:
            self._spans.extend(spans)

    def _append_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- events --------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Append one structured occurrence to the event log (enabled
        runs only; events are not subject to trace sampling)."""
        if not self.enabled:
            return
        record = {"ts_s": now(), "event": name, **fields}
        with self._lock:
            self._events.append(record)

    # -- queries -------------------------------------------------------

    def spans(self, trace_id: int | None = None) -> list[Span]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [s for s in spans if s.trace_id == trace_id]

    def trace_ids(self) -> list[int]:
        with self._lock:
            seen: dict[int, None] = {}
            for s in self._spans:
                seen.setdefault(s.trace_id, None)
        return list(seen)

    def span_structure(self, trace_id: int) -> list[dict]:
        """Canonical nested shape of one trace: ``(name, category,
        children)`` sorted by start time, ids/timestamps/pids stripped.
        Two runs with identical causal structure produce byte-identical
        JSON dumps of this form — the determinism tests rely on it."""
        spans = sorted(
            self.spans(trace_id), key=lambda s: (s.start_s, s.span_id)
        )
        by_id = {s.span_id: s for s in spans}
        children: dict[int, list[Span]] = {}
        roots: list[Span] = []
        for s in spans:
            if s.parent_id and s.parent_id in by_id:
                children.setdefault(s.parent_id, []).append(s)
            else:
                roots.append(s)

        def build(s: Span) -> dict:
            return {
                "name": s.name,
                "category": s.category,
                "children": [build(c) for c in children.get(s.span_id, [])],
            }

        return [build(r) for r in roots]

    # -- exports -------------------------------------------------------

    def export_chrome_trace(self, path=None) -> dict:
        """Chrome trace-event JSON (Perfetto-loadable): one ``ph:"X"``
        complete event per span, process rows per OS pid, thread rows per
        trace, timestamps rebased to the earliest span."""
        spans = self.spans()
        t0 = min((s.start_s for s in spans), default=0.0)
        parent_pid = os.getpid()
        events: list[dict] = []
        seen_rows: set[tuple[int, int]] = set()
        for pid in sorted({s.pid for s in spans}):
            role = "server" if pid == parent_pid else "worker"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{role} (pid {pid})"},
                }
            )
        for s in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
            row = (s.pid, s.trace_id)
            if row not in seen_rows:
                seen_rows.add(row)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": s.pid,
                        "tid": s.trace_id,
                        "args": {"name": f"trace {s.trace_id}"},
                    }
                )
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": (s.start_s - t0) * 1e6,
                    "dur": max(0.0, (s.end_s - s.start_s) * 1e6),
                    "pid": s.pid,
                    "tid": s.trace_id,
                    "args": {
                        "trace_id": s.trace_id,
                        "span_id": s.span_id,
                        "parent_id": s.parent_id,
                        **s.attrs,
                    },
                }
            )
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1)
        return doc

    def export_prometheus(self) -> str:
        """Prometheus-style text exposition of the metric registry."""

        def fmt_labels(labels: tuple, extra: tuple = ()) -> str:
            items = [*labels, *extra]
            if not items:
                return ""
            inner = ",".join(f'{k}="{v}"' for k, v in items)
            return "{" + inner + "}"

        lines: list[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            hists = sorted(self._histograms.items())
        typed: set[str] = set()
        for (name, labels), cell in counters:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{fmt_labels(labels)} {cell.value}")
        for (name, labels), cell in gauges:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{fmt_labels(labels)} {cell.value}")
        for (name, labels), hist in hists:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, n in zip(hist.bounds, hist.bucket_counts):
                cumulative += n
                lines.append(
                    f"{name}_bucket"
                    f"{fmt_labels(labels, (('le', f'{bound:g}'),))} {cumulative}"
                )
            cumulative += hist.bucket_counts[-1]
            lines.append(
                f"{name}_bucket{fmt_labels(labels, (('le', '+Inf'),))} {cumulative}"
            )
            lines.append(f"{name}_sum{fmt_labels(labels)} {hist.sum}")
            lines.append(f"{name}_count{fmt_labels(labels)} {hist.count}")
        return "\n".join(lines) + "\n"

    def export_events(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._events]


class WorkerSpanRecorder:
    """Worker-side span buffer for one request attempt.

    Created from the TRC1 context that rode in with the request; inert
    (zero-cost spans) when the attempt is untraced.  Span ids are
    ``blake2b(trace_id, attempt, seq)`` so they are deterministic,
    collision-free against the parent's counter-minted ids, and
    reproducible across seeded chaos repeats.  The recorded batch ships
    back in the reply tuple and is re-parented under the attempt span by
    :meth:`Telemetry.ingest_spans`.
    """

    __slots__ = ("ctx", "attempt", "spans", "_seq")

    def __init__(self, ctx: TraceContext | None, attempt: int) -> None:
        self.ctx = ctx if ctx is not None and ctx.sampled else None
        self.attempt = attempt
        self.spans: list[dict] = []
        self._seq = 0

    @property
    def active(self) -> bool:
        return self.ctx is not None

    @contextmanager
    def span(self, name: str, **attrs):
        if self.ctx is None:
            yield
            return
        start = now()
        try:
            yield
        except BaseException:
            self._record(name, start, {**attrs, "status": "error"})
            raise
        else:
            self._record(name, start, {"status": "ok", **attrs})

    def _record(self, name: str, start: float, attrs: dict) -> None:
        self._seq += 1
        self.spans.append(
            {
                "trace_id": self.ctx.trace_id,
                "span_id": _hash_id(
                    self.ctx.trace_id, self.attempt, self._seq, name
                ),
                "parent_id": self.ctx.span_id,
                "name": name,
                "cat": "worker",
                "start_s": start,
                "end_s": now(),
                "pid": os.getpid(),
                "attrs": attrs,
            }
        )

    def payload(self) -> bytes | None:
        if not self.spans:
            return None
        return serialize_worker_spans(self.spans)


# ----------------------------------------------------------------------
# TRC1 wire helpers
# ----------------------------------------------------------------------


def serialize_trace_context(ctx: TraceContext) -> bytes:
    """Parent→worker TRC1 frame (kind 0): the attempt's trace context."""
    body = _CTX_STRUCT.pack(ctx.trace_id, ctx.span_id, 1 if ctx.sampled else 0)
    return pack_frame(TRACE_MAGIC, b"\x00" + body)


def serialize_worker_spans(spans: list[dict]) -> bytes:
    """Worker→parent TRC1 frame (kind 1): a closed-span batch."""
    blob = json.dumps(spans, separators=(",", ":")).encode("utf-8")
    return pack_frame(TRACE_MAGIC, b"\x01" + struct.pack("<I", len(blob)) + blob)


def deserialize_trace_frame(frame: bytes):
    """Decode either TRC1 kind.  Returns ``("ctx", TraceContext)`` or
    ``("spans", list[dict])``; raises :class:`WireFormatError` on a
    malformed frame (CRC, tag, kind, or length mismatch)."""
    tag, payload, _ = read_frame(frame, 0)
    if tag != TRACE_MAGIC:
        raise WireFormatError(f"expected TRC1 frame, got tag {tag!r}")
    if not payload:
        raise WireFormatError("empty TRC1 payload")
    kind = payload[0]
    body = payload[1:]
    if kind == 0:
        if len(body) != _CTX_STRUCT.size:
            raise WireFormatError(
                f"TRC1 context payload is {len(body)} bytes, "
                f"expected {_CTX_STRUCT.size}"
            )
        trace_id, span_id, sampled = _CTX_STRUCT.unpack(body)
        return ("ctx", TraceContext(trace_id, span_id, bool(sampled)))
    if kind == 1:
        if len(body) < 4:
            raise WireFormatError("truncated TRC1 span batch header")
        (length,) = struct.unpack_from("<I", body, 0)
        blob = body[4 : 4 + length]
        if len(blob) != length:
            raise WireFormatError(
                f"TRC1 span batch is {len(blob)} bytes, header says {length}"
            )
        spans = json.loads(blob.decode("utf-8"))
        if not isinstance(spans, list):
            raise WireFormatError("TRC1 span batch must decode to a list")
        return ("spans", spans)
    raise WireFormatError(f"unknown TRC1 payload kind {kind}")


# ----------------------------------------------------------------------
# Process-wide singleton
# ----------------------------------------------------------------------

_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide registry every subsystem writes to."""
    return _TELEMETRY
