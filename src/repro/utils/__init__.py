"""Shared low-level helpers (bit manipulation, validation)."""

from repro.utils.bitops import (
    bit_reverse,
    bit_reverse_indices,
    ilog2,
    is_power_of_two,
    popcount,
    signed_power_terms,
)

__all__ = [
    "bit_reverse",
    "bit_reverse_indices",
    "ilog2",
    "is_power_of_two",
    "popcount",
    "signed_power_terms",
]
