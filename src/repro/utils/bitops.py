"""Bit-level helpers shared across the transform and number-theory layers.

These small utilities exist because both the NTT/FFT kernels and the
pipelined-dataflow models (Fig. 4 of the paper) reason about indices in
bit-reversed order, and because parameter validation repeatedly needs
power-of-two checks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_power_of_two",
    "ilog2",
    "bit_reverse",
    "bit_reverse_indices",
    "popcount",
    "signed_power_terms",
]


def is_power_of_two(x: int) -> bool:
    """Return True when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2 of a power of two.

    Raises ValueError for non powers of two so silent mis-sizing of
    transform tables is impossible.
    """
    if not is_power_of_two(x):
        raise ValueError(f"expected a power of two, got {x}")
    return x.bit_length() - 1


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the lowest ``bits`` bits of ``value``."""
    if value < 0 or value >= (1 << bits):
        raise ValueError(f"value {value} does not fit in {bits} bits")
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reverse_indices(n: int) -> np.ndarray:
    """Vector of bit-reversed indices for a transform of power-of-two size."""
    bits = ilog2(n)
    idx = np.arange(n, dtype=np.uint64)
    out = np.zeros(n, dtype=np.uint64)
    for _ in range(bits):
        out = (out << np.uint64(1)) | (idx & np.uint64(1))
        idx >>= np.uint64(1)
    return out.astype(np.int64)


def popcount(x: int) -> int:
    """Number of set bits (used by the shift-add cost model)."""
    return bin(x).count("1")


def signed_power_terms(k: int, max_terms: int = 3) -> list[tuple[int, int]] | None:
    """Decompose ``k`` as a sum of at most ``max_terms`` signed powers of two.

    Returns a list of ``(sign, exponent)`` pairs with ``sign in {+1, -1}``
    such that ``k == sum(sign * 2**exponent)``, or ``None`` when no such
    decomposition exists.  This is the ``k = ±2^a ± 2^b ± 2^c`` condition of
    Eq. (11) in the paper: primes whose ``k`` admits this form let the
    Montgomery ``QInv`` multiply collapse into shift-and-add hardware.

    The search uses canonical signed-digit recoding: at each step peel the
    lowest set bit, choosing ``+2^e`` or ``-2^e`` to clear as many trailing
    bits as possible.
    """
    if k == 0:
        return []

    terms: list[tuple[int, int]] = []
    remaining = k
    while remaining != 0 and len(terms) < max_terms:
        sign = 1 if remaining > 0 else -1
        mag = abs(remaining)
        low = mag & -mag  # lowest set bit
        exponent = low.bit_length() - 1
        # Decide between +2^e and +2^(e+1)-ish via NAF-style rule: if the
        # next bit up is also set, subtracting -2^e leaves fewer set bits.
        if (mag >> exponent) & 0b11 == 0b11:
            term = -sign * (1 << exponent)
        else:
            term = sign * (1 << exponent)
        terms.append((1 if term > 0 else -1, exponent))
        remaining -= term
    if remaining != 0:
        return None
    return terms
