"""ABC-FHE reproduction: client-side CKKS library + accelerator model.

Reproduction of *ABC-FHE: A Resource-Efficient Accelerator Enabling
Bootstrappable Parameters for Client-Side Fully Homomorphic Encryption*
(DAC 2025, arXiv:2506.08461).

Layout:

* :mod:`repro.nums` — number theory (NTT-friendly primes, Montgomery/
  Barrett reduction, CRT);
* :mod:`repro.transforms` — negacyclic NTT, CKKS special FFT, FP55
  emulation, on-the-fly twiddle generation, pipeline dataflow models;
* :mod:`repro.prng` — 128-bit-seed XOF and lattice samplers;
* :mod:`repro.rns` — RNS bases and polynomials;
* :mod:`repro.ckks` — the CKKS scheme (encode/encrypt/decode/decrypt
  plus a homomorphic evaluator);
* :mod:`repro.accel` — the ABC-FHE accelerator performance/area model;
* :mod:`repro.experiments` — one function per paper table/figure.
"""

__version__ = "1.0.0"

from repro.ckks import CkksContext, bootstrappable_params, toy_params

__all__ = ["CkksContext", "bootstrappable_params", "toy_params", "__version__"]
