"""External-memory traffic and on-chip footprint models (Section IV-B).

Two questions the paper answers quantitatively:

1. *How much would the client need to store/fetch without on-chip
   generation?*  For N = 2^16, 44-bit, 24 levels: 16.5 MB of public key,
   8.25 MB of masks+errors, 8.25 MB of twiddle factors
   (:func:`client_memory_footprint` reproduces these numbers exactly).
2. *How much DRAM traffic does each task actually move under each
   hardware configuration?*  (:class:`TrafficModel`, consumed by the
   cycle simulator for Figs. 5b and 6b.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import AcceleratorConfig
from repro.accel.workload import ClientWorkload
from repro.transforms.twiddle import TwiddleMemoryModel

__all__ = ["MemoryFootprint", "client_memory_footprint", "TrafficBreakdown", "TrafficModel"]

_MESSAGE_BYTES_PER_SLOT = 16  # complex128 from the host application
_SEED_BYTES = 16


@dataclass(frozen=True)
class MemoryFootprint:
    """Static parameter storage a client would need without on-chip gen."""

    public_key_bytes: int
    masks_errors_bytes: int
    twiddle_bytes: int
    seed_bytes: int
    twiddle_seed_bytes: int

    @property
    def total_without_generation(self) -> int:
        return self.public_key_bytes + self.masks_errors_bytes + self.twiddle_bytes

    @property
    def total_with_generation(self) -> int:
        return self.seed_bytes + self.twiddle_seed_bytes

    @property
    def reduction_ratio(self) -> float:
        """On-chip-generation storage saving (paper: > 99.9 %)."""
        return 1.0 - self.total_with_generation / self.total_without_generation


def client_memory_footprint(
    degree: int = 1 << 16, levels: int = 24, coeff_bits: int = 44
) -> MemoryFootprint:
    """Section IV-B's storage accounting.

    Public key: two level-L polynomials.  Masks+errors: one polynomial
    equivalent (the paper's 8.25 MB line).  Twiddles: one residue per
    coefficient per limb.
    """
    poly_bytes = levels * degree * coeff_bits // 8
    twiddle = TwiddleMemoryModel(degree=degree, num_primes=levels, coeff_bits=coeff_bits)
    return MemoryFootprint(
        public_key_bytes=2 * poly_bytes,
        masks_errors_bytes=poly_bytes,
        twiddle_bytes=twiddle.full_table_bytes,
        seed_bytes=_SEED_BYTES,
        twiddle_seed_bytes=twiddle.seed_bytes,
    )


@dataclass(frozen=True)
class TrafficBreakdown:
    """DRAM bytes moved for one task under one configuration.

    ``streaming`` traffic (message/ciphertext I/O) overlaps with compute
    through the double-buffered global scratchpad; ``fetch`` traffic
    (parameters consumed mid-pipeline: twiddles, keys, masks, errors)
    serializes with compute — fetch-dependent stalls are exactly what the
    on-chip generators remove.
    """

    message_bytes: int
    ciphertext_bytes: int
    twiddle_bytes: int
    key_bytes: int
    randomness_bytes: int

    @property
    def streaming_bytes(self) -> int:
        return self.message_bytes + self.ciphertext_bytes

    @property
    def fetch_bytes(self) -> int:
        return self.twiddle_bytes + self.key_bytes + self.randomness_bytes

    @property
    def total_bytes(self) -> int:
        return self.streaming_bytes + self.fetch_bytes


@dataclass(frozen=True)
class TrafficModel:
    """Per-task DRAM traffic under a hardware configuration."""

    config: AcceleratorConfig
    workload: ClientWorkload

    def _poly_bytes(self, levels: int) -> int:
        return levels * self.workload.degree * self.config.coeff_bits // 8

    def encode_encrypt(self) -> TrafficBreakdown:
        """Fresh encryption: message in, ciphertext out, plus parameter
        fetches when on-chip generation is disabled."""
        w, c = self.workload, self.config
        message = (w.degree // 2) * _MESSAGE_BYTES_PER_SLOT
        ct_parts = 1 if c.seed_shared_c1 else 2
        ciphertext = ct_parts * self._poly_bytes(w.enc_levels) + (
            _SEED_BYTES if c.seed_shared_c1 else 0
        )
        twiddles = 0 if c.on_chip_twiddles else (
            w.num_ntt_transforms_encrypt() * w.degree * c.coeff_bits // 8
        )
        keys = 0 if c.on_chip_randomness else 2 * self._poly_bytes(w.enc_levels)
        randomness = 0 if c.on_chip_randomness else 3 * self._poly_bytes(w.enc_levels)
        return TrafficBreakdown(
            message_bytes=message,
            ciphertext_bytes=ciphertext,
            twiddle_bytes=twiddles,
            key_bytes=keys,
            randomness_bytes=randomness,
        )

    def decode_decrypt(self) -> TrafficBreakdown:
        """Server response: ciphertext in, message out, twiddle fetches
        when the OTF TF Gen is disabled.  Decryption consumes no PRNG
        randomness; the secret key is small (ternary) and pinned on-chip."""
        w, c = self.workload, self.config
        message = (w.degree // 2) * _MESSAGE_BYTES_PER_SLOT
        ciphertext = 2 * self._poly_bytes(w.dec_levels)
        twiddles = 0 if c.on_chip_twiddles else (
            w.num_ntt_transforms_decrypt() * w.degree * c.coeff_bits // 8
        )
        return TrafficBreakdown(
            message_bytes=message,
            ciphertext_bytes=ciphertext,
            twiddle_bytes=twiddles,
            key_bytes=0,
            randomness_bytes=0,
        )
