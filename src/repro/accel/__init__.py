"""The ABC-FHE accelerator model: cycle-level simulator, memory system,
area/power model, and baseline platforms.

* :mod:`repro.accel.calibration` — every constant, with paper citations;
* :mod:`repro.accel.config` — design points (full / TF-Gen-only / base);
* :mod:`repro.accel.workload` — client op-count analysis (Fig. 2);
* :mod:`repro.accel.memory` — footprints and DRAM traffic (Section IV-B);
* :mod:`repro.accel.engines` / :mod:`repro.accel.simulator` — the
  streaming cycle model behind Figs. 5 and 6(b);
* :mod:`repro.accel.area` — Tables I/II and Fig. 6(a);
* :mod:`repro.accel.scaling` — 28 nm -> 7 nm projection;
* :mod:`repro.accel.baselines` — CPU and prior-accelerator models.
"""

from repro.accel.area import (
    AreaBreakdown,
    chip_area_breakdown,
    modmul_area_um2,
    rfe_area_progression,
    sram_area_mm2,
)
from repro.accel.baselines import CpuModel, ScaledAcceleratorModel, baseline_suite
from repro.accel.config import AcceleratorConfig, abc_fhe, abc_fhe_base, abc_fhe_tf_gen
from repro.accel.engines import GeneratorModel, MseModel, PnlModel
from repro.accel.memory import (
    MemoryFootprint,
    TrafficBreakdown,
    TrafficModel,
    client_memory_footprint,
)
from repro.accel.scaling import SCALING_NODES, TechnologyScaler
from repro.accel.scheduler import RequestQueue, RscScheduler, ScheduleResult
from repro.accel.simulator import (
    ClientSimulator,
    SimulationResult,
    sweep_degree,
    sweep_lanes,
)
from repro.accel.workload import ClientWorkload, OpCounts, resnet20_client_ops

__all__ = [
    "AcceleratorConfig",
    "AreaBreakdown",
    "ClientSimulator",
    "ClientWorkload",
    "CpuModel",
    "GeneratorModel",
    "MemoryFootprint",
    "MseModel",
    "OpCounts",
    "PnlModel",
    "SCALING_NODES",
    "RequestQueue",
    "RscScheduler",
    "ScaledAcceleratorModel",
    "ScheduleResult",
    "SimulationResult",
    "TechnologyScaler",
    "TrafficBreakdown",
    "TrafficModel",
    "abc_fhe",
    "abc_fhe_base",
    "abc_fhe_tf_gen",
    "baseline_suite",
    "chip_area_breakdown",
    "client_memory_footprint",
    "modmul_area_um2",
    "resnet20_client_ops",
    "rfe_area_progression",
    "sweep_degree",
    "sweep_lanes",
]
