"""Client-side CKKS workload analysis (paper Fig. 2).

Operation accounting rules (documented here because the paper does not
publish its exact accounting; EXPERIMENTS.md compares the results):

* one modular butterfly = **1 op** (one modular multiplier slot);
* one complex FFT butterfly = **2 ops** (its four real multiplies occupy
  the reconfigured datapath for two modular-multiplier-pair slots, Eq. 12);
* RNS expansion / CRT combination = 1 op per (coefficient, limb);
* element-wise MACs (mask-times-key products, error additions) are tracked
  separately in ``other_ops`` — they ride the MSE's adders/multipliers in
  parallel with the transform stream and are not multiplier-bound.

Flow assumptions (Fig. 2a):

* encode+encrypt at level L: one special IFFT, RNS expansion to L limbs,
  then NTT of the message and of the encryption mask v over all L limbs
  (errors are PRNG-generated directly in the evaluation domain — the
  hardware-friendly choice that the on-chip PRNG enables);
* decode+decrypt at level l: ciphertexts arrive in the coefficient domain,
  so c1 is NTT-ed, multiplied by s, the result INTT-ed (l limbs each),
  CRT-combined, and decoded with one special FFT.

With N = 2^16, L = 24, l = 2 this lands at 27.2 MOPs vs the paper's
27.0 MOPs (+0.8 %) and 2.72 MOPs vs 2.9 MOPs (−6 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitops import ilog2

__all__ = ["OpCounts", "ClientWorkload", "resnet20_client_ops"]


@dataclass(frozen=True)
class OpCounts:
    """Operation tally for one client-side task.

    Attributes:
        fft_ops: special FFT/IFFT butterfly ops (2 per complex butterfly).
        ntt_ops: NTT/INTT modular butterfly ops.
        rns_ops: RNS-expand / CRT-combine residue conversions.
        other_ops: element-wise MACs (mask products, error adds).
    """

    fft_ops: int
    ntt_ops: int
    rns_ops: int
    other_ops: int

    @property
    def total(self) -> int:
        """Multiplier-bound ops (the Fig. 2b headline count)."""
        return self.fft_ops + self.ntt_ops + self.rns_ops

    @property
    def total_with_other(self) -> int:
        return self.total + self.other_ops

    def shares(self) -> dict[str, float]:
        """Fractional composition including element-wise work (Fig. 2b)."""
        denom = self.total_with_other
        return {
            "i_fft": self.fft_ops / denom,
            "i_ntt": self.ntt_ops / denom,
            "rns_crt": self.rns_ops / denom,
            "others": self.other_ops / denom,
        }


@dataclass(frozen=True)
class ClientWorkload:
    """Op counts for one ciphertext at the paper's parameter point.

    Attributes:
        degree: ring degree N.
        enc_levels: fresh-encryption level (24 in Section V-B).
        dec_levels: level of server responses (2 in Section V-B).
    """

    degree: int
    enc_levels: int = 24
    dec_levels: int = 2

    def __post_init__(self) -> None:
        ilog2(self.degree)

    # -- transform primitives ------------------------------------------------

    def ntt_butterflies(self) -> int:
        """Butterflies in one N-point merged negacyclic NTT."""
        return (self.degree // 2) * ilog2(self.degree)

    def fft_ops_one_transform(self) -> int:
        """Ops in one special FFT over N/2 slots (2 per complex butterfly)."""
        slots = self.degree // 2
        return 2 * (slots // 2) * ilog2(slots)

    # -- encode + encrypt ----------------------------------------------------

    def num_ntt_transforms_encrypt(self) -> int:
        """NTT passes per fresh encryption: message + mask, every limb."""
        return 2 * self.enc_levels

    def encode_encrypt_ops(self) -> OpCounts:
        l = self.enc_levels
        n = self.degree
        return OpCounts(
            fft_ops=self.fft_ops_one_transform(),
            ntt_ops=self.num_ntt_transforms_encrypt() * self.ntt_butterflies(),
            rns_ops=l * n,
            other_ops=2 * l * n + 2 * l * n,  # v*pk products + error/message adds
        )

    # -- decode + decrypt ----------------------------------------------------

    def num_ntt_transforms_decrypt(self) -> int:
        """NTT(c1) + INTT(c0 + c1*s), every limb of the arriving level."""
        return 2 * self.dec_levels

    def decode_decrypt_ops(self) -> OpCounts:
        l = self.dec_levels
        n = self.degree
        return OpCounts(
            fft_ops=self.fft_ops_one_transform(),
            ntt_ops=self.num_ntt_transforms_decrypt() * self.ntt_butterflies(),
            rns_ops=l * n,
            other_ops=l * n + l * n,  # c1*s products + c0 adds
        )

    def imbalance_ratio(self) -> float:
        """Encode+encrypt over decode+decrypt op ratio (paper: ~9.3x)."""
        return self.encode_encrypt_ops().total / self.decode_decrypt_ops().total


def resnet20_client_ops(
    degree: int = 1 << 16,
    enc_levels: int = 24,
    dec_levels: int = 2,
    input_ciphertexts: int = 1,
    output_ciphertexts: int = 1,
) -> dict[str, int]:
    """Client-side op totals for one ResNet20-FHE inference (Fig. 1 input)."""
    w = ClientWorkload(degree, enc_levels, dec_levels)
    return {
        "encode_encrypt": input_ciphertexts * w.encode_encrypt_ops().total,
        "decode_decrypt": output_ciphertexts * w.decode_decrypt_ops().total,
    }
