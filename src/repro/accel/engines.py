"""Cycle models of the ABC-FHE compute engines (Fig. 3b/c).

A pipelined NTT lane (PNL) is a P-path MDC pipeline: it consumes and
produces P coefficients per cycle, so an N-point transform occupies it for
``N/P`` cycles plus a fill latency (commutator FIFOs + multiplier pipeline
stages).  The RFE reconfigures the same lanes between 44-bit modular and
55-bit floating-point complex mode (four modular multipliers make one
complex multiplier, Eq. 12).

The MSE performs element-wise work (RNS expand, CRT combine, mask/key
products, error additions) at the same streaming rate, *chained* with the
transform stream — its cycles are reported for visibility but overlap the
PNL stream in steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitops import ilog2

__all__ = ["PnlModel", "MseModel", "GeneratorModel"]

_MULT_PIPELINE_STAGES = 3  # NTT-friendly Montgomery (Table I)


@dataclass(frozen=True)
class PnlModel:
    """One pipelined NTT lane.

    Attributes:
        lanes: streaming paths P.
    """

    lanes: int

    def fill_cycles(self, degree: int) -> int:
        """Pipeline fill: commutator FIFO occupancy plus multiplier depth.

        The MDC shuffling FIFOs hold ~N/(4P) elements before the first
        output emerges; each of the log2(N) stages adds the modular
        multiplier's pipeline depth.
        """
        return degree // (4 * self.lanes) + _MULT_PIPELINE_STAGES * ilog2(degree)

    def transform_occupancy(self, degree: int) -> int:
        """Cycles one N-point NTT/INTT occupies the lane (steady stream)."""
        return degree // self.lanes

    def transform_latency(self, degree: int) -> int:
        """First-in to last-out latency of a single transform."""
        return self.transform_occupancy(degree) + self.fill_cycles(degree)

    def fft_occupancy(self, slots: int) -> int:
        """Cycles for one special FFT/IFFT over ``slots`` complex values.

        In FP mode the P integer paths pair into P/2 complex paths, but
        each complex value is two words wide, so the throughput in
        values/cycle is P/2 complex = P words — the occupancy matches the
        integer case per word streamed.
        """
        return (2 * slots) // self.lanes

    def fft_latency(self, slots: int) -> int:
        return self.fft_occupancy(slots) + self.fill_cycles(2 * slots)


@dataclass(frozen=True)
class MseModel:
    """Modular streaming engine: element-wise SIMD work.

    Attributes:
        width: elements processed per cycle (matched to the aggregate PNL
            output rate so the chained stream never stalls).
    """

    width: int

    def elementwise_cycles(self, elements: int) -> int:
        """Standalone cycles for an element-wise pass (RNS, CRT, MAC)."""
        return -(-elements // self.width)


@dataclass(frozen=True)
class GeneratorModel:
    """On-chip value generator (PRNG or OTF TF Gen).

    Attributes:
        values_per_cycle: generation rate.  The shipped design sizes both
            generators to the PNL consumption rate (P values/cycle/lane),
            so they never stall the stream; the ablation benches can
            under-size them.
    """

    values_per_cycle: int

    def stall_factor(self, required_per_cycle: int) -> float:
        """Slowdown multiplier when generation cannot keep up."""
        if self.values_per_cycle >= required_per_cycle:
            return 1.0
        return required_per_cycle / self.values_per_cycle
