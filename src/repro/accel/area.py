"""Analytic area/power model (Tables I and II, Fig. 6a).

Unit model fit to Table I: a modular multiplier's area is

    area = ALPHA * bw^2 * (multiplier_equivalents + OVERHEAD)

with multiplier-equivalents 4 / 2 / 1 for Barrett / vanilla Montgomery /
NTT-friendly Montgomery (fit residual < 0.2 % on all three Table I rows).
Component areas then compose structurally: a PNL is ``P/2 * log2(N)``
reconfigurable butterflies plus its commutator FIFOs; an RSC adds the
unified OTF TF Gen, seed memory, MSE, PRNG and local scratchpad; the chip
is two RSCs plus the global scratchpad and top-level control.

Power uses three fitted density classes (pipeline logic, SIMD/serial
logic, SRAM) — each validated against its Table II row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import calibration as cal
from repro.accel.config import AcceleratorConfig
from repro.transforms.dataflow import pipeline_multipliers
from repro.utils.bitops import ilog2

__all__ = [
    "modmul_area_um2",
    "sram_area_mm2",
    "AreaBreakdown",
    "chip_area_breakdown",
    "rfe_area_progression",
]

# Power density classes (W/mm^2), fit from Table II rows:
#   pipeline logic  <- 4x PNL row (1.397 / 10.717)
#   SIMD logic      <- MSE + PRNG rows (higher toggle rate)
#   SRAM            <- scratchpad rows
_POWER_PIPELINE = 0.1303
_POWER_SIMD = 0.40
_POWER_SRAM = 0.49
_POWER_TOP = 0.85

_BUTTERFLY_DATAPATH_FACTOR = 2.0
"""Butterfly area over its bare multiplier: modular adder/subtractor,
FP55 exponent datapath, reconfiguration muxes (calibrated so 4 PNLs land
on Table II's 10.717 mm^2)."""

_RECONFIG_MUX_FACTOR = 1.15
"""Area overhead of making a datapath NTT/FFT-reconfigurable."""

_FP_FIFO_FACTOR = 55 / 44
"""FIFO width ratio when sized for the FP55 word."""


def modmul_area_um2(bitwidth: int, algorithm: str) -> float:
    """Table I model: modular-multiplier area in µm² at 28 nm / 600 MHz."""
    try:
        equiv = cal.MODMUL_EQUIV[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; pick from {sorted(cal.MODMUL_EQUIV)}"
        ) from None
    return cal.MODMUL_ALPHA_UM2_PER_BIT2 * bitwidth**2 * (equiv + cal.MODMUL_OVERHEAD_EQUIV)


def fp_mult_area_um2(total_bits: int) -> float:
    """Plain (non-modular) multiplier area for an FP datapath lane.

    A significand multiplier of ~``mantissa+1`` bits dominates; we charge
    the 44-bit array the RFE actually reuses (Eq. 12 reconfigurability)."""
    return cal.MODMUL_ALPHA_UM2_PER_BIT2 * min(total_bits, 44) ** 2


def sram_area_mm2(nbytes: float, double_buffered: bool = False) -> float:
    """SRAM macro area from the Table II scratchpad densities."""
    per_kb = cal.SRAM_DOUBLE_BUFFERED_MM2_PER_KB if double_buffered else cal.SRAM_MM2_PER_KB
    return nbytes / 1024 * per_kb


@dataclass(frozen=True)
class AreaBreakdown:
    """Component-level area (mm^2) and power (W) — the Table II rows."""

    area_mm2: dict[str, float]
    power_w: dict[str, float]

    @property
    def total_area(self) -> float:
        return self.area_mm2["Total"]

    @property
    def total_power(self) -> float:
        return self.power_w["Total"]

    def scaled_to_7nm(self) -> tuple[float, float]:
        """(area, power) after the paper's DeepScaleTool 28->7 nm factors."""
        return (
            self.total_area / cal.SCALE_28_TO_7_AREA,
            self.total_power / cal.SCALE_28_TO_7_POWER,
        )


def _pnl_area_mm2(config: AcceleratorConfig, degree: int) -> float:
    """One pipelined NTT lane: butterflies + commutator FIFOs."""
    log_n = ilog2(degree)
    butterflies = (config.lanes_per_pnl // 2) * log_n
    mult = modmul_area_um2(config.coeff_bits, "ntt_friendly") / 1e6
    datapath = butterflies * mult * _BUTTERFLY_DATAPATH_FACTOR
    # MDC commutator FIFOs: total capacity ~N coefficients (2n FIFO per
    # stage, doubling — Fig. 3c), double-buffered SRAM per Section V-A.
    fifo_bytes = degree * config.coeff_bits / 8
    return datapath + sram_area_mm2(fifo_bytes)


def _tf_gen_area_mm2(config: AcceleratorConfig) -> float:
    """Unified OTF TF Gen: one running-product multiplier per streaming
    path (every path consumes one merged twiddle per cycle), shared across
    the RSC's PNLs, NTT/FFT-reconfigurable."""
    mults = config.lanes_per_pnl * config.pnls_per_rsc
    mult = modmul_area_um2(config.coeff_bits, "ntt_friendly") / 1e6
    return mults * mult * 1.29  # reconfig + exponent-schedule control


def _mse_area_mm2(config: AcceleratorConfig) -> float:
    """Modular streaming engine: one MAC lane per streaming path."""
    macs = config.lanes_per_pnl * config.pnls_per_rsc
    mult = modmul_area_um2(config.coeff_bits, "ntt_friendly") / 1e6
    return macs * mult * 1.45  # accumulators + RNS/CRT constant banks


def chip_area_breakdown(
    config: AcceleratorConfig | None = None, degree: int = 1 << 16
) -> AreaBreakdown:
    """Compose the full Table II breakdown for a configuration."""
    config = config or AcceleratorConfig()
    pnl4 = 4 * _pnl_area_mm2(config, degree) * config.pnls_per_rsc / 4
    tf_gen = _tf_gen_area_mm2(config)
    seed_mem = sram_area_mm2(cal.TWIDDLE_SEED_MEMORY_BYTES)
    mse = _mse_area_mm2(config)
    prng = cal.TABLE2_AREA_MM2["PRNG"]  # calibrated unit (SHAKE core + samplers)
    local_sp = sram_area_mm2(config.local_scratchpad_bytes)
    rsc = pnl4 + tf_gen + seed_mem + mse + prng + local_sp
    global_sp = sram_area_mm2(config.global_scratchpad_bytes, double_buffered=True)
    top = cal.TABLE2_AREA_MM2["Top CTRL, DMA, Etc."]  # calibrated unit
    total = config.num_rscs * rsc + global_sp + top

    area = {
        "4x PNL": pnl4,
        "Unified OTF TF Gen": tf_gen,
        "Twiddle Factor Seed Memory": seed_mem,
        "MSE": mse,
        "PRNG": prng,
        "Local Scratchpad": local_sp,
        "RSC": rsc,
        "2x RSC": config.num_rscs * rsc,
        "Global Scratchpad": global_sp,
        "Top CTRL, DMA, Etc.": top,
        "Total": total,
    }
    power = {
        "4x PNL": pnl4 * _POWER_PIPELINE,
        "Unified OTF TF Gen": tf_gen * _POWER_PIPELINE,
        "Twiddle Factor Seed Memory": seed_mem * _POWER_SRAM,
        "MSE": mse * _POWER_SIMD,
        "PRNG": prng * _POWER_SIMD,
        "Local Scratchpad": local_sp * _POWER_SRAM,
        "Global Scratchpad": global_sp * _POWER_SRAM,
        "Top CTRL, DMA, Etc.": top * _POWER_TOP,
    }
    power["RSC"] = (
        power["4x PNL"]
        + power["Unified OTF TF Gen"]
        + power["Twiddle Factor Seed Memory"]
        + power["MSE"]
        + power["PRNG"]
        + power["Local Scratchpad"]
    )
    power["2x RSC"] = config.num_rscs * power["RSC"]
    power["Total"] = power["2x RSC"] + power["Global Scratchpad"] + power["Top CTRL, DMA, Etc."]
    return AreaBreakdown(area_mm2=area, power_w=power)


def rfe_area_progression(
    degree: int = 1 << 16, lanes: int = 8, num_pnls: int = 4
) -> dict[str, float]:
    """Fig. 6(a): RFE area as the three optimizations land.

    All four design points deliver one FFT result and four NTT results
    (the paper's fairness condition):

    1. ``baseline`` — radix-2 pipelines, vanilla Montgomery, separate
       NTT and FFT hardware;
    2. ``tf_scheduling`` — radix-2^n twiddle scheduling (fewer mults);
    3. ``montmul`` — NTT-friendly Montgomery multipliers;
    4. ``reconfigurable`` — single RFE whose modular lanes reconfigure
       into the FP complex datapath (Eq. 12), absorbing the FFT engine.
    """
    log_n = ilog2(degree)
    butterflies = (lanes // 2) * log_n
    mont = modmul_area_um2(44, "montgomery") / 1e6
    nttf = modmul_area_um2(44, "ntt_friendly") / 1e6
    fpm = fp_mult_area_um2(55) / 1e6
    bfly_overhead = butterflies * nttf  # adders/shuffle per butterfly slot
    fifo = sram_area_mm2(degree * 44 / 8)
    fifo_fp = fifo * _FP_FIFO_FACTOR

    def ntt_engine(radix_log: int, mult_area: float) -> float:
        mults = pipeline_multipliers(degree, lanes, radix_log, "ntt").total
        return mults * mult_area + bfly_overhead + fifo

    def fft_engine(radix_log: int) -> float:
        real_mults = pipeline_multipliers(degree, lanes, radix_log, "fft").total
        return real_mults * fpm + bfly_overhead * _FP_FIFO_FACTOR + fifo_fp

    baseline = num_pnls * ntt_engine(1, mont) + fft_engine(1)
    tf_sched = num_pnls * ntt_engine(log_n, mont) + fft_engine(log_n)
    montmul = num_pnls * ntt_engine(log_n, nttf) + fft_engine(log_n)
    reconfigurable = num_pnls * (
        (pipeline_multipliers(degree, lanes, log_n, "ntt").total * nttf + bfly_overhead)
        * _RECONFIG_MUX_FACTOR
        + fifo * _FP_FIFO_FACTOR
    )
    return {
        "baseline": baseline,
        "tf_scheduling": tf_sched,
        "montmul": montmul,
        "reconfigurable": reconfigurable,
    }
