"""RSC operating-mode scheduling (Fig. 3a's three modes, Section III).

The two reconfigurable streaming cores support three operating modes:
*dual-encrypt* (both cores work on encryptions), *dual-decrypt*, and
*split* (one core per task type).  "Doubling the throughput" in dual mode
means two ciphertexts in flight — each on one core, sharing the LPDDR5
bandwidth — OR both cores cooperating on a single ciphertext, whichever
is better for the queue at hand.  The paper credits "optimized task
scheduling" for part of its latency win; this module models a client
request queue and compares policies:

* ``static_split`` — cores pinned per task type for the whole run;
* ``dual_batched`` — all encryptions in dual-encrypt mode, then all
  decryptions in dual-decrypt mode;
* ``dynamic`` — split mode while both queues are non-empty, then the
  best dual mode for the leftover tail (the paper's approach).

Single-core/shared-bandwidth task latencies come from the same cycle
simulator as Figs. 5/6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.accel.config import AcceleratorConfig
from repro.accel.simulator import ClientSimulator
from repro.accel.workload import ClientWorkload

__all__ = ["RequestQueue", "ScheduleResult", "RscScheduler"]


@dataclass(frozen=True)
class RequestQueue:
    """Pending client work: counts of each task type."""

    encode_encrypt: int
    decode_decrypt: int

    @property
    def total(self) -> int:
        return self.encode_encrypt + self.decode_decrypt


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a queue under one policy."""

    policy: str
    makespan_cycles: int

    @property
    def makespan_seconds(self) -> float:
        from repro.accel import calibration as cal

        return self.makespan_cycles / cal.CLOCK_HZ


@dataclass(frozen=True)
class RscScheduler:
    """Schedules a request queue onto the two RSCs.

    Attributes:
        config: hardware design point (2 RSCs in the shipped design).
        workload: per-ciphertext task shapes.
    """

    config: AcceleratorConfig
    workload: ClientWorkload

    def _task_cycles(self, task: str, rscs: int, dram_fraction: float = 1.0) -> int:
        """Latency of one task on ``rscs`` cores with a bandwidth share."""
        cfg = replace(
            self.config,
            num_rscs=rscs,
            dram_bytes_per_sec=self.config.dram_bytes_per_sec * dram_fraction,
        )
        return ClientSimulator(config=cfg, workload=self.workload).run(task).latency_cycles

    def _dual_rate(self, task: str) -> float:
        """Best cycles-per-item in a same-type dual mode.

        Either both cores cooperate on one item at full bandwidth, or two
        items run concurrently, each on one core at half bandwidth.
        """
        cooperate = self._task_cycles(task, rscs=2, dram_fraction=1.0)
        pairwise = self._task_cycles(task, rscs=1, dram_fraction=0.5) / 2
        return min(cooperate, pairwise)

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------

    def static_split(self, queue: RequestQueue) -> ScheduleResult:
        """Cores pinned per type, half the bandwidth each, no rebalance."""
        enc = queue.encode_encrypt * self._task_cycles("encode_encrypt", 1, 0.5)
        dec = queue.decode_decrypt * self._task_cycles("decode_decrypt", 1, 0.5)
        return ScheduleResult("static_split", int(max(enc, dec)))

    def dual_batched(self, queue: RequestQueue) -> ScheduleResult:
        """All encrypts in dual-encrypt mode, then all decrypts."""
        total = (
            queue.encode_encrypt * self._dual_rate("encode_encrypt")
            + queue.decode_decrypt * self._dual_rate("decode_decrypt")
        )
        return ScheduleResult("dual_batched", int(total))

    def dynamic(self, queue: RequestQueue) -> ScheduleResult:
        """Pick the best mode sequence for this queue.

        Candidate plans: (a) split mode while both queues are non-empty
        with a dual-mode tail, and (b) fully batched dual modes.  A
        dynamic scheduler re-evaluates at every dispatch window, so its
        makespan is the minimum over candidate plans — on this memory
        system the batched plan usually wins because a half-bandwidth
        split-mode encryption is DRAM-starved.
        """
        enc1 = self._task_cycles("encode_encrypt", 1, 0.5)
        dec1 = self._task_cycles("decode_decrypt", 1, 0.5)
        enc_time = queue.encode_encrypt * enc1
        dec_time = queue.decode_decrypt * dec1
        split_phase = min(enc_time, dec_time)
        if enc_time <= dec_time:
            finished = int(split_phase // dec1) if dec1 else queue.decode_decrypt
            remaining = queue.decode_decrypt - min(queue.decode_decrypt, finished)
            tail = remaining * self._dual_rate("decode_decrypt")
        else:
            finished = int(split_phase // enc1) if enc1 else queue.encode_encrypt
            remaining = queue.encode_encrypt - min(queue.encode_encrypt, finished)
            tail = remaining * self._dual_rate("encode_encrypt")
        split_plan = int(split_phase + tail)
        batched_plan = self.dual_batched(queue).makespan_cycles
        return ScheduleResult("dynamic", min(split_plan, batched_plan))

    def compare(self, queue: RequestQueue) -> list[ScheduleResult]:
        """All policies on one queue, best first."""
        results = [
            self.static_split(queue),
            self.dual_batched(queue),
            self.dynamic(queue),
        ]
        return sorted(results, key=lambda r: r.makespan_cycles)
