"""Accelerator configuration: the knobs Figs. 5(b) and 6(b) sweep.

``AcceleratorConfig`` describes one hardware design point.  The three
presets mirror the paper's ablation:

* :func:`abc_fhe` — the full design (on-chip PRNG + unified OTF TF Gen);
* :func:`abc_fhe_tf_gen` — twiddles generated on-chip, everything else
  (public key, masks, errors) fetched from DRAM;
* :func:`abc_fhe_base` — all parameters fetched from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.accel import calibration as cal

__all__ = ["AcceleratorConfig", "abc_fhe", "abc_fhe_tf_gen", "abc_fhe_base"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """One ABC-FHE hardware design point.

    Attributes:
        lanes_per_pnl: streaming paths P in each pipelined NTT lane
            (8 in the shipped design; Fig. 5b sweeps 1..64).
        pnls_per_rsc: pipelined NTT lanes per streaming core (4).
        num_rscs: reconfigurable streaming cores (2).
        clock_hz: operating frequency (600 MHz).
        dram_bytes_per_sec: external-memory bandwidth (LPDDR5, 68.4 GB/s).
        coeff_bits: integer datapath/storage width (44).
        fp_bits: floating-point datapath width (55).
        on_chip_twiddles: unified OTF TF Gen present (vs DRAM twiddles).
        on_chip_randomness: PRNG present — masks, errors and the
            seed-shared key component generated on-chip (vs DRAM).
        seed_shared_c1: fresh ciphertexts transmit c1 as a 16-byte seed
            (symmetric/seeded encryption), halving output traffic.
        global_scratchpad_bytes / local_scratchpad_bytes: SRAM capacities.
    """

    lanes_per_pnl: int = 8
    pnls_per_rsc: int = 4
    num_rscs: int = 2
    clock_hz: float = cal.CLOCK_HZ
    dram_bytes_per_sec: float = cal.LPDDR5_BYTES_PER_SEC
    coeff_bits: int = cal.COEFF_BITS
    fp_bits: int = cal.FP_BITS
    on_chip_twiddles: bool = True
    on_chip_randomness: bool = True
    seed_shared_c1: bool = True
    global_scratchpad_bytes: int = cal.GLOBAL_SCRATCHPAD_BYTES
    local_scratchpad_bytes: int = cal.LOCAL_SCRATCHPAD_BYTES

    def __post_init__(self) -> None:
        if self.lanes_per_pnl < 1:
            raise ValueError("need at least one lane")
        if self.pnls_per_rsc < 1 or self.num_rscs < 1:
            raise ValueError("need at least one PNL and one RSC")

    @property
    def total_transform_engines(self) -> int:
        """Concurrent N-point transforms (one per PNL across all RSCs)."""
        return self.pnls_per_rsc * self.num_rscs

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bytes_per_sec / self.clock_hz

    def with_lanes(self, lanes: int) -> "AcceleratorConfig":
        """The Fig. 5(b) sweep knob."""
        return replace(self, lanes_per_pnl=lanes)


def abc_fhe(lanes: int = 8) -> AcceleratorConfig:
    """The full ABC-FHE design (ABC-FHE_All in Fig. 6b)."""
    return AcceleratorConfig(lanes_per_pnl=lanes)


def abc_fhe_tf_gen(lanes: int = 8) -> AcceleratorConfig:
    """Twiddles on-chip, randomness/keys from DRAM (ABC-FHE_TF_Gen)."""
    return AcceleratorConfig(
        lanes_per_pnl=lanes, on_chip_twiddles=True, on_chip_randomness=False,
        seed_shared_c1=False,
    )


def abc_fhe_base(lanes: int = 8) -> AcceleratorConfig:
    """Everything fetched from DRAM (ABC-FHE_Base in Fig. 6b)."""
    return AcceleratorConfig(
        lanes_per_pnl=lanes, on_chip_twiddles=False, on_chip_randomness=False,
        seed_shared_c1=False,
    )
