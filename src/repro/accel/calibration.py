"""Calibration constants for the ABC-FHE performance/area models.

Every constant is traceable to a specific sentence, table, or figure of the
paper (or to a first-principles fit against one).  Keeping them in a single
module makes the modeling assumptions auditable and lets ablation benches
vary them.
"""

from __future__ import annotations

from repro.nums.kernels import REDUCER_SPECS

# ---------------------------------------------------------------------------
# Clock / memory system (Section V-A)
# ---------------------------------------------------------------------------

CLOCK_HZ = 600e6
"""Synthesis target frequency: "maintaining a 600 MHz clock frequency"."""

LPDDR5_BYTES_PER_SEC = 68.4e9
"""LPDDR5 bandwidth "commonly used in client-side environments"."""

GLOBAL_SCRATCHPAD_BYTES = 880 * 1024
"""Double-buffered global scratchpad capacity (Fig. 3a / Section V-A)."""

LOCAL_SCRATCHPAD_BYTES = 440 * 1024
"""Per-RSC local scratchpad capacity (Fig. 3a)."""

INSTRUCTION_MEMORY_BYTES = 1024
"""Instruction memory (Fig. 3a)."""

TWIDDLE_SEED_MEMORY_BYTES = int(26.4 * 1024)
"""Twiddle-factor seed memory provisioned in hardware (Fig. 3a)."""

# ---------------------------------------------------------------------------
# Datapath widths (Section III)
# ---------------------------------------------------------------------------

COEFF_BITS = 44
"""Integer datapath width: "44-bit modular operation for I/NTT"."""

FP_BITS = 55
"""Floating-point datapath width: "custom 55-bit floating-point (FP55)"."""

FP_MANTISSA_BITS = 43
"""FP55 mantissa: "maintaining at least 43 mantissa bits"."""

BOOT_PRECISION_THRESHOLD = 19.29
"""Minimum bootstrapping precision preserving AI accuracy [19]."""

BOOT_PRECISION_AT_FP55 = 23.39
"""Paper's measured boot precision at 43 mantissa bits (Fig. 3c)."""

# ---------------------------------------------------------------------------
# Modular-multiplier area (Table I, 28 nm @ 600 MHz)
# ---------------------------------------------------------------------------
# Model: area = ALPHA * bw^2 * (multiplier equivalents + OVERHEAD_EQUIV).
# Fitting the three Table I rows gives multiplier-equivalents of 4 / 2 / 1
# (Barrett's two quotient multipliers work on widened operands, ~1.5 each;
# Montgomery's two QInv-side products are half-array; the NTT-friendly
# variant keeps only the operand product) plus a shared fixed overhead.
# Residual error of the fit is < 0.2 % on every row.

MODMUL_ALPHA_UM2_PER_BIT2 = 6.116
"""Partial-product array area per bit^2 (fit to Table I)."""

MODMUL_OVERHEAD_EQUIV = 0.429
"""Fixed overhead (control, correction adders, shift-add network) as a
fraction of one bw^2 multiplier array (fit to Table I)."""

# The per-algorithm accounting lives in repro.nums.kernels.REDUCER_SPECS so
# the *software* reducer backends and this area model are driven by the
# same ReducerSpec rows — changing an algorithm's hardware assumptions
# changes both views at once.

MODMUL_EQUIV = {name: spec.multiplier_equivalents for name, spec in REDUCER_SPECS.items()}
"""Full-multiplier equivalents per reduction algorithm (fit to Table I)."""

MODMUL_PIPELINE_STAGES = {name: spec.pipeline_stages for name, spec in REDUCER_SPECS.items()}
"""Pipeline depths reported in Table I."""

TABLE1_AREAS_UM2 = {name: spec.paper_area_um2 for name, spec in REDUCER_SPECS.items()}
"""Ground-truth Table I areas for regression checks."""

# ---------------------------------------------------------------------------
# Component area/power (Table II, 28 nm)
# ---------------------------------------------------------------------------

TABLE2_AREA_MM2 = {
    "4x PNL": 10.717,
    "Unified OTF TF Gen": 0.697,
    "Twiddle Factor Seed Memory": 0.046,
    "MSE": 0.787,
    "PRNG": 0.069,
    "Local Scratchpad": 0.658,
    "RSC": 12.973,
    "2x RSC": 25.946,
    "Global Scratchpad": 2.632,
    "Top CTRL, DMA, Etc.": 0.060,
    "Total": 28.638,
}
"""Ground-truth Table II area rows (mm^2)."""

TABLE2_POWER_W = {
    "4x PNL": 1.397,
    "Unified OTF TF Gen": 0.089,
    "Twiddle Factor Seed Memory": 0.022,
    "MSE": 0.298,
    "PRNG": 0.028,
    "Local Scratchpad": 0.323,
    "RSC": 2.156,
    "2x RSC": 4.313,
    "Global Scratchpad": 1.290,
    "Top CTRL, DMA, Etc.": 0.051,
    "Total": 5.654,
}
"""Ground-truth Table II power rows (W)."""

SRAM_MM2_PER_KB = 0.658 / 440
"""Single-port SRAM density fit from the local scratchpad row (mm^2/KB)."""

SRAM_DOUBLE_BUFFERED_MM2_PER_KB = 2.632 / 880
"""Double-buffered (global scratchpad) SRAM density (mm^2/KB)."""

LOGIC_POWER_W_PER_MM2 = 1.397 / 10.717
"""Active logic power density fit from the PNL row (W/mm^2)."""

SRAM_POWER_W_PER_MM2 = 0.323 / 0.658
"""Single-port SRAM power density fit from the local scratchpad row."""

SRAM_DB_POWER_W_PER_MM2 = 1.290 / 2.632
"""Double-buffered SRAM power density fit from the global scratchpad row."""

# Butterfly-unit composition: a reconfigurable butterfly carries one
# NTT-friendly modular multiplier plus the FP55 add/shift datapath and the
# modular adder/subtractor pair.  Fit so that 4 PNLs (4 lanes x P=8 MDC,
# 16 stages) land on Table II's 10.717 mm^2 after FIFO SRAM is added.
BUTTERFLY_DATAPATH_FACTOR = 1.75
"""Butterfly area as a multiple of its bare modular multiplier (adders,
FP55 reconfiguration muxes, shuffling taps)."""

# ---------------------------------------------------------------------------
# Technology scaling (Section V-A, via DeepScaleTool [31])
# ---------------------------------------------------------------------------

SCALE_28_TO_7_AREA = 28.638 / 0.9
"""Area shrink 28 nm -> 7 nm implied by the paper (~31.8x)."""

SCALE_28_TO_7_POWER = 5.654 / 2.1
"""Power reduction 28 nm -> 7 nm implied by the paper (~2.7x)."""

# ---------------------------------------------------------------------------
# Baseline platforms (Section V-C / Fig. 5a)
# ---------------------------------------------------------------------------

CPU_EFFECTIVE_OPS_PER_SEC = 2.175e8
"""Single-core Intel i7-12700 running Lattigo, expressed as effective
client-side ops/s.  Calibrated jointly with CPU_FIXED_OVERHEAD_S so the
Fig. 2 op counts land at the CPU latencies implied by the paper's 1112x /
963x speed-ups over our simulated ABC-FHE latencies."""

CPU_FIXED_OVERHEAD_S = 0.0239
"""Per-task CPU overhead (allocation, big-int CRT setup, FFT planning) —
the reason small decode+decrypt jobs run at worse effective op rates than
large encode+encrypt jobs on a single core."""

SOTA_CLIENT_ENC_SLOWDOWN = 214.0
"""Fig. 5a: ABC-FHE is 214x faster than the best prior client accelerator
([34], frequency-normalized and op-scaled) on encode+encrypt."""

SOTA_CLIENT_DEC_SLOWDOWN = 82.0
"""Fig. 5a: 82x on decode+decrypt vs the same baseline."""

ALOHA_HE_ENC_SLOWDOWN = 550.0
"""[22] ALOHA-HE (DATE'24), op-scaled + normalized to 600 MHz: the paper's
Fig. 5a shows it roughly 2-3x slower than [34] on encode+encrypt."""

ALOHA_HE_DEC_SLOWDOWN = 210.0
"""[22] on decode+decrypt under the same scaling."""

CPU_SPEEDUP_ENC = 1112.0
"""Headline speed-up, encoding+encryption vs CPU (abstract / Fig. 5a)."""

CPU_SPEEDUP_DEC = 963.0
"""Headline speed-up, decoding+decryption vs CPU (abstract / Fig. 5a)."""

# ---------------------------------------------------------------------------
# Fig. 1 end-to-end breakdown (ResNet20 over FHE)
# ---------------------------------------------------------------------------

SERVER_ASIC_EVAL_SECONDS = 0.01404
"""[9] Trinity-class server ASIC latency for ResNet20 homomorphic
evaluation (single image).  Chosen so that with [34] as the client
accelerator the client share is 69.4 % (the paper's Fig. 1 reading:
client 69.4 % vs server 30.6 %); the resulting ~14 ms is in line with
modern FHE ASIC ResNet20 latencies."""

SERVER_CPU_EVAL_SECONDS = 2500.0
"""Dual Xeon 8280 (112 cores) ResNet20-FHE evaluation — the Fig. 1 server
CPU bar ("99.9%" of time when everything runs on CPUs)."""

RESNET20_INPUT_CIPHERTEXTS = 1
"""Fresh encryptions per ResNet20-FHE inference (one packed input image)."""

RESNET20_OUTPUT_CIPHERTEXTS = 1
"""Decryptions per inference (one packed logit vector)."""
