"""Technology scaling (Section V-A, via DeepScaleTool [31]).

The paper scales its 28 nm synthesis to 7 nm: 28.638 mm² -> ~0.9 mm² and
5.654 W -> ~2.1 W, arguing client-side feasibility.  We reproduce the
node-to-node factors as a composable table so any modeled area/power can
be projected; the 28->7 entries are anchored to the paper's endpoints and
intermediate nodes follow DeepScaleTool's published per-node trend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import calibration as cal

__all__ = ["TechnologyScaler", "SCALING_NODES"]

SCALING_NODES = (28, 22, 16, 12, 10, 7)
"""Process nodes (nm) the scaler can project between."""

# Cumulative scale factors from 28 nm, interpolated geometrically between
# the identity at 28 nm and the paper-anchored 7 nm endpoint.  DeepScaleTool
# reports near-geometric area scaling across these nodes.
_AREA_FROM_28 = {28: 1.0, 22: 2.0, 16: 4.6, 12: 8.4, 10: 14.0, 7: cal.SCALE_28_TO_7_AREA}
_POWER_FROM_28 = {28: 1.0, 22: 1.25, 16: 1.6, 12: 1.9, 10: 2.2, 7: cal.SCALE_28_TO_7_POWER}


@dataclass(frozen=True)
class TechnologyScaler:
    """Projects area/power between process nodes.

    Attributes:
        source_nm: node the input numbers were obtained at.
        target_nm: node to project to.
    """

    source_nm: int = 28
    target_nm: int = 7

    def __post_init__(self) -> None:
        for node in (self.source_nm, self.target_nm):
            if node not in _AREA_FROM_28:
                raise ValueError(f"unsupported node {node} nm; pick from {SCALING_NODES}")

    @property
    def area_factor(self) -> float:
        """Divide source-node area by this to get target-node area."""
        return _AREA_FROM_28[self.target_nm] / _AREA_FROM_28[self.source_nm]

    @property
    def power_factor(self) -> float:
        """Divide source-node power by this to get target-node power."""
        return _POWER_FROM_28[self.target_nm] / _POWER_FROM_28[self.source_nm]

    def scale_area(self, area_mm2: float) -> float:
        return area_mm2 / self.area_factor

    def scale_power(self, power_w: float) -> float:
        return power_w / self.power_factor
