"""Cycle-level simulator for ABC-FHE client-side tasks.

Latency model (Section III's streaming story, calibrated in
EXPERIMENTS.md):

* **Compute** — transform passes scheduled over the available engines
  (``num_rscs * pnls_per_rsc`` concurrent N-point transforms, each a
  P-path streaming pipeline).  Chained element-wise work (MSE) overlaps
  the stream.
* **Streaming I/O** (message in, ciphertext out) moves through the
  double-buffered global scratchpad and overlaps compute:
  ``max(compute, stream)``.
* **Fetch traffic** (twiddles, keys, masks/errors when on-chip generation
  is disabled) is consumed mid-pipeline and serializes with compute —
  this is precisely the overhead the PRNG and unified OTF TF Gen remove
  (Fig. 6b).

Encode+encrypt flow: IFFT -> RNS expand -> { NTT(m), NTT(v) } over all
limbs -> mask/key MACs -> ciphertext out (c1 seed-shared when enabled).
Decode+decrypt flow: ciphertext in -> NTT(c1) -> c1*s -> INTT -> CRT ->
FFT -> message out, with the per-limb chain streamed back-to-back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import AcceleratorConfig
from repro.accel.engines import MseModel, PnlModel
from repro.accel.memory import TrafficBreakdown, TrafficModel
from repro.accel.workload import ClientWorkload

__all__ = ["SimulationResult", "ClientSimulator"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one task on one configuration.

    Attributes:
        task: "encode_encrypt" or "decode_decrypt".
        compute_cycles: engine-bound cycles (transform stream).
        stream_cycles: DRAM cycles for overlap-able message/ciphertext I/O.
        fetch_cycles: DRAM cycles for mid-pipeline parameter fetches.
        latency_cycles: end-to-end latency, ``max(compute, stream) + fetch``.
        clock_hz: frequency used to convert to seconds.
        traffic: the underlying DRAM byte breakdown.
    """

    task: str
    compute_cycles: int
    stream_cycles: int
    fetch_cycles: int
    latency_cycles: int
    clock_hz: float
    traffic: TrafficBreakdown

    @property
    def latency_seconds(self) -> float:
        return self.latency_cycles / self.clock_hz

    @property
    def throughput_per_second(self) -> float:
        """Steady-state ciphertexts/s with double-buffered overlap."""
        steady = max(self.compute_cycles, self.stream_cycles) + self.fetch_cycles
        return self.clock_hz / steady

    @property
    def bound_by(self) -> str:
        """Which resource limits latency: "compute" or "memory"."""
        if self.fetch_cycles > 0 and self.fetch_cycles >= self.compute_cycles:
            return "memory"
        return "compute" if self.compute_cycles >= self.stream_cycles else "memory"


@dataclass(frozen=True)
class ClientSimulator:
    """Simulates CKKS client tasks on an :class:`AcceleratorConfig`."""

    config: AcceleratorConfig
    workload: ClientWorkload

    def _pnl(self) -> PnlModel:
        return PnlModel(lanes=self.config.lanes_per_pnl)

    def _mse(self) -> MseModel:
        return MseModel(width=self.config.lanes_per_pnl * self.config.pnls_per_rsc)

    def _dram_cycles(self, nbytes: int) -> int:
        return -(-int(nbytes) // max(1, int(self.config.dram_bytes_per_cycle)))

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------

    def encode_encrypt(self) -> SimulationResult:
        """One fresh encryption at ``workload.enc_levels`` levels."""
        w, c = self.workload, self.config
        pnl = self._pnl()
        engines = c.total_transform_engines

        # IFFT runs first (FP mode) on one RSC's lanes; its result feeds
        # the RNS expansion, so it serializes with the NTT phase.
        ifft = pnl.fft_latency(w.degree // 2)
        transforms = w.num_ntt_transforms_encrypt()
        rounds = -(-transforms // engines)
        ntt = rounds * pnl.transform_occupancy(w.degree) + pnl.fill_cycles(w.degree)
        compute = ifft + ntt

        traffic = TrafficModel(config=c, workload=w).encode_encrypt()
        stream = self._dram_cycles(traffic.streaming_bytes)
        fetch = self._dram_cycles(traffic.fetch_bytes)
        latency = max(compute, stream) + fetch
        return SimulationResult(
            task="encode_encrypt",
            compute_cycles=compute,
            stream_cycles=stream,
            fetch_cycles=fetch,
            latency_cycles=latency,
            clock_hz=c.clock_hz,
            traffic=traffic,
        )

    def decode_decrypt(self) -> SimulationResult:
        """One decryption of a ``workload.dec_levels``-level response.

        The per-limb NTT -> pointwise -> INTT chain streams back-to-back
        (one span plus both fills); the decode FFT follows the CRT
        combine.
        """
        w, c = self.workload, self.config
        pnl = self._pnl()
        engines = c.total_transform_engines

        limb_rounds = -(-w.dec_levels // engines)  # NTT(c1) per limb
        chain = (
            limb_rounds * pnl.transform_occupancy(w.degree)
            + 2 * pnl.fill_cycles(w.degree)  # NTT fill + INTT fill, chained
        )
        fft = pnl.fft_latency(w.degree // 2)
        compute = chain + fft

        traffic = TrafficModel(config=c, workload=w).decode_decrypt()
        stream = self._dram_cycles(traffic.streaming_bytes)
        fetch = self._dram_cycles(traffic.fetch_bytes)
        latency = max(compute, stream) + fetch
        return SimulationResult(
            task="decode_decrypt",
            compute_cycles=compute,
            stream_cycles=stream,
            fetch_cycles=fetch,
            latency_cycles=latency,
            clock_hz=c.clock_hz,
            traffic=traffic,
        )

    def run(self, task: str) -> SimulationResult:
        if task == "encode_encrypt":
            return self.encode_encrypt()
        if task == "decode_decrypt":
            return self.decode_decrypt()
        raise ValueError(f"unknown task {task!r}")


def sweep_lanes(
    workload: ClientWorkload,
    base_config: AcceleratorConfig,
    lane_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    task: str = "encode_encrypt",
) -> list[tuple[int, SimulationResult]]:
    """The Fig. 5(b) sweep: latency/throughput vs lanes per PNL."""
    out = []
    for lanes in lane_counts:
        sim = ClientSimulator(config=base_config.with_lanes(lanes), workload=workload)
        out.append((lanes, sim.run(task)))
    return out


def sweep_degree(
    config: AcceleratorConfig,
    degrees: tuple[int, ...] = (1 << 13, 1 << 14, 1 << 15, 1 << 16),
    enc_levels: int = 24,
    dec_levels: int = 2,
    task: str = "encode_encrypt",
) -> list[tuple[int, SimulationResult]]:
    """The Fig. 6(b) x-axis: latency vs polynomial degree."""
    out = []
    for n in degrees:
        w = ClientWorkload(degree=n, enc_levels=enc_levels, dec_levels=dec_levels)
        sim = ClientSimulator(config=config, workload=w)
        out.append((n, sim.run(task)))
    return out
