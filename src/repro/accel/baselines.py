"""Baseline platform models for Fig. 1 and Fig. 5(a).

The paper compares against (i) a PC-grade CPU running Lattigo, and
(ii) prior client-side accelerators — [34] (TCAS-II'24, the SOTA) and
[22] ALOHA-HE (DATE'24).  Since those designs "do not support
bootstrappable parameters, their reported latency was scaled by the
proportion of operations for fair comparison" and frequency-normalized to
600 MHz — i.e., the paper itself compares against *derived* numbers.  We
model them the same way: a slowdown factor relative to ABC-FHE taken from
the paper's reported speed-ups, with op-proportional scaling available for
other parameter points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import calibration as cal
from repro.accel.workload import ClientWorkload

__all__ = ["CpuModel", "ScaledAcceleratorModel", "baseline_suite"]


@dataclass(frozen=True)
class CpuModel:
    """Single-core CPU latency model: ``ops / rate + fixed overhead``.

    The fixed overhead captures allocation / planning costs that dominate
    small jobs (2-level decode+decrypt) but amortize over large ones —
    which is why the paper's CPU speed-ups differ between the two tasks
    (1112x vs 963x) more than raw op counts alone would suggest.
    """

    ops_per_second: float = cal.CPU_EFFECTIVE_OPS_PER_SEC
    fixed_overhead_s: float = cal.CPU_FIXED_OVERHEAD_S

    def latency_seconds(self, ops: float) -> float:
        return ops / self.ops_per_second + self.fixed_overhead_s

    def encode_encrypt_seconds(self, workload: ClientWorkload) -> float:
        return self.latency_seconds(workload.encode_encrypt_ops().total)

    def decode_decrypt_seconds(self, workload: ClientWorkload) -> float:
        return self.latency_seconds(workload.decode_decrypt_ops().total)


@dataclass(frozen=True)
class ScaledAcceleratorModel:
    """A prior accelerator expressed as a slowdown vs ABC-FHE.

    Attributes:
        name: publication tag ("[34]", "[22] ALOHA-HE").
        enc_slowdown: encode+encrypt latency relative to ABC-FHE after the
            paper's op-proportion + frequency normalization.
        dec_slowdown: same for decode+decrypt.
        native_degree: the largest ring the original design supports (all
            prior client accelerators stop at 2^13, the paper's first
            criticism).
    """

    name: str
    enc_slowdown: float
    dec_slowdown: float
    native_degree: int = 1 << 13

    def encode_encrypt_seconds(self, abc_latency_s: float) -> float:
        return abc_latency_s * self.enc_slowdown

    def decode_decrypt_seconds(self, abc_latency_s: float) -> float:
        return abc_latency_s * self.dec_slowdown

    def supports(self, degree: int) -> bool:
        """Whether the original hardware could run this ring at all."""
        return degree <= self.native_degree


def baseline_suite() -> dict[str, ScaledAcceleratorModel]:
    """The two prior-work baselines of Fig. 5(a)."""
    return {
        "[34]": ScaledAcceleratorModel(
            name="[34]",
            enc_slowdown=cal.SOTA_CLIENT_ENC_SLOWDOWN,
            dec_slowdown=cal.SOTA_CLIENT_DEC_SLOWDOWN,
        ),
        "[22] ALOHA-HE": ScaledAcceleratorModel(
            name="[22] ALOHA-HE",
            enc_slowdown=cal.ALOHA_HE_ENC_SLOWDOWN,
            dec_slowdown=cal.ALOHA_HE_DEC_SLOWDOWN,
        ),
    }
