"""NTT-friendly prime generation (Section IV-A, Eq. 8 of the paper).

The paper restricts moduli to primes of the form::

    Q = 2^bw + k * 2^(n+1) + 1                       (Eq. 8)

with ``k = ±2^a ± 2^b ± 2^c`` and ``k >= 2^(bw/2 - 1 - n)``.  Two properties
follow:

* ``Q ≡ 1 (mod 2^(n+1))`` so a 2N-th root of unity exists whenever
  ``2N | 2^(n+1)`` — the negacyclic NTT of degree N is supported;
* ``QInv = -Q^{-1} mod 2^r`` collapses to a three-term shift-add expression
  (Eq. 11), which removes two of the three multipliers in a Montgomery
  reduction.  The paper reports 443 usable 32–36-bit primes for N = 2^16,
  "more than adequate" for 20–40 levels.

`find_primes` reproduces that search; `prime_chain` builds an RNS basis out
of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nums.primality import is_prime
from repro.utils.bitops import ilog2, signed_power_terms

__all__ = ["NttFriendlyPrime", "find_primes", "prime_chain", "count_primes"]


@dataclass(frozen=True)
class NttFriendlyPrime:
    """A prime of the Eq. 8 form, with its shift-add decomposition.

    Attributes:
        value: the prime Q itself.
        bitwidth: the nominal bw in Eq. 8 (Q is within a bit of 2^bw).
        k: the signed cofactor in Eq. 8.
        n_exp: the n of Eq. 8 — Q ≡ 1 (mod 2^(n+1)).
        k_terms: signed-power-of-two decomposition of k, at most 3 terms,
            as (sign, exponent) pairs.  Determines adder count in the
            NTT-friendly Montgomery reducer.
    """

    value: int
    bitwidth: int
    k: int
    n_exp: int
    k_terms: tuple[tuple[int, int], ...] = field(default=())

    @property
    def max_ntt_degree(self) -> int:
        """Largest power-of-two negacyclic NTT degree this prime supports.

        Degree N needs a primitive 2N-th root, i.e. 2N | Q - 1.
        """
        q_minus_1 = self.value - 1
        two_adicity = (q_minus_1 & -q_minus_1).bit_length() - 1
        return 1 << (two_adicity - 1)

    def supports_degree(self, degree: int) -> bool:
        """True when a negacyclic NTT of ``degree`` points is possible."""
        return (self.value - 1) % (2 * degree) == 0

    @property
    def shift_add_adders(self) -> int:
        """Adders needed by the shift-add QInv datapath (Eq. 11).

        One adder per k-term plus one for the -2^(p*bw) term and one for
        the trailing +1 — the quantity the Table I area model consumes.
        """
        return len(self.k_terms) + 2


def find_primes(
    bitwidth: int,
    degree: int,
    max_count: int | None = None,
    max_k_terms: int = 3,
) -> list[NttFriendlyPrime]:
    """Enumerate NTT-friendly primes of a given bitwidth for a given degree.

    Scans Eq. 8 with ``n + 1 = log2(2 * degree)`` so that every returned
    prime supports the negacyclic NTT of ``degree`` points.  ``k`` runs over
    both signs; a candidate qualifies only if

    * ``Q`` is prime and has exactly ``bitwidth`` bits,
    * ``|k|`` admits a <= ``max_k_terms`` signed-power decomposition, and
    * ``|k| >= 2^(bitwidth/2 - 1 - n)`` (the paper's sufficiency condition
      for the Eq. 11 simplification).

    Results are sorted by absolute distance from 2^bitwidth, which keeps the
    RNS scale drift of the double-scale technique minimal.
    """
    n_exp = ilog2(2 * degree) - 1  # Q ≡ 1 (mod 2^(n_exp+1)) with 2^(n_exp+1) = 2N
    step = 1 << (n_exp + 1)
    base = 1 << bitwidth
    threshold = max(1, 1 << max(0, bitwidth // 2 - 1 - n_exp))

    # |k * step| must stay below 2^(bitwidth-1) to keep the bit length at
    # exactly `bitwidth` for negative k (and bitwidth+0 for small positive k).
    k_limit = (base // 2) // step

    found: list[NttFriendlyPrime] = []
    for abs_k in range(threshold, k_limit + 1):
        # |k| ascends, so distance from 2^bitwidth ascends too: once
        # max_count primes are found, no later candidate can displace them.
        if max_count is not None and len(found) >= max_count:
            break
        terms = signed_power_terms(abs_k, max_terms=max_k_terms)
        if terms is None:
            continue
        for sign in (1, -1):
            k = sign * abs_k
            q = base + k * step + 1
            if q.bit_length() != bitwidth and not (
                sign > 0 and q.bit_length() == bitwidth + 1 and q < base + base // 2
            ):
                # Keep strictly-bitwidth primes plus the narrow band just
                # above 2^bw that still fits the datapath.
                continue
            if not is_prime(q):
                continue
            signed_terms = tuple((sign * s, e) for s, e in terms)
            found.append(
                NttFriendlyPrime(
                    value=q, bitwidth=bitwidth, k=k, n_exp=n_exp, k_terms=signed_terms
                )
            )
    found.sort(key=lambda p: abs(p.value - base))
    if max_count is not None:
        found = found[:max_count]
    return found


def count_primes(bitwidths: tuple[int, ...], degree: int) -> int:
    """Total usable primes across several bitwidths (Section IV-A's "443")."""
    return sum(len(find_primes(bw, degree)) for bw in bitwidths)


def prime_chain(
    degree: int,
    count: int,
    bitwidth: int = 36,
    extra_bitwidths: tuple[int, ...] = (35, 34, 33, 32),
) -> list[NttFriendlyPrime]:
    """Build an RNS modulus chain of ``count`` distinct NTT-friendly primes.

    Prefers primes at ``bitwidth`` (closest to 2^bitwidth first) and falls
    back to the extra widths when the preferred pool is exhausted — matching
    the paper's "32–36 bit" pool for N = 2^16.
    """
    chain: list[NttFriendlyPrime] = []
    seen: set[int] = set()
    for bw in (bitwidth, *extra_bitwidths):
        if len(chain) >= count:
            break
        for p in find_primes(bw, degree, max_count=count):
            if p.value in seen:
                continue
            chain.append(p)
            seen.add(p.value)
            if len(chain) >= count:
                break
    if len(chain) < count:
        raise ValueError(
            f"only {len(chain)} NTT-friendly primes available for degree {degree} "
            f"at bitwidths {(bitwidth, *extra_bitwidths)}; requested {count}"
        )
    return chain
