"""Scalar and vectorized modular arithmetic.

Two layers live here:

* exact scalar helpers on Python ints (``mod_pow``, ``mod_inv``,
  ``primitive_root`` …) used for parameter generation and test oracles;
* vectorized uint64 kernels (``mulmod_vec`` and friends) used by the RNS
  polynomial layer.  Products of two < 2^36 residues need 72 bits, which
  overflows uint64, so ``mulmod_vec`` splits one operand into 18-bit halves
  — every intermediate then fits in 54 bits.  This mirrors the way the
  accelerator's datapath is sized (44-bit integers, Section III) without
  resorting to Python-object arrays.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "mod_pow",
    "mod_inv",
    "multiplicative_order",
    "primitive_root",
    "nth_root_of_unity",
    "centered",
    "mulmod_vec",
    "addmod_vec",
    "submod_vec",
    "negmod_vec",
    "powmod_vec",
]

# Residues handled by the vectorized kernels must stay below 2^SPLIT_LIMIT
# so the 18-bit split keeps intermediates inside uint64: the largest partial
# product is a * b_hi < 2^limit * 2^(limit - SPLIT_BITS), so limit <= 41.
# 36-bit primes (the paper's double-scale choice) fit with room to spare.
SPLIT_BITS = 18
SPLIT_LIMIT = 41


def mod_pow(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` on exact ints."""
    return pow(base, exponent, modulus)


def mod_inv(value: int, modulus: int) -> int:
    """Modular inverse; raises ValueError when gcd(value, modulus) != 1."""
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:  # non-invertible
        raise ValueError(f"{value} is not invertible mod {modulus}") from exc


def multiplicative_order(value: int, modulus: int, factored_group_order: dict[int, int]) -> int:
    """Order of ``value`` in (Z/modulus)* given the factored group order.

    ``factored_group_order`` maps prime -> multiplicity for the group order
    (``modulus - 1`` when the modulus is prime).
    """
    order = 1
    for prime, mult in factored_group_order.items():
        order *= prime**mult
    for prime, mult in factored_group_order.items():
        for _ in range(mult):
            if pow(value, order // prime, modulus) == 1:
                order //= prime
            else:
                break
    return order


def _factorize(n: int) -> dict[int, int]:
    """Trial-division factorization, adequate for q-1 of 32–60-bit primes.

    q-1 for NTT-friendly primes is 2^big * small_cofactor, so trial division
    after stripping twos terminates quickly.
    """
    factors: dict[int, int] = {}
    for p in (2, 3, 5, 7, 11, 13):
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    f = 17
    while f * f <= n:
        while n % f == 0:
            factors[f] = factors.get(f, 0) + 1
            n //= f
        f += 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


def primitive_root(prime: int) -> int:
    """Smallest primitive root modulo an odd prime."""
    group = prime - 1
    factors = _factorize(group)
    for candidate in range(2, prime):
        if all(pow(candidate, group // p, prime) != 1 for p in factors):
            return candidate
    raise ValueError(f"no primitive root found for {prime} (is it prime?)")


def nth_root_of_unity(n: int, prime: int) -> int:
    """A primitive n-th root of unity mod ``prime`` (requires n | prime-1)."""
    if (prime - 1) % n != 0:
        raise ValueError(f"{n} does not divide {prime}-1; no n-th root exists")
    g = primitive_root(prime)
    root = pow(g, (prime - 1) // n, prime)
    # Verify primitivity: root^(n/p) != 1 for every prime divisor p of n.
    for p in _factorize(n):
        if pow(root, n // p, prime) == 1:
            raise ArithmeticError("derived root is not primitive; bad primitive root")
    return root


def centered(value: int, modulus: int) -> int:
    """Map a residue in [0, modulus) to the centered range (-q/2, q/2]."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


# ---------------------------------------------------------------------------
# Vectorized uint64 kernels
# ---------------------------------------------------------------------------


def _check_modulus(q: int) -> None:
    if q.bit_length() > SPLIT_LIMIT:
        raise ValueError(
            f"modulus {q} has {q.bit_length()} bits; vectorized kernels support "
            f"at most {SPLIT_LIMIT} bits (paper uses 32–36-bit primes)"
        )


def mulmod_vec(a: np.ndarray, b: np.ndarray | int, q: int) -> np.ndarray:
    """Elementwise ``a * b mod q`` on uint64 arrays without overflow.

    Splits ``b`` into high/low 18-bit halves: ``a*b = (a*b_hi mod q) << 18
    + a*b_lo`` with every partial product below 2^(46+18) — safely inside
    uint64 after the interleaved reductions.
    """
    _check_modulus(q)
    qq = np.uint64(q)
    a = np.asarray(a, dtype=np.uint64) % qq
    b_arr = np.asarray(b, dtype=np.uint64) % qq
    b_hi = b_arr >> np.uint64(SPLIT_BITS)
    b_lo = b_arr & np.uint64((1 << SPLIT_BITS) - 1)
    hi = (a * b_hi) % qq
    hi = (hi << np.uint64(SPLIT_BITS)) % qq
    lo = (a * b_lo) % qq
    return (hi + lo) % qq


def addmod_vec(a: np.ndarray, b: np.ndarray | int, q: int) -> np.ndarray:
    """Elementwise modular addition."""
    qq = np.uint64(q)
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    return (a % qq + b % qq) % qq


def submod_vec(a: np.ndarray, b: np.ndarray | int, q: int) -> np.ndarray:
    """Elementwise modular subtraction (wraps into [0, q))."""
    qq = np.uint64(q)
    a = np.asarray(a, dtype=np.uint64) % qq
    b = np.asarray(b, dtype=np.uint64) % qq
    return (a + (qq - b)) % qq


def negmod_vec(a: np.ndarray, q: int) -> np.ndarray:
    """Elementwise modular negation."""
    qq = np.uint64(q)
    a = np.asarray(a, dtype=np.uint64) % qq
    return (qq - a) % qq


def powmod_vec(a: np.ndarray, exponent: int, q: int) -> np.ndarray:
    """Elementwise ``a ** exponent mod q`` by square-and-multiply."""
    _check_modulus(q)
    if exponent < 0:
        raise ValueError("negative exponents not supported; invert first")
    result = np.ones_like(np.asarray(a, dtype=np.uint64))
    base = np.asarray(a, dtype=np.uint64) % np.uint64(q)
    e = exponent
    while e:
        if e & 1:
            result = mulmod_vec(result, base, q)
        base = mulmod_vec(base, base, q)
        e >>= 1
    return result
