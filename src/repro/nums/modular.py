"""Scalar and vectorized modular arithmetic.

Two layers live here:

* exact scalar helpers on Python ints (``mod_pow``, ``mod_inv``,
  ``primitive_root`` …) used for parameter generation and test oracles;
* vectorized uint64 wrappers (``mulmod_vec`` and friends) that normalize
  arbitrary inputs and dispatch to the process-default reducer backend in
  :mod:`repro.nums.kernels`.  Hot paths (the RNS polynomial layer, NTT
  butterflies) bind a :class:`~repro.nums.kernels.ReducerKernel` directly
  and skip the normalization; these wrappers remain for ad-hoc callers
  and as the stable legacy API.

The root-finding helpers are memoized: parameter generation calls
``nth_root_of_unity`` once per (degree, prime) pair but the underlying
trial-division factorization of ``q - 1`` is shared across all of them.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.nums.kernels import kernel_for_modulus

__all__ = [
    "mod_pow",
    "mod_inv",
    "multiplicative_order",
    "primitive_root",
    "nth_root_of_unity",
    "centered",
    "centered_vec",
    "mulmod_vec",
    "addmod_vec",
    "submod_vec",
    "negmod_vec",
    "powmod_vec",
]

def mod_pow(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` on exact ints."""
    return pow(base, exponent, modulus)


def mod_inv(value: int, modulus: int) -> int:
    """Modular inverse; raises ValueError when gcd(value, modulus) != 1."""
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:  # non-invertible
        raise ValueError(f"{value} is not invertible mod {modulus}") from exc


def multiplicative_order(value: int, modulus: int, factored_group_order: dict[int, int]) -> int:
    """Order of ``value`` in (Z/modulus)* given the factored group order.

    ``factored_group_order`` maps prime -> multiplicity for the group order
    (``modulus - 1`` when the modulus is prime).
    """
    order = 1
    for prime, mult in factored_group_order.items():
        order *= prime**mult
    for prime, mult in factored_group_order.items():
        for _ in range(mult):
            if pow(value, order // prime, modulus) == 1:
                order //= prime
            else:
                break
    return order


@lru_cache(maxsize=None)
def _factorize(n: int) -> dict[int, int]:
    """Trial-division factorization, adequate for q-1 of 32–60-bit primes.

    q-1 for NTT-friendly primes is 2^big * small_cofactor, so trial division
    after stripping twos terminates quickly.
    """
    factors: dict[int, int] = {}
    for p in (2, 3, 5, 7, 11, 13):
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    f = 17
    while f * f <= n:
        while n % f == 0:
            factors[f] = factors.get(f, 0) + 1
            n //= f
        f += 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


@lru_cache(maxsize=None)
def primitive_root(prime: int) -> int:
    """Smallest primitive root modulo an odd prime (memoized per prime)."""
    group = prime - 1
    factors = _factorize(group)
    for candidate in range(2, prime):
        if all(pow(candidate, group // p, prime) != 1 for p in factors):
            return candidate
    raise ValueError(f"no primitive root found for {prime} (is it prime?)")


@lru_cache(maxsize=None)
def nth_root_of_unity(n: int, prime: int) -> int:
    """A primitive n-th root of unity mod ``prime`` (requires n | prime-1).

    Memoized: every ``NttContext.create`` for the same (degree, prime)
    pair reuses the factorization and root search.
    """
    if (prime - 1) % n != 0:
        raise ValueError(f"{n} does not divide {prime}-1; no n-th root exists")
    g = primitive_root(prime)
    root = pow(g, (prime - 1) // n, prime)
    # Verify primitivity: root^(n/p) != 1 for every prime divisor p of n.
    for p in _factorize(n):
        if pow(root, n // p, prime) == 1:
            raise ArithmeticError("derived root is not primitive; bad primitive root")
    return root


def centered(value: int, modulus: int) -> int:
    """Map a residue in [0, modulus) to the centered range (-q/2, q/2]."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


def centered_vec(residues: np.ndarray, modulus: int) -> np.ndarray:
    """Vectorized :func:`centered`: canonical residues -> int64 lifts."""
    r = np.asarray(residues, dtype=np.uint64).astype(np.int64)
    return np.where(r > modulus // 2, r - modulus, r)


# ---------------------------------------------------------------------------
# Vectorized uint64 wrappers over the pluggable reducer backends
# ---------------------------------------------------------------------------


def mulmod_vec(a: np.ndarray, b: np.ndarray | int, q: int) -> np.ndarray:
    """Elementwise ``a * b mod q`` on uint64 arrays without overflow.

    Inputs of arbitrary magnitude are normalized into ``[0, q)`` first,
    then the product is taken by the process-default reducer backend
    (see :mod:`repro.nums.kernels`); with the ``barrett`` default no
    integer division runs on the product path.
    """
    kern = kernel_for_modulus(q)
    qq = np.uint64(q)
    a = np.asarray(a, dtype=np.uint64) % qq
    b_arr = np.asarray(b, dtype=np.uint64) % qq
    return kern.mul(a, b_arr)


# The additive wrappers need no reducer tables, so they keep the seed's
# any-modulus contract (even or > 41-bit moduli included) instead of
# routing through kernel construction.


def addmod_vec(a: np.ndarray, b: np.ndarray | int, q: int) -> np.ndarray:
    """Elementwise modular addition."""
    qq = np.uint64(q)
    s = np.asarray(a, dtype=np.uint64) % qq + np.asarray(b, dtype=np.uint64) % qq
    return np.minimum(s, s - qq)  # s < 2q; the wrapped branch loses the min


def submod_vec(a: np.ndarray, b: np.ndarray | int, q: int) -> np.ndarray:
    """Elementwise modular subtraction (wraps into [0, q))."""
    qq = np.uint64(q)
    d = np.asarray(a, dtype=np.uint64) % qq - np.asarray(b, dtype=np.uint64) % qq
    return np.minimum(d, d + qq)  # d wrapped iff a < b; then d + q is canonical


def negmod_vec(a: np.ndarray, q: int) -> np.ndarray:
    """Elementwise modular negation."""
    qq = np.uint64(q)
    r = np.asarray(a, dtype=np.uint64) % qq
    return np.minimum(qq - r, np.uint64(0) - r)  # 0 - r wins only at r == 0


def powmod_vec(a: np.ndarray, exponent: int, q: int) -> np.ndarray:
    """Elementwise ``a ** exponent mod q`` by square-and-multiply."""
    kern = kernel_for_modulus(q)
    return kern.pow(np.asarray(a, dtype=np.uint64) % np.uint64(q), exponent)
